//! End-to-end runs of the k-of-n placement extension: a replica loss
//! degrades the placement (the primary keeps serving on the quorum),
//! coded repair regenerates the lost fragment store onto a fresh host,
//! and a subsequent primary fault fails over to an image reconstructed
//! from k survivors — plus the adversarial variants (replacement dies
//! mid-repair, primary dies inside the degraded window).

use nilicon::harness::{RunHarness, RunMode};
use nilicon::trace::{TraceEvent, Tracer};
use nilicon::{OptimizationConfig, PlacementEngine, ReplicationConfig};
use nilicon_sim::time::{MILLISECOND, SECOND};
use nilicon_sim::CostModel;
use nilicon_workloads as workloads;
use nilicon_workloads::Scale;

fn placement_mode(k: u32, n: u32) -> RunMode {
    let mut opts = OptimizationConfig::nilicon();
    opts.backups = n;
    opts.quorum = k;
    RunMode::Replicated(Box::new(
        PlacementEngine::new(opts, CostModel::default()).unwrap(),
    ))
}

fn harness(cfg: ReplicationConfig, k: u32, n: u32) -> RunHarness {
    let w = workloads::redis(Scale::small(), 4, None);
    RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        placement_mode(k, n),
        cfg,
        w.parallelism,
    )
    .unwrap()
}

#[test]
fn backup_loss_repairs_then_survives_primary_fault() {
    // The acceptance scenario: --backups 3 --quorum 2. The designated
    // replica dies mid-run; the primary never stops serving (2 ≥ k acks
    // keep flowing); coded repair rebuilds the lost fragment store on a
    // fresh host; a later primary fault fails over onto that repaired
    // host from a byte-identical reconstructed image.
    let mut h = harness(ReplicationConfig::default(), 2, 3);
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_backup_fault_at(300 * MILLISECOND);
    h.inject_fault_at(1500 * MILLISECOND);
    h.run_epochs(120).unwrap();
    assert_eq!(h.failovers(), 1, "only the primary fault fails over");
    assert!(!h.repair_active(), "repair completed");

    let recs = ring.snapshot();
    let count = |pred: &dyn Fn(&TraceEvent) -> bool| recs.iter().filter(|r| pred(&r.kind)).count();
    assert_eq!(
        count(&|k| matches!(k, TraceEvent::DegradedMode { alive: 2, need: 2 })),
        1,
        "the replica loss left a bare quorum"
    );
    let starts: Vec<(String, u32)> = recs
        .iter()
        .filter_map(|r| match &r.kind {
            TraceEvent::RepairStart { kind, attempt } => Some((kind.clone(), *attempt)),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec![("repair".into(), 0)]);
    assert!(
        count(&|k| matches!(k, TraceEvent::RepairChunk { .. })) >= 1,
        "the missing fragments streamed in bounded chunks"
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEvent::RepairComplete { .. })),
        1,
        "full redundancy restored before the primary fault"
    );
    let complete_t = recs
        .iter()
        .find(|r| matches!(r.kind, TraceEvent::RepairComplete { .. }))
        .expect("repair completed")
        .t;
    assert!(
        complete_t < 1500 * MILLISECOND,
        "repaired before the primary fault at {complete_t}ns"
    );
    assert_eq!(count(&|k| matches!(k, TraceEvent::Failover { .. })), 1);
    // Epochs kept committing between the replica loss and the repair:
    // ShardCommit spans appear throughout the degraded window.
    assert!(
        recs.iter().any(|r| {
            matches!(r.kind, TraceEvent::ShardCommit { shards: 3, .. })
                && r.t > 300 * MILLISECOND
                && r.t < complete_t
        }),
        "the primary kept checkpointing while degraded"
    );

    let r = h.finish();
    assert!(r.recovered, "the primary fault recovered");
    assert_eq!(r.unrecovered_faults, 0);
    assert_eq!(r.broken_connections, 0, "no RST reached any client");
    r.verify
        .expect("read-your-writes held across replica loss, repair, and failover");
    assert!(
        r.metrics.requests_total > 10,
        "service continued throughout: {} requests",
        r.metrics.requests_total
    );
}

#[test]
fn replacement_loss_mid_repair_triggers_backoff_re_repair() {
    // The replacement host dies while the repair streams. The
    // half-regenerated fragment store is discarded, the quorum keeps
    // acking epochs, and a second attempt (exponential backoff,
    // incremented attempt counter) succeeds.
    let cfg = ReplicationConfig {
        // Tiny chunks stretch the repair across many epochs so the second
        // backup fault reliably lands mid-stream.
        rearm_chunk_pages: 16,
        ..Default::default()
    };
    let mut h = harness(cfg, 2, 3);
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_backup_fault_at(300 * MILLISECOND);
    h.inject_backup_fault_at(420 * MILLISECOND);
    h.run_epochs(400).unwrap();
    assert_eq!(h.failovers(), 0, "no primary fault in this run");
    assert!(!h.repair_active(), "the retry eventually completed");

    let recs = ring.snapshot();
    let starts: Vec<u32> = recs
        .iter()
        .filter_map(|r| match &r.kind {
            TraceEvent::RepairStart { attempt, .. } => Some(*attempt),
            _ => None,
        })
        .collect();
    assert!(
        starts.len() >= 2,
        "the aborted repair was retried: attempts {starts:?}"
    );
    assert!(
        starts.contains(&1),
        "the retry carries an incremented attempt counter: {starts:?}"
    );
    assert_eq!(
        recs.iter()
            .filter(|r| matches!(r.kind, TraceEvent::RepairComplete { .. }))
            .count(),
        1,
        "exactly one attempt sealed the replica"
    );

    let r = h.finish();
    assert_eq!(r.broken_connections, 0);
    r.verify.expect("consistency held across both replica losses");
    assert!(r.metrics.requests_total > 10);
}

#[test]
fn primary_fault_inside_degraded_window_fails_over_from_survivors() {
    // The primary dies before the repair finishes: failover must decode
    // the committed image from the k surviving fragment stores and resync
    // the replacement host's disk from a survivor.
    let cfg = ReplicationConfig {
        rearm_chunk_pages: 16,
        ..Default::default()
    };
    let mut h = harness(cfg, 2, 3);
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_backup_fault_at(300 * MILLISECOND);
    h.inject_fault_at(400 * MILLISECOND);
    h.run_epochs(60).unwrap();
    assert_eq!(h.failovers(), 1);

    let recs = ring.snapshot();
    assert!(
        recs.iter()
            .any(|r| matches!(r.kind, TraceEvent::DegradedMode { .. })),
        "the replica loss was recorded"
    );
    assert!(
        !recs
            .iter()
            .any(|r| matches!(r.kind, TraceEvent::RepairComplete { .. })),
        "the fault landed before the repair could finish"
    );
    assert!(
        recs.iter()
            .any(|r| matches!(r.kind, TraceEvent::Failover { .. })),
        "failover happened"
    );

    let r = h.finish();
    assert!(r.recovered, "failed over from the two survivors");
    assert_eq!(r.broken_connections, 0);
    r.verify
        .expect("the reconstructed image preserved every committed write");
    assert!(r.failover.unwrap().disk_pages_committed > 0 || r.failover.unwrap().others > 0);
}

#[test]
fn mirroring_placement_matches_acceptance_sweep_edge() {
    // (1,2) is plain mirroring: a replica loss with k=1 leaves one full
    // copy — still above quorum, so the run degrades-and-repairs exactly
    // like a coded placement.
    let mut h = harness(ReplicationConfig::default(), 1, 2);
    let (tracer, ring) = Tracer::in_memory(4096);
    h.set_tracer(tracer);
    h.inject_backup_fault_at(300 * MILLISECOND);
    h.run_epochs(40).unwrap();
    assert!(!h.repair_active(), "repair completed");
    let recs = ring.snapshot();
    assert!(recs
        .iter()
        .any(|r| matches!(r.kind, TraceEvent::DegradedMode { alive: 1, need: 1 })));
    assert!(recs
        .iter()
        .any(|r| matches!(r.kind, TraceEvent::RepairComplete { .. })));
    let r = h.finish();
    assert_eq!(r.broken_connections, 0);
    r.verify.expect("consistency");
    assert!(r.metrics.requests_total > 10);
}

#[test]
fn below_quorum_degrades_like_single_backup() {
    // A (2,2) placement needs every replica for the quorum: losing one
    // cannot be repaired online (no k survivors to decode from), so the
    // run degrades to unreplicated service exactly like the paper path's
    // backup loss — plugged output released, service continues unprotected.
    let mut h = harness(ReplicationConfig::default(), 2, 2);
    let (tracer, ring) = Tracer::in_memory(4096);
    h.set_tracer(tracer);
    h.inject_backup_fault_at(300 * MILLISECOND);
    h.run_epochs(40).unwrap();
    assert!(!h.replication_active(), "degraded to unreplicated");
    assert!(!h.repair_active(), "no repair is possible below quorum");
    let recs = ring.snapshot();
    assert!(
        !recs
            .iter()
            .any(|r| matches!(r.kind, TraceEvent::RepairStart { .. })),
        "no repair was attempted"
    );
    assert!(
        recs.iter()
            .any(|r| matches!(r.kind, TraceEvent::OutputRelease { .. })
                && r.t >= 300 * MILLISECOND),
        "held output was released when replication ended"
    );
    let _ = SECOND; // timing constants above stay in MILLISECOND
    let r = h.finish();
    assert_eq!(r.broken_connections, 0);
    r.verify.expect("served output stayed committed");
    assert!(r.metrics.requests_total > 10, "service continued unreplicated");
}
