//! End-to-end equivalence of the copy-on-write checkpoint path.
//!
//! COW checkpointing changes *when* dirty pages are copied (in the
//! background, after the container resumes), not *what* reaches the backup:
//! the committed image must be byte-identical to the eager path after every
//! epoch, composing with delta transfer and sharded dumps, and a failover
//! injected mid-copy must fall back to the last fully-assembled epoch.

use nilicon::{Checkpointer, NiLiConEngine, OptimizationConfig};
use nilicon_container::{Container, ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::PAGE_SIZE;

type Script = dyn Fn(&mut Kernel, &Container, u64);

/// Drive `epochs` checkpoint/commit cycles of a fixed write script plus one
/// uncommitted tail epoch, fail over, and return `(total wire bytes,
/// restored memory snapshot)`. `fail_after_chunks` aborts the tail epoch's
/// COW drain after that many streamed chunks (no effect on eager runs).
fn run_script(
    tweak: &dyn Fn(&mut OptimizationConfig),
    epochs: u64,
    fail_after_chunks: Option<u64>,
    script: &Script,
) -> (u64, Vec<u8>) {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let mut spec = ContainerSpec::server("redis", 10, 6379);
    spec.processes = 3;
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut opts = OptimizationConfig::nilicon();
    tweak(&mut opts);
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).unwrap();

    let mut wire_bytes = 0u64;
    for epoch in 1..=epochs {
        script(&mut p, &c, epoch);
        let o = e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        wire_bytes += o.state_bytes;
        e.commit(&mut b, epoch).unwrap();
    }
    // One more checkpoint that never gets acked — with `fail_after_chunks`
    // the primary dies mid-copy and the backup holds a partial assembly.
    script(&mut p, &c, epochs + 1);
    e.cow_fail_after_chunks = fail_after_chunks;
    e.checkpoint(&mut p, &mut b, &c, epochs + 1).unwrap();
    if fail_after_chunks.is_some() {
        // The aborted drain left pages write-protected: the container keeps
        // running and its writes race the (dead) copier — the eager
        // copy-before-write faults must not corrupt what the backup holds.
        for page in 0..8u64 {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[0xEE; 32])
                .unwrap();
        }
    }

    let (restored, _report) = e.failover(&mut b).unwrap();
    restored.finish(&mut b).unwrap();

    // Snapshot every heap page the script can have touched, across all
    // worker pids.
    let mut snapshot = Vec::new();
    for pid in restored.container.workers.clone() {
        for page in 0..64u64 {
            let mut buf = vec![0u8; PAGE_SIZE];
            if b.mem_read(pid, MemLayout::heap_page(page), &mut buf).is_ok() {
                snapshot.extend_from_slice(&buf);
            }
        }
    }
    (wire_bytes, snapshot)
}

/// Every page class each epoch: sparse counter edits, fresh pages, dense
/// rewrites, and a page scrubbed back to zeros.
fn mixed_script(k: &mut Kernel, c: &Container, epoch: u64) {
    let pid = c.init_pid();
    k.mem_write(pid, MemLayout::heap(8), &epoch.to_le_bytes())
        .unwrap();
    k.mem_write(pid, MemLayout::heap_page(10 + epoch), &[epoch as u8; 128])
        .unwrap();
    k.mem_write(pid, MemLayout::heap_page(2), &vec![epoch as u8 | 1; PAGE_SIZE])
        .unwrap();
    let fill = if epoch.is_multiple_of(2) { 0u8 } else { 0xAB };
    k.mem_write(pid, MemLayout::heap_page(3), &vec![fill; PAGE_SIZE])
        .unwrap();
}

#[test]
fn cow_committed_state_is_byte_identical_across_ten_epochs_and_failover() {
    let (eager_bytes, eager_mem) = run_script(&|_| {}, 10, None, &mixed_script);
    let (cow_bytes, cow_mem) = run_script(&|o| o.cow_checkpoint = true, 10, None, &mixed_script);

    assert!(!eager_mem.is_empty(), "snapshot captured restored memory");
    assert_eq!(
        eager_mem, cow_mem,
        "restored memory must be bit-for-bit identical across copy modes"
    );
    assert_eq!(
        eager_bytes, cow_bytes,
        "deferring the copy must not change what crosses the wire"
    );
}

#[test]
fn cow_composes_with_delta_and_sharded_dumps() {
    let tweak = |o: &mut OptimizationConfig| {
        o.cow_checkpoint = true;
        o.delta_transfer = true;
        o.dump_workers = 4;
    };
    let (eager_bytes, eager_mem) = run_script(&|_| {}, 12, None, &mixed_script);
    let (cow_bytes, cow_mem) = run_script(&tweak, 12, None, &mixed_script);

    assert!(!eager_mem.is_empty());
    assert_eq!(
        eager_mem, cow_mem,
        "cow + delta + sharded dump diverged from the eager path"
    );
    assert!(
        cow_bytes < eager_bytes,
        "drain-time delta encoding still compresses: {cow_bytes} vs {eager_bytes}"
    );
}

#[test]
fn mid_copy_failover_falls_back_to_last_fully_assembled_epoch() {
    // The eager run discards its uncommitted tail at failover; the COW run
    // dies after a single streamed chunk of the tail epoch (pages 0..8 are
    // then overwritten by racing container writes). Both must restore the
    // same state: epoch 10's.
    let (_, eager_mem) = run_script(&|_| {}, 10, None, &mixed_script);
    let (_, cow_mem) = run_script(&|o| o.cow_checkpoint = true, 10, Some(1), &mixed_script);

    assert!(!eager_mem.is_empty());
    assert_eq!(
        eager_mem, cow_mem,
        "a mid-copy failure must fall back to the last fully-assembled epoch"
    );
}
