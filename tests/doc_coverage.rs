//! Doc check: every `TraceEvent` variant must be documented in
//! OBSERVABILITY.md — the trace schema is a contract, and an event that
//! ships without documentation is unreconcilable by readers of the traces.

/// Extract the variant names of `pub enum TraceEvent` from the source text.
fn trace_event_variants(src: &str) -> Vec<String> {
    let start = src
        .find("pub enum TraceEvent")
        .expect("trace.rs declares TraceEvent");
    let body = &src[start..];
    let open = body.find('{').expect("enum body");
    let mut depth = 0usize;
    let mut end = open;
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut variants = Vec::new();
    let mut brace = 0usize;
    for line in body[open + 1..end].lines() {
        let t = line.trim();
        // Only top-level variant lines: skip doc comments, attributes, and
        // the field lines inside a struct variant's braces.
        if brace == 0
            && !t.starts_with("///")
            && !t.starts_with("//")
            && !t.starts_with('#')
            && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !name.is_empty() {
                variants.push(name);
            }
        }
        brace += line.matches('{').count();
        brace = brace.saturating_sub(line.matches('}').count());
    }
    variants
}

#[test]
fn every_trace_event_variant_is_documented_in_observability_md() {
    let src = include_str!("../crates/core/src/trace.rs");
    let doc = include_str!("../OBSERVABILITY.md");
    let variants = trace_event_variants(src);
    assert!(
        variants.len() >= 20,
        "parser found only {} variants — parsing broke?",
        variants.len()
    );
    let missing: Vec<&String> = variants.iter().filter(|v| !doc.contains(v.as_str())).collect();
    assert!(
        missing.is_empty(),
        "TraceEvent variants missing from OBSERVABILITY.md: {missing:?}"
    );
}

#[test]
fn chaos_events_are_among_the_parsed_variants() {
    let src = include_str!("../crates/core/src/trace.rs");
    let variants = trace_event_variants(src);
    for v in [
        "PartitionStart",
        "PartitionHeal",
        "LeaseAcquire",
        "LeaseExpire",
        "FencedOutput",
        "FalseSuspicion",
        "ChaosDelay",
    ] {
        assert!(variants.contains(&v.to_string()), "parser misses {v}");
    }
}
