//! Property test of the fundamental Remus/NiLiCon invariant (DESIGN.md
//! invariant 1): **output commit** — any response a client received reflects
//! state that survives failover — across randomized fault times, client
//! counts, and workloads.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_sim::time::MILLISECOND;
use nilicon_sim::CostModel;
use nilicon_workloads::{self as workloads, Scale};
use proptest::prelude::*;

fn run_with_fault(
    which: u8,
    clients: usize,
    fault_ms: u64,
    opts: OptimizationConfig,
) -> nilicon::harness::RunResult {
    let scale = Scale::small();
    let w = match which % 3 {
        0 => workloads::redis(scale, clients, None),
        1 => workloads::ssdb(scale, clients, None),
        _ => workloads::stack_echo(clients, 4000, None),
    };
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    h.inject_fault_at(fault_ms * MILLISECOND);
    h.run_epochs(30).expect("run");
    h.finish()
}

proptest! {
    // Each case is a full replication run; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn output_commit_holds_for_any_fault_time(
        which in 0u8..3,
        clients in 1usize..6,
        fault_ms in 80u64..700,
    ) {
        let r = run_with_fault(which, clients, fault_ms, OptimizationConfig::nilicon());
        prop_assert!(r.recovered, "failover must succeed");
        prop_assert_eq!(r.broken_connections, 0, "no RST may reach a client");
        prop_assert!(r.verify.is_ok(), "consistency: {:?}", r.verify);
        prop_assert!(r.detection_latency.unwrap() <= 150 * MILLISECOND);
    }

    #[test]
    fn output_commit_holds_without_rto_optimization(
        fault_ms in 100u64..600,
    ) {
        // §V-E only affects recovery LATENCY, never correctness.
        let mut opts = OptimizationConfig::nilicon();
        opts.optimized_rto = false;
        let r = run_with_fault(0, 3, fault_ms, opts);
        prop_assert!(r.recovered);
        prop_assert_eq!(r.broken_connections, 0);
        prop_assert!(r.verify.is_ok(), "consistency: {:?}", r.verify);
        // Recovery is slower with the 1s stock RTO.
        let fo = r.failover.unwrap();
        prop_assert!(fo.tcp >= 400 * MILLISECOND, "stock RTO leaves a long TCP tail");
    }

    #[test]
    fn basic_config_is_slower_but_still_correct(
        fault_ms in 150u64..400,
    ) {
        // Every §V optimization is a performance change; none may alter
        // failover correctness.
        let r = run_with_fault(2, 2, fault_ms, OptimizationConfig::basic());
        prop_assert!(r.recovered);
        prop_assert_eq!(r.broken_connections, 0);
        prop_assert!(r.verify.is_ok(), "consistency: {:?}", r.verify);
    }
}
