//! Cross-host live-migration scenarios (CRIU's original use case, §II-B):
//! checkpoint on one kernel, restore on another, continue — covering every
//! benchmark application and the state classes the paper enumerates
//! (user memory, fd tables, sockets, fs cache, namespaces, cgroups, mounts).

use nilicon_container::{Application, ContainerRuntime, ContainerSpec, GuestCtx};
use nilicon_criu::{full_dump, restore_container, DumpConfig, RestoreConfig};
use nilicon_sim::kernel::Kernel;
use nilicon_workloads::{
    value_pattern as value_pattern_probe, DjcmsApp, NodeApp, RedisApp, Scale, SsdbApp,
    StreamclusterApp, SwaptionsApp,
};

/// Run `init` + some app work on a source kernel, migrate, and let the
/// verifier check the destination.
fn run_migration<A: Application>(
    spec: ContainerSpec,
    mut app: A,
    mut work: impl FnMut(&mut A, &mut Kernel, nilicon_sim::ids::Pid),
    mut verify: impl FnMut(&mut A, &mut Kernel, nilicon_sim::ids::Pid),
) {
    let mut source = Kernel::default();
    let cont = ContainerRuntime::create(&mut source, &spec).unwrap();
    let pid = cont.init_pid();
    {
        let mut ctx = GuestCtx::new(&mut source, pid, 0);
        app.init(&mut ctx).unwrap();
    }
    work(&mut app, &mut source, pid);

    let img = full_dump(&mut source, &cont, &DumpConfig::nilicon()).unwrap();
    let mut dest = Kernel::default();
    let restored = restore_container(&mut dest, &img, &RestoreConfig::default()).unwrap();
    restored.finish(&mut dest).unwrap();
    {
        let mut ctx = GuestCtx::new(&mut dest, restored.container.init_pid(), 1);
        app.recover(&mut ctx).unwrap();
    }
    verify(&mut app, &mut dest, restored.container.init_pid());
}

#[test]
fn migrate_redis_preserves_every_record() {
    let scale = Scale {
        kv_records: 300,
        ..Scale::small()
    };
    let app = RedisApp::new(scale, true);
    let mut spec = ContainerSpec::server("redis", 10, 6379);
    spec.heap_pages = app.heap_pages();
    run_migration(
        spec,
        app,
        |app, k, pid| {
            // Overwrite a few records post-load.
            let mut ctx = GuestCtx::new(k, pid, 0);
            for slot in [3u32, 77, 299] {
                app.kv()
                    .set(&mut ctx, slot, 9, &value_pattern_probe(slot, 9, 512))
                    .unwrap();
            }
        },
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 2);
            for slot in [3u32, 77, 299] {
                let (v, val) = app.kv().get(&mut ctx, slot).unwrap();
                assert_eq!(v, 9);
                assert_eq!(val, value_pattern_probe(slot, 9, 512));
            }
            // An untouched record survived too.
            let (v, val) = app.kv().get(&mut ctx, 100).unwrap();
            assert_eq!(v, 0);
            assert_eq!(val, value_pattern_probe(100, 0, scale_value()));
        },
    );
}

fn scale_value() -> usize {
    Scale::small().value_size
}

#[test]
fn migrate_ssdb_preserves_file_contents() {
    let scale = Scale {
        kv_records: 200,
        ..Scale::small()
    };
    let app = SsdbApp::new(scale);
    let mut spec = ContainerSpec::server("ssdb", 10, 8888);
    spec.heap_pages = app.heap_pages();
    run_migration(
        spec,
        app,
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 0);
            let req = nilicon_workloads::KvRequest {
                ops: vec![nilicon_workloads::KvOp::Set {
                    slot: 42,
                    version: 5,
                    value: value_pattern_probe(42, 5, 700),
                }],
            };
            app.handle_request(&mut ctx, &req.encode()).unwrap();
        },
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 2);
            let req = nilicon_workloads::KvRequest {
                ops: vec![nilicon_workloads::KvOp::Get { slot: 42 }],
            };
            let out = app.handle_request(&mut ctx, &req.encode()).unwrap();
            let resp = nilicon_workloads::KvResponse::decode(&out.response).unwrap();
            assert_eq!(resp.gets[0], (42, 5, value_pattern_probe(42, 5, 700)));
        },
    );
}

#[test]
fn migrate_batch_apps_resume_mid_computation() {
    // streamcluster
    let scale = Scale {
        sc_points: 4096,
        ..Scale::small()
    };
    let app = StreamclusterApp::new(scale);
    let mut spec = ContainerSpec::batch("streamcluster", 10);
    spec.heap_pages = app.heap_pages();
    run_migration(
        spec,
        app,
        |app, k, pid| {
            for i in 0..5 {
                let mut ctx = GuestCtx::new(k, pid, i);
                app.step(&mut ctx).unwrap();
            }
        },
        |app, k, pid| {
            // Completes from where it left off.
            let mut steps = 0u64;
            loop {
                let mut ctx = GuestCtx::new(k, pid, 100 + steps);
                if app.step(&mut ctx).unwrap().done {
                    break;
                }
                steps += 1;
                assert!(steps < 200, "must converge post-migration");
            }
        },
    );

    // swaptions
    let mut app = SwaptionsApp::new(Scale::small());
    app.swaptions = 12;
    let mut spec = ContainerSpec::batch("swaptions", 10);
    spec.heap_pages = app.heap_pages();
    run_migration(
        spec,
        app,
        |app, k, pid| {
            for i in 0..4 {
                let mut ctx = GuestCtx::new(k, pid, i);
                app.step(&mut ctx).unwrap();
            }
        },
        |app, k, pid| {
            let mut remaining = 0u64;
            loop {
                let mut ctx = GuestCtx::new(k, pid, 50 + remaining);
                if app.step(&mut ctx).unwrap().done {
                    break;
                }
                remaining += 1;
            }
            assert_eq!(
                remaining, 7,
                "12 total - 4 done - final = 7 intermediate steps"
            );
        },
    );
}

#[test]
fn migrate_web_apps_serve_identical_pages() {
    // Node
    let app = NodeApp::new(Scale::small());
    let mut spec = ContainerSpec::server("node", 10, 3000);
    spec.heap_pages = app.heap_pages();
    let before = std::cell::RefCell::new(Vec::new());
    run_migration(
        spec,
        app,
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 0);
            *before.borrow_mut() = app
                .handle_request(&mut ctx, &7u32.to_le_bytes())
                .unwrap()
                .response;
        },
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 2);
            let after = app
                .handle_request(&mut ctx, &7u32.to_le_bytes())
                .unwrap()
                .response;
            assert_eq!(*before.borrow(), after, "document database migrated intact");
        },
    );

    // DJCMS (table file + sessions through the fs cache)
    let mut app = DjcmsApp::new();
    app.arena_pages = 64;
    app.churn_pages = 8;
    app.table_pages = 8;
    let mut spec = ContainerSpec::server("djcms", 10, 8000);
    spec.processes = 3;
    spec.heap_pages = app.heap_pages();
    let before = std::cell::RefCell::new(Vec::new());
    run_migration(
        spec,
        app,
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 0);
            *before.borrow_mut() = app
                .handle_request(&mut ctx, &2u32.to_le_bytes())
                .unwrap()
                .response;
        },
        |app, k, pid| {
            let mut ctx = GuestCtx::new(k, pid, 2);
            let after = app
                .handle_request(&mut ctx, &2u32.to_le_bytes())
                .unwrap()
                .response;
            assert_eq!(
                *before.borrow(),
                after,
                "table file + cache migrated intact"
            );
        },
    );
}
