//! Cross-crate integration: full replication runs over real workloads,
//! including the §VII-A fault-injection validation path.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_mc::McEngine;
use nilicon_sim::time::{MILLISECOND, SECOND};
use nilicon_sim::CostModel;
use nilicon_workloads as workloads;
use nilicon_workloads::Scale;

fn harness(w: workloads::Workload, mode: RunMode) -> RunHarness {
    RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness builds")
}

fn nilicon_mode() -> RunMode {
    RunMode::Replicated(Box::new(NiLiConEngine::new(
        OptimizationConfig::nilicon(),
        CostModel::default(),
    )))
}

#[test]
fn unreplicated_redis_serves_and_validates() {
    let w = workloads::redis(Scale::small(), 4, None);
    let mut h = harness(w, RunMode::Unreplicated);
    h.run_epochs(30).unwrap();
    let r = h.finish();
    assert!(
        r.metrics.requests_total > 20,
        "served {} requests",
        r.metrics.requests_total
    );
    assert_eq!(r.broken_connections, 0);
    r.verify.expect("YCSB consistency");
    assert_eq!(r.metrics.avg_stop(), 0, "no stop phases unreplicated");
}

#[test]
fn nilicon_redis_serves_with_overhead() {
    let w = workloads::redis(Scale::small(), 4, None);
    let mut h = harness(w, nilicon_mode());
    h.run_epochs(30).unwrap();
    let r = h.finish();
    assert!(r.metrics.requests_total > 10);
    assert_eq!(r.broken_connections, 0);
    r.verify.expect("YCSB consistency under replication");
    assert!(r.metrics.avg_stop() > 0, "stop phases present");
    assert!(r.metrics.avg_dirty_pages() > 10.0);
    assert!(r.metrics.backup_utilization() > 0.0);

    // Throughput must be lower than unreplicated.
    let w2 = workloads::redis(Scale::small(), 4, None);
    let mut h2 = harness(w2, RunMode::Unreplicated);
    h2.run_epochs(30).unwrap();
    let stock = h2.finish();
    assert!(
        r.metrics.throughput_rps() < stock.metrics.throughput_rps(),
        "replicated {} vs stock {}",
        r.metrics.throughput_rps(),
        stock.metrics.throughput_rps()
    );
}

#[test]
fn nilicon_failover_preserves_kv_consistency() {
    // The headline §VII-A experiment, miniaturized: run Redis under NiLiCon,
    // kill the primary mid-run, and require (a) recovery, (b) zero broken
    // connections, (c) YCSB read-your-writes consistency across the failover.
    let w = workloads::redis(Scale::small(), 4, None);
    let mut h = harness(w, nilicon_mode());
    h.inject_fault_at(400 * MILLISECOND);
    h.run_epochs(60).unwrap();
    assert!(h.on_backup(), "failover happened");
    let r = h.finish();
    assert!(r.recovered);
    let det = r.detection_latency.expect("fault was injected");
    assert!(
        (60 * MILLISECOND..=150 * MILLISECOND).contains(&det),
        "§VII-B: detection ≈90ms, got {}ms",
        det / MILLISECOND
    );
    let fo = r.failover.expect("failover report");
    assert!(
        fo.restore > 100 * MILLISECOND,
        "restore dominates (Table II)"
    );
    assert_eq!(fo.arp, 28 * MILLISECOND);
    assert_eq!(r.broken_connections, 0, "no RST reached any client");
    r.verify.expect("no lost updates across failover");
    assert!(
        r.metrics.requests_total > 10,
        "service continued on the backup: {} requests",
        r.metrics.requests_total
    );
}

#[test]
fn nilicon_failover_stack_echo_consistency() {
    let w = workloads::stack_echo(4, 8000, None);
    let mut h = harness(w, nilicon_mode());
    h.inject_fault_at(300 * MILLISECOND);
    h.run_epochs(50).unwrap();
    let r = h.finish();
    assert!(r.recovered);
    assert_eq!(r.broken_connections, 0);
    r.verify.expect("every echo byte-exact across failover");
}

#[test]
fn nilicon_batch_stress_fs_survives_failover() {
    let w = workloads::stress_fs(64 * 1024, None);
    let mut h = harness(w, nilicon_mode());
    h.inject_fault_at(350 * MILLISECOND);
    h.run_epochs(40).unwrap();
    let r = h.finish();
    assert!(r.recovered);
    assert!(
        r.metrics.steps_total > 100,
        "stressor kept running: {}",
        r.metrics.steps_total
    );
    // The app flags read/write mismatches itself; its state page and file
    // roll back together, so a healthy failover shows zero errors. We can't
    // reach into the moved app, but a mismatch would have panicked the step
    // via error counting in the validation harness (see bench validation).
}

#[test]
fn swaptions_completes_under_replication_with_failover() {
    let mut w = workloads::swaptions(Scale::small(), 4);
    // Shorten the batch so the test stays quick.
    w.app = {
        let mut app = workloads::SwaptionsApp::new(Scale::small());
        app.swaptions = 600;
        Box::new(app)
    };
    let mut h = harness(w, nilicon_mode());
    h.inject_fault_at(200 * MILLISECOND);
    h.run_batch_to_completion(4000).unwrap();
    assert!(h.batch_done());
    assert!(h.on_backup());
    let r = h.finish();
    assert!(r.recovered);
    assert!(
        r.metrics.steps_total >= 600,
        "all swaptions priced: {}",
        r.metrics.steps_total
    );
}

#[test]
fn mc_runs_redis_with_lower_stop_higher_runtime() {
    let w = workloads::redis(Scale::small(), 4, None);
    let mut h = harness(
        w,
        RunMode::Replicated(Box::new(McEngine::new(CostModel::default()))),
    );
    h.run_epochs(25).unwrap();
    let mc = h.finish();
    mc.verify.expect("MC serves correctly");

    let w2 = workloads::redis(Scale::small(), 4, None);
    let mut h2 = harness(w2, nilicon_mode());
    h2.run_epochs(25).unwrap();
    let nl = h2.finish();

    // Fig. 3 shape: MC's stop is smaller, its tracking overhead larger.
    let (nl_stop, nl_track) = nl.metrics.overhead_split();
    let (mc_stop, mc_track) = mc.metrics.overhead_split();
    assert!(
        mc_stop < nl_stop,
        "MC stop {mc_stop} < NiLiCon stop {nl_stop}"
    );
    assert!(
        mc_track > nl_track,
        "MC tracking {mc_track} > NiLiCon tracking {nl_track} (vmexit vs soft-dirty)"
    );
}

#[test]
fn streamcluster_overhead_brackets_paper_shape() {
    // Small-scale streamcluster: run the same work stock and replicated;
    // the replicated run must take longer, within a sane overhead band.
    let run = |mode: RunMode| {
        let mut w = workloads::streamcluster(Scale::small(), 4);
        w.app = {
            let mut app = workloads::StreamclusterApp::new(Scale::small());
            // Longer, heavier run so one-time warmup (initial full sync,
            // cold infrequent-state cache) amortizes, as in the paper's
            // minutes-long native runs.
            app.passes = 150;
            app.cpu_per_dist = 60;
            Box::new(app)
        };
        let mut h = harness(w, mode);
        h.run_batch_to_completion(5000).unwrap();
        h.finish().metrics.elapsed
    };
    let stock = run(RunMode::Unreplicated);
    let repl = run(nilicon_mode());
    let overhead = repl as f64 / stock as f64 - 1.0;
    assert!(
        (0.05..1.2).contains(&overhead),
        "replication overhead in a plausible band, got {overhead:.2} ({stock} -> {repl})"
    );
}

#[test]
fn single_client_latency_inflates_under_nilicon() {
    // Table VI mechanism: buffering-until-ack inflates single-client latency
    // by roughly half an epoch plus the stop time.
    let run = |mode: RunMode| {
        let w = workloads::net_echo(1, None);
        let mut h = harness(w, mode);
        h.run_epochs(40).unwrap();
        h.finish().metrics.mean_latency()
    };
    let stock = run(RunMode::Unreplicated);
    let repl = run(nilicon_mode());
    assert!(
        stock < 5 * MILLISECOND,
        "stock echo is sub-ms-ish: {}ns",
        stock
    );
    assert!(
        repl > stock + 10 * MILLISECOND,
        "replicated latency includes buffering: {repl} vs {stock}"
    );
    assert!(repl < 80 * MILLISECOND, "but bounded by ~an epoch: {repl}");
}

fn rearm_mode() -> RunMode {
    let mut opts = OptimizationConfig::nilicon();
    opts.rearm = true;
    RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())))
}

#[test]
fn rearm_survives_two_sequential_primary_faults() {
    // EXTENSION (off in every paper row): after the first failover the
    // promoted container bootstraps a replacement backup, so a second
    // primary fault is survivable — two failovers, zero broken connections,
    // read-your-writes consistency across both.
    use nilicon::trace::{TraceEvent, Tracer};
    let w = workloads::redis(Scale::small(), 4, None);
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        rearm_mode(),
        ReplicationConfig::default(),
        w.parallelism,
    )
    .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_fault_at(400 * MILLISECOND);
    h.inject_fault_at(2 * SECOND);
    h.run_epochs(120).unwrap();
    assert_eq!(h.failovers(), 2, "both faults caused failovers");
    assert!(h.on_backup());
    let recs = ring.snapshot();
    let count = |pred: &dyn Fn(&TraceEvent) -> bool| recs.iter().filter(|r| pred(&r.kind)).count();
    assert_eq!(
        count(&|k| matches!(k, TraceEvent::Failover { .. })),
        2,
        "one Failover event per fault"
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEvent::OutputDiscard { .. })),
        2,
        "uncommitted output discarded at each failover"
    );
    assert!(
        count(&|k| matches!(k, TraceEvent::RearmStart { .. })) >= 2,
        "a bootstrap started after each failover"
    );
    assert!(
        count(&|k| matches!(k, TraceEvent::RearmComplete { .. })) >= 1,
        "redundancy was re-established before the second fault"
    );
    assert!(
        count(&|k| matches!(k, TraceEvent::BootstrapChunk { .. })) >= 1,
        "the bootstrap image streamed in chunks"
    );
    // The first RearmComplete must precede the second fault: the second
    // failover restored from the re-armed backup, not from thin air.
    let complete_t = recs
        .iter()
        .find(|r| matches!(r.kind, TraceEvent::RearmComplete { .. }))
        .expect("rearm completed")
        .t;
    assert!(complete_t < 2 * SECOND, "armed before the second fault");

    let r = h.finish();
    assert!(r.recovered, "both faults recovered");
    assert_eq!(r.failovers, 2);
    assert_eq!(r.unrecovered_faults, 0);
    assert_eq!(r.broken_connections, 0, "no RST reached any client");
    r.verify
        .expect("no lost updates across two failovers");
    assert!(
        r.metrics.requests_total > 10,
        "service continued throughout: {} requests",
        r.metrics.requests_total
    );
}

#[test]
fn rearm_bootstrap_survives_replacement_loss_and_retries() {
    // Fault DURING the bootstrap: the replacement backup dies mid-stream.
    // The promoted container keeps serving unreplicated, the half-assembled
    // image is dropped, and a later attempt (exponential backoff) succeeds.
    use nilicon::trace::{TraceEvent, Tracer};
    let w = workloads::redis(Scale::small(), 4, None);
    // Tiny chunks stretch the bootstrap across many epochs so the injected
    // backup fault reliably lands mid-stream.
    let cfg = ReplicationConfig {
        rearm_chunk_pages: 16,
        ..Default::default()
    };
    let mut h = RunHarness::new(w.spec, w.app, w.behavior, rearm_mode(), cfg, w.parallelism)
        .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_fault_at(400 * MILLISECOND);
    h.inject_backup_fault_at(1500 * MILLISECOND);
    h.run_epochs(200).unwrap();
    assert_eq!(h.failovers(), 1);
    assert!(h.rearmed(), "a retry eventually re-established redundancy");
    let recs = ring.snapshot();
    let starts: Vec<u32> = recs
        .iter()
        .filter_map(|r| match r.kind {
            TraceEvent::RearmStart { attempt } => Some(attempt),
            _ => None,
        })
        .collect();
    assert!(
        starts.len() >= 2,
        "the aborted bootstrap was retried: attempts {starts:?}"
    );
    assert!(
        starts.contains(&1),
        "the retry carries an incremented attempt counter: {starts:?}"
    );
    assert_eq!(
        recs.iter()
            .filter(|r| matches!(r.kind, TraceEvent::RearmComplete { .. }))
            .count(),
        1,
        "exactly one bootstrap completed"
    );
    let r = h.finish();
    assert!(r.recovered);
    assert_eq!(r.broken_connections, 0);
    r.verify
        .expect("consistency preserved across failover + aborted bootstrap");
}

#[test]
fn run_lasts_virtual_seconds_and_is_deterministic() {
    let run = || {
        let w = workloads::ssdb(Scale::small(), 4, None);
        let mut h = harness(w, nilicon_mode());
        h.run_epochs(35).unwrap();
        let r = h.finish();
        (
            r.metrics.elapsed,
            r.metrics.requests_total,
            r.metrics.avg_stop(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "bit-for-bit deterministic");
    assert!(a.0 > SECOND, "35 epochs ≈ >1s of virtual time");
}
