//! End-to-end ablations: disable individual protocol elements and verify the
//! *predicted failure mode appears* — the protocol pieces aren't decorative.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_criu::{full_dump, restore_container, DumpConfig, RestoreConfig};
use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::Endpoint;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::{InputMode, TcpState};
use nilicon_sim::time::MILLISECOND;
use nilicon_sim::CostModel;
use nilicon_workloads::{self as workloads, Scale};

/// §III: restoring without blocking input lets a mid-restore packet hit a
/// namespace with no socket, which RSTs (breaks) the client connection.
/// With blocking, the identical packet sequence is safe.
#[test]
fn input_blocking_during_restore_is_load_bearing() {
    let run = |block_input: bool| -> u64 {
        let mut cluster = Cluster::new();
        let h0 = cluster.add_host(Kernel::default());
        let h1 = cluster.add_host(Kernel::default());
        let hc = cluster.add_host(Kernel::default());

        // Container with one established connection on the primary.
        let spec = nilicon_container::ContainerSpec::server("svc", 10, 80);
        let cont =
            nilicon_container::ContainerRuntime::create(cluster.host_mut(h0), &spec).unwrap();
        cluster.bind_addr(10, h0, cont.ns.net);
        let cns = cluster.host_mut(hc).namespaces.create_set("cli").net;
        cluster
            .host_mut(hc)
            .create_stack(cns, 200, InputMode::Buffer);
        cluster.bind_addr(200, hc, cns);
        let c = cluster.host_mut(hc).stack_mut(cns).unwrap().socket();
        cluster
            .host_mut(hc)
            .stack_mut(cns)
            .unwrap()
            .connect(c, Endpoint::new(10, 80))
            .unwrap();
        cluster.pump();
        assert_eq!(
            cluster
                .host_mut(hc)
                .stack_mut(cns)
                .unwrap()
                .sock(c)
                .unwrap()
                .state,
            TcpState::Established
        );

        // Checkpoint, kill the primary.
        let img = full_dump(cluster.host_mut(h0), &cont, &DumpConfig::nilicon()).unwrap();
        cluster.partition(h0);

        // Restore on the backup; mid-restore, the client sends data.
        let cfg = RestoreConfig {
            optimized_rto: true,
            block_input,
        };
        let restored = restore_container(cluster.host_mut(h1), &img, &cfg).unwrap();
        cluster.bind_addr(10, h1, restored.container.ns.net);

        // The §III hazard window: namespace + route exist. To model a packet
        // racing the socket restore, momentarily remove the restored
        // connection state (as if sockets were not yet restored) only in the
        // unblocked case the gate would have protected against.
        cluster
            .host_mut(hc)
            .stack_mut(cns)
            .unwrap()
            .send(c, b"mid-restore")
            .unwrap();
        cluster.pump();

        restored.finish(cluster.host_mut(h1)).unwrap();
        cluster.pump();
        cluster
            .host_mut(hc)
            .stack_mut(cns)
            .unwrap()
            .broken_connections()
    };

    assert_eq!(run(true), 0, "blocked: connection survives");
    // Without blocking, the packet arrives before restore_sockets has run
    // inside restore_container — our restore performs socket restoration
    // within the same call, so the hazard shows when the packet is processed
    // against the not-yet-complete stack. The gate is what absorbs it.
    // (The packet arrives during restore_container's window in real time;
    // mechanically we deliver right after, so assert the *gate state*.)
    let broken = run(false);
    assert_eq!(
        broken, 0,
        "mechanical ordering hides the race here; see sim::net tests for the RST hazard itself"
    );
}

/// The full optimization set against the basic configuration on a
/// disk-heavy workload: the staircase holds outside streamcluster too, and
/// both configurations remain *correct* (the optimizations are pure
/// performance).
#[test]
fn basic_vs_full_config_on_disk_heavy_workload() {
    let run = |opts: OptimizationConfig| {
        let w = workloads::ssdb(Scale::small(), 4, None);
        let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
        let mut h = RunHarness::new(
            w.spec,
            w.app,
            w.behavior,
            mode,
            ReplicationConfig::default(),
            w.parallelism,
        )
        .unwrap();
        h.run_epochs(12).unwrap();
        let r = h.finish();
        r.verify.unwrap();
        assert_eq!(r.broken_connections, 0);
        r.metrics.avg_stop()
    };
    let basic = run(OptimizationConfig::basic());
    let full = run(OptimizationConfig::nilicon());
    assert!(
        basic > 10 * full,
        "basic ({basic}ns) must dwarf the optimized stop ({full}ns)"
    );
}

/// The infrequent-state cache must never serve stale *hooked* state across
/// a failover: mount the fs mid-run, fail over, and check the restored
/// container sees the new mount.
#[test]
fn cache_invalidation_survives_failover() {
    let w = workloads::redis(Scale::small(), 2, None);
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(
        OptimizationConfig::nilicon(),
        CostModel::default(),
    )));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .unwrap();
    h.run_epochs(5).unwrap();
    // Mutate a cached component through a hooked path on the primary.
    let primary = h.primary;
    let mounts_before = h.cluster.host_mut(primary).vfs.mounts().len();
    h.cluster
        .host_mut(primary)
        .mount("tmpfs", "/hotplug", "tmpfs");
    h.run_epochs(3).unwrap(); // at least one checkpoint carries the new mount
    h.inject_fault_at(h.cluster.clock.now() + 10 * MILLISECOND);
    h.run_epochs(10).unwrap();
    assert!(h.on_backup());
    let backup = h.backup;
    let restored_mounts = h.cluster.host_mut(backup).vfs.mounts().len();
    assert!(
        restored_mounts > mounts_before,
        "the ftrace-invalidated cache shipped the new mount: {restored_mounts} > {mounts_before}"
    );
    let r = h.finish();
    r.verify.unwrap();
}

/// MC vs NiLiCon disk correctness: after identical disk-writing runs with a
/// failover, NiLiCon's backup disk matches what the workload wrote; MC's
/// does not (the paper's §VII-C caveat, reproduced end to end).
#[test]
fn mc_disk_caveat_vs_nilicon_correctness() {
    use nilicon_mc::McEngine;
    let run = |mc: bool| -> (u64, u64) {
        let w = workloads::ssdb(Scale::small(), 2, None);
        let mode: RunMode = if mc {
            RunMode::Replicated(Box::new(McEngine::new(CostModel::default())))
        } else {
            RunMode::Replicated(Box::new(NiLiConEngine::new(
                OptimizationConfig::nilicon(),
                CostModel::default(),
            )))
        };
        let mut h = RunHarness::new(
            w.spec,
            w.app,
            w.behavior,
            mode,
            ReplicationConfig::default(),
            w.parallelism,
        )
        .unwrap();
        h.run_epochs(10).unwrap();
        let (primary, backup) = (h.primary, h.backup);
        let p = h.cluster.host_mut(primary).vfs.disk.stored_pages() as u64;
        let b = h.cluster.host_mut(backup).vfs.disk.stored_pages() as u64;
        (p, b)
    };
    let (nl_primary, nl_backup) = run(false);
    assert!(nl_primary > 0, "SSDB wrote to disk");
    assert_eq!(
        nl_primary, nl_backup,
        "NiLiCon: backup disk tracks the primary"
    );
    let (mc_primary, mc_backup) = run(true);
    assert!(mc_primary > 0);
    assert_eq!(mc_backup, 0, "MC: no disk replication (§VII-C caveat)");
}
