//! End-to-end equivalence of the erasure-coded placement path.
//!
//! The k-of-n placement changes *where* committed state lives (striped as
//! fragments across n replicas), not *what* it is: after any number of
//! committed epochs, **any k-subset** of the n fragment stores must
//! reconstruct a committed image byte-identical to every other k-subset's —
//! and identical to what a plain single-backup NiLiCon run holds after the
//! same write script. Property-tested across placements, epoch counts, and
//! randomized write scripts (the `tests/cow_equivalence.rs` pattern).

use nilicon::{Checkpointer, NiLiConEngine, OptimizationConfig, PlacementEngine};
use nilicon_container::{Container, ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_criu::CheckpointImage;
use nilicon_sim::kernel::Kernel;
use proptest::prelude::*;

/// Deterministic write script: `writes_per_epoch` page writes per epoch,
/// page index and value derived from (seed, epoch, i).
fn script(p: &mut Kernel, c: &Container, seed: u64, epoch: u64, writes_per_epoch: u64) {
    for i in 0..writes_per_epoch {
        let x = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(epoch * 131 + i * 17);
        let page = x % 40;
        let val = (x >> 8) as u8;
        p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val, val ^ 0x5A])
            .unwrap();
    }
}

/// Run `epochs` committed epochs of the script under a (k,n) placement and
/// return the engine for reconstruction probes.
fn run_placement(k: u32, n: u32, seed: u64, epochs: u64) -> (PlacementEngine, Kernel, Kernel) {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let c = ContainerRuntime::create(&mut p, &ContainerSpec::server("redis", 10, 6379)).unwrap();
    let mut opts = OptimizationConfig::nilicon();
    opts.backups = n;
    opts.quorum = k;
    let mut e = PlacementEngine::new(opts, p.costs.clone()).unwrap();
    e.prepare(&mut p, &c).unwrap();
    for epoch in 1..=epochs {
        script(&mut p, &c, seed, epoch, 6);
        e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        e.commit(&mut b, epoch).unwrap();
    }
    (e, p, b)
}

/// Reference committed image: the same script under the paper's
/// single-backup NiLiCon engine.
fn run_reference(seed: u64, epochs: u64) -> CheckpointImage {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let c = ContainerRuntime::create(&mut p, &ContainerSpec::server("redis", 10, 6379)).unwrap();
    let mut e = NiLiConEngine::new(OptimizationConfig::nilicon(), p.costs.clone());
    e.prepare(&mut p, &c).unwrap();
    for epoch in 1..=epochs {
        script(&mut p, &c, seed, epoch, 6);
        e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        e.commit(&mut b, epoch).unwrap();
    }
    e.agent.materialize().unwrap()
}

fn assert_images_equal(a: &CheckpointImage, b: &CheckpointImage, what: &str) {
    assert_eq!(a.pages.len(), b.pages.len(), "{what}: page counts");
    for (x, y) in a.pages.iter().zip(b.pages.iter()) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{what}: page keys");
        assert_eq!(x.2, y.2, "{what}: page {:?}/{:#x} bytes", x.0, x.1);
    }
}

/// All k-subsets of 0..n (n ≤ 5 here, so the counts stay tiny).
fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any k of the n fragment stores reconstruct the same committed image,
    /// byte-identical to the single-backup reference, across ≥10 epochs.
    #[test]
    fn any_k_subset_matches_single_backup(
        seed in 0u64..1_000_000,
        epochs in 10u64..16,
        placement in 0usize..3,
    ) {
        let (k, n) = [(1u32, 2u32), (2, 3), (3, 5)][placement];
        let (mut e, _p, _b) = run_placement(k, n, seed, epochs);
        let reference = run_reference(seed, epochs);
        prop_assert!(!reference.pages.is_empty());
        for subset in k_subsets(n as usize, k as usize) {
            let img = e.reconstruct_committed(&subset).unwrap();
            assert_images_equal(&img, &reference, &format!("(k={k},n={n}) subset {subset:?}"));
        }
    }
}

/// Losing n-k replicas (any of them) never loses committed state.
#[test]
fn max_tolerated_loss_still_reconstructs() {
    let (mut e, _p, _b) = run_placement(2, 3, 7, 12);
    let reference = e.reconstruct_committed(&[0, 1]).unwrap();
    e.fail_replica(0).unwrap();
    let img = e.reconstruct_committed(&[1, 2]).unwrap();
    assert_images_equal(&img, &reference, "after replica-0 loss");
}

/// The (1,2) placement is exactly the paper's mirrored warm backup: both
/// replicas hold full page copies.
#[test]
fn mirroring_degenerate_holds_full_copies() {
    let (mut e, _p, _b) = run_placement(1, 2, 3, 10);
    let a = e.reconstruct_committed(&[0]).unwrap();
    let b = e.reconstruct_committed(&[1]).unwrap();
    assert_images_equal(&a, &b, "(1,2) mirrors");
    let reference = run_reference(3, 10);
    assert_images_equal(&a, &reference, "(1,2) vs single backup");
}
