//! End-to-end equivalence of the delta-encoded transfer path.
//!
//! The wire format is an optimization, not a semantic: with
//! `delta_transfer` enabled the backup's committed image must be
//! byte-identical to the full-page path after every epoch, and the state a
//! failover restores must match bit-for-bit — including an uncommitted
//! tail epoch that both paths have to discard.

use nilicon::{Checkpointer, NiLiConEngine, OptimizationConfig};
use nilicon_container::{Container, ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::PAGE_SIZE;

/// Drive `epochs` checkpoint/commit cycles of a fixed write script, fail
/// over, and return (total wire bytes, restored memory snapshot).
///
/// The script exercises every page class each run: a hot page taking
/// single-byte edits (sparse deltas), fresh pages (full), a page rewritten
/// densely, and a page scrubbed back to zeros (zero elision).
fn run_script(delta: bool, epochs: u64, script: &dyn Fn(&mut Kernel, &Container, u64)) -> (u64, Vec<u8>) {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let mut spec = ContainerSpec::server("redis", 10, 6379);
    spec.processes = 3;
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut opts = OptimizationConfig::nilicon();
    opts.delta_transfer = delta;
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).unwrap();

    let mut wire_bytes = 0u64;
    for epoch in 1..=epochs {
        script(&mut p, &c, epoch);
        let o = e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        wire_bytes += o.state_bytes;
        e.commit(&mut b, epoch).unwrap();
    }
    // One more checkpoint that never gets acked: the failover must discard
    // it identically on both paths.
    script(&mut p, &c, epochs + 1);
    e.checkpoint(&mut p, &mut b, &c, epochs + 1).unwrap();

    let (restored, _report) = e.failover(&mut b).unwrap();
    restored.finish(&mut b).unwrap();

    // Snapshot every heap page the script can have touched, across all
    // worker pids (the keep-alive process maps a single page and is never
    // written by the scripts).
    let mut snapshot = Vec::new();
    for pid in restored.container.workers.clone() {
        for page in 0..64u64 {
            let mut buf = vec![0u8; PAGE_SIZE];
            if b.mem_read(pid, MemLayout::heap_page(page), &mut buf).is_ok() {
                snapshot.extend_from_slice(&buf);
            }
        }
    }
    (wire_bytes, snapshot)
}

#[test]
fn delta_committed_state_is_byte_identical_across_ten_epochs_and_failover() {
    let script = |k: &mut Kernel, c: &Container, epoch: u64| {
        let pid = c.init_pid();
        // Sparse churn: one counter word on a hot page, every epoch.
        k.mem_write(pid, MemLayout::heap(8), &epoch.to_le_bytes()).unwrap();
        // Growth: one brand-new page per epoch (ships full once).
        k.mem_write(pid, MemLayout::heap_page(10 + epoch), &[epoch as u8; 128])
            .unwrap();
        // Dense churn: rewrite a whole buffer page.
        k.mem_write(pid, MemLayout::heap_page(2), &vec![epoch as u8 | 1; PAGE_SIZE])
            .unwrap();
        // Scrub: page 3 alternates between data and all-zeros.
        let fill = if epoch.is_multiple_of(2) { 0u8 } else { 0xAB };
        k.mem_write(pid, MemLayout::heap_page(3), &vec![fill; PAGE_SIZE])
            .unwrap();
    };

    let (full_bytes, full_mem) = run_script(false, 10, &script);
    let (delta_bytes, delta_mem) = run_script(true, 10, &script);

    assert!(!full_mem.is_empty(), "snapshot captured restored memory");
    assert_eq!(
        full_mem, delta_mem,
        "restored memory must be bit-for-bit identical across wire formats"
    );
    assert!(
        delta_bytes < full_bytes,
        "delta path ships fewer wire bytes: {delta_bytes} vs {full_bytes}"
    );
}

#[test]
fn delta_equivalence_holds_under_randomized_multi_pid_writes() {
    // A deterministic LCG scatters writes of varied sizes over all pids and
    // the first 32 heap pages — no page-class structure, just noise.
    let script = |k: &mut Kernel, c: &Container, epoch: u64| {
        let mut state = epoch.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let pids = &c.workers;
        for _ in 0..24 {
            let pid = pids[next() as usize % pids.len()];
            let page = next() % 32;
            let off = next() % (PAGE_SIZE as u64 - 64);
            let len = 1 + next() as usize % 64;
            let byte = next() as u8;
            k.mem_write(pid, MemLayout::heap_page(page) + off, &vec![byte; len])
                .unwrap();
        }
    };

    let (full_bytes, full_mem) = run_script(false, 12, &script);
    let (delta_bytes, delta_mem) = run_script(true, 12, &script);

    assert!(!full_mem.is_empty());
    assert_eq!(full_mem, delta_mem, "random write pattern diverged");
    assert!(
        delta_bytes < full_bytes,
        "re-dirtied pages compress: {delta_bytes} vs {full_bytes}"
    );
}
