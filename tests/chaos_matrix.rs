//! Tier-1 chaos coverage: the CI smoke scenario (short partition + heal →
//! recovered, byte-identical committed state) and the fencing guarantees —
//! a false suspicion under delay spikes must not promote while the lease
//! holder is alive, and a fenced promotion must never overlap a valid lease.

use nilicon_bench::chaos::{run_cell, run_state_cell, scenarios, Outcome, Scenario};
use nilicon_sim::net::{ChaosSchedule, FaultKind};
use nilicon_sim::MILLISECOND;

const MS: u64 = MILLISECOND;

fn catalog(name: &str) -> Scenario {
    scenarios(0)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("catalog misses {name}"))
}

/// The CI smoke cell: a 60 ms partition heals, the stalled epochs catch up,
/// and the final heap replays byte-identically.
#[test]
fn smoke_partition_heal_recovers_byte_identical() {
    let cell = run_state_cell(&catalog("partition-brief"), 30);
    assert_eq!(cell.outcome, Outcome::Recovered, "err: {:?}", cell.error);
    assert!(cell.state_ok, "committed state must replay byte-identically");
    assert!(
        cell.stats.stalled_epochs > 0,
        "the partition must have cut at least one transfer"
    );
    assert!(!cell.stats.split_brain);
}

/// Delay spikes long enough to trip the 90 ms detector but not kill the
/// primary: the suspicion must be rescinded by the late heartbeat (the lease
/// gate buys the time), with zero failovers.
#[test]
fn false_suspicion_under_delay_does_not_promote_a_live_primary() {
    let sc = Scenario {
        name: "delay-suspicion",
        // One-way 120 ms spike for a single beat interval: the delivery gap
        // exceeds the 90 ms detection threshold, then beats resume.
        schedule: ChaosSchedule::default().window(
            400 * MS,
            430 * MS,
            FaultKind::DelaySpike { extra: 120 * MS },
        ),
        ..Default::default()
    };
    let cell = run_state_cell(&sc, 40);
    assert_eq!(cell.outcome, Outcome::Recovered, "err: {:?}", cell.error);
    assert_eq!(cell.failovers, 0, "a live primary must not be demoted");
    assert!(
        cell.stats.false_suspicions >= 1,
        "the 100ms delay must trip (and rescind) a suspicion: {:?}",
        cell.stats
    );
    assert!(cell.state_ok);
}

/// A partition outliving the lease promotes the backup exactly once, fenced:
/// no split-brain, state intact.
#[test]
fn long_partition_promotes_fenced_without_split_brain() {
    let cell = run_cell(&catalog("partition-long"), 0, 75);
    assert_eq!(cell.outcome, Outcome::Recovered, "err: {:?}", cell.state.error);
    assert_eq!(cell.state.failovers, 1, "fenced promotion must have happened");
    assert!(!cell.state.stats.split_brain);
    assert!(!cell.service.stats.split_brain);
    assert!(cell.state.state_ok && cell.service.service_ok);
}
