//! End-to-end equivalence of the hybrid checkpoint + replay path
//! (`OptimizationConfig::hybrid_replay`, DESIGN.md §11).
//!
//! Replay changes *when* output is released (log commit instead of epoch
//! ack) and *how* a failover recovers the tail (re-execution instead of
//! rollback), never *what* state the service ends in: replaying the sealed
//! log tail onto the last committed checkpoint must reproduce the live
//! primary byte-for-byte — across randomized request streams, composed with
//! `--delta --cow` on the single-backup engine and with a `--backups 3
//! --quorum 2` placement — and a failover that catches the log mid-ship
//! (partial tail) must fall back to the plain last-checkpoint path.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::trace::Tracer;
use nilicon::{
    replay_tail, Checkpointer, NiLiConEngine, OptimizationConfig, PlacementEngine,
    ReplicationConfig, TraceEvent,
};
use nilicon_container::{
    Application, Container, ContainerRuntime, ContainerSpec, GuestCtx, MemLayout, RequestOutcome,
};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::replay::{content_hash, ReplayEvent};
use nilicon_sim::{CostModel, SimResult, MILLISECOND, PAGE_SIZE};
use nilicon_workloads::{self as workloads, Scale};
use proptest::prelude::*;

/// Heap pages the server touches (and the snapshots cover).
const HEAP_PAGES: u64 = 16;

/// Deterministic hash-chain server: every byte of state lives in the guest
/// heap, so re-executing the same payloads on a restored checkpoint must
/// reproduce the same responses (replay verifies each against the recorded
/// hash) and the same memory.
struct MixServer;

impl Application for MixServer {
    fn name(&self) -> &str {
        "mix"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        ctx.heap_write(0, &0u64.to_le_bytes())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        ctx.cpu(40_000);
        let mut buf = [0u8; 8];
        ctx.heap_read(0, &mut buf)?;
        let n = u64::from_le_bytes(buf)
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(content_hash(req));
        ctx.heap_write(0, &n.to_le_bytes())?;
        // Dirty a payload-dependent page so delta/COW/fragment encoding all
        // have real work to get wrong.
        let page = 1 + n % (HEAP_PAGES - 1);
        ctx.heap_write(page * PAGE_SIZE as u64, &[n as u8; 512])?;
        Ok(RequestOutcome {
            response: n.to_le_bytes().to_vec(),
        })
    }
}

/// Pseudo-random request payload for `(seed, epoch, i)` — pure, so both
/// engine runs see the identical stream.
fn payload(seed: u64, epoch: u64, i: u64) -> Vec<u8> {
    let x = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xD1B5_4A32_D192_ED03);
    let len = 1 + (x % 24) as usize;
    (0..len).map(|j| (x >> (j % 8)) as u8).collect()
}

/// Byte snapshot of every worker heap (the cow_equivalence.rs pattern).
fn snapshot(k: &mut Kernel, c: &Container) -> Vec<u8> {
    let mut out = Vec::new();
    for &pid in &c.workers {
        for page in 0..HEAP_PAGES {
            let mut buf = vec![0u8; PAGE_SIZE];
            if k.mem_read(pid, MemLayout::heap_page(page), &mut buf).is_ok() {
                out.extend_from_slice(&buf);
            }
        }
    }
    out
}

/// Which engine carries the log.
#[derive(Clone, Copy)]
enum Engine {
    /// Single warm backup, composed with `--delta --cow`.
    NiliconDeltaCow,
    /// Erasure-coded `--backups 3 --quorum 2` placement.
    Placement3of2,
}

/// Everything one record/failover/replay run produced.
struct ReplayRun {
    /// Primary heap right after the last *committed* checkpoint.
    committed: Vec<u8>,
    /// Primary heap after the uncheckpointed tail epochs (the state a
    /// successful replay must reproduce).
    live: Vec<u8>,
    /// Backup heap after failover (+ replay, if the tail survived).
    recovered: Vec<u8>,
    /// Divergence reason, if replay fell back.
    diverged: Option<String>,
    /// Events re-executed by the replay.
    events: u64,
}

/// Record `epochs` committed epochs plus `tail_epochs` sealed-but-never-
/// checkpointed epochs of the request stream, fail over, replay. With
/// `fail_after_chunks` the log link dies after that many shipped chunks
/// (one chunk per request here), losing the rest of the tail and its seal.
fn run_replay(
    engine: Engine,
    seed: u64,
    epochs: u64,
    reqs: u64,
    tail_epochs: u64,
    fail_after_chunks: Option<u64>,
) -> ReplayRun {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let mut spec = ContainerSpec::server("mix", 10, 7100);
    spec.heap_pages = HEAP_PAGES;
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut app = MixServer;
    {
        let mut ctx = GuestCtx::new(&mut p, c.workers[0], 0);
        app.init(&mut ctx).unwrap();
    }

    let mut opts = OptimizationConfig::nilicon();
    opts.hybrid_replay = true;
    let mut e: Box<dyn Checkpointer> = match engine {
        Engine::NiliconDeltaCow => {
            opts.delta_transfer = true;
            opts.cow_checkpoint = true;
            let mut e = NiLiConEngine::new(opts, p.costs.clone());
            e.log_fail_after_chunks = fail_after_chunks;
            Box::new(e)
        }
        Engine::Placement3of2 => {
            opts.backups = 3;
            opts.quorum = 2;
            let mut e = PlacementEngine::new(opts, p.costs.clone()).unwrap();
            e.log_fail_after_chunks = fail_after_chunks;
            Box::new(e)
        }
    };
    e.prepare(&mut p, &c).unwrap();

    // The record half, exactly in harness order: ship each request's event
    // as its own chunk while the epoch runs, checkpoint at the boundary,
    // seal, commit (which prunes the logs the checkpoint now covers).
    let mut at = 0u64;
    let mut exec = |p: &mut Kernel, app: &mut MixServer, epoch: u64| -> Vec<ReplayEvent> {
        (0..reqs)
            .map(|i| {
                let req = payload(seed, epoch, i);
                at += 1;
                let outcome = {
                    let mut ctx = GuestCtx::new(p, c.workers[0], at);
                    app.handle_request(&mut ctx, &req).unwrap()
                };
                ReplayEvent::Request {
                    pid: c.workers[0],
                    at,
                    payload: req,
                    response_hash: content_hash(&outcome.response),
                    response_len: outcome.response.len() as u32,
                }
            })
            .collect()
    };
    for epoch in 1..=epochs {
        for ev in exec(&mut p, &mut app, epoch) {
            e.ship_log(&mut p, epoch, std::slice::from_ref(&ev)).unwrap();
        }
        e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        e.seal_log(epoch).unwrap();
        e.commit(&mut b, epoch).unwrap();
    }
    let committed = snapshot(&mut p, &c);

    // The tail: sealed logs past the last checkpoint — the primary dies
    // before the next checkpoint ever ships.
    for te in 1..=tail_epochs {
        let epoch = epochs + te;
        for ev in exec(&mut p, &mut app, epoch) {
            e.ship_log(&mut p, epoch, std::slice::from_ref(&ev)).unwrap();
        }
        e.seal_log(epoch).unwrap();
    }
    let live = snapshot(&mut p, &c);

    let (restored, _report) = e.failover(&mut b).unwrap();
    restored.finish(&mut b).unwrap();
    let mut rapp = MixServer;
    {
        let mut ctx = GuestCtx::new(&mut b, restored.container.workers[0], 0);
        rapp.recover(&mut ctx).unwrap();
    }
    let tail = e.take_replay_tail().unwrap();
    let out = replay_tail(&mut b, &restored.container, &mut rapp, &tail).unwrap();
    let recovered = snapshot(&mut b, &restored.container);

    ReplayRun {
        committed,
        live,
        recovered,
        diverged: out.diverged,
        events: out.events,
    }
}

proptest! {
    // Each case is two full record/failover/replay runs; keep it moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole equivalence property: for any request stream, replaying
    /// the sealed tail reproduces the live primary byte-for-byte — output
    /// equality is enforced inside `replay_tail` (every re-executed response
    /// must hash to the recorded value), state equality here — on both
    /// log-carrying engines.
    #[test]
    fn replayed_state_is_byte_identical_to_live_execution(
        seed in any::<u64>(),
        epochs in 10u64..13,
        reqs in 1u64..5,
        tail_epochs in 1u64..4,
    ) {
        let a = run_replay(Engine::NiliconDeltaCow, seed, epochs, reqs, tail_epochs, None);
        prop_assert!(a.diverged.is_none(), "delta+cow diverged: {:?}", a.diverged);
        prop_assert_eq!(a.events, tail_epochs * reqs, "whole tail re-executed");
        prop_assert!(!a.live.is_empty());
        prop_assert_eq!(&a.recovered, &a.live, "delta+cow replay != live primary");
        prop_assert!(a.committed != a.live, "the tail must change state");

        let b = run_replay(Engine::Placement3of2, seed, epochs, reqs, tail_epochs, None);
        prop_assert!(b.diverged.is_none(), "placement diverged: {:?}", b.diverged);
        prop_assert_eq!(&b.recovered, &a.live, "3-of-2 placement replay != live primary");
    }
}

/// Failover mid-log: the link dies one chunk into the tail epoch, so the
/// backup holds an unsealed prefix. The seal is the completeness marker —
/// without it the replay must refuse the whole epoch (`"partial"`) and the
/// failover degrades to the plain NiLiCon last-checkpoint path.
#[test]
fn partial_tail_falls_back_to_the_last_committed_checkpoint() {
    for engine in [Engine::NiliconDeltaCow, Engine::Placement3of2] {
        // 10 committed epochs × 3 chunks land; the link dies after the
        // tail's first chunk (chunk 31), losing chunks 32, 33 and the seal.
        let r = run_replay(engine, 0xFEED, 10, 3, 1, Some(31));
        assert_eq!(r.diverged.as_deref(), Some("partial"));
        assert_eq!(r.events, 0, "a partial tail is rejected without executing");
        assert_eq!(
            r.recovered, r.committed,
            "fallback must restore exactly the last committed checkpoint"
        );
    }
}

/// Harness e2e: a primary fault mid-epoch under `--replay`. The truncated
/// fault epoch's log is shipped and sealed up to the fault, the backup
/// replays it, and the service continues with read-your-writes intact — the
/// fault no longer rounds recovery down to the previous checkpoint.
#[test]
fn harness_fault_mid_epoch_replays_the_sealed_tail() {
    let w = workloads::redis(Scale::small(), 4, None);
    let mut opts = OptimizationConfig::nilicon();
    opts.hybrid_replay = true;
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_fault_at(415 * MILLISECOND);
    h.run_epochs(40).unwrap();
    let r = h.finish();
    assert!(r.recovered, "failover must succeed");
    assert_eq!(r.failovers, 1);
    assert_eq!(r.broken_connections, 0, "no RST may reach a client");
    r.verify.expect("read-your-writes across the replayed failover");

    let recs = ring.snapshot();
    let replayed = recs.iter().find_map(|rec| match &rec.kind {
        TraceEvent::ReplayComplete { events, .. } => Some(*events),
        _ => None,
    });
    assert!(
        recs.iter()
            .any(|rec| matches!(rec.kind, TraceEvent::ReplayStart { .. })),
        "failover must attempt the replay path"
    );
    assert!(
        replayed.is_some_and(|ev| ev > 0),
        "the sealed mid-epoch tail must replay events: {replayed:?}"
    );
    assert!(
        !recs
            .iter()
            .any(|rec| matches!(rec.kind, TraceEvent::ReplayDiverge { .. })),
        "a cleanly sealed tail must not diverge"
    );
}

/// Harness e2e for the fallback: the log link dies mid-run (engine loss
/// injection), so the fault epoch's log on the backup is a seal-less
/// partial prefix and the failover must take the last-checkpoint path,
/// announced by `ReplayDiverge("partial")`.
///
/// The run deliberately does NOT assert workload verification: between the
/// link death and the fault the primary keeps releasing output against
/// commit confirmations that can no longer arrive — the bounded
/// release/ack race window HyCoR accepts (DESIGN.md §11) — so a client may
/// hold responses the fallback state never re-serves. Recovery itself must
/// still be clean: one failover, no broken connections.
#[test]
fn harness_partial_log_falls_back_and_recovers() {
    let w = workloads::redis(Scale::small(), 4, None);
    let mut opts = OptimizationConfig::nilicon();
    opts.hybrid_replay = true;
    let mut engine = NiLiConEngine::new(opts, CostModel::default());
    // Tuned so the link dies inside the fault epoch (which ships chunks
    // 25–27 of this deterministic run): 25 and 26 land, 27 and the seal are
    // lost → the backup holds a seal-less partial prefix.
    engine.log_fail_after_chunks = Some(26);
    let mode = RunMode::Replicated(Box::new(engine));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_fault_at(415 * MILLISECOND);
    h.run_epochs(40).unwrap();
    let r = h.finish();
    assert!(r.recovered, "fallback recovery must succeed");
    assert_eq!(r.failovers, 1);
    assert_eq!(r.broken_connections, 0);

    let recs = ring.snapshot();
    let reason = recs.iter().find_map(|rec| match &rec.kind {
        TraceEvent::ReplayDiverge { reason } => Some(reason.clone()),
        _ => None,
    });
    assert_eq!(
        reason.as_deref(),
        Some("partial"),
        "the seal-less tail must force the last-checkpoint fallback"
    );
    assert!(
        !recs
            .iter()
            .any(|rec| matches!(rec.kind, TraceEvent::ReplayComplete { .. })),
        "nothing may be replayed past a partial tail"
    );
}
