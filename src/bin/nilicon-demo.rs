//! `nilicon-demo` — drive any benchmark under any engine from the command
//! line.
//!
//! ```sh
//! cargo run --release --bin nilicon-demo -- --workload redis --epochs 60
//! cargo run --release --bin nilicon-demo -- --workload node --engine mc
//! cargo run --release --bin nilicon-demo -- --workload ssdb --fault-at-ms 500
//! cargo run --release --bin nilicon-demo -- --workload streamcluster --engine stock
//! cargo run --release --bin nilicon-demo -- --list
//! ```

use nilicon_repro::core::harness::{RunHarness, RunMode};
use nilicon_repro::core::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_repro::mc::McEngine;
use nilicon_repro::sim::CostModel;
use nilicon_repro::workloads::{self, Scale, StreamclusterApp, SwaptionsApp, Workload};

const WORKLOADS: &[&str] = &[
    "redis",
    "ssdb",
    "node",
    "lighttpd",
    "djcms",
    "streamcluster",
    "swaptions",
    "net",
    "stress-fs",
];

struct Args {
    workload: String,
    engine: String,
    epochs: u64,
    clients: usize,
    fault_at_ms: Vec<u64>,
    rearm: bool,
    scale: String,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "redis".into(),
        engine: "nilicon".into(),
        epochs: 60,
        clients: 4,
        fault_at_ms: Vec::new(),
        rearm: false,
        scale: "small".into(),
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--workload" | "-w" => args.workload = val("--workload")?,
            "--engine" | "-e" => args.engine = val("--engine")?,
            "--epochs" | "-n" => {
                args.epochs = val("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--clients" | "-c" => {
                args.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--fault-at-ms" | "-f" => args.fault_at_ms.push(
                val("--fault-at-ms")?
                    .parse()
                    .map_err(|e| format!("--fault-at-ms: {e}"))?,
            ),
            "--rearm" => args.rearm = true,
            "--scale" | "-s" => args.scale = val("--scale")?,
            "--trace" | "-t" => args.trace = Some(val("--trace")?),
            "--list" => {
                println!("workloads: {}", WORKLOADS.join(", "));
                println!("engines  : nilicon, mc, colo, stock");
                println!("scales   : small, bench, paper");
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: nilicon-demo [--workload NAME] [--engine nilicon|mc|colo|stock] \
                     [--epochs N] [--clients N] [--fault-at-ms T]... [--rearm] \
                     [--scale small|bench|paper] [--trace FILE.jsonl] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn build_workload(name: &str, scale: Scale, clients: usize) -> Result<Workload, String> {
    Ok(match name {
        "redis" => workloads::redis(scale, clients, None),
        "ssdb" => workloads::ssdb(scale, clients, None),
        "node" => workloads::node(scale, clients.max(16), None),
        "lighttpd" => workloads::lighttpd(4, clients.max(8), None),
        "djcms" => workloads::djcms(clients.max(8), None),
        "streamcluster" => {
            let mut w = workloads::streamcluster(scale, 4);
            let mut app = StreamclusterApp::new(scale);
            app.passes = u32::MAX;
            w.app = Box::new(app);
            w
        }
        "swaptions" => {
            let mut w = workloads::swaptions(scale, 4);
            let mut app = SwaptionsApp::new(scale);
            app.swaptions = u32::MAX;
            w.app = Box::new(app);
            w
        }
        "net" => workloads::net_echo(clients, None),
        "stress-fs" => workloads::stress_fs(256 * 1024, None),
        other => {
            return Err(format!(
                "unknown workload {other}; known: {}",
                WORKLOADS.join(", ")
            ))
        }
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let scale = match args.scale.as_str() {
        "small" => Scale::small(),
        "bench" => Scale::bench(),
        "paper" => Scale::paper(),
        other => {
            eprintln!("error: unknown scale {other}");
            std::process::exit(2);
        }
    };
    let w = match build_workload(&args.workload, scale, args.clients) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mode = match args.engine.as_str() {
        "nilicon" => {
            let mut opts = OptimizationConfig::nilicon();
            opts.rearm = args.rearm;
            RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())))
        }
        "mc" => RunMode::Replicated(Box::new(McEngine::new(CostModel::default()))),
        "colo" => RunMode::Replicated(Box::new(nilicon_repro::colo::ColoEngine::new(
            CostModel::default(),
            0.05,
        ))),
        "stock" => RunMode::Unreplicated,
        other => {
            eprintln!("error: unknown engine {other} (nilicon|mc|colo|stock)");
            std::process::exit(2);
        }
    };

    println!(
        "running {} under {} for {} epochs (scale {}, {} clients)...",
        args.workload, args.engine, args.epochs, args.scale, args.clients
    );
    let name = w.name;
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness construction");
    if let Some(path) = &args.trace {
        let tracer =
            nilicon_repro::core::trace::Tracer::to_file(path).expect("create trace file");
        tracer.event_at(
            nilicon_repro::core::trace::TraceEvent::RunStart {
                name: name.to_string(),
                mode: args.engine.clone(),
            },
            0,
        );
        h.set_tracer(tracer);
        println!("tracing epoch phases to {path} (see OBSERVABILITY.md)");
    }
    for &ms in &args.fault_at_ms {
        h.inject_fault_at(ms * 1_000_000);
        println!("fail-stop fault scheduled at t={ms}ms");
    }
    h.run_epochs(args.epochs).expect("run");
    let failed_over = h.on_backup();
    let r = h.finish();

    println!("\n== {name} results ==");
    println!(
        "virtual time        : {:.2} s",
        r.metrics.elapsed as f64 / 1e9
    );
    println!(
        "requests / steps    : {} / {}",
        r.metrics.requests_total, r.metrics.steps_total
    );
    println!(
        "avg stop time       : {:.2} ms",
        r.metrics.avg_stop() as f64 / 1e6
    );
    println!("avg dirty pages     : {:.0}", r.metrics.avg_dirty_pages());
    println!(
        "mean latency        : {:.2} ms",
        r.metrics.mean_latency() as f64 / 1e6
    );
    println!(
        "backup core util    : {:.2}",
        r.metrics.backup_utilization()
    );
    if failed_over {
        let fo = r.failover.expect("failover report");
        println!(
            "failover            : detected in {:.0} ms, recovered in {:.0} ms \
             (restore {:.0} + arp {:.0} + tcp {:.0} + misc {:.0})",
            r.detection_latency.unwrap_or(0) as f64 / 1e6,
            fo.total() as f64 / 1e6,
            fo.restore as f64 / 1e6,
            fo.arp as f64 / 1e6,
            fo.tcp as f64 / 1e6,
            fo.others as f64 / 1e6,
        );
        if r.failovers > 1 {
            println!(
                "failovers survived  : {} (re-replication kept the run fault-tolerant)",
                r.failovers
            );
        }
    }
    if r.unrecovered_faults > 0 {
        println!("unrecovered faults  : {}", r.unrecovered_faults);
    }
    println!("broken connections  : {}", r.broken_connections);
    match r.verify {
        Ok(()) => println!("consistency         : OK"),
        Err(e) => {
            println!("consistency         : FAILED — {e}");
            std::process::exit(1);
        }
    }
}
