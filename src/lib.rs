//! # nilicon-repro — umbrella crate
//!
//! Re-exports the whole NiLiCon reproduction workspace behind one dependency,
//! used by the examples and the cross-crate integration tests. See the README
//! for the architecture overview and `DESIGN.md` for the per-experiment map.

pub use nilicon as core;
pub use nilicon_colo as colo;
pub use nilicon_container as container;
pub use nilicon_criu as criu;
pub use nilicon_drbd as drbd;
pub use nilicon_mc as mc;
pub use nilicon_sim as sim;
pub use nilicon_workloads as workloads;
