//! Staged-pipeline equivalence suite (EXTENSION, `--pipeline`).
//!
//! The pipelined checkpoint path reorders *when* work happens — dump-drain,
//! delta-encode, transfer, and backup-ingest overlap across bounded
//! peek-before-commit queues — but must never change *what* the backup
//! commits. These tests pin the bar from ISSUE/DESIGN §12: committed images
//! byte-identical to the synchronous engine over randomized multi-epoch
//! histories (including `--delta`, `--cow`, `--replay`, and a (2,3)
//! placement), a mid-chunk stage crash replays the in-flight chunk without
//! loss or duplication, and a fault during a backpressure stall falls back
//! to the last committed epoch.

use nilicon::trace::{TraceEvent, Tracer};
use nilicon::{Checkpointer, NiLiConEngine, OptimizationConfig, PlacementEngine};
use nilicon_container::{Container, ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_criu::CheckpointImage;
use nilicon_sim::kernel::Kernel;
use proptest::prelude::*;

/// One epoch's worth of guest writes: (heap page, byte value).
type EpochWrites = Vec<(u64, u8)>;

fn apply(p: &mut Kernel, c: &Container, writes: &EpochWrites) {
    for &(page, val) in writes {
        p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val])
            .unwrap();
    }
}

fn assert_images_identical(a: &CheckpointImage, b: &CheckpointImage, what: &str) {
    assert_eq!(a.pages.len(), b.pages.len(), "{what}: page-set size");
    for (x, y) in a.pages.iter().zip(b.pages.iter()) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{what}: page identity");
        assert_eq!(x.2, y.2, "{what}: page {:?}/{:#x} bytes diverged", x.0, x.1);
    }
}

/// Run `history` epoch-by-epoch under `opts` on a fresh container and
/// return the final committed backup image. `advance` grants the pipeline
/// one execution phase of overlap between epochs (the harness does this);
/// without it every epoch's backlog surfaces as backpressure, which must
/// still not change the committed bytes.
fn run_history(
    opts: OptimizationConfig,
    history: &[EpochWrites],
    advance: bool,
) -> CheckpointImage {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let spec = ContainerSpec::server("redis", 10, 6379);
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).unwrap();
    for (i, writes) in history.iter().enumerate() {
        let epoch = i as u64 + 1;
        apply(&mut p, &c, writes);
        if advance {
            e.pipeline_advance(30_000_000);
        }
        e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        e.commit(&mut b, epoch).unwrap();
    }
    e.agent.materialize().unwrap()
}

/// Randomized epoch histories: 10–14 epochs, each dirtying 0–40 pages in a
/// 300-page heap window (overlapping pages across epochs exercise the
/// delta shadow store's incremental path).
fn arb_history() -> impl Strategy<Value = Vec<EpochWrites>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..300, any::<u8>()), 0..40),
        10..15,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole equivalence bar: `--pipeline` with `--delta` and `--replay`
    /// commits byte-identical images to the synchronous engine, with and
    /// without inter-epoch overlap credit (the latter drives the
    /// backpressure path every epoch).
    #[test]
    fn pipelined_delta_replay_images_match_sync(history in arb_history()) {
        let mut sync = OptimizationConfig::nilicon();
        sync.delta_transfer = true;
        sync.hybrid_replay = true;
        let mut piped = sync;
        piped.pipeline = true;

        let base = run_history(sync, &history, true);
        let overlapped = run_history(piped, &history, true);
        assert_images_identical(&base, &overlapped, "delta+replay overlapped");
        let stalled = run_history(piped, &history, false);
        assert_images_identical(&base, &stalled, "delta+replay backpressured");
    }

    /// `--cow --pipeline`: the COW drain is already a streamed stage, so the
    /// pipeline knob only adds overlap accounting — committed bytes are
    /// untouched.
    #[test]
    fn pipelined_cow_images_match_sync(history in arb_history()) {
        let mut sync = OptimizationConfig::nilicon();
        sync.cow_checkpoint = true;
        sync.hybrid_replay = true;
        let mut piped = sync;
        piped.pipeline = true;

        let base = run_history(sync, &history, true);
        let overlapped = run_history(piped, &history, true);
        assert_images_identical(&base, &overlapped, "cow overlapped");
    }
}

fn placement_history(
    pipeline: bool,
    history: &[EpochWrites],
    fail_at: Option<u64>,
) -> (CheckpointImage, u64, Vec<nilicon::TraceRecord>) {
    let mut opts = OptimizationConfig::nilicon();
    opts.backups = 3;
    opts.quorum = 2;
    opts.pipeline = pipeline;
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let spec = ContainerSpec::server("redis", 10, 6379);
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut e = PlacementEngine::new(opts, p.costs.clone()).unwrap();
    let (tracer, ring) = Tracer::in_memory(4096);
    e.set_tracer(tracer.clone());
    e.prepare(&mut p, &c).unwrap();
    for (i, writes) in history.iter().enumerate() {
        let epoch = i as u64 + 1;
        apply(&mut p, &c, writes);
        e.pipeline_advance(30_000_000);
        if fail_at == Some(epoch) {
            e.stage_fail_at_chunk = Some(0);
        }
        tracer.begin_epoch(epoch, 0);
        let o = e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        tracer.reconcile(epoch, o.stop_time, o.ack_delay).unwrap();
        e.commit(&mut b, epoch).unwrap();
    }
    let stored = e.stored_fragment_bytes();
    let img = e.reconstruct_committed(&[0, 1]).unwrap();
    (img, stored, ring.snapshot())
}

/// (2,3) placement: the chunked stripe pipeline stores the same fragments
/// and reconstructs the same image as the whole-epoch synchronous fan-out —
/// including when the first replica's ingest stage crashes mid-chunk and
/// replays (peek-before-commit: no chunk lost, none double-committed).
#[test]
fn placement_pipelined_matches_sync_including_stage_crash() {
    let history: Vec<EpochWrites> = (1..=10u64)
        .map(|e| {
            (0..e + 4)
                .map(|i| ((i * 7 + e) % 120, (e * 31 + i) as u8))
                .collect()
        })
        .collect();

    let (sync_img, sync_stored, _) = placement_history(false, &history, None);
    let (pipe_img, pipe_stored, _) = placement_history(true, &history, None);
    assert_images_identical(&sync_img, &pipe_img, "placement (2,3)");
    assert_eq!(sync_stored, pipe_stored, "identical fragment bytes stored");

    let (crash_img, crash_stored, recs) = placement_history(true, &history, Some(6));
    assert_images_identical(&sync_img, &crash_img, "placement stage crash");
    assert_eq!(sync_stored, crash_stored, "replayed chunk not duplicated");
    assert!(
        recs.iter().any(|r| matches!(
            &r.kind,
            TraceEvent::StageRestart { stage, chunk: 0 } if stage == "ingest"
        )),
        "stage crash surfaced as a StageRestart mark"
    );
}

/// NiLiCon engine stage crash mid-chunk: the in-flight chunk is re-ingested
/// (peek-before-commit), the committed image is unchanged, and the restart
/// costs real ack time.
#[test]
fn stage_crash_replays_chunk_without_loss_or_duplication() {
    let run = |fail: Option<u64>| {
        let mut opts = OptimizationConfig::nilicon();
        opts.delta_transfer = true;
        opts.pipeline = true;
        let mut p = Kernel::default();
        let mut b = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut p, &spec).unwrap();
        let mut e = NiLiConEngine::new(opts, p.costs.clone());
        let (tracer, ring) = Tracer::in_memory(4096);
        e.set_tracer(tracer.clone());
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        // 150 dirty pages -> 3 chunks of 64; crash lands mid-stream.
        for page in 0..150u64 {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[page as u8])
                .unwrap();
        }
        e.pipeline_advance(30_000_000);
        e.stage_fail_at_chunk = fail;
        tracer.begin_epoch(2, 0);
        let o = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
        tracer.reconcile(2, o.stop_time, o.ack_delay).unwrap();
        e.commit(&mut b, 2).unwrap();
        assert_eq!(e.stage_fail_at_chunk, None, "injection fires exactly once");
        (e.agent.materialize().unwrap(), o, ring.snapshot())
    };

    let (clean_img, clean, clean_recs) = run(None);
    let (crash_img, crash, crash_recs) = run(Some(1));
    assert_images_identical(&clean_img, &crash_img, "mid-chunk stage crash");
    assert!(
        crash.ack_delay > clean.ack_delay,
        "the replayed chunk costs ack time: {} vs {}",
        crash.ack_delay,
        clean.ack_delay
    );
    assert!(
        !clean_recs
            .iter()
            .any(|r| matches!(r.kind, TraceEvent::StageRestart { .. })),
        "no restart on the clean run"
    );
    assert!(
        crash_recs.iter().any(|r| matches!(
            &r.kind,
            TraceEvent::StageRestart { stage, chunk: 1 } if stage == "ingest"
        )),
        "restart mark names the replayed chunk"
    );
}

/// A primary fault while the pipeline is stalled on backpressure (epoch
/// checkpointed but its ack never drained, so it was never committed) must
/// fail over to the last *committed* epoch — in-flight pipeline state is
/// discarded, not promoted.
#[test]
fn fault_during_backpressure_falls_back_to_committed_epoch() {
    let mut opts = OptimizationConfig::nilicon();
    opts.delta_transfer = true;
    opts.pipeline = true;
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let spec = ContainerSpec::server("redis", 10, 6379);
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).unwrap();
    p.mem_write(c.init_pid(), MemLayout::heap(0), b"committed")
        .unwrap();
    e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
    e.commit(&mut b, 1).unwrap();

    // Epoch 2 enters the pipeline but the ack stalls (no overlap credit,
    // no commit) — then the primary dies.
    p.mem_write(c.init_pid(), MemLayout::heap(0), b"uncommitt")
        .unwrap();
    let o = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
    assert!(o.ack_delay > 0, "epoch 2 ack is in flight, not delivered");

    let (restored, _) = e.failover(&mut b).unwrap();
    restored.finish(&mut b).unwrap();
    let mut buf = [0u8; 9];
    b.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
        .unwrap();
    assert_eq!(&buf, b"committed", "fell back to the last committed epoch");
    assert_eq!(e.committed_epoch(), Some(1));
}

/// Backpressure accounting: with zero overlap credit the previous epoch's
/// ack backlog stalls the next stop phase (a `Backpressure` span tiles into
/// stop_time); a full execution phase of credit drains it.
#[test]
fn backpressure_stalls_stop_phase_and_drains_with_overlap() {
    let mut opts = OptimizationConfig::nilicon();
    opts.pipeline = true;
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let spec = ContainerSpec::server("redis", 10, 6379);
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    let (tracer, ring) = Tracer::in_memory(4096);
    e.set_tracer(tracer.clone());
    e.prepare(&mut p, &c).unwrap();
    for page in 0..100u64 {
        p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[1])
            .unwrap();
    }
    tracer.begin_epoch(1, 0);
    let o1 = e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
    tracer.reconcile(1, o1.stop_time, o1.ack_delay).unwrap();
    e.commit(&mut b, 1).unwrap();

    // No pipeline_advance: epoch 1's entire ack backlog hits epoch 2's stop.
    p.mem_write(c.init_pid(), MemLayout::heap_page(0), &[2])
        .unwrap();
    tracer.begin_epoch(2, 0);
    let o2 = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
    tracer.reconcile(2, o2.stop_time, o2.ack_delay).unwrap();
    e.commit(&mut b, 2).unwrap();
    let stalled = ring
        .snapshot()
        .iter()
        .find_map(|r| match r.kind {
            TraceEvent::Backpressure { stalled } if r.epoch == 2 => Some(stalled),
            _ => None,
        })
        .expect("Backpressure span on the stalled epoch");
    assert_eq!(stalled, o1.ack_delay, "the whole undrained backlog stalls");
    assert!(o2.stop_time > stalled, "stall tiles into stop_time");

    // Epoch 3 gets a full execution phase of overlap: backlog gone.
    e.pipeline_advance(30_000_000);
    p.mem_write(c.init_pid(), MemLayout::heap_page(0), &[3])
        .unwrap();
    tracer.begin_epoch(3, 0);
    let o3 = e.checkpoint(&mut p, &mut b, &c, 3).unwrap();
    tracer.reconcile(3, o3.stop_time, o3.ack_delay).unwrap();
    assert!(
        !ring
            .snapshot()
            .iter()
            .any(|r| r.epoch == 3 && matches!(r.kind, TraceEvent::Backpressure { .. })),
        "drained pipeline exerts no backpressure"
    );
}
