//! End-to-end trace tests: a traced run's phase spans must reconcile with
//! the `EpochRecord` totals the harness reports (the OBSERVABILITY.md
//! invariant), and fault injection must surface as detector/failover events.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::trace::{TraceEvent, Tracer};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_container::{Application, ContainerSpec, GuestCtx, RequestOutcome};
use nilicon_sim::time::{Nanos, MILLISECOND};
use nilicon_sim::{CostModel, SimResult};

/// Trivial echo server dirtying one heap page per request.
struct Echo;

impl Application for Echo {
    fn name(&self) -> &str {
        "echo"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        ctx.cpu(50_000);
        ctx.heap_write(0, req)?;
        Ok(RequestOutcome {
            response: req.to_vec(),
        })
    }
}

struct OneClient {
    seq: u64,
}

impl nilicon::traffic::ClientBehavior for OneClient {
    fn client_count(&self) -> usize {
        1
    }
    fn next_request(&mut self, _idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        self.seq += 1;
        Some(self.seq.to_le_bytes().to_vec())
    }
    fn on_response(&mut self, _idx: usize, _resp: &[u8], _now: Nanos, _latency: Nanos) {}
}

fn spec() -> ContainerSpec {
    let mut s = ContainerSpec::server("echo", 10, 9000);
    s.heap_pages = 64;
    s
}

fn traced_run(opts: OptimizationConfig, epochs: u64) -> (nilicon::metrics::RunMetrics, Vec<nilicon::trace::TraceRecord>) {
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(OneClient { seq: 0 })),
        mode,
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.run_epochs(epochs).unwrap();
    let r = h.finish();
    (r.metrics, ring.snapshot())
}

/// For each recorded epoch, re-sum the trace's phase spans and check them
/// against the `EpochRecord` the harness produced — independently of the
/// in-line `Tracer::reconcile` check the harness already performs.
#[test]
fn span_sums_reconcile_with_epoch_records() {
    for opts in [OptimizationConfig::nilicon(), {
        // Without the staging buffer the commit is inline: ack_delay folds
        // into stop_time and must reconcile against the combined sum.
        let mut o = OptimizationConfig::nilicon();
        o.staging_buffer = false;
        o
    }] {
        let (metrics, records) = traced_run(opts, 8);
        assert_eq!(metrics.epochs.len(), 8);
        for e in &metrics.epochs {
            let stop_sum: Nanos = records
                .iter()
                .filter(|r| r.epoch == e.epoch && r.kind.is_stop_phase())
                .map(|r| r.dur)
                .sum();
            let ack_sum: Nanos = records
                .iter()
                .filter(|r| r.epoch == e.epoch && r.kind.is_ack_phase())
                .map(|r| r.dur)
                .sum();
            if e.ack_delay > 0 {
                assert_eq!(stop_sum, e.stop_time, "epoch {}: stop spans", e.epoch);
                assert_eq!(ack_sum, e.ack_delay, "epoch {}: ack spans", e.epoch);
            } else {
                assert_eq!(
                    stop_sum + ack_sum,
                    e.stop_time,
                    "epoch {}: inline-commit spans",
                    e.epoch
                );
            }
        }
    }
}

/// Spans within an epoch tile virtual time with no gaps: each span starts
/// where the previous one ended.
#[test]
fn spans_are_contiguous_within_an_epoch() {
    let (_, records) = traced_run(OptimizationConfig::nilicon(), 5);
    let mut cursor: Option<(u64, Nanos)> = None;
    for r in records.iter().filter(|r| r.dur > 0 || matches!(r.kind, TraceEvent::Exec { .. })) {
        if let Some((epoch, end)) = cursor {
            if epoch == r.epoch {
                assert_eq!(r.t, end, "span {} starts at the previous end", r.kind.name());
            }
        }
        cursor = Some((r.epoch, r.t + r.dur));
    }
}

/// A fault-injected run records the detector's misses, the failover
/// breakdown, and releases traced before the fault.
#[test]
fn failover_run_traces_misses_and_recovery() {
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(
        OptimizationConfig::nilicon(),
        CostModel::default(),
    )));
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(OneClient { seq: 0 })),
        mode,
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_fault_at(150 * MILLISECOND);
    h.run_epochs(20).unwrap();
    let r = h.finish();
    assert!(r.recovered);

    let records = ring.snapshot();
    let misses = records
        .iter()
        .filter(|r| matches!(r.kind, TraceEvent::HeartbeatMiss { .. }))
        .count();
    assert!(misses >= 1, "silence before detection is traced");
    let failover: Vec<_> = records
        .iter()
        .filter_map(|r| match r.kind {
            TraceEvent::Failover {
                detection_latency, ..
            } => Some(detection_latency),
            _ => None,
        })
        .collect();
    assert_eq!(failover.len(), 1, "exactly one failover event");
    assert_eq!(Some(failover[0]), r.detection_latency);
    assert!(
        records
            .iter()
            .any(|r| matches!(r.kind, TraceEvent::OutputRelease { .. })),
        "healthy epochs traced their releases"
    );
}

/// The harness's timed stage-crash hook (the chaos catalog's
/// `pipeline-stage-crash-*` scenarios) arms the engine's one-shot stage
/// fault: the staged transfer loses its ingest stage at the scheduled
/// chunk, the peek-before-commit slot replays it, and the trace records
/// exactly one `StageRestart` — with the run still verifying.
#[test]
fn injected_stage_fail_traces_a_stage_restart() {
    let mut opts = OptimizationConfig::nilicon();
    opts.pipeline = true;
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(OneClient { seq: 0 })),
        mode,
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    let (tracer, ring) = Tracer::in_memory(8192);
    h.set_tracer(tracer);
    h.inject_stage_fail_at(150 * MILLISECOND, 0);
    h.run_epochs(10).unwrap();
    let r = h.finish();
    r.verify.expect("stage crash must not corrupt the run");

    let restarts: Vec<_> = ring
        .snapshot()
        .iter()
        .filter_map(|rec| match &rec.kind {
            TraceEvent::StageRestart { stage, chunk } => Some((stage.clone(), *chunk)),
            _ => None,
        })
        .collect();
    assert_eq!(restarts, [("ingest".to_string(), 0)]);
}
