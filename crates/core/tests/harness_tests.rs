//! Harness-level tests with a minimal in-crate echo workload (no dependency
//! on `nilicon-workloads`): epoch mechanics, output commit timing, heartbeat
//! plumbing, failover sequencing, and engine ablations.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::traffic::ClientBehavior;
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_container::{Application, ContainerSpec, GuestCtx, RequestOutcome, StepOutcome};
use nilicon_sim::time::{Nanos, MILLISECOND};
use nilicon_sim::{CostModel, SimResult};

/// Trivial echo server that stages bytes through guest memory.
struct Echo;

impl Application for Echo {
    fn name(&self) -> &str {
        "echo"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        ctx.cpu(50_000);
        ctx.heap_write(0, req)?;
        let mut back = vec![0u8; req.len()];
        ctx.heap_read(0, &mut back)?;
        Ok(RequestOutcome { response: back })
    }
}

/// Counter app: writes a monotone counter into guest memory each step.
struct Counter {
    limit: u64,
}

impl Application for Counter {
    fn name(&self) -> &str {
        "counter"
    }
    fn is_server(&self) -> bool {
        false
    }
    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        ctx.heap_write(0, &0u64.to_le_bytes())
    }
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        ctx.cpu(1_000_000);
        let mut buf = [0u8; 8];
        ctx.heap_read(0, &mut buf)?;
        let n = u64::from_le_bytes(buf) + 1;
        ctx.heap_write(0, &n.to_le_bytes())?;
        Ok(StepOutcome {
            done: n >= self.limit,
        })
    }
}

/// Simple validating client set.
struct Clients {
    n: usize,
    sent: Vec<Option<Vec<u8>>>,
    ok: u64,
    bad: u64,
    seq: u64,
}

impl Clients {
    fn new(n: usize) -> Self {
        Clients {
            n,
            sent: vec![None; n],
            ok: 0,
            bad: 0,
            seq: 0,
        }
    }
}

impl ClientBehavior for Clients {
    fn client_count(&self) -> usize {
        self.n
    }
    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        self.seq += 1;
        let payload = format!("client-{idx}-seq-{}", self.seq).into_bytes();
        self.sent[idx] = Some(payload.clone());
        Some(payload)
    }
    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        match self.sent[idx].take() {
            Some(s) if s == resp => self.ok += 1,
            _ => self.bad += 1,
        }
    }
    fn verify(&self) -> Result<(), String> {
        if self.bad == 0 {
            Ok(())
        } else {
            Err(format!("{} bad echoes", self.bad))
        }
    }
}

fn spec() -> ContainerSpec {
    let mut s = ContainerSpec::server("echo", 10, 9000);
    s.heap_pages = 64;
    s
}

fn nilicon() -> RunMode {
    RunMode::Replicated(Box::new(NiLiConEngine::new(
        OptimizationConfig::nilicon(),
        CostModel::default(),
    )))
}

#[test]
fn epochs_advance_virtual_time_exactly() {
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(Clients::new(2))),
        RunMode::Unreplicated,
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.run_epochs(10).unwrap();
    let r = h.finish();
    assert_eq!(r.metrics.elapsed, 300 * MILLISECOND, "10 × 30ms, no stops");
    assert_eq!(r.metrics.epochs.len(), 10);
    r.verify.unwrap();
}

#[test]
fn replicated_epochs_include_stop_time() {
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(Clients::new(2))),
        nilicon(),
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.run_epochs(10).unwrap();
    let r = h.finish();
    assert!(r.metrics.elapsed > 300 * MILLISECOND);
    let total_stop: Nanos = r.metrics.epochs.iter().map(|e| e.stop_time).sum();
    assert_eq!(r.metrics.elapsed, 300 * MILLISECOND + total_stop);
    assert!(r.metrics.epochs.iter().all(|e| e.stop_time > 0));
}

#[test]
fn responses_wait_for_commit_under_replication() {
    // Replicated echo latency must exceed unreplicated by at least the
    // commit wait; both must validate.
    let run = |mode: RunMode| {
        let mut h = RunHarness::new(
            spec(),
            Box::new(Echo),
            Some(Box::new(Clients::new(1))),
            mode,
            ReplicationConfig::default(),
            1.0,
        )
        .unwrap();
        h.run_epochs(20).unwrap();
        let r = h.finish();
        r.verify.unwrap();
        r.metrics.mean_latency()
    };
    let stock = run(RunMode::Unreplicated);
    let repl = run(nilicon());
    assert!(
        repl > stock + 5 * MILLISECOND,
        "repl {repl} vs stock {stock}"
    );
}

#[test]
fn batch_counter_is_exact_without_faults() {
    let mut s = ContainerSpec::batch("counter", 10);
    s.heap_pages = 64;
    let mut h = RunHarness::new(
        s,
        Box::new(Counter { limit: 500 }),
        None,
        nilicon(),
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.run_batch_to_completion(1000).unwrap();
    assert!(h.batch_done());
    let r = h.finish();
    assert_eq!(
        r.metrics.steps_total, 500,
        "every step counted exactly once"
    );
}

#[test]
fn failover_mid_batch_never_double_counts() {
    // The counter lives in guest memory; a failover rolls back to the last
    // commit and re-executes — the FINAL value must still be exactly the
    // limit (exactly-once effect via state rollback + re-execution).
    let mut s = ContainerSpec::batch("counter", 10);
    s.heap_pages = 64;
    let mut h = RunHarness::new(
        s,
        Box::new(Counter { limit: 800 }),
        None,
        nilicon(),
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.inject_fault_at(200 * MILLISECOND);
    h.run_batch_to_completion(2000).unwrap();
    assert!(h.on_backup());
    // Read the counter from the restored guest memory.
    let pid = h.container().init_pid();
    let backup = h.backup;
    let mut buf = [0u8; 8];
    h.cluster
        .host_mut(backup)
        .mem_read(pid, nilicon_container::MemLayout::heap(0), &mut buf)
        .unwrap();
    assert_eq!(
        u64::from_le_bytes(buf),
        800,
        "counter is exact despite rollback"
    );
}

#[test]
fn fault_before_first_commit_is_survivable() {
    // Fault during the very first epoch: the backup holds only the initial
    // sync... which is only shipped at the end of epoch 0. A fault *before*
    // any commit must fail over to the initial state (epoch-0 checkpoint
    // commits before the fault at 40ms only if epoch 0 completed at ~30ms).
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(Clients::new(1))),
        nilicon(),
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.inject_fault_at(40 * MILLISECOND);
    h.run_epochs(20).unwrap();
    let r = h.finish();
    assert!(r.recovered);
    assert_eq!(r.broken_connections, 0);
    r.verify.unwrap();
}

#[test]
fn detection_latency_within_paper_band() {
    for fault_ms in [100u64, 217, 333, 450] {
        let mut h = RunHarness::new(
            spec(),
            Box::new(Echo),
            Some(Box::new(Clients::new(1))),
            nilicon(),
            ReplicationConfig::default(),
            1.0,
        )
        .unwrap();
        h.inject_fault_at(fault_ms * MILLISECOND);
        h.run_epochs(30).unwrap();
        let r = h.finish();
        let d = r.detection_latency.unwrap();
        assert!(
            (50 * MILLISECOND..=160 * MILLISECOND).contains(&d),
            "fault@{fault_ms}ms: detection {}ms",
            d / MILLISECOND
        );
    }
}

#[test]
fn firewall_input_blocking_costs_more_per_epoch() {
    let run = |plug: bool| {
        let mut opts = OptimizationConfig::nilicon();
        opts.plug_input_blocking = plug;
        let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
        let mut h = RunHarness::new(
            spec(),
            Box::new(Echo),
            Some(Box::new(Clients::new(1))),
            mode,
            ReplicationConfig::default(),
            1.0,
        )
        .unwrap();
        h.run_epochs(10).unwrap();
        h.finish().metrics.avg_stop()
    };
    let plug = run(true);
    let firewall = run(false);
    let delta = firewall.saturating_sub(plug);
    assert!(
        (6 * MILLISECOND..8 * MILLISECOND).contains(&delta),
        "§V-C: firewall adds ~7ms/epoch, got {}us",
        delta / 1000
    );
}

#[test]
fn injected_fault_into_unreplicated_run_errors() {
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(Clients::new(1))),
        RunMode::Unreplicated,
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.inject_fault_at(50 * MILLISECOND);
    assert!(
        h.run_epochs(10).is_err(),
        "unreplicated runs cannot fail over"
    );
}

#[test]
fn tracking_overhead_recorded_for_replicated_only() {
    let run = |mode: RunMode| {
        let mut h = RunHarness::new(
            spec(),
            Box::new(Echo),
            Some(Box::new(Clients::new(2))),
            mode,
            ReplicationConfig::default(),
            1.0,
        )
        .unwrap();
        h.run_epochs(10).unwrap();
        let r = h.finish();
        r.metrics
            .epochs
            .iter()
            .map(|e| e.tracking_overhead)
            .sum::<Nanos>()
    };
    assert_eq!(run(RunMode::Unreplicated), 0);
    assert!(run(nilicon()) > 0, "soft-dirty faults metered");
}

#[test]
fn pml_extension_eliminates_tracking_faults() {
    // The §VIII/Phantasy-style extension: hardware page-modification logging
    // removes per-write tracking faults entirely; correctness is unchanged.
    let run = |pml: bool| {
        let mut opts = OptimizationConfig::nilicon();
        opts.pml_tracking = pml;
        let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
        let mut h = RunHarness::new(
            spec(),
            Box::new(Echo),
            Some(Box::new(Clients::new(2))),
            mode,
            ReplicationConfig::default(),
            1.0,
        )
        .unwrap();
        h.run_epochs(12).unwrap();
        let r = h.finish();
        r.verify.unwrap();
        let tracking: Nanos = r.metrics.epochs.iter().map(|e| e.tracking_overhead).sum();
        (tracking, r.metrics.avg_dirty_pages())
    };
    let (soft_tracking, soft_dirty) = run(false);
    let (pml_tracking, pml_dirty) = run(true);
    assert!(soft_tracking > 0);
    assert_eq!(pml_tracking, 0, "PML takes no per-write faults");
    assert_eq!(soft_dirty, pml_dirty, "identical dirty sets either way");
}

#[test]
fn pml_extension_survives_failover() {
    let mut opts = OptimizationConfig::nilicon();
    opts.pml_tracking = true;
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        spec(),
        Box::new(Echo),
        Some(Box::new(Clients::new(2))),
        mode,
        ReplicationConfig::default(),
        1.0,
    )
    .unwrap();
    h.inject_fault_at(250 * MILLISECOND);
    h.run_epochs(25).unwrap();
    let r = h.finish();
    assert!(r.recovered);
    assert_eq!(r.broken_connections, 0);
    r.verify.unwrap();
}
