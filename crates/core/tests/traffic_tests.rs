//! Direct tests of the client pool (outside the full harness).

use nilicon::traffic::{ClientBehavior, ClientPool};
use nilicon_container::{encode_frame, try_decode_frame};
use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::Endpoint;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::InputMode;
use nilicon_sim::time::Nanos;
use std::collections::{HashMap, VecDeque};

struct Ping {
    n: usize,
    issued: u64,
    got: u64,
    last_latency: Nanos,
}

impl ClientBehavior for Ping {
    fn client_count(&self) -> usize {
        self.n
    }
    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        self.issued += 1;
        Some(vec![idx as u8, 0xEE])
    }
    fn on_response(&mut self, _idx: usize, resp: &[u8], _now: Nanos, latency: Nanos) {
        assert_eq!(resp[1], 0xEE);
        self.got += 1;
        self.last_latency = latency;
    }
}

fn world(n_clients: usize) -> (Cluster, nilicon_sim::ids::HostId, nilicon_sim::ids::NsId, ClientPool) {
    let mut cl = Cluster::new();
    let sh = cl.add_host(Kernel::default());
    let ch = cl.add_host(Kernel::default());
    let sns = cl.host_mut(sh).namespaces.create_set("s").net;
    let cns = cl.host_mut(ch).namespaces.create_set("c").net;
    cl.host_mut(sh).create_stack(sns, 10, InputMode::Buffer);
    cl.host_mut(ch).create_stack(cns, 20, InputMode::Buffer);
    cl.bind_addr(10, sh, sns);
    cl.bind_addr(20, ch, cns);
    let srv = cl.host_mut(sh).stack_mut(sns).unwrap();
    let l = srv.socket();
    srv.bind(l, 80).unwrap();
    srv.listen(l).unwrap();
    let pool = ClientPool::connect(&mut cl, ch, cns, n_clients, Endpoint::new(10, 80)).unwrap();
    (cl, sh, sns, pool)
}

/// Server side: echo every complete frame on every established connection.
fn echo_all(cl: &mut Cluster, sh: nilicon_sim::ids::HostId, sns: nilicon_sim::ids::NsId) {
    cl.pump();
    let k = cl.host_mut(sh);
    let conns = k.stack(sns).unwrap().established_ids();
    for (sid, _) in conns {
        let buf = k.stack(sns).unwrap().peek_recv(sid).unwrap();
        let mut off = 0;
        while let Some((frame, used)) = try_decode_frame(&buf[off..]) {
            off += used;
            k.stack_mut(sns).unwrap().send(sid, &encode_frame(&frame)).unwrap();
        }
        if off > 0 {
            k.stack_mut(sns).unwrap().consume_recv(sid, off).unwrap();
        }
    }
    cl.pump();
}

#[test]
fn closed_loop_issue_collect_cycle() {
    let (mut cl, sh, sns, mut pool) = world(3);
    let mut b = Ping { n: 3, issued: 0, got: 0, last_latency: 0 };
    assert_eq!(pool.len(), 3);

    // Round 1: everyone issues.
    let sent = pool.issue(&mut cl, &mut b, 1_000, 0).unwrap();
    assert_eq!(sent, 3);
    assert_eq!(pool.outstanding(), 3);
    // Closed loop: no double issue while outstanding.
    assert_eq!(pool.issue(&mut cl, &mut b, 2_000, 0).unwrap(), 0);

    echo_all(&mut cl, sh, sns);
    let mut receipts: HashMap<Endpoint, VecDeque<Nanos>> = HashMap::new();
    let lats = pool.collect(&mut cl, &mut b, &mut receipts, 9_000, &nilicon::trace::Tracer::disabled()).unwrap();
    assert_eq!(lats.len(), 3);
    assert_eq!(b.got, 3);
    assert_eq!(pool.outstanding(), 0);
    assert_eq!(b.last_latency, 8_000, "receipt fallback 9000 - send 1000");

    // Round 2 works again.
    assert_eq!(pool.issue(&mut cl, &mut b, 10_000, 0).unwrap(), 3);
    assert_eq!(pool.counters(), (6, 3));
}

#[test]
fn receipt_queue_drives_latency() {
    let (mut cl, sh, sns, mut pool) = world(1);
    let mut b = Ping { n: 1, issued: 0, got: 0, last_latency: 0 };
    pool.issue(&mut cl, &mut b, 5_000, 0).unwrap();
    echo_all(&mut cl, sh, sns);
    let local = pool.local_endpoint(&mut cl, 0).unwrap();
    let mut receipts: HashMap<Endpoint, VecDeque<Nanos>> = HashMap::new();
    receipts.entry(local).or_default().push_back(42_000);
    pool.collect(&mut cl, &mut b, &mut receipts, 0, &nilicon::trace::Tracer::disabled()).unwrap();
    assert_eq!(b.last_latency, 37_000, "logical receipt 42000 - send 5000");
}

#[test]
fn connect_to_dead_server_fails() {
    let mut cl = Cluster::new();
    let ch = cl.add_host(Kernel::default());
    let cns = cl.host_mut(ch).namespaces.create_set("c").net;
    cl.host_mut(ch).create_stack(cns, 20, InputMode::Buffer);
    cl.bind_addr(20, ch, cns);
    // No server bound at addr 10: handshake cannot complete.
    let r = ClientPool::connect(&mut cl, ch, cns, 2, Endpoint::new(10, 80));
    assert!(r.is_err());
}

/// Behavior issuing one large (multi-MSS) request per client.
struct BigReq {
    n: usize,
    size: usize,
    issued: u64,
    got: u64,
    ok: bool,
}

impl ClientBehavior for BigReq {
    fn client_count(&self) -> usize {
        self.n
    }
    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        if self.issued >= self.n as u64 {
            return None;
        }
        self.issued += 1;
        Some(vec![idx as u8; self.size])
    }
    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.got += 1;
        self.ok &= resp.len() == self.size && resp.iter().all(|&b| b == idx as u8);
    }
}

/// Regression for the single-segment retransmit bug: a request larger than
/// one MSS lost in flight (the failover window) left bytes beyond the first
/// MSS stranded in the write queue forever, because `ClientPool::retransmit`
/// injected at most one RTO segment per connection per call.
#[test]
fn retransmit_drains_multi_segment_backlog_after_failover() {
    use nilicon_sim::net::RTO_MSS;
    let (mut cl, sh, sns, mut pool) = world(2);
    let size = RTO_MSS * 2 + 100; // 3 segments per connection
    let mut b = BigReq { n: 2, size, issued: 0, got: 0, ok: true };

    // The server "dies": requests issued into the partition are dropped on
    // the wire but stay unacknowledged in the client write queues.
    cl.partition(sh);
    assert_eq!(pool.issue(&mut cl, &mut b, 1_000, 0).unwrap(), 2);
    cl.pump();
    assert_eq!(pool.outstanding(), 2);

    // Backup takes over the address (same host here); the client-side RTO
    // fires. Every connection's whole backlog must go back on the wire.
    cl.heal(sh);
    let segs = pool.retransmit(&mut cl).unwrap();
    assert_eq!(segs, 6, "two connections x three MSS segments each");

    // The stream reassembles: the echo server sees each full frame.
    echo_all(&mut cl, sh, sns);
    let mut receipts: HashMap<Endpoint, VecDeque<Nanos>> = HashMap::new();
    let lats = pool
        .collect(&mut cl, &mut b, &mut receipts, 9_000, &nilicon::trace::Tracer::disabled())
        .unwrap();
    assert_eq!(lats.len(), 2);
    assert!(b.ok, "responses byte-identical to the requests");
    // Everything acked: nothing left to retransmit.
    assert_eq!(pool.retransmit(&mut cl).unwrap(), 0);
    assert_eq!(pool.broken_connections(&mut cl).unwrap(), 0);
}

#[test]
fn jitter_spreads_send_times() {
    let (mut cl, _sh, _sns, mut pool) = world(16);
    let mut b = Ping { n: 16, issued: 0, got: 0, last_latency: 0 };
    pool.issue(&mut cl, &mut b, 0, 30_000_000).unwrap();
    // Collect with empty receipts: latency = fallback_now - send_time =
    // 30ms - jitter, so distinct latencies imply distinct send stamps.
    echo_all(&mut cl, _sh, _sns);
    let mut receipts: HashMap<Endpoint, VecDeque<Nanos>> = HashMap::new();
    let lats = pool.collect(&mut cl, &mut b, &mut receipts, 30_000_000, &nilicon::trace::Tracer::disabled()).unwrap();
    let distinct: std::collections::HashSet<_> = lats.iter().collect();
    assert!(distinct.len() > 8, "think-time jitter spreads sends: {distinct:?}");
}
