//! Fleet-scale extension equivalence + fault isolation (EXTENSION,
//! `--fleet N`).
//!
//! Bars from ISSUE/DESIGN §13:
//! * `--fleet 1` is the identity: a one-lane fleet commits byte-identical
//!   backup images, with the same per-epoch stop/ack outcomes (and hence
//!   the same reconciliation identities), as a plain single-engine loop
//!   over the same write history.
//! * Faults are lane-scoped: failing container A's processes promotes only
//!   A to the backup; container B keeps serving on the primary with zero
//!   broken connections and no output discarded.

use nilicon::fleet::{FleetScheduler, LaneSpec};
use nilicon::trace::{TraceEvent, Tracer};
use nilicon::{Checkpointer, NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon::traffic::ClientBehavior;
use nilicon_container::{
    Application, ContainerRuntime, ContainerSpec, GuestCtx, MemLayout, RequestOutcome,
};
use nilicon_criu::CheckpointImage;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::time::Nanos;
use nilicon_sim::SimResult;
use proptest::prelude::*;

/// One epoch's worth of guest writes: (heap page, byte value).
type EpochWrites = Vec<(u64, u8)>;

/// An application that does nothing by itself (the test scripts guest
/// writes directly, exactly like the plain engine-loop histories).
struct Inert;
impl Application for Inert {
    fn name(&self) -> &str {
        "inert"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
}

/// Plain single-engine loop over `history` (the `pipeline_equivalence.rs`
/// idiom): returns the final committed image plus per-epoch
/// `(stop_time, ack_delay, state_bytes, dirty_pages)`.
fn run_plain(
    opts: OptimizationConfig,
    history: &[EpochWrites],
) -> (CheckpointImage, Vec<(Nanos, Nanos, u64, u64)>) {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let spec = ContainerSpec::server("redis", 10, 6379);
    let c = ContainerRuntime::create(&mut p, &spec).unwrap();
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).unwrap();
    let mut outcomes = Vec::new();
    for (i, writes) in history.iter().enumerate() {
        let epoch = i as u64 + 1;
        for &(page, val) in writes {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val])
                .unwrap();
        }
        e.pipeline_advance(30_000_000);
        let o = e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
        e.commit(&mut b, epoch).unwrap();
        outcomes.push((o.stop_time, o.ack_delay, o.state_bytes, o.dirty_pages));
    }
    (e.agent.materialize().unwrap(), outcomes)
}

/// The same history through a one-lane fleet.
fn run_fleet1(
    opts: OptimizationConfig,
    history: &[EpochWrites],
) -> (CheckpointImage, Vec<(Nanos, Nanos, u64, u64)>) {
    let mut cfg = ReplicationConfig { opts, ..Default::default() };
    cfg.opts.fleet = 1;
    let mut fleet = FleetScheduler::new(
        cfg,
        vec![LaneSpec {
            spec: ContainerSpec::server("redis", 10, 6379),
            app: Box::new(Inert),
            behavior: None,
        }],
    )
    .unwrap();
    fleet.script_writes(0, history.to_vec());
    fleet.run_epochs(history.len() as u64).unwrap();
    let img = fleet.lane_image(0).unwrap();
    let r = fleet.finish();
    let outcomes = r.lanes[0]
        .metrics
        .epochs
        .iter()
        .map(|e| (e.stop_time, e.ack_delay, e.state_bytes, e.dirty_pages))
        .collect();
    (img, outcomes)
}

fn assert_images_identical(a: &CheckpointImage, b: &CheckpointImage, what: &str) {
    assert_eq!(a.pages.len(), b.pages.len(), "{what}: page-set size");
    for (x, y) in a.pages.iter().zip(b.pages.iter()) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{what}: page identity");
        assert_eq!(x.2, y.2, "{what}: page {:?}/{:#x} bytes diverged", x.0, x.1);
    }
}

fn arb_history() -> impl Strategy<Value = Vec<EpochWrites>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..300, any::<u8>()), 0..40),
        8..13,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `--fleet 1` is the identity, under the paper config and with the
    /// delta shadow store on: same committed bytes, same per-epoch
    /// stop/ack/bytes/pages (so the reconciliation identities, which the
    /// fleet checks internally every epoch, match too).
    #[test]
    fn one_lane_fleet_is_byte_identical_to_plain_engine(history in arb_history()) {
        for (label, opts) in [
            ("nilicon", OptimizationConfig::nilicon()),
            ("nilicon+delta", {
                let mut o = OptimizationConfig::nilicon();
                o.delta_transfer = true;
                o
            }),
        ] {
            let (img_a, out_a) = run_plain(opts, &history);
            let (img_b, out_b) = run_fleet1(opts, &history);
            assert_images_identical(&img_a, &img_b, label);
            prop_assert_eq!(&out_a, &out_b, "{}: per-epoch outcomes", label);
        }
    }
}

// ---------------------------------------------------------------------------
// Two-container fault isolation
// ---------------------------------------------------------------------------

/// In-guest key/value-ish app: stages each request through guest heap and
/// echoes it back (so committed state actually covers served requests).
struct EchoApp;
impl Application for EchoApp {
    fn name(&self) -> &str {
        "echo"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        ctx.cpu(40_000);
        ctx.heap_write(0, req)?;
        let mut back = vec![0u8; req.len()];
        ctx.heap_read(0, &mut back)?;
        Ok(RequestOutcome { response: back })
    }
}

/// Closed-loop clients issuing tagged payloads and verifying every echo.
struct TaggedClients {
    n: usize,
    tag: u8,
    issued: u64,
    got: u64,
    bad: u64,
}

impl ClientBehavior for TaggedClients {
    fn client_count(&self) -> usize {
        self.n
    }
    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        self.issued += 1;
        Some(vec![self.tag, idx as u8, (self.issued % 251) as u8])
    }
    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.got += 1;
        if resp.len() != 3 || resp[0] != self.tag || resp[1] != idx as u8 {
            self.bad += 1;
        }
    }
    fn verify(&self) -> Result<(), String> {
        if self.bad > 0 {
            return Err(format!("{} corrupted echoes (tag {})", self.bad, self.tag));
        }
        if self.got == 0 {
            return Err(format!("no responses completed (tag {})", self.tag));
        }
        Ok(())
    }
}

fn lane(i: u32, clients: usize) -> LaneSpec {
    let mut spec = ContainerSpec::server(&format!("svc{i}"), 10 + i, 6379);
    spec.heap_pages = 64;
    LaneSpec {
        spec,
        app: Box::new(EchoApp),
        behavior: Some(Box::new(TaggedClients {
            n: clients,
            tag: 0x40 + i as u8,
            issued: 0,
            got: 0,
            bad: 0,
        })),
    }
}

/// Fault container A mid-run: A fails over to the backup and recovers; B
/// never notices — it stays on the primary, all its clients' connections
/// survive, and no B output is ever discarded.
#[test]
fn lane_fault_promotes_only_that_lane() {
    let mut cfg = ReplicationConfig {
        opts: OptimizationConfig::nilicon(),
        ..Default::default()
    };
    cfg.opts.fleet = 2;
    let mut fleet = FleetScheduler::new(cfg, vec![lane(0, 2), lane(1, 2)]).unwrap();
    let (tracer_b, ring_b) = Tracer::in_memory(4096);
    fleet.set_tracer(1, tracer_b);

    fleet.run_epochs(10).unwrap();
    // Fault A's container between epoch boundaries.
    fleet.inject_lane_fault_at(0, 310_000_000);
    fleet.run_epochs(30).unwrap();
    let r = fleet.finish();

    let a = &r.lanes[0];
    assert_eq!(a.failovers, 1, "lane A failed over once");
    assert!(a.on_backup, "lane A now owned by the backup");
    assert!(a.failover.as_ref().is_some_and(|f| f.total() > 0));
    assert!(a.detection_latency.is_some());
    assert!(!a.split_brain);
    assert_eq!(a.broken_connections, 0, "A's clients reconnect-free: {:?}", a.verify);
    a.verify.as_ref().expect("lane A verifies after failover");

    let b = &r.lanes[1];
    assert_eq!(b.failovers, 0, "lane B untouched");
    assert!(!b.on_backup, "lane B still on the primary");
    assert_eq!(b.broken_connections, 0, "B's clients see zero broken connections");
    b.verify.as_ref().expect("lane B verifies");
    assert!(
        b.metrics.requests_total > 0,
        "B kept serving through A's failover"
    );
    let discards: Vec<_> = ring_b
        .snapshot()
        .into_iter()
        .filter(|rec| matches!(rec.kind, TraceEvent::OutputDiscard { .. }))
        .collect();
    assert!(discards.is_empty(), "no B output discarded: {discards:?}");

    assert_eq!(r.split_brains(), 0);
}

/// A fleet run with no faults: every lane verifies, zero broken
/// connections, and the consolidated heartbeat channel saw every lane's
/// liveness bit each interval.
#[test]
fn staggered_fleet_steady_state_serves_all_lanes() {
    let mut cfg = ReplicationConfig {
        opts: OptimizationConfig::nilicon(),
        ..Default::default()
    };
    cfg.opts.fleet = 4;
    let mut fleet =
        FleetScheduler::new(cfg, (0..4).map(|i| lane(i, 2)).collect()).unwrap();
    fleet.run_epochs(20).unwrap();
    let r = fleet.finish();
    for (i, l) in r.lanes.iter().enumerate() {
        assert_eq!(l.failovers, 0);
        assert_eq!(l.broken_connections, 0, "lane {i}");
        l.verify.as_ref().unwrap_or_else(|e| panic!("lane {i}: {e}"));
        assert!(l.metrics.requests_total > 0, "lane {i} served requests");
    }
    assert!(r.heartbeat_intervals > 0);
    assert_eq!(r.min_live_bits, 4, "all four liveness bits in every interval");
    assert_eq!(r.split_brains(), 0);
}
