//! The primary-side NiLiCon replication engine (§IV, §V).

use crate::backup::BackupAgent;
use crate::config::OptimizationConfig;
use crate::engine::{
    BootstrapBegin, BootstrapStep, CheckpointOutcome, Checkpointer, FailoverReport, LogShipOutcome,
    ReplayTail,
};
use crate::trace::{TraceEvent, Tracer};
use nilicon_container::Container;
use nilicon_criu::{
    bootstrap_dump, dump_container, CheckpointImage, DeltaStats, InfrequentCache, PageKey,
    RestoreConfig, RestoredContainer, ShadowStore,
};
use nilicon_drbd::{DrbdMsg, DrbdPrimary};
use nilicon_sim::ids::Pid;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::TrackingMode;
use nilicon_sim::net::InputMode;
use nilicon_sim::replay::{ReplayEvent, ReplayLog};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};
use std::collections::BTreeMap;

/// NiLiCon's primary-side engine plus the buffered backup agent.
pub struct NiLiConEngine {
    opts: OptimizationConfig,
    cache: InfrequentCache,
    /// Backup agent (public for Table V accounting and failover tests).
    pub agent: BackupAgent,
    drbd: DrbdPrimary,
    /// Primary-side shadow of the page contents last shipped to the backup —
    /// the base for the next epoch's XOR deltas (`delta_transfer`).
    shadow: ShadowStore,
    prepared: bool,
    tracer: Tracer,
    /// Cost model retained so `rearm_prepare` can rebuild the replica-side
    /// structures (a replacement backup starts from an empty agent).
    costs: nilicon_sim::CostModel,
    /// Address spaces still holding COW-deferred bootstrap pages (empty
    /// outside an active re-replication bootstrap).
    bootstrap_pids: Vec<Pid>,
    /// Backup CPU charged by `bootstrap_begin` (metadata + DRBD resync
    /// receive), carried into the first `bootstrap_step`'s accounting.
    bootstrap_cpu_carry: Nanos,
    /// Test-only fault injection: abort the COW drain after this many page
    /// chunks have been streamed, as if the primary died mid-copy. The
    /// epoch's assembly is never finished at the backup, so it can never be
    /// acked or committed — failover must fall back to the previous epoch.
    pub cow_fail_after_chunks: Option<u64>,
    /// Backup-side store of the shipped nondeterminism logs, keyed by epoch
    /// (`hybrid_replay` extension). Lives engine-side next to the agent — log
    /// chunks are event-typed, not page-typed, so they do not ride the page
    /// assembly barrier, but they share its fate: `rearm_prepare` drops them
    /// with the dead backup.
    log_store: BTreeMap<u64, ReplayLog>,
    /// Test-only fault injection: the primary dies after shipping this many
    /// log chunks — later chunks (and the seal message) are lost in flight,
    /// leaving the tail epoch's log *partial*. Failover must then take the
    /// plain last-checkpoint fallback instead of replaying.
    pub log_fail_after_chunks: Option<u64>,
    /// Log chunks shipped so far (drives `log_fail_after_chunks`).
    log_chunks_shipped: u64,
    /// Staged-pipeline extension: ack-path work of the previous epoch's
    /// pipeline not yet overlapped by execution time. `pipeline_advance`
    /// drains it once per epoch; whatever remains at the next checkpoint
    /// stalls the stop phase (backpressure).
    pipe_backlog: Nanos,
    /// Test-only fault injection (staged pipeline): the backup-ingest stage
    /// crashes once, right after receiving this zero-based chunk index. The
    /// supervisor restarts the stage and the chunk replays from the upstream
    /// queue (peek-before-commit): its receive CPU is charged twice, but the
    /// assembly is mutated exactly once — no lost or duplicated chunk.
    pub stage_fail_at_chunk: Option<u64>,
}

impl std::fmt::Debug for NiLiConEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NiLiConEngine")
            .field("opts", &self.opts)
            .field("agent", &self.agent)
            .finish()
    }
}

impl NiLiConEngine {
    /// New engine. The backup page store follows
    /// [`OptimizationConfig::optimize_criu`] (radix tree vs linked list).
    pub fn new(opts: OptimizationConfig, costs: nilicon_sim::CostModel) -> Self {
        NiLiConEngine {
            opts,
            cache: InfrequentCache::new(),
            agent: BackupAgent::new(costs.clone(), opts.optimize_criu),
            drbd: DrbdPrimary::new(),
            shadow: ShadowStore::new(),
            prepared: false,
            tracer: Tracer::disabled(),
            costs,
            bootstrap_pids: Vec::new(),
            bootstrap_cpu_carry: 0,
            cow_fail_after_chunks: None,
            log_store: BTreeMap::new(),
            log_fail_after_chunks: None,
            log_chunks_shipped: 0,
            pipe_backlog: 0,
            stage_fail_at_chunk: None,
        }
    }

    /// Is the log-loss fault injection currently swallowing chunks?
    fn log_link_down(&self) -> bool {
        self.log_fail_after_chunks
            .is_some_and(|k| self.log_chunks_shipped >= k)
    }

    /// Active optimization set.
    pub fn opts(&self) -> OptimizationConfig {
        self.opts
    }

    fn transfer_cost(&self, primary: &Kernel, bytes: u64, msgs: u64) -> Nanos {
        let c = &primary.costs;
        let mut t = c.repl_link_latency + c.repl_wire(bytes) + msgs * c.repl_msg_overhead;
        if self.opts.dump_config().via_proxy {
            t += c.proxy_overhead(bytes, msgs);
        }
        t
    }

    /// COW extension: the background copy-out of the pages write-protected
    /// at pause, streamed to the backup while the container runs.
    ///
    /// The drain is chunked and the wire is pipelined: chunk `i` can only be
    /// serialized once it has been copied out (`t_drain`) *and* the link has
    /// finished the previous chunk (`t_send`). The metadata image and DRBD
    /// traffic go out first — they are ready the moment the container
    /// resumes — so transfer overlaps copy-out. The ack lands one
    /// propagation latency after the last chunk plus the backup's receive
    /// CPU: the epoch is acked only once every deferred page has arrived,
    /// and the backup's `finish_assembly` barrier enforces the same
    /// condition structurally.
    ///
    /// Returns `(ack_delay, state_bytes, backup_cpu)`. The emitted
    /// `CowCopy + Transfer + BackupIngest + Ack` spans tile `ack_delay`
    /// exactly.
    fn cow_stream(
        &mut self,
        primary: &mut Kernel,
        mut img: CheckpointImage,
        msgs: Vec<DrbdMsg>,
        drbd_bytes: u64,
        drbd_msgs: u64,
        epoch: u64,
    ) -> SimResult<(Nanos, u64, Nanos)> {
        /// Pages per streamed chunk (the same batch size
        /// `CheckpointImage::transfer_chunks` models for the eager path).
        const COW_CHUNK: usize = 64;
        let costs = primary.costs.clone();
        let link = costs.repl_link_latency;

        let deferred = std::mem::take(&mut img.deferred_vpns);
        let expected = deferred.len() as u64;
        let mut pids: Vec<Pid> = Vec::new();
        for &(pid, _) in &deferred {
            if !pids.contains(&pid) {
                pids.push(pid);
            }
        }

        // Chunk 0: metadata + DRBD, ready immediately. `transfer_cost`
        // includes the propagation latency; peel it off — in the pipelined
        // model it is paid once, after the last chunk is serialized.
        let meta_bytes = img.state_bytes() + drbd_bytes;
        let meta_ser =
            self.transfer_cost(primary, meta_bytes, img.transfer_chunks() + drbd_msgs) - link;
        let mut backup_cpu = self.agent.begin_assembly(img, expected);
        backup_cpu += self.agent.ingest_drbd(msgs);

        let delta = self.opts.delta_transfer;
        let mut dstats = DeltaStats::default();
        let mut drained = 0u64;
        let mut payload_bytes = 0u64;
        let mut chunks_sent = 0u64;
        let mut t_drain: Nanos = 0; // when chunk i finishes copy-out
        let mut t_send: Nanos = meta_ser; // when the link finishes chunk i
        let mut aborted = false;
        'drain: for &pid in &pids {
            loop {
                let m0 = primary.meter.lifetime_total();
                let chunk = primary.cow_drain_pages(pid, COW_CHUNK)?;
                if chunk.is_empty() {
                    break;
                }
                let n = chunk.len() as u64;
                // Delta composition: encode at copy time against the shadow
                // of the last shipped epoch — the encode CPU rides the
                // drain, off the stop phase.
                let (pages, deltas, bytes) = if delta {
                    primary.meter.charge(n * costs.delta_encode_per_page);
                    let mut encs = Vec::with_capacity(chunk.len());
                    let mut bytes = 0u64;
                    for (vpn, data) in chunk {
                        let enc = self.shadow.encode(PageKey { pid, vpn }, &data, &mut dstats);
                        bytes += enc.encoded_bytes();
                        encs.push((pid, vpn, enc));
                    }
                    (Vec::new(), encs, bytes)
                } else {
                    let pages: Vec<_> = chunk.into_iter().map(|(vpn, d)| (pid, vpn, d)).collect();
                    (pages, Vec::new(), n * PAGE_SIZE as u64)
                };
                t_drain += primary.meter.lifetime_total() - m0;
                t_send = t_send.max(t_drain) + costs.repl_wire(bytes) + costs.repl_msg_overhead;
                drained += n;
                payload_bytes += bytes;
                chunks_sent += 1;
                let ingest_cpu = self.agent.ingest_chunk(epoch, pages, deltas)?;
                backup_cpu += ingest_cpu;
                if self.stage_fail_at_chunk.is_some_and(|k| k + 1 == chunks_sent) {
                    // Ingest-stage crash: the chunk replays from the upstream
                    // queue — received twice, applied once (the crashed
                    // attempt died before mutating the assembly).
                    self.stage_fail_at_chunk = None;
                    backup_cpu += ingest_cpu;
                    self.tracer.mark(TraceEvent::StageRestart {
                        stage: "ingest".into(),
                        chunk: chunks_sent - 1,
                    });
                }
                if self.cow_fail_after_chunks.is_some_and(|k| chunks_sent >= k) {
                    aborted = true;
                    break 'drain;
                }
            }
        }
        let mut faults = 0u64;
        for &pid in &pids {
            faults += primary.take_cow_faults(pid)?;
        }
        // The drain was sampled off the lifetime meter; clear the interval
        // meter so the next exec phase starts clean (the stop phase was
        // already consumed by `checkpoint`).
        primary.meter.take();

        if !aborted {
            // Commit barrier: the epoch becomes ackable only now.
            self.agent.finish_assembly(epoch)?;
        }

        let ack_delay = t_send + link + backup_cpu + link;
        self.tracer.span(
            TraceEvent::CowCopy {
                pages: drained,
                bytes: payload_bytes,
            },
            t_drain,
        );
        if faults > 0 {
            self.tracer.mark(TraceEvent::CowFault { faults });
        }
        if delta && self.tracer.enabled() {
            self.tracer.mark(TraceEvent::DeltaEncode {
                zero_pages: dstats.zero_pages,
                delta_pages: dstats.delta_pages,
                full_pages: dstats.full_pages,
                raw_bytes: dstats.raw_bytes,
                encoded_bytes: dstats.encoded_bytes,
            });
        }
        self.tracer.span(
            TraceEvent::Transfer {
                bytes: meta_bytes + payload_bytes,
            },
            t_send + link - t_drain,
        );
        self.tracer
            .span(TraceEvent::BackupIngest { probes: 0 }, backup_cpu);
        self.tracer.span(TraceEvent::Ack, link);
        Ok((ack_delay, meta_bytes + payload_bytes, backup_cpu))
    }

    /// Staged-pipeline extension: the eager dump's page payload leaves the
    /// stop phase and flows through delta-encode → transfer → backup-ingest
    /// stages overlapped with the next execution phase. The dumped pages are
    /// immutable refcounted snapshots, so encoding them after resume cannot
    /// race container writes — the stop phase keeps only freeze + dump +
    /// local copy.
    ///
    /// The queue between encode and transfer holds [`PIPE_BOUND`] chunks:
    /// chunk `i`'s encode cannot start before the link finished chunk
    /// `i - PIPE_BOUND`, so the pipeline cannot run arbitrarily far ahead of
    /// a slow link. Chunks hand off peek-before-commit — the upstream queue
    /// keeps a chunk until the downstream stage durably accepted it, so a
    /// crashed-and-restarted stage ([`stage_fail_at_chunk`]) replays its
    /// in-flight chunk: charged twice in time, applied once to the assembly.
    /// The epoch becomes ackable only at the `finish_assembly` barrier,
    /// exactly like the synchronous path, so the committed image is
    /// byte-identical.
    ///
    /// Returns `(ack_delay, state_bytes, backup_cpu)`; the emitted
    /// `Transfer + BackupIngest + Ack` spans tile `ack_delay` exactly.
    ///
    /// [`stage_fail_at_chunk`]: NiLiConEngine::stage_fail_at_chunk
    fn pipeline_stream(
        &mut self,
        primary: &mut Kernel,
        mut img: CheckpointImage,
        msgs: Vec<DrbdMsg>,
        drbd_bytes: u64,
        drbd_msgs: u64,
        epoch: u64,
    ) -> SimResult<(Nanos, u64, Nanos)> {
        /// Pages per pipelined chunk (matches `cow_stream`/`transfer_chunks`).
        const PIPE_CHUNK: usize = 64;
        /// Bounded-queue depth between the encode and transfer stages.
        const PIPE_BOUND: usize = 4;
        let costs = primary.costs.clone();
        let link = costs.repl_link_latency;

        let pages = std::mem::take(&mut img.pages);
        let expected = pages.len() as u64;
        // Chunk 0: metadata + DRBD, ready the moment the container resumes.
        // `transfer_cost` includes the propagation latency; peel it off — in
        // the pipelined model it is paid once, after the last chunk.
        let meta_bytes = img.state_bytes() + drbd_bytes;
        let meta_ser =
            self.transfer_cost(primary, meta_bytes, img.transfer_chunks() + drbd_msgs) - link;
        let mut backup_cpu = self.agent.begin_assembly(img, expected);
        backup_cpu += self.agent.ingest_drbd(msgs);

        let delta = self.opts.delta_transfer;
        let mut dstats = DeltaStats::default();
        let mut payload_bytes = 0u64;
        let mut t_enc: Nanos = 0; // when the encode stage finishes chunk i
        let mut t_send: Nanos = meta_ser; // when the link finishes chunk i
        let mut sent_at: Vec<Nanos> = Vec::new();
        for (i, chunk) in pages.chunks(PIPE_CHUNK).enumerate() {
            let n = chunk.len() as u64;
            if self.tracer.enabled() {
                self.tracer.mark(TraceEvent::StageEnqueue {
                    stage: "encode".into(),
                    chunk: i as u64,
                });
            }
            // Bounded handoff: the encode stage stalls while the link is
            // PIPE_BOUND chunks behind (its output queue is full).
            let gate = if i >= PIPE_BOUND { sent_at[i - PIPE_BOUND] } else { 0 };
            let (pages_out, deltas_out, bytes, encode_cost) = if delta {
                // Encode against the shadow of the last shipped epoch — the
                // CPU rides the background stage, off the stop phase.
                let cost = n * costs.delta_encode_per_page;
                primary.meter.charge(cost);
                let mut encs = Vec::with_capacity(chunk.len());
                let mut bytes = 0u64;
                for (pid, vpn, data) in chunk {
                    let enc = self.shadow.encode(
                        PageKey { pid: *pid, vpn: *vpn },
                        data,
                        &mut dstats,
                    );
                    bytes += enc.encoded_bytes();
                    encs.push((*pid, *vpn, enc));
                }
                (Vec::new(), encs, bytes, cost)
            } else {
                (chunk.to_vec(), Vec::new(), n * PAGE_SIZE as u64, 0)
            };
            t_enc = t_enc.max(gate) + encode_cost;
            // Queueing delay between encode-done and link pickup.
            let wait = t_send.saturating_sub(t_enc);
            t_send = t_send.max(t_enc) + costs.repl_wire(bytes) + costs.repl_msg_overhead;
            sent_at.push(t_send);
            payload_bytes += bytes;
            let ingest_cpu = self.agent.ingest_chunk(epoch, pages_out, deltas_out)?;
            backup_cpu += ingest_cpu;
            if self.stage_fail_at_chunk.is_some_and(|k| k == i as u64) {
                // Ingest-stage crash: the chunk replays from the upstream
                // queue — received twice, applied once (the crashed attempt
                // died before mutating the assembly).
                self.stage_fail_at_chunk = None;
                backup_cpu += ingest_cpu;
                self.tracer.mark(TraceEvent::StageRestart {
                    stage: "ingest".into(),
                    chunk: i as u64,
                });
            }
            if self.tracer.enabled() {
                self.tracer.mark(TraceEvent::StageDequeue {
                    stage: "transfer".into(),
                    chunk: i as u64,
                    wait,
                });
            }
        }
        // The encode CPU was charged to the background stage; it must not
        // bill the next exec phase's interval meter.
        primary.meter.take();

        // Commit barrier: the epoch becomes ackable only now.
        self.agent.finish_assembly(epoch)?;

        let ack_delay = t_send + link + backup_cpu + link;
        if delta && self.tracer.enabled() {
            self.tracer.mark(TraceEvent::DeltaEncode {
                zero_pages: dstats.zero_pages,
                delta_pages: dstats.delta_pages,
                full_pages: dstats.full_pages,
                raw_bytes: dstats.raw_bytes,
                encoded_bytes: dstats.encoded_bytes,
            });
        }
        self.tracer.span(
            TraceEvent::Transfer {
                bytes: meta_bytes + payload_bytes,
            },
            t_send + link,
        );
        self.tracer
            .span(TraceEvent::BackupIngest { probes: 0 }, backup_cpu);
        self.tracer.span(TraceEvent::Ack, link);
        Ok((ack_delay, meta_bytes + payload_bytes, backup_cpu))
    }
}

impl Checkpointer for NiLiConEngine {
    fn name(&self) -> &'static str {
        "NiLiCon"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn inject_stage_fail(&mut self, chunk: u64) {
        self.stage_fail_at_chunk = Some(chunk);
    }

    fn prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()> {
        // Arm soft-dirty tracking on every container address space. No
        // clear_refs here: everything the application wrote during init is
        // still soft-dirty, so the first incremental checkpoint captures the
        // full initial state (the initial sync).
        let mode = if self.opts.pml_tracking {
            TrackingMode::HardwareLog
        } else {
            TrackingMode::SoftDirty
        };
        for pid in container.all_pids() {
            primary.mm_mut(pid)?.set_tracking(mode);
        }
        // Input-blocking mechanism (§V-C).
        let mode = if self.opts.plug_input_blocking {
            InputMode::Buffer
        } else {
            InputMode::Drop
        };
        primary
            .stack_mut(container.ns.net)?
            .input_gate
            .set_mode(mode);
        // Output commit: plug the egress qdisc for the whole run.
        primary.stack_mut(container.ns.net)?.plugged = true;
        self.prepared = true;
        Ok(())
    }

    fn checkpoint(
        &mut self,
        primary: &mut Kernel,
        backup: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<CheckpointOutcome> {
        if !self.prepared {
            return Err(SimError::Invalid("engine not prepared".into()));
        }
        let cfg = self.opts.dump_config();
        // The staged pipeline needs the staging buffer (§V-D(2)) to overlap
        // the ack path with execution; COW has its own streaming drain, so
        // the eager pipelined path covers the remaining shape.
        let pipelined = self.opts.pipeline && self.opts.staging_buffer && !cfg.cow;
        primary.meter.take();

        // --- Stop phase -------------------------------------------------
        // Phase boundaries are sampled off the lifetime meter so the emitted
        // trace spans telescope exactly to the final `stop_time`.
        let m_start = primary.meter.lifetime_total();
        primary.freeze_cgroup(container.cgroup, cfg.freeze)?;
        // Block network input (§III): even frozen, RX would mutate state.
        let block_cost = if self.opts.plug_input_blocking {
            primary.costs.plug_block_cycle
        } else {
            primary.costs.firewall_block_cycle
        };
        primary.meter.charge(block_cost);
        primary.stack_mut(container.ns.net)?.block_input();
        let m_frozen = primary.meter.lifetime_total();

        // Incremental dump.
        let cache = if self.opts.cache_infrequent {
            Some(&mut self.cache)
        } else {
            None
        };
        let mut img = dump_container(primary, container, &cfg, cache, epoch)?;
        let dirty_pages = img.stats.dirty_pages;
        let dump_phases = img.stats.phases;
        let m_dumped = primary.meter.lifetime_total();

        // Delta-encode the page payload for the wire (HyCoR extension):
        // classify each dirty page against the shadow of the last shipped
        // epoch. The encode CPU is part of the stop phase — it must finish
        // before the container resumes, or the parasite's page contents
        // could change under the encoder. Under COW the pages are deferred,
        // so encoding moves to the background drain (`cow_stream`); under the
        // staged pipeline the dumped pages are immutable snapshots, so
        // encoding moves to the background encode stage (`pipeline_stream`).
        let delta_stats = if self.opts.delta_transfer && !cfg.cow && !pipelined {
            let stats = img.encode_pages(&mut self.shadow);
            primary
                .meter
                .charge(stats.pages() * primary.costs.delta_encode_per_page);
            Some(stats)
        } else {
            None
        };
        let m_encoded = primary.meter.lifetime_total();
        let state_bytes = img.state_bytes();
        let chunks = img.transfer_chunks();

        // DRBD: ship this epoch's disk writes + barrier (async — the wire
        // time of disk writes does not stop the container).
        let mut msgs = self.drbd.ship(&mut primary.vfs.disk);
        msgs.push(self.drbd.barrier(epoch));
        let wire = nilicon_drbd::wire_stats(&msgs);
        let drbd_msgs = msgs.len() as u64;

        // Resume.
        primary.stack_mut(container.ns.net)?.unblock_input();
        primary.thaw_cgroup(container.cgroup)?;
        let m_resumed = primary.meter.lifetime_total();
        let mut stop_time = primary.meter.take();

        self.tracer.span(TraceEvent::Freeze, m_frozen - m_start);
        self.tracer.span(TraceEvent::Dump { dirty_pages }, m_dumped - m_frozen);
        if self.tracer.enabled() {
            self.tracer.mark(TraceEvent::DumpDetail {
                processes: dump_phases.processes,
                pages: dump_phases.pages,
                sockets: dump_phases.sockets,
                fs_cache: dump_phases.fs_cache,
                infrequent: dump_phases.infrequent,
            });
        }
        if let Some(ds) = delta_stats {
            self.tracer.span(
                TraceEvent::DeltaEncode {
                    zero_pages: ds.zero_pages,
                    delta_pages: ds.delta_pages,
                    full_pages: ds.full_pages,
                    raw_bytes: ds.raw_bytes,
                    encoded_bytes: ds.encoded_bytes,
                },
                m_encoded - m_dumped,
            );
        }
        self.tracer.span(TraceEvent::LocalCopy, m_resumed - m_encoded);
        self.tracer.mark(TraceEvent::DrbdShip {
            writes: wire.writes,
            bytes: wire.bytes,
        });

        // Staged pipeline: if the previous epoch's pipeline has not fully
        // drained, the stop phase stalls until the backlog clears. A link
        // slower than the epoch's execution phase thus degrades toward the
        // paper's synchronous behavior instead of queueing unboundedly.
        if self.opts.pipeline && self.pipe_backlog > 0 {
            let stalled = std::mem::take(&mut self.pipe_backlog);
            stop_time += stalled;
            self.tracer.span(TraceEvent::Backpressure { stalled }, stalled);
        }

        // --- Transfer + ack --------------------------------------------
        // COW: the container is already running; drain the write-protected
        // pages into staging and stream them to the backup, chunk by chunk.
        if cfg.cow {
            let (ack_delay, state_bytes, backup_cpu) =
                self.cow_stream(primary, img, msgs, wire.bytes, drbd_msgs, epoch)?;
            if self.opts.pipeline {
                self.pipe_backlog = ack_delay;
            }
            return Ok(CheckpointOutcome {
                stop_time,
                state_bytes,
                dirty_pages,
                ack_delay,
                backup_cpu,
            });
        }

        // Staged pipeline (eager dump): the page payload flows through the
        // encode → transfer → ingest stages overlapped with the next
        // execution phase.
        if pipelined {
            let (ack_delay, state_bytes, backup_cpu) =
                self.pipeline_stream(primary, img, msgs, wire.bytes, drbd_msgs, epoch)?;
            self.pipe_backlog = ack_delay;
            return Ok(CheckpointOutcome {
                stop_time,
                state_bytes,
                dirty_pages,
                ack_delay,
                backup_cpu,
            });
        }

        // Without the staging buffer the parasite pipes pages out one at a
        // time, so the synchronous transfer pays per-page message overheads
        // (part of what §V-D(2)+(3) eliminate).
        let transfer_msgs = if self.opts.staging_buffer {
            chunks
        } else {
            chunks + dirty_pages
        };
        let transfer =
            self.transfer_cost(primary, state_bytes + wire.bytes, transfer_msgs + drbd_msgs);
        let link = primary.costs.repl_link_latency;
        let mut backup_cpu = self.agent.ingest(img);
        backup_cpu += self.agent.ingest_drbd(msgs);
        self.tracer.span(
            TraceEvent::Transfer {
                bytes: state_bytes + wire.bytes,
            },
            transfer,
        );

        let ack_delay = if self.opts.staging_buffer {
            // §V-D(2): transfer overlaps the next execution phase; the ack
            // (and output release) lands after wire + backup receive. The
            // page-store probes happen at the deferred commit — see the
            // `BackupCommit` marker emitted there.
            self.tracer
                .span(TraceEvent::BackupIngest { probes: 0 }, backup_cpu);
            self.tracer.span(TraceEvent::Ack, link);
            transfer + backup_cpu + link
        } else {
            // Without staging, the container stays stopped until the backup
            // has consumed the state — transfer, receive, and inline commit
            // are all on the critical path.
            let commit_cpu = self.agent.commit(epoch, &mut backup.vfs.disk)?;
            let (probes, _) = self.agent.last_commit_stats();
            self.tracer
                .span(TraceEvent::BackupIngest { probes }, backup_cpu + commit_cpu);
            self.tracer.span(TraceEvent::Ack, link);
            stop_time += transfer + backup_cpu + commit_cpu + link;
            0
        };

        Ok(CheckpointOutcome {
            stop_time,
            state_bytes: state_bytes + wire.bytes,
            dirty_pages,
            ack_delay,
            backup_cpu,
        })
    }

    fn pipeline_advance(&mut self, elapsed: Nanos) {
        self.pipe_backlog = self.pipe_backlog.saturating_sub(elapsed);
    }

    fn commit(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos> {
        // Logs at or below the committed checkpoint are dead weight — their
        // effects are inside the checkpoint image.
        self.log_store.retain(|&e, _| e > epoch);
        if self.opts.staging_buffer {
            let cpu = self.agent.commit(epoch, &mut backup.vfs.disk)?;
            if self.tracer.enabled() {
                let (probes, disk_pages) = self.agent.last_commit_stats();
                self.tracer
                    .mark(TraceEvent::BackupCommit { probes, disk_pages });
            }
            Ok(cpu)
        } else {
            Ok(0) // already committed inline during the stop phase
        }
    }

    fn failover(&mut self, backup: &mut Kernel) -> SimResult<(RestoredContainer, FailoverReport)> {
        self.agent.discard_uncommitted();
        let img = self.agent.materialize()?;
        let restore_cfg = RestoreConfig {
            optimized_rto: self.opts.optimized_rto,
            block_input: true,
        };
        backup.meter.take();
        let restored = nilicon_criu::restore_container(backup, &img, &restore_cfg)?;
        backup.meter.take();

        let c = &backup.costs;
        let rto = if self.opts.optimized_rto {
            c.tcp_rto_repair_min
        } else {
            c.tcp_rto_default
        };
        // Sockets come back roughly half-way through the restore (fd-table
        // restoration precedes page loading for later processes); the RTO
        // runs concurrently with the remaining restore and the ARP
        // broadcast. Table II reports only the non-overlapped remainder.
        let tcp = rto.saturating_sub(restored.restore_time / 2 + c.gratuitous_arp);
        let report = FailoverReport {
            restore: restored.restore_time,
            arp: c.gratuitous_arp,
            tcp,
            others: c.recovery_misc,
            disk_pages_committed: 0,
        };
        Ok((restored, report))
    }

    fn committed_epoch(&self) -> Option<u64> {
        self.agent.committed_epoch()
    }

    fn supports_rearm(&self) -> bool {
        self.opts.rearm
    }

    fn rearm_prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()> {
        // The old backup died with its buffers: every replica-side structure
        // restarts empty, and the delta shadow is stale (the replacement has
        // no base image to patch against).
        self.cache = InfrequentCache::new();
        self.agent = BackupAgent::new(self.costs.clone(), self.opts.optimize_criu);
        self.drbd = DrbdPrimary::new();
        self.shadow = ShadowStore::new();
        self.bootstrap_pids.clear();
        self.bootstrap_cpu_carry = 0;
        self.log_store.clear();
        self.log_chunks_shipped = 0;
        self.pipe_backlog = 0;
        self.prepared = false;
        self.prepare(primary, container)
    }

    fn bootstrap_begin(
        &mut self,
        primary: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<BootstrapBegin> {
        if !self.prepared {
            return Err(SimError::Invalid("engine not prepared for bootstrap".into()));
        }
        let cfg = self.opts.dump_config();
        primary.meter.take();

        // Stop phase: freeze + block input, full dump with the page copies
        // deferred via COW, DRBD full-device snapshot, resume. The container
        // pauses for roughly one incremental epoch's stop time even though
        // the entire image is being captured.
        primary.freeze_cgroup(container.cgroup, cfg.freeze)?;
        let block_cost = if self.opts.plug_input_blocking {
            primary.costs.plug_block_cycle
        } else {
            primary.costs.firewall_block_cycle
        };
        primary.meter.charge(block_cost);
        primary.stack_mut(container.ns.net)?.block_input();

        let cache = if self.opts.cache_infrequent {
            Some(&mut self.cache)
        } else {
            None
        };
        let mut img = bootstrap_dump(primary, container, &cfg, cache, epoch)?;

        // The write log only covers history the dead backup already had; the
        // full-device snapshot below supersedes it.
        let _ = primary.vfs.disk.take_writes();
        let mut msgs: Vec<DrbdMsg> = primary
            .vfs
            .disk
            .full_sync_writes()
            .into_iter()
            .map(DrbdMsg::Write)
            .collect();
        msgs.push(self.drbd.barrier(epoch));

        primary.stack_mut(container.ns.net)?.unblock_input();
        primary.thaw_cgroup(container.cgroup)?;
        let stop_time = primary.meter.take();

        let deferred = std::mem::take(&mut img.deferred_vpns);
        let total_pages = deferred.len() as u64;
        let state_bytes = img.state_bytes();
        self.bootstrap_pids.clear();
        for &(pid, _) in &deferred {
            if !self.bootstrap_pids.contains(&pid) {
                self.bootstrap_pids.push(pid);
            }
        }
        self.bootstrap_cpu_carry = self.agent.begin_assembly(img, total_pages);
        self.bootstrap_cpu_carry += self.agent.ingest_drbd(msgs);
        Ok(BootstrapBegin {
            stop_time,
            total_pages,
            state_bytes,
        })
    }

    fn bootstrap_step(
        &mut self,
        primary: &mut Kernel,
        epoch: u64,
        max_pages: u64,
    ) -> SimResult<BootstrapStep> {
        /// Pages per streamed message, matching `cow_stream`'s batch size.
        const COW_CHUNK: usize = 64;
        let mut pages = 0u64;
        let mut bytes = 0u64;
        let mut backup_cpu = std::mem::take(&mut self.bootstrap_cpu_carry);
        let pids = self.bootstrap_pids.clone();
        'drain: for &pid in &pids {
            loop {
                if pages >= max_pages {
                    break 'drain;
                }
                let want = ((max_pages - pages) as usize).min(COW_CHUNK);
                let chunk = primary.cow_drain_pages(pid, want)?;
                if chunk.is_empty() {
                    break;
                }
                let n = chunk.len() as u64;
                let batch: Vec<_> = chunk.into_iter().map(|(vpn, d)| (pid, vpn, d)).collect();
                backup_cpu += self.agent.ingest_chunk(epoch, batch, Vec::new())?;
                pages += n;
                bytes += n * PAGE_SIZE as u64;
            }
        }
        let mut remaining = 0u64;
        for &pid in &pids {
            primary.take_cow_faults(pid)?;
            remaining += primary.cow_pending(pid)? as u64;
        }
        // The drain rides the background thread: it must not bill the next
        // exec phase's interval meter.
        primary.meter.take();
        Ok(BootstrapStep {
            pages,
            bytes,
            backup_cpu,
            remaining,
        })
    }

    fn bootstrap_finish(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos> {
        self.agent.finish_assembly(epoch)?;
        if !self.agent.epoch_complete(epoch) {
            return Err(SimError::Invalid(format!(
                "bootstrap epoch {epoch} sealed without its disk barrier"
            )));
        }
        let cpu = self.agent.commit(epoch, &mut backup.vfs.disk)?;
        self.bootstrap_pids.clear();
        Ok(cpu)
    }

    fn bootstrap_abort(&mut self, primary: &mut Kernel, _container: &Container) -> SimResult<()> {
        // Unwind the COW protect set — drain every deferred page to nowhere
        // so the promoted container stops write-faulting — and drop the
        // half-assembled image with the dead replacement.
        let pids = std::mem::take(&mut self.bootstrap_pids);
        for &pid in &pids {
            while !primary.cow_drain_pages(pid, 64)?.is_empty() {}
            primary.take_cow_faults(pid)?;
        }
        primary.meter.take();
        self.bootstrap_cpu_carry = 0;
        let _ = self.agent.discard_uncommitted();
        Ok(())
    }

    fn supports_replay(&self) -> bool {
        self.opts.hybrid_replay
    }

    fn ship_log(
        &mut self,
        primary: &mut Kernel,
        epoch: u64,
        events: &[ReplayEvent],
    ) -> SimResult<LogShipOutcome> {
        if !self.opts.hybrid_replay {
            return Err(SimError::Invalid("hybrid_replay is off".into()));
        }
        if events.is_empty() {
            return Ok(LogShipOutcome::default());
        }
        let c = &primary.costs;
        let bytes: u64 = events.iter().map(ReplayEvent::byte_len).sum();
        let backup_cpu = c.backup_recv(bytes, 1);
        // One chunk out, one commit confirmation back — the whole point of
        // the hybrid scheme is that this round-trip is link-scale (~tens of
        // µs), not epoch-scale.
        let commit_latency = c.repl_link_latency
            + c.repl_wire(bytes)
            + c.repl_msg_overhead
            + backup_cpu
            + c.repl_link_latency;
        let link_down = self.log_link_down();
        self.log_chunks_shipped += 1;
        if link_down {
            // The chunk left the primary but never arrived: the epoch's log
            // stays short and unsealed. The caller still observes a normal
            // send — the primary cannot know its link just died.
            return Ok(LogShipOutcome {
                bytes,
                chunks: 1,
                commit_latency,
                backup_cpu: 0,
            });
        }
        let log = self
            .log_store
            .entry(epoch)
            .or_insert_with(|| ReplayLog::new(epoch));
        log.events.extend_from_slice(events);
        Ok(LogShipOutcome {
            bytes,
            chunks: 1,
            commit_latency,
            backup_cpu,
        })
    }

    fn seal_log(&mut self, epoch: u64) -> SimResult<()> {
        if !self.opts.hybrid_replay {
            return Err(SimError::Invalid("hybrid_replay is off".into()));
        }
        if self.log_link_down() {
            return Ok(()); // the seal message is lost with the link
        }
        self.log_store
            .entry(epoch)
            .or_insert_with(|| ReplayLog::new(epoch))
            .sealed = true;
        Ok(())
    }

    fn take_replay_tail(&mut self) -> SimResult<ReplayTail> {
        if !self.opts.hybrid_replay {
            return Err(SimError::Invalid("hybrid_replay is off".into()));
        }
        let committed = self.agent.committed_epoch();
        let store = std::mem::take(&mut self.log_store);
        let mut tail = ReplayTail::default();
        let mut expect = committed.map(|e| e + 1).unwrap_or(1);
        for (epoch, log) in store {
            if committed.is_some_and(|c| epoch <= c) {
                continue; // already inside the checkpoint
            }
            if epoch != expect {
                tail.dropped_partial = true; // gap: a whole epoch log vanished
                break;
            }
            if !log.sealed {
                tail.dropped_partial = true; // partial tail: seal never landed
                break;
            }
            expect += 1;
            tail.logs.push(log);
        }
        Ok(tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
    use nilicon_sim::time::MILLISECOND;

    fn setup() -> (Kernel, Kernel, Container, NiLiConEngine) {
        let mut primary = Kernel::default();
        let backup = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut primary, &spec).unwrap();
        let engine = NiLiConEngine::new(OptimizationConfig::nilicon(), primary.costs.clone());
        (primary, backup, c, engine)
    }

    #[test]
    fn checkpoint_requires_prepare() {
        let (mut p, mut b, c, mut e) = setup();
        assert!(e.checkpoint(&mut p, &mut b, &c, 1).is_err());
    }

    #[test]
    fn epoch_cycle_ships_state_to_backup() {
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"epoch1")
            .unwrap();
        let o1 = e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        assert_eq!(o1.dirty_pages, 1);
        assert!(o1.stop_time > 0);
        assert!(o1.ack_delay > 0, "staged: ack after resume");
        e.commit(&mut b, 1).unwrap();
        assert_eq!(e.committed_epoch(), Some(1));
        assert_eq!(e.agent.stored_pages(), 1);

        // Clean epoch: nothing dirty.
        let o2 = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
        assert_eq!(o2.dirty_pages, 0);
        assert!(o2.state_bytes < o1.state_bytes);
    }

    #[test]
    fn warm_stop_time_is_small_with_all_optimizations() {
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        // Warm the cache.
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"x").unwrap();
        let o = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
        assert!(
            o.stop_time < 15 * MILLISECOND,
            "optimized warm stop for a small container, got {}ms",
            o.stop_time / MILLISECOND
        );
    }

    #[test]
    fn basic_config_stop_time_is_huge() {
        let mut p = Kernel::default();
        let mut b = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut p, &spec).unwrap();
        let mut e = NiLiConEngine::new(OptimizationConfig::basic(), p.costs.clone());
        e.prepare(&mut p, &c).unwrap();
        let o = e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        assert!(
            o.stop_time > 250 * MILLISECOND,
            "basic = freeze sleep + full infrequent collect + sync transfer, got {}ms",
            o.stop_time / MILLISECOND
        );
        assert_eq!(o.ack_delay, 0, "no staging buffer: ack inside stop");
        assert_eq!(e.committed_epoch(), Some(1), "inline commit");
    }

    #[test]
    fn delta_transfer_shrinks_wire_bytes_and_reconciles() {
        use crate::trace::{TraceEvent, Tracer};
        let run = |delta: bool| {
            let mut p = Kernel::default();
            let mut b = Kernel::default();
            let spec = ContainerSpec::server("redis", 10, 6379);
            let c = ContainerRuntime::create(&mut p, &spec).unwrap();
            let mut opts = OptimizationConfig::nilicon();
            opts.delta_transfer = delta;
            let mut e = NiLiConEngine::new(opts, p.costs.clone());
            let (tracer, ring) = Tracer::in_memory(256);
            e.set_tracer(tracer.clone());
            e.prepare(&mut p, &c).unwrap();
            let mut total_bytes = 0u64;
            for epoch in 1..=4 {
                // Same single-byte edit each epoch: page 0 is sparse churn.
                p.mem_write(c.init_pid(), MemLayout::heap(0), &[epoch as u8])
                    .unwrap();
                tracer.begin_epoch(epoch as u64, 0);
                let o = e.checkpoint(&mut p, &mut b, &c, epoch as u64).unwrap();
                tracer
                    .reconcile(epoch as u64, o.stop_time, o.ack_delay)
                    .unwrap();
                e.commit(&mut b, epoch as u64).unwrap();
                total_bytes += o.state_bytes;
            }
            (total_bytes, ring.snapshot())
        };
        let (full_bytes, full_recs) = run(false);
        let (delta_bytes, delta_recs) = run(true);
        assert!(
            delta_bytes < full_bytes,
            "delta wire bytes {delta_bytes} < full {full_bytes}"
        );
        assert!(
            !full_recs
                .iter()
                .any(|r| matches!(r.kind, TraceEvent::DeltaEncode { .. })),
            "no DeltaEncode span on the full-page path"
        );
        let spans: Vec<_> = delta_recs
            .iter()
            .filter(|r| matches!(r.kind, TraceEvent::DeltaEncode { .. }))
            .collect();
        assert_eq!(spans.len(), 4, "one DeltaEncode span per epoch");
        // Epochs 2+ re-dirty the same page: it ships as a sparse XOR delta.
        let TraceEvent::DeltaEncode {
            delta_pages,
            encoded_bytes,
            raw_bytes,
            ..
        } = spans[2].kind
        else {
            unreachable!()
        };
        assert_eq!(delta_pages, 1);
        assert!(encoded_bytes < raw_bytes / 10, "sparse epoch shrinks 10x+");
    }

    #[test]
    fn cow_checkpoint_moves_copy_off_the_stop_phase() {
        use crate::trace::{TraceEvent, Tracer};
        let run = |cow: bool| {
            let mut p = Kernel::default();
            let mut b = Kernel::default();
            let spec = ContainerSpec::server("redis", 10, 6379);
            let c = ContainerRuntime::create(&mut p, &spec).unwrap();
            let mut opts = OptimizationConfig::nilicon();
            opts.cow_checkpoint = cow;
            let mut e = NiLiConEngine::new(opts, p.costs.clone());
            let (tracer, ring) = Tracer::in_memory(256);
            e.set_tracer(tracer.clone());
            e.prepare(&mut p, &c).unwrap();
            // Warm epoch: initial full sync.
            e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
            e.commit(&mut b, 1).unwrap();
            for page in 0..300u64 {
                p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[9])
                    .unwrap();
            }
            tracer.begin_epoch(2, 0);
            let o = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
            tracer.reconcile(2, o.stop_time, o.ack_delay).unwrap();
            e.commit(&mut b, 2).unwrap();
            (o, ring.snapshot(), e)
        };
        let (eager, eager_recs, eager_e) = run(false);
        let (cow, cow_recs, cow_e) = run(true);

        assert_eq!(cow.dirty_pages, eager.dirty_pages);
        assert_eq!(
            cow.state_bytes, eager.state_bytes,
            "same pages cross the wire either way"
        );
        // Small fixture: the footprint-proportional pagemap scan still
        // dominates, but the per-page copy cost itself must have left the
        // stop phase (protect ≈ 150 ns vs copy ≈ 2170 ns, × 300 pages).
        let saved = eager.stop_time - cow.stop_time;
        assert!(
            saved > 300 * 1_500,
            "copy cost left the stop phase: saved {saved}ns (stop {} vs eager {})",
            cow.stop_time,
            eager.stop_time
        );
        assert!(
            cow.ack_delay > eager.ack_delay,
            "the copy did not vanish — it moved to the ack path"
        );

        assert!(
            !eager_recs
                .iter()
                .any(|r| matches!(r.kind, TraceEvent::CowCopy { .. })),
            "no CowCopy span on the eager path"
        );
        let span = cow_recs
            .iter()
            .find(|r| r.epoch == 2 && matches!(r.kind, TraceEvent::CowCopy { .. }))
            .expect("CowCopy span emitted");
        let TraceEvent::CowCopy { pages, bytes } = span.kind else {
            unreachable!()
        };
        assert_eq!(pages, 300);
        assert_eq!(bytes, 300 * 4096);
        assert!(span.dur > 0, "the drain costs real time");

        // The committed backup images are byte-identical.
        let a = eager_e.agent.materialize().unwrap();
        let b = cow_e.agent.materialize().unwrap();
        assert_eq!(a.pages.len(), b.pages.len());
        for (pa, pb) in a.pages.iter().zip(b.pages.iter()) {
            assert_eq!((pa.0, pa.1), (pb.0, pb.1));
            assert_eq!(pa.2, pb.2, "page {:?}/{:#x}", pa.0, pa.1);
        }
    }

    #[test]
    fn cow_mid_copy_failure_is_never_ackable() {
        let mut p = Kernel::default();
        let mut b = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut p, &spec).unwrap();
        let mut opts = OptimizationConfig::nilicon();
        opts.cow_checkpoint = true;
        let mut e = NiLiConEngine::new(opts, p.costs.clone());
        e.prepare(&mut p, &c).unwrap();
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"committed")
            .unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();

        // Epoch 2: the primary dies after the first streamed chunk.
        for page in 0..200u64 {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[7])
                .unwrap();
        }
        e.cow_fail_after_chunks = Some(1);
        e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
        assert!(
            !e.agent.epoch_complete(2),
            "partial assembly must not satisfy the ack condition"
        );
        let (restored, _) = e.failover(&mut b).unwrap();
        restored.finish(&mut b).unwrap();
        let mut buf = [0u8; 9];
        b.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"committed", "fell back to the last full epoch");
        assert_eq!(e.committed_epoch(), Some(1));
    }

    #[test]
    fn rearmed_backup_image_matches_always_replicated_run() {
        // Equivalence: a backup bootstrapped mid-run via the re-replication
        // path must end up with a committed image byte-identical to a backup
        // that was replicated from the start, given the same writes.
        let writes = |epoch: u64| -> Vec<(u64, u8)> {
            vec![(epoch % 7, epoch as u8), (10 + epoch, 0xA0 | epoch as u8)]
        };
        let apply = |p: &mut Kernel, c: &Container, epoch: u64| {
            for (page, val) in writes(epoch) {
                p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val])
                    .unwrap();
            }
        };
        // Give the container a working set large enough that the bootstrap
        // image spans several bounded chunks (the per-step cap below is 64).
        let warm = |p: &mut Kernel, c: &Container| {
            for page in 20..220u64 {
                p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[page as u8])
                    .unwrap();
            }
        };
        let mut opts = OptimizationConfig::nilicon();
        opts.rearm = true;

        // Run A: continuously replicated, epochs 1..=6.
        let mut pa = Kernel::default();
        let mut ba = Kernel::default();
        let ca = ContainerRuntime::create(&mut pa, &ContainerSpec::server("redis", 10, 6379))
            .unwrap();
        let mut ea = NiLiConEngine::new(opts, pa.costs.clone());
        ea.prepare(&mut pa, &ca).unwrap();
        warm(&mut pa, &ca);
        for epoch in 1..=6u64 {
            apply(&mut pa, &ca, epoch);
            ea.checkpoint(&mut pa, &mut ba, &ca, epoch).unwrap();
            ea.commit(&mut ba, epoch).unwrap();
        }
        let img_a = ea.agent.materialize().unwrap();

        // Run B: same writes; the original backup dies after epoch 3, a
        // replacement is bootstrapped (epoch-4 writes land while the image
        // streams — COW must preserve the pre-write content), and epochs
        // 5..=6 run incrementally against the replacement.
        let mut pb = Kernel::default();
        let mut bb = Kernel::default();
        let cb = ContainerRuntime::create(&mut pb, &ContainerSpec::server("redis", 10, 6379))
            .unwrap();
        let mut eb = NiLiConEngine::new(opts, pb.costs.clone());
        eb.prepare(&mut pb, &cb).unwrap();
        warm(&mut pb, &cb);
        for epoch in 1..=3u64 {
            apply(&mut pb, &cb, epoch);
            eb.checkpoint(&mut pb, &mut bb, &cb, epoch).unwrap();
            eb.commit(&mut bb, epoch).unwrap();
        }
        let mut b2 = Kernel::default(); // the replacement backup
        eb.rearm_prepare(&mut pb, &cb).unwrap();
        let begin = eb.bootstrap_begin(&mut pb, &cb, 4).unwrap();
        assert!(begin.total_pages > 0, "full image deferred via COW");
        apply(&mut pb, &cb, 4); // mutate mid-stream
        let mut chunks = 0;
        loop {
            let step = eb.bootstrap_step(&mut pb, 4, 64).unwrap();
            chunks += 1;
            if step.remaining == 0 {
                break;
            }
            assert!(chunks < 10_000, "bootstrap must terminate");
        }
        assert!(chunks > 1, "image streamed across multiple bounded steps");
        eb.bootstrap_finish(&mut b2, 4).unwrap();
        assert_eq!(eb.committed_epoch(), Some(4));
        for epoch in 5..=6u64 {
            apply(&mut pb, &cb, epoch);
            eb.checkpoint(&mut pb, &mut b2, &cb, epoch).unwrap();
            eb.commit(&mut b2, epoch).unwrap();
        }
        let img_b = eb.agent.materialize().unwrap();

        assert_eq!(img_a.pages.len(), img_b.pages.len(), "same page set");
        for (x, y) in img_a.pages.iter().zip(img_b.pages.iter()) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert_eq!(x.2, y.2, "page {:?}/{:#x} diverged", x.0, x.1);
        }
        assert_eq!(
            ba.vfs.disk.digest(),
            b2.vfs.disk.digest(),
            "replica disks identical"
        );
    }

    #[test]
    fn bootstrap_abort_unwinds_the_cow_set() {
        let (mut p, mut b, c, e) = setup();
        let mut opts = OptimizationConfig::nilicon();
        opts.rearm = true;
        let mut e2 = NiLiConEngine::new(opts, p.costs.clone());
        assert!(!e.supports_rearm(), "paper rows never re-arm");
        assert!(e2.supports_rearm());
        e2.prepare(&mut p, &c).unwrap();
        // Resident footprint larger than the 16-page step cap used below.
        for page in 0..40u64 {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[3])
                .unwrap();
        }
        e2.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e2.commit(&mut b, 1).unwrap();

        e2.rearm_prepare(&mut p, &c).unwrap();
        let begin = e2.bootstrap_begin(&mut p, &c, 2).unwrap();
        assert!(begin.total_pages > 0);
        let step = e2.bootstrap_step(&mut p, 2, 16).unwrap();
        assert_eq!(step.pages, 16, "chunk bound respected");
        assert!(step.remaining > 0);
        e2.bootstrap_abort(&mut p, &c).unwrap();
        // All COW protections are gone: writes proceed without faulting new
        // copies, and a later bootstrap starts from scratch.
        for pid in c.all_pids() {
            assert_eq!(p.cow_pending(pid).unwrap(), 0, "pid {pid:?} unwound");
        }
        assert!(
            !e2.agent.epoch_complete(2),
            "the half-assembled image was dropped"
        );
        // A fresh attempt after the abort still works end-to-end.
        e2.rearm_prepare(&mut p, &c).unwrap();
        let mut b3 = Kernel::default();
        e2.bootstrap_begin(&mut p, &c, 3).unwrap();
        loop {
            if e2.bootstrap_step(&mut p, 3, 256).unwrap().remaining == 0 {
                break;
            }
        }
        e2.bootstrap_finish(&mut b3, 3).unwrap();
        assert_eq!(e2.committed_epoch(), Some(3));
    }

    #[test]
    fn failover_restores_committed_state_only() {
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"committed")
            .unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        // Epoch 2 checkpoint arrives but is never acked/committed.
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"uncommitt")
            .unwrap();
        e.checkpoint(&mut p, &mut b, &c, 2).unwrap();

        let (restored, report) = e.failover(&mut b).unwrap();
        restored.finish(&mut b).unwrap();
        let mut buf = [0u8; 9];
        b.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"committed");
        assert!(report.restore > 100 * MILLISECOND);
        assert_eq!(report.arp, 28 * MILLISECOND);
        assert_eq!(report.others, 7 * MILLISECOND);
    }

    #[test]
    fn failover_without_any_commit_fails_cleanly() {
        let (mut _p, mut b, _c, mut e) = setup();
        assert!(e.failover(&mut b).is_err());
    }

    #[test]
    fn disk_writes_replicate_through_drbd() {
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        let pid = c.init_pid();
        let fd = p.create_file(pid, "/data/wal", 0).unwrap();
        p.pwrite(pid, fd, 0, b"logged", 1).unwrap();
        p.fsync(pid, fd).unwrap(); // hits the primary disk + DRBD log
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        assert_eq!(
            p.vfs.disk.digest(),
            b.vfs.disk.digest(),
            "backup disk in sync"
        );
    }

    #[test]
    fn tcp_component_shrinks_with_longer_restore() {
        // Table II: Net (fast restore) has a LARGER TCP remainder than Redis
        // (slow restore) because more of the RTO overlaps recovery work.
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        let (_r, fast) = e.failover(&mut b).unwrap();

        // Bulkier container -> longer restore.
        let (mut p2, mut b2, c2, mut e2) = setup();
        e2.prepare(&mut p2, &c2).unwrap();
        for page in 0..3000u64 {
            p2.mem_write(c2.init_pid(), MemLayout::heap_page(page), &[7])
                .unwrap();
        }
        e2.checkpoint(&mut p2, &mut b2, &c2, 1).unwrap();
        e2.commit(&mut b2, 1).unwrap();
        let (_r2, slow) = e2.failover(&mut b2).unwrap();

        assert!(slow.restore > fast.restore);
        assert!(slow.tcp <= fast.tcp, "more RTO overlap with longer restore");
    }

    fn replay_setup() -> (Kernel, Kernel, Container, NiLiConEngine) {
        let mut primary = Kernel::default();
        let backup = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut primary, &spec).unwrap();
        let mut opts = OptimizationConfig::nilicon();
        opts.hybrid_replay = true;
        let engine = NiLiConEngine::new(opts, primary.costs.clone());
        (primary, backup, c, engine)
    }

    fn req_event(at: u64) -> ReplayEvent {
        ReplayEvent::Request {
            pid: Pid(1),
            at,
            payload: vec![1, 2, 3],
            response_hash: 42,
            response_len: 3,
        }
    }

    #[test]
    fn replay_api_rejected_unless_enabled() {
        let (mut p, _b, _c, mut e) = setup(); // paper config: replay off
        assert!(!e.supports_replay());
        assert!(e.ship_log(&mut p, 1, &[req_event(0)]).is_err());
        assert!(e.seal_log(1).is_err());
        assert!(e.take_replay_tail().is_err());
    }

    #[test]
    fn ship_log_commit_latency_is_link_scale() {
        let (mut p, _b, _c, mut e) = replay_setup();
        assert!(e.supports_replay());
        let o = e.ship_log(&mut p, 1, &[req_event(0)]).unwrap();
        assert_eq!(o.chunks, 1);
        assert!(o.bytes > 0);
        assert!(o.backup_cpu > 0);
        assert!(
            o.commit_latency < MILLISECOND,
            "log commit RTT is µs-scale, got {}ns",
            o.commit_latency
        );
        // Empty chunk: nothing crosses the wire.
        let z = e.ship_log(&mut p, 1, &[]).unwrap();
        assert_eq!(z.chunks, 0);
        assert_eq!(z.commit_latency, 0);
    }

    #[test]
    fn sealed_tail_is_contiguous_from_committed_epoch() {
        let (mut p, mut b, c, mut e) = replay_setup();
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        // Epochs 2 and 3 ship + seal after the checkpoint commit.
        e.ship_log(&mut p, 2, &[req_event(10)]).unwrap();
        e.seal_log(2).unwrap();
        e.ship_log(&mut p, 3, &[req_event(20), req_event(21)]).unwrap();
        e.seal_log(3).unwrap();
        let tail = e.take_replay_tail().unwrap();
        assert!(!tail.dropped_partial);
        assert_eq!(tail.logs.len(), 2);
        assert_eq!(tail.logs[0].epoch, 2);
        assert_eq!(tail.logs[1].epoch, 3);
        assert_eq!(tail.events(), 3);
    }

    #[test]
    fn commit_prunes_logs_covered_by_the_checkpoint() {
        let (mut p, mut b, c, mut e) = replay_setup();
        e.prepare(&mut p, &c).unwrap();
        e.ship_log(&mut p, 1, &[req_event(0)]).unwrap();
        e.seal_log(1).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        let tail = e.take_replay_tail().unwrap();
        assert!(tail.logs.is_empty(), "epoch-1 log died with its checkpoint");
        assert!(!tail.dropped_partial);
    }

    #[test]
    fn gap_or_unsealed_log_marks_tail_partial() {
        // Gap: epoch 2's log is missing entirely.
        let (mut p, mut b, c, mut e) = replay_setup();
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        e.ship_log(&mut p, 3, &[req_event(30)]).unwrap();
        e.seal_log(3).unwrap();
        let tail = e.take_replay_tail().unwrap();
        assert!(tail.dropped_partial, "missing epoch 2 breaks the chain");
        assert!(tail.logs.is_empty());

        // Unsealed: epoch 2 shipped but the seal never landed.
        let (mut p2, mut b2, c2, mut e2) = replay_setup();
        e2.prepare(&mut p2, &c2).unwrap();
        e2.checkpoint(&mut p2, &mut b2, &c2, 1).unwrap();
        e2.commit(&mut b2, 1).unwrap();
        e2.ship_log(&mut p2, 2, &[req_event(10)]).unwrap();
        let tail2 = e2.take_replay_tail().unwrap();
        assert!(tail2.dropped_partial, "unsealed tail epoch is unusable");
        assert!(tail2.logs.is_empty());
    }

    #[test]
    fn log_link_failure_loses_chunks_and_seal_in_flight() {
        let (mut p, mut b, c, mut e) = replay_setup();
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        e.log_fail_after_chunks = Some(1);
        let o1 = e.ship_log(&mut p, 2, &[req_event(10)]).unwrap();
        assert!(o1.backup_cpu > 0, "first chunk arrives");
        // Second chunk and the seal are lost in flight; the primary cannot
        // tell — it still observes a normal send.
        let o2 = e.ship_log(&mut p, 2, &[req_event(11)]).unwrap();
        assert_eq!(o2.backup_cpu, 0, "lost chunk burns no backup CPU");
        assert_eq!(o2.chunks, 1);
        e.seal_log(2).unwrap();
        let tail = e.take_replay_tail().unwrap();
        assert!(tail.dropped_partial, "partial log cannot be replayed");
        assert!(tail.logs.is_empty());
    }
}
