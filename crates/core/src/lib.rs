//! # nilicon — transparent fault-tolerant container replication
//!
//! The primary contribution of *Fault-Tolerant Containers Using NiLiCon*
//! (Zhou & Tamir, IPDPS 2020): Remus-style high-frequency incremental
//! checkpointing of a **container** to a warm backup on another host, with
//! client-transparent failover.
//!
//! ## Architecture (paper Fig. 2)
//!
//! ```text
//!   PRIMARY HOST                              BACKUP HOST
//!   ┌─────────────────────────┐               ┌───────────────────────┐
//!   │ container (runC)        │   heartbeats  │  backup agent         │
//!   │  service processes      │  ───────────► │   failure detector    │
//!   │  keep-alive process     │               │                       │
//!   │ primary agent (CRIU')   │  cont. state  │   buffered images     │
//!   │  freeze→dump→resume     │  ───────────► │   radix page store    │
//!   │ sch_plug qdisc          │               │                       │
//!   │  output buffer/input gate│     acks     │   modified DRBD       │
//!   │ modified DRBD           │  ◄─────────── │    buffered writes    │
//!   └─────────────────────────┘               └───────────────────────┘
//! ```
//!
//! Per epoch (Fig. 1): execute 30 ms → stop (freeze, block input, incremental
//! dump, DRBD barrier) → resume → transfer state → backup acks → release the
//! epoch's buffered network output → backup commits.
//!
//! ## Crate layout
//!
//! * [`config`] — the §V optimization toggles (Table I rows) and run config,
//! * [`detector`] — the cpuacct-gated heartbeat failure detector (§IV),
//! * [`engine`] — the [`engine::Checkpointer`] trait shared with the MC
//!   baseline, plus checkpoint/failover outcome types,
//! * [`backup`] — the backup agent: buffered state, page store, DRBD buffer,
//! * [`nilicon_engine`] — the primary-side NiLiCon engine,
//! * [`placement`] — the k-of-n erasure-coded multi-backup engine with
//!   unified repair/rearm/migration streaming,
//! * [`fleet`] — the fleet-scale extension: N containers multiplexed over
//!   one primary/backup pair with staggered epochs and fair-share commit,
//! * [`traffic`] — client pool and the [`traffic::ClientBehavior`] seam that
//!   workloads implement,
//! * [`harness`] — the epoch-loop run harness (unreplicated / NiLiCon / MC)
//!   with fault injection,
//! * [`metrics`] — per-epoch records and aggregation (Tables III-VI),
//! * [`trace`] — epoch-phase spans/events with pluggable sinks (see
//!   `OBSERVABILITY.md` for the schema).
//!
//! ## Example
//!
//! Replicate a one-page echo server and survive a fail-stop fault:
//!
//! ```
//! use nilicon::harness::{RunHarness, RunMode};
//! use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
//! use nilicon_container::{Application, ContainerSpec, GuestCtx, RequestOutcome};
//! use nilicon_sim::{CostModel, SimResult};
//!
//! struct Echo;
//! impl Application for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> { Ok(()) }
//!     fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8])
//!         -> SimResult<RequestOutcome>
//!     {
//!         ctx.cpu(10_000);
//!         ctx.heap_write(0, req)?;            // stage through guest memory
//!         let mut back = vec![0u8; req.len()];
//!         ctx.heap_read(0, &mut back)?;
//!         Ok(RequestOutcome { response: back })
//!     }
//! }
//!
//! let mut spec = ContainerSpec::server("echo", 10, 9000);
//! spec.heap_pages = 64;
//! let engine = NiLiConEngine::new(OptimizationConfig::nilicon(), CostModel::default());
//! let mut h = RunHarness::new(
//!     spec, Box::new(Echo), None,
//!     RunMode::Replicated(Box::new(engine)),
//!     ReplicationConfig::default(), 1.0,
//! ).unwrap();
//! h.inject_fault_at(200_000_000);   // fail-stop at t = 200 ms
//! h.run_epochs(20).unwrap();
//! let r = h.finish();
//! assert!(r.recovered);
//! assert!(r.failover.unwrap().total() > 0);
//! ```

#![warn(missing_docs)]

pub mod backup;
pub mod config;
pub mod detector;
pub mod engine;
pub mod fleet;
pub mod harness;
pub mod metrics;
pub mod nilicon_engine;
pub mod placement;
pub mod replay;
pub mod trace;
pub mod traffic;

pub use backup::DiscardCounts;
pub use config::{OptimizationConfig, ReplicationConfig};
pub use detector::{FailureDetector, Lease};
pub use engine::{BootstrapBegin, BootstrapStep, CheckpointOutcome, Checkpointer, FailoverReport};
pub use fleet::{FleetResult, FleetScheduler, LaneResult, LaneSpec};
pub use harness::{ChaosStats, RunHarness, RunMode, RunResult};
pub use metrics::{percentile, EpochRecord, RunMetrics};
pub use engine::{LogShipOutcome, ReplayTail};
pub use nilicon_engine::NiLiConEngine;
pub use placement::PlacementEngine;
pub use replay::{replay_tail, ReplayOutcome};
pub use trace::{TraceEvent, TraceRecord, TraceSink, Tracer};
pub use traffic::{ClientBehavior, ClientPool};
