//! The failure detector (§IV).
//!
//! The primary agent sends a heartbeat to the backup agent every 30 ms — but
//! only if the container's `cpuacct.usage` has advanced, so a wedged
//! container is detected even when its host is healthy. A keep-alive process
//! in the container wakes every 30 ms and executes ~1000 instructions to keep
//! `cpuacct` moving when the application is idle. The backup initiates
//! recovery after three consecutive missed 30 ms intervals; the paper reports
//! an average detection latency of 90 ms.

use crate::trace::{TraceEvent, Tracer};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};

/// Primary-side heartbeat gate: emit a beat only if cpuacct advanced.
#[derive(Debug, Default)]
pub struct HeartbeatSender {
    last_cpuacct: Nanos,
    beats_sent: u64,
    beats_suppressed: u64,
}

impl HeartbeatSender {
    /// New sender.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called every heartbeat interval with the current `cpuacct.usage`.
    /// Returns true if a beat should be sent.
    pub fn tick(&mut self, cpuacct_usage: Nanos) -> bool {
        if cpuacct_usage > self.last_cpuacct {
            self.last_cpuacct = cpuacct_usage;
            self.beats_sent += 1;
            true
        } else {
            self.beats_suppressed += 1;
            false
        }
    }

    /// `(sent, suppressed)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.beats_sent, self.beats_suppressed)
    }
}

/// Backup-side detector: 3 consecutive missed intervals ⇒ failure.
#[derive(Debug)]
pub struct FailureDetector {
    interval: Nanos,
    misses_allowed: u32,
    last_beat: Nanos,
    detected_at: Option<Nanos>,
    /// Missed intervals already traced since the last beat (dedupes
    /// `HeartbeatMiss` events across repeated `check` calls).
    misses_traced: u32,
    tracer: Tracer,
}

impl FailureDetector {
    /// New detector; `start` anchors the first interval.
    pub fn new(interval: Nanos, misses_allowed: u32, start: Nanos) -> Self {
        FailureDetector {
            interval,
            misses_allowed,
            last_beat: start,
            detected_at: None,
            misses_traced: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a [`Tracer`]: each missed interval emits one
    /// [`TraceEvent::HeartbeatMiss`] at the interval boundary where the
    /// backup noticed the silence.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// A heartbeat arrived at time `t`.
    pub fn on_beat(&mut self, t: Nanos) {
        if self.detected_at.is_none() {
            self.last_beat = self.last_beat.max(t);
            self.misses_traced = 0;
        }
    }

    /// Evaluate at time `now`: has a failure been detected?
    pub fn check(&mut self, now: Nanos) -> bool {
        if self.detected_at.is_some() {
            return true;
        }
        if self.tracer.enabled() && now > self.last_beat {
            // Trace each interval boundary that elapsed beat-less, capped at
            // the detection threshold.
            let elapsed =
                (((now - self.last_beat) / self.interval) as u32).min(self.misses_allowed);
            for k in (self.misses_traced + 1)..=elapsed {
                self.tracer.event_at(
                    TraceEvent::HeartbeatMiss { misses: k },
                    self.last_beat + k as Nanos * self.interval,
                );
            }
            self.misses_traced = self.misses_traced.max(elapsed);
        }
        if now >= self.last_beat + self.misses_allowed as Nanos * self.interval {
            // The detector notices at the interval boundary following the
            // third miss.
            self.detected_at = Some(self.last_beat + self.misses_allowed as Nanos * self.interval);
            return true;
        }
        false
    }

    /// When detection fired (after [`FailureDetector::check`] returned true).
    pub fn detected_at(&self) -> Option<Nanos> {
        self.detected_at
    }

    /// The first heartbeat-interval boundary strictly after `t` — the
    /// earliest instant the backup can notice silence that began at `t`.
    /// Detection polling must walk these boundaries: the detector only ever
    /// changes state on its own beat grid, so probing on a grid offset from
    /// it (e.g. stepping from the fault time) asks about instants where
    /// nothing can happen.
    pub fn next_boundary(&self, t: Nanos) -> Nanos {
        if t <= self.last_beat {
            return self.last_beat + self.interval;
        }
        let intervals = (t - self.last_beat).div_ceil(self.interval).max(1);
        self.last_beat + intervals * self.interval
    }

    /// Cancel a standing detection at time `t`: a late heartbeat proved the
    /// suspicion false before promotion went through. Only meaningful when
    /// promotion is gated on something slower than detection (the chaos
    /// lease — see [`Lease`]); the paper's detector promotes immediately, so
    /// on the paper path detection stays sticky and this is never called.
    /// Re-anchors the silence window at `t`.
    pub fn rescind(&mut self, t: Nanos) {
        self.detected_at = None;
        self.last_beat = self.last_beat.max(t);
        self.misses_traced = 0;
    }

    /// Detection latency for a fault at `fault_time` (None before
    /// detection). A detection time *earlier* than the fault means the
    /// detector carries stale state (e.g. it was not reset after a previous
    /// failover) — that is a simulation bug, reported as a hard error rather
    /// than silently clamped to zero.
    pub fn detection_latency(&self, fault_time: Nanos) -> SimResult<Option<Nanos>> {
        match self.detected_at {
            None => Ok(None),
            Some(d) if d < fault_time => Err(SimError::Invalid(format!(
                "detection at {d}ns precedes the fault at {fault_time}ns: stale detector state"
            ))),
            Some(d) => Ok(Some(d - fault_time)),
        }
    }
}

/// An output-release lease: the split-brain fence (chaos extension).
///
/// The backup's epoch ack doubles as a lease grant: it authorizes the
/// primary to release buffered output for `term` nanoseconds past the ack's
/// anchor time. The *primary* anchors its copy of the lease at the moment it
/// started the checkpoint (epoch end — before any link delay), while the
/// *backup* anchors its grant at the (later) time the ack completed. Since
/// the primary's anchor always precedes the backup's, the primary's lease
/// expires first:
///
/// ```text
/// primary expiry = epoch_end + term  ≤  ack_time + term = granted expiry
/// ```
///
/// so a primary that loses contact stops releasing output (*fences*) strictly
/// before the backup's grant can lapse — and the backup only promotes after
/// its grant expires. At most one side can ever release output: the
/// exactly-one-owner invariant (DESIGN.md §9).
#[derive(Debug, Clone, Copy)]
pub struct Lease {
    term: Nanos,
    expires_at: Nanos,
}

impl Lease {
    /// A lease with the given term, initially granted at `start` (the
    /// implicit grant that accompanies replication handoff).
    pub fn new(term: Nanos, start: Nanos) -> Self {
        Lease {
            term,
            expires_at: start + term,
        }
    }

    /// Renew: extend to `anchor + term`. Renewals never shorten the lease
    /// (a reordered stale ack must not revoke a newer grant).
    pub fn grant(&mut self, anchor: Nanos) {
        self.expires_at = self.expires_at.max(anchor + self.term);
    }

    /// Whether the lease still authorizes output release at `t`.
    pub fn valid_at(&self, t: Nanos) -> bool {
        t < self.expires_at
    }

    /// Current expiry instant.
    pub fn expires_at(&self) -> Nanos {
        self.expires_at
    }

    /// The lease term.
    pub fn term(&self) -> Nanos {
        self.term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::time::MILLISECOND;

    const MS30: Nanos = 30 * MILLISECOND;

    #[test]
    fn sender_gates_on_cpuacct_progress() {
        let mut s = HeartbeatSender::new();
        assert!(s.tick(100), "progress -> beat");
        assert!(!s.tick(100), "no progress -> suppressed");
        assert!(s.tick(150));
        assert_eq!(s.counters(), (2, 1));
    }

    #[test]
    fn detector_fires_after_three_misses() {
        let mut d = FailureDetector::new(MS30, 3, 0);
        // Healthy beats.
        for i in 1..=5u64 {
            d.on_beat(i * MS30);
            assert!(!d.check(i * MS30 + MILLISECOND));
        }
        // Fault at t=150ms: no more beats.
        let fault = 5 * MS30;
        assert!(!d.check(fault + 2 * MS30), "two misses: not yet");
        assert!(d.check(fault + 3 * MS30), "three misses: detected");
        assert_eq!(d.detected_at(), Some(fault + 3 * MS30));
        assert_eq!(
            d.detection_latency(fault).unwrap(),
            Some(90 * MILLISECOND),
            "§VII-B: ~90ms"
        );
    }

    #[test]
    fn beats_after_detection_are_ignored() {
        let mut d = FailureDetector::new(MS30, 3, 0);
        assert!(d.check(3 * MS30));
        d.on_beat(4 * MS30);
        assert!(d.check(4 * MS30), "detection is sticky");
        assert_eq!(d.detected_at(), Some(3 * MS30));
    }

    #[test]
    fn no_false_positive_while_beating() {
        let mut d = FailureDetector::new(MS30, 3, 0);
        let mut t = 0;
        for _ in 0..1000 {
            t += MS30;
            d.on_beat(t);
            assert!(!d.check(t + MS30 / 2));
        }
    }

    #[test]
    fn missed_intervals_emit_deduplicated_trace_events() {
        let (tracer, ring) = crate::trace::Tracer::in_memory(16);
        let mut d = FailureDetector::new(MS30, 3, 0);
        d.set_tracer(tracer);
        d.on_beat(MS30);
        // Repeated checks within the same silence window: one event per
        // missed interval, no duplicates.
        assert!(!d.check(2 * MS30 + MILLISECOND));
        assert!(!d.check(2 * MS30 + 2 * MILLISECOND));
        assert!(!d.check(3 * MS30 + MILLISECOND));
        assert!(d.check(4 * MS30));
        let misses: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter_map(|r| match r.kind {
                TraceEvent::HeartbeatMiss { misses } => Some((misses, r.t)),
                _ => None,
            })
            .collect();
        assert_eq!(misses, vec![(1, 2 * MS30), (2, 3 * MS30), (3, 4 * MS30)]);
        // A beat resets the miss counter.
        let mut d2 = FailureDetector::new(MS30, 3, 0);
        let (tr2, ring2) = crate::trace::Tracer::in_memory(16);
        d2.set_tracer(tr2);
        assert!(!d2.check(MS30 + MILLISECOND));
        d2.on_beat(2 * MS30);
        assert!(!d2.check(3 * MS30 + MILLISECOND));
        assert_eq!(ring2.len(), 2, "one miss before the beat, one after");
    }

    #[test]
    fn mid_interval_fault_detection_latency_bounds() {
        // Fault lands mid-interval: latency between 90 and 120 ms.
        let mut d = FailureDetector::new(MS30, 3, 0);
        d.on_beat(MS30);
        let fault = MS30 + 17 * MILLISECOND;
        // Poll on the detector's own beat grid.
        let mut t = d.next_boundary(fault);
        while !d.check(t) {
            t += MS30;
        }
        let lat = d.detection_latency(fault).unwrap().unwrap();
        assert!(
            (73 * MILLISECOND..=120 * MILLISECOND).contains(&lat),
            "latency {}ms",
            lat / MILLISECOND
        );
    }

    #[test]
    fn next_boundary_lands_on_the_beat_grid() {
        let mut d = FailureDetector::new(MS30, 3, 0);
        d.on_beat(5 * MS30);
        // At or before the last beat: the following boundary.
        assert_eq!(d.next_boundary(0), 6 * MS30);
        assert_eq!(d.next_boundary(5 * MS30), 6 * MS30);
        // Mid-interval: rounds up to the next boundary, never past it.
        assert_eq!(d.next_boundary(5 * MS30 + 1), 6 * MS30);
        assert_eq!(d.next_boundary(6 * MS30 - 1), 6 * MS30);
        // Exactly on a later boundary: stays there.
        assert_eq!(d.next_boundary(7 * MS30), 7 * MS30);
    }

    #[test]
    fn rescind_cancels_detection_and_reanchors() {
        let mut d = FailureDetector::new(MS30, 3, 0);
        assert!(d.check(3 * MS30), "silence from t=0 detects at 90ms");
        // A late beat arrives at 95ms; the harness rescinds the suspicion.
        d.rescind(95 * MILLISECOND);
        assert_eq!(d.detected_at(), None);
        assert!(!d.check(95 * MILLISECOND + 2 * MS30), "window re-anchored");
        assert!(d.check(95 * MILLISECOND + 3 * MS30), "silence detects again");
    }

    #[test]
    fn primary_lease_expires_no_later_than_the_grant() {
        // Primary anchors at epoch end, backup at ack time (later): the
        // fence closes before promotion opens, for any ack delay.
        let term = 150 * MILLISECOND;
        for ack_delay in [0, 1, 370_000, 12 * MILLISECOND] {
            let epoch_end = 600 * MILLISECOND;
            let mut holder = Lease::new(term, 0);
            let mut grant = Lease::new(term, 0);
            holder.grant(epoch_end);
            grant.grant(epoch_end + ack_delay);
            assert!(holder.expires_at() <= grant.expires_at());
            // At the instant the grant lapses, the holder is already fenced.
            assert!(!holder.valid_at(grant.expires_at()));
        }
    }

    #[test]
    fn stale_grant_never_shortens_a_lease() {
        let mut l = Lease::new(100, 0);
        l.grant(500);
        l.grant(200); // reordered stale ack
        assert_eq!(l.expires_at(), 600);
        assert!(l.valid_at(599));
        assert!(!l.valid_at(600));
    }

    #[test]
    fn detection_before_fault_is_a_hard_error() {
        let mut d = FailureDetector::new(MS30, 3, 0);
        assert!(d.check(3 * MS30));
        // Asking about a fault *after* the (stale) detection must error, not
        // silently report a 0ns latency.
        assert!(d.detection_latency(4 * MS30).is_err());
        assert_eq!(d.detection_latency(0).unwrap(), Some(3 * MS30));
        // Undetected: no latency, no error.
        let d2 = FailureDetector::new(MS30, 3, 0);
        assert_eq!(d2.detection_latency(0).unwrap(), None);
    }
}
