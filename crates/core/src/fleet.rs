//! EXTENSION (fleet scale): multiplex N replicated containers over one
//! primary/backup host pair.
//!
//! NiLiCon replicates one container per host pair; a real deployment packs
//! many. The [`FleetScheduler`] runs N independent *lanes* — each with its
//! own container, application, client pool, and [`NiLiConEngine`] (its own
//! shadow store and backup agent) — over one shared primary kernel, one
//! shared backup kernel, and two shared per-pair resources:
//!
//! * a **serial dump service** (one CRIU' dump helper per host): overlapping
//!   stop phases queue, and the queue wait is surfaced as a
//!   [`TraceEvent::Backpressure`] stop-phase span so the reconciliation
//!   identity still holds per lane;
//! * a **shared transfer link** to the backup: concurrent epoch transfers
//!   are scheduled either deficit-round-robin (default; no hot-container
//!   starvation, quantum ≈ one 64 KiB wire chunk) or FIFO (the
//!   `fleet_aligned` convoy mode), with the extra wait surfaced as a
//!   [`TraceEvent::FairShareWait`] ack-phase span that delays that lane's
//!   output commit only.
//!
//! Epoch boundaries are **staggered**: lane `i` phase-offsets its epoch by
//! `i·E/N` so at most one lane is in its stop phase at a time (until dump
//! time exceeds `E/N`). The `fleet_aligned` knob removes the stagger *and*
//! the fair-share discipline to demonstrate the convoy: all N lanes freeze
//! at once, queue on the dump service, and FIFO-commit behind the hottest
//! lane.
//!
//! Failure handling is **per lane**: one consolidated heartbeat channel
//! carries an N-bit liveness bitmap (one cpuacct-gated bit per container);
//! each lane has its own [`FailureDetector`] and holder/grant [`Lease`]
//! pair, so a fault on container A promotes only A's ownership to the
//! backup — container B keeps executing on the primary with zero broken
//! connections. The lease fence (holder anchored at epoch end on the
//! primary, grant anchored at ack receipt on the backup, so the holder
//! always expires first) preserves exactly-one-owner per container.
//!
//! Off in every paper row: `OptimizationConfig::fleet == 0` in `basic()`
//! and `nilicon()`, and Tables I–VI never construct a scheduler. With
//! `fleet == 1` the lane commits byte-identical backup images, with the
//! same reconciliation identities, as a plain single-engine loop (pinned by
//! `tests/fleet_equivalence.rs`).

use crate::config::ReplicationConfig;
use crate::detector::{FailureDetector, HeartbeatSender, Lease};
use crate::engine::{Checkpointer, FailoverReport};
use crate::metrics::{EpochRecord, RunMetrics};
use crate::nilicon_engine::NiLiConEngine;
use crate::trace::{TraceEvent, Tracer};
use crate::traffic::{ClientBehavior, ClientPool};
use nilicon_container::{
    encode_frame, try_decode_frame, Application, Container, ContainerRuntime, ContainerSpec,
    GuestCtx, MemLayout,
};
use nilicon_criu::CheckpointImage;
use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::{Endpoint, HostId};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::InputMode;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};
use std::collections::{HashMap, VecDeque};

/// Keep-alive process cost per epoch (matches the harness).
const KEEPALIVE_COST: Nanos = 300;

/// Base address for per-lane client stacks (lane `i` gets `CLIENT_BASE+i`).
const CLIENT_BASE: u32 = 200;

fn jitter(state: &mut u64, range: Nanos) -> Nanos {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) % range.max(1)
}

/// One container's worth of workload handed to [`FleetScheduler::new`].
pub struct LaneSpec {
    /// Container spec. The address must be unique across the fleet.
    pub spec: ContainerSpec,
    /// The application served inside the container.
    pub app: Box<dyn Application>,
    /// Optional closed-loop clients (each lane gets its own client netns,
    /// so §VII-A's zero-broken-connections gate is attributable per lane).
    pub behavior: Option<Box<dyn ClientBehavior>>,
}

/// Which host currently owns (executes) a lane's container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    Primary,
    Backup,
}

/// One epoch transfer contending for the shared replication link.
struct LinkJob {
    lane: usize,
    ready: Nanos,
    dur: Nanos,
}

/// The shared primary→backup transfer link: serial, scheduled either
/// deficit-round-robin (fair) or FIFO (aligned/convoy mode).
struct SharedLink {
    fair: bool,
    busy_until: Nanos,
    /// Link time served per lane so far (the DRR deficit counter).
    served: Vec<Nanos>,
    /// Per-lane completion of the lane's own previous transfer: waiting on
    /// one's own prior epoch is pipeline overlap, not contention, and is
    /// excluded from the reported fair-share wait (a one-lane fleet must
    /// report exactly the plain engine's ack delays).
    own_busy: Vec<Nanos>,
    /// DRR quantum (wire time of one 64 KiB transfer chunk).
    quantum: Nanos,
}

impl SharedLink {
    /// Schedule a batch of transfers that became ready together (an aligned
    /// boundary produces up to N; a staggered one produces one). Returns
    /// `(lane, fair_wait, completion)` per job, where `fair_wait` is the
    /// time the transfer spent waiting on (or interleaved with) other
    /// lanes' traffic beyond its own wire time.
    fn schedule(&mut self, mut jobs: Vec<LinkJob>) -> Vec<(usize, Nanos, Nanos)> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let start = jobs
            .iter()
            .map(|j| j.ready)
            .min()
            .expect("non-empty batch")
            .max(self.busy_until);
        let mut raw: Vec<(usize, Nanos, Nanos, Nanos)> = Vec::with_capacity(jobs.len());
        if self.fair {
            // Deficit round-robin in `quantum` slices: the lane with the
            // least link time served so far goes first, so a small transfer
            // is never stuck behind a hot lane's multi-megabyte epoch.
            let mut remaining: Vec<Nanos> = jobs.iter().map(|j| j.dur).collect();
            let mut now = start;
            let mut left = jobs.len();
            while left > 0 {
                let pick = (0..jobs.len())
                    .filter(|&i| remaining[i] > 0)
                    .min_by_key(|&i| (self.served[jobs[i].lane], jobs[i].lane))
                    .expect("left > 0");
                let slice = remaining[pick].min(self.quantum.max(1));
                now += slice;
                remaining[pick] -= slice;
                self.served[jobs[pick].lane] += slice;
                if remaining[pick] == 0 {
                    let j = &jobs[pick];
                    raw.push((j.lane, j.ready, j.dur, now));
                    left -= 1;
                }
            }
            self.busy_until = now;
        } else {
            // FIFO run-to-completion in arrival (lane) order: the convoy.
            jobs.sort_by_key(|j| (j.ready, j.lane));
            let mut now = start;
            for j in jobs {
                now = now.max(j.ready) + j.dur;
                self.served[j.lane] += j.dur;
                raw.push((j.lane, j.ready, j.dur, now));
            }
            self.busy_until = now;
        }
        // Attribute waits: anything explained by the lane's own previous
        // transfer still draining is overlap, not fair-share contention.
        raw.into_iter()
            .map(|(lane, ready, dur, completion)| {
                let self_carry = self.own_busy[lane].saturating_sub(ready);
                let wait = (completion - ready).saturating_sub(dur).saturating_sub(self_carry);
                self.own_busy[lane] = completion;
                (lane, wait, ready + dur + wait)
            })
            .collect()
    }
}

/// Epoch state staged between a lane's checkpoint and its (possibly
/// fair-share-delayed) commit.
struct StagedEpoch {
    seq: u64,
    stop_eff: Nanos,
    ack_delay: Nanos,
    state_bytes: u64,
    dirty_pages: u64,
    backup_cpu: Nanos,
    exec_cpu: Nanos,
    tracking: Nanos,
    requests: u64,
    completions: Vec<(Endpoint, Nanos)>,
}

/// One replicated container multiplexed onto the shared pair.
struct Lane {
    container: Container,
    app: Box<dyn Application>,
    behavior: Option<Box<dyn ClientBehavior>>,
    pool: Option<ClientPool>,
    /// `None` after failover consumed the engine (the lane then runs
    /// unreplicated on the backup, as the paper does not re-arm).
    engine: Option<NiLiConEngine>,
    tracer: Tracer,
    /// Phase offset of this lane's epoch boundaries (`i·E/N`; 0 aligned).
    offset: Nanos,
    next_boundary: Nanos,
    /// Completed epochs (checkpoint seq is `epochs_done + 1`).
    epochs_done: u64,
    target: u64,
    pending: VecDeque<(Endpoint, Vec<u8>, Nanos)>,
    receipts: HashMap<Endpoint, VecDeque<Nanos>>,
    metrics: RunMetrics,
    jitter_state: u64,
    cpu_debt: Nanos,
    last_stop: Nanos,
    /// When this lane's own previous dump finishes on the serial service
    /// (self-carry is pipeline overlap, not queueing — see the link's
    /// `own_busy`).
    own_dump_until: Nanos,
    sender: HeartbeatSender,
    detector: FailureDetector,
    /// Primary-side output lease (anchored at each acked epoch's end).
    holder: Lease,
    /// Backup-side promotion fence (anchored at each ack receipt).
    grant: Lease,
    owner: Owner,
    /// The owning instance is executing (false between a fault and the
    /// lane's promotion).
    alive: bool,
    fault_at: Option<Nanos>,
    /// Scripted per-epoch guest writes (equivalence tests drive lanes with
    /// the same write history a plain engine loop applies).
    script: Vec<Vec<(u64, u8)>>,
    /// Completions whose release was deferred by a partition (no ack ⇒ no
    /// output commit); discarded if the lane fails over.
    held: Vec<(Endpoint, Nanos)>,
    staged: Option<StagedEpoch>,
    failover_report: Option<FailoverReport>,
    detection_latency: Option<Nanos>,
    failovers: u64,
    split_brain: bool,
    unrecovered: bool,
}

/// Per-lane outcome of a fleet run (the fleet analogue of `RunResult`).
pub struct LaneResult {
    /// Per-epoch records and latency aggregates for this lane.
    pub metrics: RunMetrics,
    /// Failover count (0 or 1; the fleet does not re-arm).
    pub failovers: u64,
    /// Recovery-latency breakdown of the lane's failover, if any.
    pub failover: Option<FailoverReport>,
    /// Fault-to-detection latency of the lane's failover, if any.
    pub detection_latency: Option<Nanos>,
    /// Whether the lane ended the run owned by the backup.
    pub on_backup: bool,
    /// Client connections broken by RST on this lane (§VII-A: must be 0).
    pub broken_connections: u64,
    /// The lane's workload-level validation outcome.
    pub verify: Result<(), String>,
    /// Promotion while the primary's output lease was still valid (the
    /// fence failed; must never happen).
    pub split_brain: bool,
    /// The lane died with no backup to promote.
    pub unrecovered: bool,
}

/// Fleet-wide outcome: per-lane results plus the shared-resource waits.
pub struct FleetResult {
    /// One result per lane, in lane order.
    pub lanes: Vec<LaneResult>,
    /// Every nonzero dump-service queue wait (the stop-phase convoy).
    pub queue_waits: Vec<Nanos>,
    /// Every nonzero shared-link wait (the commit-path contention).
    pub fair_waits: Vec<Nanos>,
    /// Heartbeat intervals observed on the consolidated channel.
    pub heartbeat_intervals: u64,
    /// Minimum number of live bits seen in any full-fleet interval.
    pub min_live_bits: u32,
}

impl FleetResult {
    /// Total split-brain promotions across the fleet (must be 0).
    pub fn split_brains(&self) -> u64 {
        self.lanes.iter().filter(|l| l.split_brain).count() as u64
    }
}

/// The fleet scheduler: N replicated containers, one primary/backup pair.
pub struct FleetScheduler {
    /// The simulated cluster (public for test instrumentation).
    pub cluster: Cluster,
    /// Primary host id.
    pub primary: HostId,
    /// Backup host id.
    pub backup: HostId,
    /// Client host id (one netns per lane).
    pub client_host: HostId,
    /// Permanently-partitioned host: routing a dead lane's address here
    /// emulates its per-container fail-stop without partitioning the
    /// (still healthy) primary.
    blackhole: HostId,
    lanes: Vec<Lane>,
    cfg: ReplicationConfig,
    /// Serial dump service: busy until this time (stop phases queue).
    svc_busy_until: Nanos,
    link: SharedLink,
    /// Consolidated heartbeat channel: liveness bitmap per interval index.
    beat_bitmap: HashMap<u64, u64>,
    /// Whole-primary fault (all primary-owned lanes promote).
    primary_fault_at: Option<Nanos>,
    primary_faulted: bool,
    /// Replication-network partition window `[from, until)`.
    partition_window: Option<(Nanos, Nanos)>,
    partition_applied: bool,
    /// Nonzero dump-service queue waits, in occurrence order.
    queue_waits_log: Vec<Nanos>,
    /// Nonzero shared-link fair/convoy waits, in occurrence order.
    fair_waits_log: Vec<Nanos>,
}

impl FleetScheduler {
    /// Build a fleet of `lanes.len()` replicated containers on one pair.
    ///
    /// `cfg.opts.fleet` must equal the lane count (the knob is what turns
    /// the extension on; paper configs have it 0) and every lane address
    /// must be unique. Boundaries are staggered by `i·E/N` unless
    /// `cfg.opts.fleet_aligned` is set, which also downgrades the shared
    /// link from deficit-round-robin to FIFO to demonstrate the convoy.
    pub fn new(cfg: ReplicationConfig, lanes: Vec<LaneSpec>) -> SimResult<Self> {
        let n = lanes.len();
        if n == 0 || cfg.opts.fleet as usize != n {
            return Err(SimError::Invalid(format!(
                "fleet: opts.fleet ({}) must equal the lane count ({n})",
                cfg.opts.fleet
            )));
        }
        let mut cluster = Cluster::new();
        let primary = cluster.add_host(Kernel::default());
        let backup = cluster.add_host(Kernel::default());
        let client_host = cluster.add_host(Kernel::default());
        let blackhole = cluster.add_host(Kernel::default());
        cluster.partition(blackhole);

        let aligned = cfg.opts.fleet_aligned;
        let interval = cfg.heartbeat_interval;
        let misses = cfg.heartbeat_misses;
        let lease_term = (misses as Nanos + 2) * interval;
        let quantum = cluster.host_mut(primary).costs.repl_wire(64 * 1024).max(1);

        let mut built = Vec::with_capacity(n);
        for (i, mut ls) in lanes.into_iter().enumerate() {
            let container = ContainerRuntime::create(cluster.host_mut(primary), &ls.spec)?;
            cluster.bind_addr(ls.spec.addr, primary, container.ns.net);

            // Workload init (clear the meters so epoch 1 starts clean).
            {
                let k = cluster.host_mut(primary);
                let mut ctx = GuestCtx::new(k, container.workers[0], 0);
                ls.app.init(&mut ctx)?;
                k.meter.take();
                k.fault_meter.take();
            }

            // Per-lane client netns on the shared client host.
            let pool = match (&ls.behavior, ls.spec.listen_port) {
                (Some(b), Some(port)) => {
                    let ns = cluster
                        .host_mut(client_host)
                        .namespaces
                        .create_set(&format!("client{i}"))
                        .net;
                    let addr = CLIENT_BASE + i as u32;
                    cluster
                        .host_mut(client_host)
                        .create_stack(ns, addr, InputMode::Buffer);
                    cluster.bind_addr(addr, client_host, ns);
                    Some(ClientPool::connect(
                        &mut cluster,
                        client_host,
                        ns,
                        b.client_count(),
                        Endpoint::new(ls.spec.addr, port),
                    )?)
                }
                _ => None,
            };

            let mut engine =
                NiLiConEngine::new(cfg.opts, cluster.host_mut(primary).costs.clone());
            engine.prepare(cluster.host_mut(primary), &container)?;

            let offset = if aligned {
                0
            } else {
                (i as Nanos) * cfg.epoch_exec / n as Nanos
            };
            built.push(Lane {
                container,
                app: ls.app,
                behavior: ls.behavior,
                pool,
                engine: Some(engine),
                tracer: Tracer::disabled(),
                offset,
                next_boundary: offset + cfg.epoch_exec,
                epochs_done: 0,
                target: 0,
                pending: VecDeque::new(),
                receipts: HashMap::new(),
                metrics: RunMetrics::default(),
                jitter_state: 0x243F6A8885A308D3 ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                cpu_debt: 0,
                last_stop: 0,
                own_dump_until: 0,
                sender: HeartbeatSender::new(),
                detector: FailureDetector::new(interval, misses, offset),
                holder: Lease::new(lease_term, 0),
                grant: Lease::new(lease_term, 0),
                owner: Owner::Primary,
                alive: true,
                fault_at: None,
                script: Vec::new(),
                held: Vec::new(),
                staged: None,
                failover_report: None,
                detection_latency: None,
                failovers: 0,
                split_brain: false,
                unrecovered: false,
            });
        }
        Ok(FleetScheduler {
            cluster,
            primary,
            backup,
            client_host,
            blackhole,
            lanes: built,
            link: SharedLink {
                fair: !aligned,
                busy_until: 0,
                served: vec![0; n],
                own_busy: vec![0; n],
                quantum,
            },
            cfg,
            svc_busy_until: 0,
            beat_bitmap: HashMap::new(),
            primary_fault_at: None,
            primary_faulted: false,
            partition_window: None,
            partition_applied: false,
            queue_waits_log: Vec::new(),
            fair_waits_log: Vec::new(),
        })
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True if the fleet has no lanes (never: `new` rejects it).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Attach a tracer to lane `lane` (its engine and detector share it).
    pub fn set_tracer(&mut self, lane: usize, tracer: Tracer) {
        let l = &mut self.lanes[lane];
        if let Some(e) = l.engine.as_mut() {
            e.set_tracer(tracer.clone());
        }
        l.detector.set_tracer(tracer.clone());
        l.tracer = tracer;
    }

    /// Drive lane `lane` with a scripted per-epoch guest-write history
    /// (epoch `e` applies `history[e-1]` before its checkpoint) — the
    /// equivalence tests' replay seam.
    pub fn script_writes(&mut self, lane: usize, history: Vec<Vec<(u64, u8)>>) {
        self.lanes[lane].script = history;
    }

    /// Fail-stop the single container of `lane` at virtual time `t` (its
    /// processes die; the primary host, and every other lane, stay up).
    pub fn inject_lane_fault_at(&mut self, lane: usize, t: Nanos) {
        self.lanes[lane].fault_at = Some(t);
    }

    /// Fail-stop the whole primary host at `t`: every primary-owned lane
    /// loses its container and promotes independently.
    pub fn inject_primary_fault_at(&mut self, t: Nanos) {
        self.primary_fault_at = Some(t);
    }

    /// Partition the primary from the backup (and clients) for
    /// `[from, until)`: acks stop, leases expire, and any lane whose grant
    /// fence runs out promotes — fenced, because the primary's holder lease
    /// expired strictly earlier.
    pub fn partition_primary(&mut self, from: Nanos, until: Nanos) {
        self.partition_window = Some((from, until));
    }

    /// The committed backup image of lane `lane` (byte-comparison seam for
    /// the `fleet == 1` equivalence bar). Errors after failover (the
    /// engine, and its agent, were consumed by the promotion).
    pub fn lane_image(&mut self, lane: usize) -> SimResult<CheckpointImage> {
        match self.lanes[lane].engine.as_ref() {
            Some(e) => e.agent.materialize(),
            None => Err(SimError::Invalid("fleet: lane failed over".into())),
        }
    }

    /// Run `n` more epochs on every lane (staggered lanes interleave; a
    /// faulted lane spends boundaries on detection/promotion instead).
    pub fn run_epochs(&mut self, n: u64) -> SimResult<()> {
        for l in &mut self.lanes {
            l.target = l.epochs_done + n;
        }
        while let Some(t) = self
            .lanes
            .iter()
            .filter(|l| l.epochs_done < l.target && !l.unrecovered)
            .map(|l| l.next_boundary)
            .min()
        {
            self.apply_world_events(t);
            let group: Vec<usize> = (0..self.lanes.len())
                .filter(|&i| {
                    let l = &self.lanes[i];
                    l.epochs_done < l.target && !l.unrecovered && l.next_boundary == t
                })
                .collect();
            self.process_group(t, &group)?;
        }
        Ok(())
    }

    /// End the run: drain per-lane verification and broken-connection
    /// counts into a [`FleetResult`].
    pub fn finish(mut self) -> FleetResult {
        let n = self.lanes.len() as u32;
        let mut results = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            let _ = lane.tracer.flush();
            let (broken, broken_err) = match lane.pool.as_ref() {
                Some(p) => match p.broken_connections(&mut self.cluster) {
                    Ok(b) => (b, None),
                    Err(e) => (u64::MAX, Some(format!("broken_connections: {e}"))),
                },
                None => (0, None),
            };
            let verify = match broken_err {
                Some(e) => Err(e),
                None => match &lane.behavior {
                    Some(b) => b.verify(),
                    None => Ok(()),
                },
            };
            results.push(LaneResult {
                metrics: std::mem::take(&mut lane.metrics),
                failovers: lane.failovers,
                failover: lane.failover_report.take(),
                detection_latency: lane.detection_latency,
                on_backup: lane.owner == Owner::Backup,
                broken_connections: broken,
                verify,
                split_brain: lane.split_brain,
                unrecovered: lane.unrecovered,
            });
        }
        let min_live_bits = self
            .beat_bitmap
            .values()
            .map(|b| b.count_ones())
            .min()
            .unwrap_or(n);
        FleetResult {
            lanes: results,
            queue_waits: std::mem::take(&mut self.queue_waits_log),
            fair_waits: std::mem::take(&mut self.fair_waits_log),
            heartbeat_intervals: self.beat_bitmap.len() as u64,
            min_live_bits,
        }
    }

    // ------------------------------------------------------------------
    // Event-loop internals
    // ------------------------------------------------------------------

    /// Apply scheduled world events (primary fault, partition window edges)
    /// that fire at or before boundary `t`.
    fn apply_world_events(&mut self, t: Nanos) {
        if let Some(f) = self.primary_fault_at {
            if f <= t && !self.primary_faulted {
                self.primary_faulted = true;
                self.cluster.partition(self.primary);
                for lane in &mut self.lanes {
                    if lane.owner == Owner::Primary {
                        lane.alive = false;
                        if lane.fault_at.is_none() {
                            lane.fault_at = Some(f);
                        }
                    }
                }
            }
        }
        if let Some((from, until)) = self.partition_window {
            if !self.partition_applied && t >= from && t < until {
                self.partition_applied = true;
                self.cluster.partition(self.primary);
            }
            if self.partition_applied && t >= until && !self.primary_faulted {
                self.partition_applied = false;
                self.cluster.heal(self.primary);
            }
        }
        for lane in &mut self.lanes {
            if let Some(f) = lane.fault_at {
                if f <= t && lane.owner == Owner::Primary && lane.alive {
                    lane.alive = false;
                    if !self.primary_faulted {
                        // Per-container fail-stop: only this lane's address
                        // goes dark (blackhole is permanently partitioned).
                        let ns = lane.container.ns.net;
                        self.cluster
                            .bind_addr(lane.container.spec.addr, self.blackhole, ns);
                    }
                }
            }
        }
    }

    /// Whether primary→backup (and primary→client) traffic is cut at `t`.
    fn replication_cut(&self) -> bool {
        self.primary_faulted || self.partition_applied
    }

    /// Process every lane whose boundary is exactly `t`: exec + checkpoint
    /// first (stop phases queue on the serial dump service in lane order),
    /// then one shared-link scheduling pass over the batch, then each
    /// lane's commit/release tail.
    fn process_group(&mut self, t: Nanos, group: &[usize]) -> SimResult<()> {
        let mut jobs: Vec<LinkJob> = Vec::new();
        for &li in group {
            if !self.lanes[li].alive {
                self.dead_lane_boundary(li, t)?;
                continue;
            }
            if let Some(job) = self.lane_exec(li, t)? {
                jobs.push(job);
            }
        }
        for (li, wait, completion) in self.link.schedule(jobs) {
            self.lane_commit(li, t, wait, completion)?;
        }
        Ok(())
    }

    /// A faulted lane's boundary: no exec, no beat — poll the detector and
    /// promote once both the detection and the grant-lease fence allow it.
    fn dead_lane_boundary(&mut self, li: usize, t: Nanos) -> SimResult<()> {
        let promote = {
            let lane = &mut self.lanes[li];
            if lane.engine.is_none() {
                // Nothing to promote to: the service is gone.
                lane.unrecovered = true;
                return Ok(());
            }
            lane.next_boundary += self.cfg.epoch_exec;
            lane.detector.check(t) && t >= lane.grant.expires_at()
        };
        if promote {
            self.promote_lane(li, t)?;
        }
        Ok(())
    }

    /// Execute one epoch of lane `li` ending at boundary `t` on its owner
    /// host; for replicated lanes, run the stop phase (queued on the serial
    /// dump service) and return the epoch's transfer job for the shared
    /// link. Unreplicated lanes complete entirely here.
    fn lane_exec(&mut self, li: usize, t: Nanos) -> SimResult<Option<LinkJob>> {
        let epoch_exec = self.cfg.epoch_exec;
        let exec_start = t - epoch_exec;
        let host = match self.lanes[li].owner {
            Owner::Primary => self.primary,
            Owner::Backup => self.backup,
        };
        let seq = self.lanes[li].epochs_done + 1;
        let replicated = self.lanes[li].engine.is_some();

        self.lanes[li].tracer.begin_epoch(seq, exec_start);
        {
            let lane = &self.lanes[li];
            lane.tracer.mark(TraceEvent::FleetEpochStart {
                lane: li as u32,
                offset: lane.offset,
            });
        }

        // Clients: issue, pump, harvest complete frames with jittered
        // arrivals (the harness's client_turnaround, per lane).
        {
            let lane = &mut self.lanes[li];
            if let (Some(pool), Some(behavior)) = (lane.pool.as_mut(), lane.behavior.as_mut()) {
                pool.issue(&mut self.cluster, behavior.as_mut(), exec_start, epoch_exec)?;
                self.cluster.pump();
                let ns = lane.container.ns.net;
                let k = self.cluster.host_mut(host);
                let cl_lat = k.costs.client_link_latency;
                for (sid, remote) in k.stack(ns)?.established_ids() {
                    let buf = k.stack(ns)?.peek_recv(sid)?;
                    let mut off = 0;
                    while let Some((frame, used)) = try_decode_frame(&buf[off..]) {
                        off += used;
                        let arrival =
                            exec_start + jitter(&mut lane.jitter_state, epoch_exec) + 2 * cl_lat;
                        lane.pending.push_back((remote, frame, arrival));
                    }
                    if off > 0 {
                        k.stack_mut(ns)?.consume_recv(sid, off)?;
                    }
                }
                lane.pending
                    .make_contiguous()
                    .sort_by_key(|(_, _, arrival)| *arrival);
            }
        }

        // Scripted writes (the equivalence seam): epoch `seq` applies
        // `script[seq-1]` exactly like a plain engine-loop history.
        {
            let lane = &mut self.lanes[li];
            if let Some(writes) = lane.script.get((seq - 1) as usize).cloned() {
                let k = self.cluster.host_mut(host);
                for (page, val) in writes {
                    k.mem_write(lane.container.init_pid(), MemLayout::heap_page(page), &[val])?;
                }
            }
        }

        // Serve requests that arrived inside this epoch.
        let budget = epoch_exec;
        let mut used: Nanos = KEEPALIVE_COST + self.lanes[li].cpu_debt;
        let mut requests = 0u64;
        let mut completions: Vec<(Endpoint, Nanos)> = Vec::new();
        loop {
            let lane = &mut self.lanes[li];
            let Some((remote, req, arrival)) = lane.pending.front().cloned() else {
                break;
            };
            if arrival > t || used >= budget {
                break;
            }
            lane.pending.pop_front();
            let pid = lane.container.workers[0];
            let k = self.cluster.host_mut(host);
            let out = {
                let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                lane.app.handle_request(&mut ctx, &req)?
            };
            let cost = k.meter.take();
            used += cost.max(100);
            // Duty-cycle stretch: a request takes C·(E+stop)/E of wall time
            // under replication (the container freezes every epoch).
            let wall = used * (epoch_exec + lane.last_stop) / epoch_exec;
            let t_done = arrival.max(exec_start) + wall;
            // Response goes out via the (plugged, if replicated) stack.
            let ns = lane.container.ns.net;
            let sid = k
                .stack(ns)?
                .established_ids()
                .into_iter()
                .find(|(_, r)| *r == remote)
                .map(|(sid, _)| sid)
                .ok_or_else(|| SimError::Invalid(format!("fleet: no connection to {remote}")))?;
            k.stack_mut(ns)?.send(sid, &encode_frame(&out.response))?;
            completions.push((remote, t_done));
            requests += 1;
        }

        let (exec_cpu, tracking) = {
            let lane = &mut self.lanes[li];
            lane.cpu_debt = used.saturating_sub(budget);
            let consumed = used.min(budget);
            let k = self.cluster.host_mut(host);
            let tracking = k.fault_meter.take();
            k.cgroups.charge_cpu(lane.container.cgroup, consumed);
            (consumed, tracking)
        };
        let now = self.cluster.clock.now().max(t);
        self.cluster.clock.advance_to(now);
        self.lanes[li]
            .tracer
            .span(TraceEvent::Exec { requests, steps: 0 }, epoch_exec);

        // Consolidated heartbeat: one channel, one liveness bit per lane.
        let cut = self.replication_cut();
        {
            let lane = &mut self.lanes[li];
            let cpuacct = self
                .cluster
                .host_mut(host)
                .cgroups
                .cpuacct_usage(lane.container.cgroup);
            let beat = lane.sender.tick(cpuacct);
            let delivered = beat && lane.owner == Owner::Primary && replicated && !cut;
            let interval_idx = t / self.cfg.heartbeat_interval.max(1);
            if delivered {
                *self.beat_bitmap.entry(interval_idx).or_insert(0) |= 1u64 << (li % 64);
                lane.detector.on_beat(t);
            } else {
                self.beat_bitmap.entry(interval_idx).or_insert(0);
            }
        }

        if !replicated {
            // Post-failover lane: unreplicated, output released immediately.
            return self.lane_release(li, t, seq, completions, exec_cpu, tracking, requests);
        }
        if cut {
            // Partitioned: the checkpoint cannot reach the backup, the ack
            // never comes, and this epoch's output stays plugged. The lease
            // is not renewed; keep executing until the fence decides.
            let lane = &mut self.lanes[li];
            lane.held.extend(completions);
            lane.epochs_done += 1;
            lane.next_boundary += epoch_exec;
            lane.metrics.push(EpochRecord {
                epoch: seq,
                stop_time: 0,
                dirty_pages: 0,
                state_bytes: 0,
                ack_delay: 0,
                exec_cpu,
                tracking_overhead: tracking,
                backup_cpu: 0,
                requests_done: requests,
                steps_done: 0,
            });
            // The backup cannot tell a dead primary from a partition: once
            // detection fires and the grant fence lapses it promotes. The
            // primary's holder lease expired strictly earlier, so the (still
            // alive) primary instance is fenced — its held output is
            // discarded at promotion, never released.
            let promotable = {
                let lane = &mut self.lanes[li];
                lane.engine.is_some() && lane.detector.check(t) && t >= lane.grant.expires_at()
            };
            if promotable {
                self.promote_lane(li, t)?;
            }
            return Ok(None);
        }

        // Stop phase: the serial dump service (one CRIU' helper per host).
        // Waiting on one's *own* previous dump (the epoch-1 full image
        // draining past later boundaries) is pre-copy-style overlap, not
        // queueing — only time spent behind other lanes counts.
        let dump_start = t.max(self.svc_busy_until);
        let queue_wait = dump_start.saturating_sub(t.max(self.lanes[li].own_dump_until));
        if queue_wait > 0 {
            self.lanes[li]
                .tracer
                .span(TraceEvent::Backpressure { stalled: queue_wait }, queue_wait);
            self.queue_waits_log.push(queue_wait);
        }
        let outcome = {
            let lane = &mut self.lanes[li];
            let engine = lane.engine.as_mut().expect("replicated lane");
            engine.pipeline_advance(epoch_exec);
            let (pk, bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
            engine.checkpoint(pk, bk, &lane.container, seq)?
        };
        let stop_eff = queue_wait + outcome.stop_time;
        let dump_end = dump_start + outcome.stop_time;
        self.svc_busy_until = dump_end;
        self.lanes[li].own_dump_until = dump_end;
        self.lanes[li].staged = Some(StagedEpoch {
            seq,
            stop_eff,
            ack_delay: outcome.ack_delay,
            state_bytes: outcome.state_bytes,
            dirty_pages: outcome.dirty_pages,
            backup_cpu: outcome.backup_cpu,
            exec_cpu,
            tracking,
            requests,
            completions,
        });
        Ok(Some(LinkJob {
            lane: li,
            ready: t + stop_eff,
            dur: outcome.ack_delay,
        }))
    }

    /// Commit tail of a replicated epoch, after the shared link scheduled
    /// its transfer: reconcile, release output at the acked time, commit on
    /// the backup, renew both leases.
    fn lane_commit(&mut self, li: usize, t: Nanos, fair_wait: Nanos, completion: Nanos) -> SimResult<()> {
        let staged = self.lanes[li].staged.take().expect("staged epoch");
        if fair_wait > 0 {
            self.lanes[li].tracer.span(
                TraceEvent::FairShareWait {
                    lane: li as u32,
                    waited: fair_wait,
                },
                fair_wait,
            );
            self.fair_waits_log.push(fair_wait);
        }
        self.lanes[li]
            .tracer
            .reconcile(staged.seq, staged.stop_eff, staged.ack_delay + fair_wait)
            .map_err(SimError::Invalid)?;

        // The ack lands at `completion`; commit on the backup and release
        // this epoch's plugged output.
        {
            let lane = &mut self.lanes[li];
            let engine = lane.engine.as_mut().expect("replicated lane");
            let bk = &mut *self.cluster.host_mut(self.backup);
            engine.commit(bk, staged.seq)?;
            lane.holder.grant(t);
            lane.grant.grant(completion);
        }
        let ack_total = staged.ack_delay + fair_wait;
        let release = t + staged.stop_eff + ack_total;
        self.lanes[li].metrics.push(EpochRecord {
            epoch: staged.seq,
            stop_time: staged.stop_eff,
            dirty_pages: staged.dirty_pages,
            state_bytes: staged.state_bytes,
            ack_delay: ack_total,
            exec_cpu: staged.exec_cpu,
            tracking_overhead: staged.tracking,
            backup_cpu: staged.backup_cpu,
            requests_done: staged.requests,
            steps_done: 0,
        });
        let lane = &mut self.lanes[li];
        lane.last_stop = staged.stop_eff;
        self.release_output(li, release, staged.completions)?;
        let lane = &mut self.lanes[li];
        lane.epochs_done += 1;
        lane.next_boundary += self.cfg.epoch_exec;
        Ok(())
    }

    /// Unreplicated epoch tail (post-failover): release immediately.
    #[allow(clippy::too_many_arguments)]
    fn lane_release(
        &mut self,
        li: usize,
        t: Nanos,
        seq: u64,
        completions: Vec<(Endpoint, Nanos)>,
        exec_cpu: Nanos,
        tracking: Nanos,
        requests: u64,
    ) -> SimResult<Option<LinkJob>> {
        self.lanes[li].metrics.push(EpochRecord {
            epoch: seq,
            stop_time: 0,
            dirty_pages: 0,
            state_bytes: 0,
            ack_delay: 0,
            exec_cpu,
            tracking_overhead: tracking,
            backup_cpu: 0,
            requests_done: requests,
            steps_done: 0,
        });
        self.release_output(li, t, completions)?;
        let lane = &mut self.lanes[li];
        lane.epochs_done += 1;
        lane.next_boundary += self.cfg.epoch_exec;
        Ok(None)
    }

    /// Release the lane's plugged output at logical time `release`, stamp
    /// receipts, pump the wire, and deliver responses to the clients.
    fn release_output(
        &mut self,
        li: usize,
        release: Nanos,
        completions: Vec<(Endpoint, Nanos)>,
    ) -> SimResult<()> {
        let host = match self.lanes[li].owner {
            Owner::Primary => self.primary,
            Owner::Backup => self.backup,
        };
        let cl_lat = self.cluster.host_mut(host).costs.client_link_latency;
        {
            let lane = &mut self.lanes[li];
            let ns = lane.container.ns.net;
            let released = self.cluster.host_mut(host).stack_mut(ns)?.release_output();
            if released > 0 {
                lane.tracer.event_at(
                    TraceEvent::OutputRelease {
                        packets: released as u64,
                    },
                    release,
                );
            }
            for (remote, t_done) in completions {
                let receipt = t_done.max(release) + cl_lat;
                lane.receipts.entry(remote).or_default().push_back(receipt);
                lane.metrics
                    .release_waits
                    .push(release.saturating_sub(t_done));
            }
        }
        self.cluster.pump();
        let lane = &mut self.lanes[li];
        if let (Some(pool), Some(behavior)) = (lane.pool.as_mut(), lane.behavior.as_mut()) {
            let lats = pool.collect(
                &mut self.cluster,
                behavior.as_mut(),
                &mut lane.receipts,
                release,
                &lane.tracer,
            )?;
            lane.metrics.response_latencies.extend(lats);
        }
        Ok(())
    }

    /// Promote lane `li`'s ownership to the backup at time `t`: restore
    /// from the lane's own backup agent, move the address, discard
    /// uncommitted output, retransmit both sides. Every other lane is
    /// untouched.
    fn promote_lane(&mut self, li: usize, t: Nanos) -> SimResult<()> {
        let fault = self.lanes[li].fault_at.unwrap_or(t);
        // Exactly-one-owner fence: the primary's output lease must have
        // lapsed before the backup takes over.
        if self.lanes[li].holder.valid_at(t) {
            self.lanes[li].split_brain = true;
        }
        let detected = self.lanes[li].detector.detected_at();
        let latency = detected.map(|d| d.saturating_sub(fault));

        let mut engine = self.lanes[li].engine.take().expect("promotable lane");
        let (restored, report) = engine.failover(self.cluster.host_mut(self.backup))?;
        let now = self.cluster.clock.now().max(t);
        self.cluster.clock.advance_to(now + report.total());

        // Gratuitous ARP: the lane's address moves to the backup.
        self.cluster.bind_addr(
            restored.container.spec.addr,
            self.backup,
            restored.container.ns.net,
        );
        restored.finish(self.cluster.host_mut(self.backup))?;

        // Rebuild the app's working state from restored guest memory.
        {
            let now = self.cluster.clock.now();
            let k = self.cluster.host_mut(self.backup);
            let mut ctx = GuestCtx::new(k, restored.container.workers[0], now);
            self.lanes[li].app.recover(&mut ctx)?;
            k.meter.take();
            k.fault_meter.take();
        }

        {
            let lane = &mut self.lanes[li];
            let discarded = (lane.pending.len() + lane.held.len()) as u64;
            let now = self.cluster.clock.now();
            lane.tracer
                .event_at(TraceEvent::OutputDiscard { packets: discarded }, now);
            lane.pending.clear();
            lane.held.clear();
            if let Some(lat) = latency {
                lane.tracer.event_at(
                    TraceEvent::Failover {
                        detection_latency: lat,
                        restore: report.restore,
                        arp: report.arp,
                        tcp: report.tcp,
                        others: report.others,
                    },
                    now,
                );
            }
            lane.container = restored.container;
            lane.owner = Owner::Backup;
            lane.alive = true;
            lane.failovers += 1;
            lane.failover_report = Some(report);
            lane.detection_latency = latency;
            lane.sender = HeartbeatSender::new();
            lane.cpu_debt = 0;
            lane.last_stop = 0;
        }

        // Retransmissions: restored server sockets re-send unacked
        // responses (§V-E); clients re-send their unacked request backlog
        // (multi-segment since the RTO fix).
        let ns = self.lanes[li].container.ns.net;
        self.cluster
            .host_mut(self.backup)
            .stack_mut(ns)?
            .retransmit_all();
        let lane = &mut self.lanes[li];
        if let Some(pool) = lane.pool.as_mut() {
            pool.retransmit(&mut self.cluster)?;
        }
        self.cluster.pump();
        let now = self.cluster.clock.now();
        let lane = &mut self.lanes[li];
        if let (Some(pool), Some(behavior)) = (lane.pool.as_mut(), lane.behavior.as_mut()) {
            let lats = pool.collect(
                &mut self.cluster,
                behavior.as_mut(),
                &mut lane.receipts,
                now,
                &lane.tracer,
            )?;
            lane.metrics.response_latencies.extend(lats);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(fair: bool) -> SharedLink {
        SharedLink {
            fair,
            busy_until: 0,
            served: vec![0; 3],
            own_busy: vec![0; 3],
            quantum: 1_000_000,
        }
    }

    fn batch() -> Vec<LinkJob> {
        vec![
            LinkJob { lane: 0, ready: 0, dur: 50_000_000 },
            LinkJob { lane: 1, ready: 0, dur: 1_000_000 },
            LinkJob { lane: 2, ready: 0, dur: 1_000_000 },
        ]
    }

    fn wait_of(out: &[(usize, Nanos, Nanos)], lane: usize) -> Nanos {
        out.iter().find(|o| o.0 == lane).expect("lane scheduled").1
    }

    /// FIFO puts the hot lane's 50 ms transfer at the head and starves the
    /// two small ones; DRR's quantum interleave completes the small
    /// transfers within a few quanta.
    #[test]
    fn fair_link_does_not_starve_small_transfers_behind_a_hot_lane() {
        let fifo_out = link(false).schedule(batch());
        assert!(wait_of(&fifo_out, 1) >= 50_000_000, "FIFO convoy");
        assert!(wait_of(&fifo_out, 2) >= 50_000_000, "FIFO convoy");

        let fair_out = link(true).schedule(batch());
        assert!(
            wait_of(&fair_out, 1) <= 3_000_000,
            "DRR: small transfer unstarved, waited {}",
            wait_of(&fair_out, 1)
        );
        assert!(wait_of(&fair_out, 2) <= 3_000_000);
        // Work conservation: the hot lane still finishes by the serial sum.
        assert!(fair_out.iter().map(|o| o.2).max().unwrap() <= 52_000_001);
    }

    /// Waiting on one's own previous transfer is overlap, not contention:
    /// a lone lane's fair-share wait is always zero.
    #[test]
    fn single_lane_never_waits_on_itself() {
        let mut l = link(true);
        let first = l.schedule(vec![LinkJob { lane: 0, ready: 0, dur: 90_000_000 }]);
        assert_eq!(wait_of(&first, 0), 0);
        // Next epoch's transfer is ready long before the first drains.
        let second = l.schedule(vec![LinkJob { lane: 0, ready: 30_000_000, dur: 5_000_000 }]);
        assert_eq!(wait_of(&second, 0), 0, "self-carry excluded");
    }
}
