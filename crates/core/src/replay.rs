//! Failover-time replay executor — the backup half of the hybrid
//! checkpoint + replay extension (`OptimizationConfig::hybrid_replay`).
//!
//! The record half lives on the primary: the harness appends one
//! [`ReplayEvent`] per nondeterministic input (request arrivals, batch
//! steps, socket deliveries, timer reads, scheduling points) to a per-epoch
//! log and ships it to the backup continuously, releasing client output as
//! soon as the covering log chunk commits — link-scale latency instead of
//! the epoch-scale ack wait (the HyCoR release rule).
//!
//! This module is the replay half: after the backup restores the last
//! *committed* checkpoint, [`replay_tail`] re-executes the sealed log tail
//! on top of it, feeding each recorded event back through the same
//! application entry points the primary used. Determinism is checked per
//! event — every replayed response must hash to the recorded
//! `response_hash`. On any divergence (log gap, unsealed tail, response
//! mismatch) the guest heap is rolled back to its pre-replay bytes and the
//! failover degrades to the plain NiLiCon last-checkpoint path.

use crate::engine::ReplayTail;
use nilicon_container::{Application, Container, GuestCtx, MemLayout};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::replay::{content_hash, ReplayEvent};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimResult, PAGE_SIZE};

/// What happened when a log tail was replayed onto a restored checkpoint.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Epochs whose logs were fully replayed.
    pub epochs: u64,
    /// Events dispatched (counted even when a later event diverges).
    pub events: u64,
    /// Backup CPU consumed by the replay (guest work metered by the kernel
    /// plus the per-event decode/dispatch cost).
    pub replay_cpu: Nanos,
    /// `None` if the tail replayed byte-identically; otherwise the
    /// divergence reason (`"partial"` for a gapped/unsealed tail rejected
    /// up front, `"mismatch"` for a response that hashed differently) and
    /// the guest heap has been rolled back to the restored checkpoint.
    pub diverged: Option<String>,
}

/// Byte snapshot of every worker's guest heap (unmapped pages read as
/// zeros) — the rollback image for divergence handling.
fn heap_snapshot(kernel: &mut Kernel, container: &Container, pages: u64) -> Vec<u8> {
    let mut out = Vec::new();
    for &pid in &container.workers {
        for page in 0..pages {
            let mut buf = vec![0u8; PAGE_SIZE];
            let _ = kernel.mem_read(pid, MemLayout::heap_page(page), &mut buf);
            out.extend_from_slice(&buf);
        }
    }
    out
}

/// Write a [`heap_snapshot`] back over the workers' heaps.
fn heap_rollback(kernel: &mut Kernel, container: &Container, pages: u64, snap: &[u8]) {
    let mut off = 0usize;
    for &pid in &container.workers {
        for page in 0..pages {
            let chunk = &snap[off..off + PAGE_SIZE];
            let _ = kernel.mem_write(pid, MemLayout::heap_page(page), chunk);
            off += PAGE_SIZE;
        }
    }
}

/// Replay a sealed log tail on top of a just-restored checkpoint.
///
/// `container` and `app` must already be through restore + recover (the
/// replayed events go through the same [`Application`] entry points the
/// primary used, so the app's Rust-side state must be live). On a
/// `"mismatch"` divergence the heap is rolled back and the caller must run
/// [`Application::recover`] again before serving.
pub fn replay_tail(
    kernel: &mut Kernel,
    container: &Container,
    app: &mut dyn Application,
    tail: &ReplayTail,
) -> SimResult<ReplayOutcome> {
    let mut out = ReplayOutcome::default();
    if tail.dropped_partial {
        // A gap or unsealed epoch anywhere in the tail poisons the whole
        // replay: released outputs past the break cannot be reproduced, so
        // nothing is executed and the restored checkpoint stands as-is.
        out.diverged = Some("partial".into());
        return Ok(out);
    }
    if tail.logs.is_empty() {
        return Ok(out); // normal case: commit caught up with the log
    }

    let pages = container.spec.heap_pages;
    let snap = heap_snapshot(kernel, container, pages);
    let per_event = kernel.costs.log_replay_per_event;
    let pid = container.workers[0];

    // Replayed execution must not re-record: the recorder stays attached
    // (the promoted primary records again after the failover) but is
    // suppressed for the duration.
    kernel.replay.set_replaying(true);
    kernel.meter.take();
    let mut diverged: Option<String> = None;

    'epochs: for log in &tail.logs {
        for ev in &log.events {
            out.events += 1;
            kernel.meter.charge(per_event);
            match ev {
                ReplayEvent::Request {
                    at,
                    payload,
                    response_hash,
                    response_len,
                    ..
                } => {
                    let outcome = {
                        let mut ctx = GuestCtx::new(kernel, pid, *at);
                        app.handle_request(&mut ctx, payload)?
                    };
                    if outcome.response.len() as u32 != *response_len
                        || content_hash(&outcome.response) != *response_hash
                    {
                        diverged = Some("mismatch".into());
                        break 'epochs;
                    }
                }
                ReplayEvent::Step { at, done, .. } => {
                    let outcome = {
                        let mut ctx = GuestCtx::new(kernel, pid, *at);
                        app.step(&mut ctx)?
                    };
                    if outcome.done != *done {
                        diverged = Some("mismatch".into());
                        break 'epochs;
                    }
                }
                // Delivery-order, stream-offset, timer, and scheduling
                // events carry no state transition of their own in the
                // simulated kernel — they pin the interleaving that the
                // request/step events already execute under. Decoding them
                // is still charged.
                ReplayEvent::SockRecv { .. }
                | ReplayEvent::SockSend { .. }
                | ReplayEvent::TimerRead { .. }
                | ReplayEvent::Sched { .. } => {}
            }
        }
        out.epochs += 1;
    }

    out.replay_cpu = kernel.meter.take();
    kernel.replay.set_replaying(false);
    if let Some(reason) = diverged {
        heap_rollback(kernel, container, pages, &snap);
        out.diverged = Some(reason);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec, RequestOutcome};
    use nilicon_sim::ids::Pid;
    use nilicon_sim::replay::ReplayLog;

    /// Deterministic counter app: state lives in guest heap, so replaying
    /// the same requests reproduces the same responses byte-for-byte.
    struct CounterApp;
    impl Application for CounterApp {
        fn name(&self) -> &str {
            "counter"
        }
        fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
            ctx.heap_write(0, &[0u8; 8])
        }
        fn handle_request(
            &mut self,
            ctx: &mut GuestCtx<'_>,
            req: &[u8],
        ) -> SimResult<RequestOutcome> {
            let mut buf = [0u8; 8];
            ctx.heap_read(0, &mut buf)?;
            let n = u64::from_le_bytes(buf) + req.len() as u64;
            ctx.heap_write(0, &n.to_le_bytes())?;
            Ok(RequestOutcome {
                response: n.to_le_bytes().to_vec(),
            })
        }
    }

    /// Cheating app: its response depends on Rust-side state that no
    /// checkpoint covers, so a restored backup replays different bytes.
    struct LeakyApp {
        calls: u64,
    }
    impl Application for LeakyApp {
        fn name(&self) -> &str {
            "leaky"
        }
        fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
            Ok(())
        }
        fn handle_request(
            &mut self,
            ctx: &mut GuestCtx<'_>,
            _req: &[u8],
        ) -> SimResult<RequestOutcome> {
            self.calls += 1;
            ctx.heap_write(0, &self.calls.to_le_bytes())?;
            Ok(RequestOutcome {
                response: self.calls.to_le_bytes().to_vec(),
            })
        }
    }

    fn setup() -> (Kernel, Container) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("t", 10, 9000);
        spec.heap_pages = 4;
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c)
    }

    fn request_event(k: &mut Kernel, c: &Container, app: &mut dyn Application, payload: &[u8]) -> ReplayEvent {
        let outcome = {
            let mut ctx = GuestCtx::new(k, c.workers[0], 0);
            app.handle_request(&mut ctx, payload).unwrap()
        };
        ReplayEvent::Request {
            pid: c.workers[0],
            at: 0,
            payload: payload.to_vec(),
            response_hash: content_hash(&outcome.response),
            response_len: outcome.response.len() as u32,
        }
    }

    #[test]
    fn deterministic_tail_replays_byte_identically() {
        // Record on one kernel...
        let (mut rec_k, rec_c) = setup();
        let mut app = CounterApp;
        {
            let mut ctx = GuestCtx::new(&mut rec_k, rec_c.workers[0], 0);
            app.init(&mut ctx).unwrap();
        }
        let mut log = ReplayLog::new(1);
        for payload in [&b"abc"[..], b"defgh", b"i"] {
            log.events
                .push(request_event(&mut rec_k, &rec_c, &mut app, payload));
        }
        log.sealed = true;
        let mut want = [0u8; 8];
        rec_k
            .mem_read(rec_c.workers[0], MemLayout::heap(0), &mut want)
            .unwrap();

        // ...replay on a fresh one (the "restored checkpoint": init state).
        let (mut rep_k, rep_c) = setup();
        let mut rep_app = CounterApp;
        {
            let mut ctx = GuestCtx::new(&mut rep_k, rep_c.workers[0], 0);
            rep_app.init(&mut ctx).unwrap();
        }
        let tail = ReplayTail {
            logs: vec![log],
            dropped_partial: false,
        };
        let out = replay_tail(&mut rep_k, &rep_c, &mut rep_app, &tail).unwrap();
        assert!(out.diverged.is_none(), "diverged: {:?}", out.diverged);
        assert_eq!(out.epochs, 1);
        assert_eq!(out.events, 3);
        assert!(out.replay_cpu >= 3 * rep_k.costs.log_replay_per_event);
        let mut got = [0u8; 8];
        rep_k
            .mem_read(rep_c.workers[0], MemLayout::heap(0), &mut got)
            .unwrap();
        assert_eq!(got, want, "replayed heap state is byte-identical");
    }

    #[test]
    fn partial_tail_is_rejected_without_executing() {
        let (mut k, c) = setup();
        let mut app = CounterApp;
        let tail = ReplayTail {
            logs: vec![ReplayLog::new(2)],
            dropped_partial: true,
        };
        let out = replay_tail(&mut k, &c, &mut app, &tail).unwrap();
        assert_eq!(out.diverged.as_deref(), Some("partial"));
        assert_eq!(out.events, 0);
        assert_eq!(out.replay_cpu, 0);
    }

    #[test]
    fn untracked_nondeterminism_diverges_and_rolls_back() {
        let (mut rec_k, rec_c) = setup();
        let mut app = LeakyApp { calls: 0 };
        let mut log = ReplayLog::new(1);
        log.events
            .push(request_event(&mut rec_k, &rec_c, &mut app, b"x"));
        log.events
            .push(request_event(&mut rec_k, &rec_c, &mut app, b"y"));
        log.sealed = true;

        // The "restored" app is a fresh struct: its hidden counter restarts
        // at 5 (not the recorded 0/1), so the second response can't match.
        let (mut rep_k, rep_c) = setup();
        rep_k
            .mem_write(rep_c.workers[0], MemLayout::heap(0), b"SNAPSHOT")
            .unwrap();
        let mut rep_app = LeakyApp { calls: 5 };
        let tail = ReplayTail {
            logs: vec![log],
            dropped_partial: false,
        };
        let out = replay_tail(&mut rep_k, &rep_c, &mut rep_app, &tail).unwrap();
        assert_eq!(out.diverged.as_deref(), Some("mismatch"));
        assert_eq!(out.epochs, 0, "the diverging epoch does not count");
        let mut buf = [0u8; 8];
        rep_k
            .mem_read(rep_c.workers[0], MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"SNAPSHOT", "heap rolled back to pre-replay bytes");
    }

    #[test]
    fn empty_tail_is_a_clean_noop() {
        let (mut k, c) = setup();
        let mut app = CounterApp;
        let tail = ReplayTail::default();
        let out = replay_tail(&mut k, &c, &mut app, &tail).unwrap();
        assert!(out.diverged.is_none());
        assert_eq!(out.events, 0);
    }

    #[test]
    fn replaying_flag_suppresses_recording() {
        let (mut rec_k, rec_c) = setup();
        let mut app = CounterApp;
        {
            let mut ctx = GuestCtx::new(&mut rec_k, rec_c.workers[0], 0);
            app.init(&mut ctx).unwrap();
        }
        let mut log = ReplayLog::new(1);
        log.events
            .push(request_event(&mut rec_k, &rec_c, &mut app, b"abc"));
        log.sealed = true;

        let (mut rep_k, rep_c) = setup();
        let mut rep_app = CounterApp;
        {
            let mut ctx = GuestCtx::new(&mut rep_k, rep_c.workers[0], 0);
            rep_app.init(&mut ctx).unwrap();
        }
        rep_k.replay.enable();
        let tail = ReplayTail {
            logs: vec![log],
            dropped_partial: false,
        };
        replay_tail(&mut rep_k, &rep_c, &mut rep_app, &tail).unwrap();
        assert!(
            rep_k.replay.is_empty(),
            "replay execution must not append to the new log"
        );
        assert!(
            !rep_k.replay.is_replaying(),
            "recorder re-arms for the promoted primary"
        );
        // Sanity: the Pid in the log is carried but dispatch happens on the
        // restored container's leader worker.
        let _ = Pid(0);
    }
}
