//! The backup agent (§III, §IV).
//!
//! Unlike Remus, NiLiCon does **not** maintain a ready-to-go backup
//! container — applying in-kernel state through syscalls every epoch would
//! cost hundreds of milliseconds. Instead the backup agent keeps everything
//! in buffers: the accumulated memory image in a page store (radix tree or
//! stock linked list, §V-A), merged file-cache state, the latest metadata
//! image, and DRBD-buffered disk writes. Only on failover is this state
//! materialized into CRIU-format images and restored.

use nilicon_criu::{
    CheckpointImage, LinkedListStore, PageEncoding, PageKey, PageStore, RadixTreeStore,
};
use nilicon_sim::ids::Pid;
use nilicon_drbd::{DrbdBackup, DrbdMsg};
use nilicon_sim::block::BlockDevice;
use nilicon_sim::costs::CostModel;
use nilicon_sim::fs::{FsCacheCheckpoint, Inode};
use nilicon_sim::ids::Ino;
use nilicon_sim::time::Nanos;
use nilicon_sim::{PageBuf, SimError, SimResult, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap};

/// Merged committed file-cache page: contents + writeback-dirty flag.
type FsPageEntry = (Box<[u8; PAGE_SIZE]>, bool);

/// An epoch arriving in pieces (COW checkpointing): the metadata image lands
/// first, then page chunks stream in as the primary's background copier
/// drains them. The epoch enters `pending` — and thus becomes ackable — only
/// once every expected page has arrived.
struct CowAssembly {
    img: CheckpointImage,
    /// Pages the primary deferred at pause (the protect-set size).
    expected_pages: u64,
    /// Pages received in chunks so far.
    received_pages: u64,
    /// Chunks received so far.
    received_chunks: u64,
}

/// What [`BackupAgent::discard_uncommitted`] threw away, per class — the
/// observability counterpart of the failover's output-commit discards (a
/// half-assembled COW epoch used to count as an opaque "1" no matter how many
/// chunks it had accumulated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscardCounts {
    /// Fully-assembled pending epochs dropped (received but never acked).
    pub epochs: usize,
    /// Streamed chunks of a half-assembled COW epoch dropped.
    pub chunks: usize,
    /// Buffered DRBD disk writes dropped.
    pub drbd: usize,
}

impl DiscardCounts {
    /// True when nothing was discarded.
    pub fn is_empty(&self) -> bool {
        *self == DiscardCounts::default()
    }
}

/// The backup agent's buffered replica state.
pub struct BackupAgent {
    store: Box<dyn PageStore>,
    /// Fully-received epochs awaiting commit (epoch → image).
    pending: BTreeMap<u64, CheckpointImage>,
    /// In-flight COW chunk assembly (at most one epoch streams at a time).
    assembling: Option<CowAssembly>,
    /// Latest committed metadata image (pages stripped — they live in the
    /// store).
    committed_meta: Option<CheckpointImage>,
    /// Merged committed file-cache state.
    fs_pages: HashMap<(Ino, u64), FsPageEntry>,
    /// Merged committed inode-cache state.
    fs_inodes: HashMap<Ino, Inode>,
    /// DRBD write buffer.
    pub drbd: DrbdBackup,
    committed_epoch: Option<u64>,
    cpu: Nanos,
    costs: CostModel,
    use_radix: bool,
    /// `(page-store probes, disk pages applied)` of the most recent
    /// [`BackupAgent::commit`] call — the trace's `BackupIngest`/
    /// `BackupCommit` attribution.
    last_commit_stats: (u64, u64),
}

impl std::fmt::Debug for BackupAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackupAgent")
            .field("committed_epoch", &self.committed_epoch)
            .field("pending", &self.pending.len())
            .field("stored_pages", &self.store.len())
            .field("cpu", &self.cpu)
            .finish()
    }
}

impl BackupAgent {
    /// New agent. `use_radix` selects NiLiCon's radix tree vs stock CRIU's
    /// linked list of checkpoint directories (§V-A).
    pub fn new(costs: CostModel, use_radix: bool) -> Self {
        let store: Box<dyn PageStore> = if use_radix {
            Box::new(RadixTreeStore::new())
        } else {
            Box::new(LinkedListStore::new())
        };
        BackupAgent {
            store,
            pending: BTreeMap::new(),
            assembling: None,
            committed_meta: None,
            fs_pages: HashMap::new(),
            fs_inodes: HashMap::new(),
            drbd: DrbdBackup::new(),
            committed_epoch: None,
            cpu: 0,
            costs,
            use_radix,
            last_commit_stats: (0, 0),
        }
    }

    /// Receive one epoch's checkpoint image off the wire. Returns the backup
    /// CPU consumed receiving it (read syscalls per chunk — Table V).
    pub fn ingest(&mut self, img: CheckpointImage) -> Nanos {
        let cpu = self
            .costs
            .backup_recv(img.state_bytes(), img.transfer_chunks());
        self.cpu += cpu;
        self.pending.insert(img.epoch, img);
        cpu
    }

    /// COW streaming step 1: receive the epoch's *metadata* image (pages
    /// still deferred on the primary) and open a chunk assembly expecting
    /// `expected_pages` pages. The epoch is not ackable until
    /// [`BackupAgent::finish_assembly`] confirms every page arrived. Returns
    /// the backup CPU consumed receiving the metadata.
    pub fn begin_assembly(&mut self, img: CheckpointImage, expected_pages: u64) -> Nanos {
        let cpu = self
            .costs
            .backup_recv(img.state_bytes(), img.transfer_chunks());
        self.cpu += cpu;
        self.assembling = Some(CowAssembly {
            img,
            expected_pages,
            received_pages: 0,
            received_chunks: 0,
        });
        cpu
    }

    /// COW streaming step 2: receive one chunk of drained pages (full bodies
    /// and/or delta encodings) for the epoch opened by
    /// [`BackupAgent::begin_assembly`]. Returns the backup CPU consumed.
    pub fn ingest_chunk(
        &mut self,
        epoch: u64,
        pages: Vec<(Pid, u64, PageBuf)>,
        deltas: Vec<(Pid, u64, PageEncoding)>,
    ) -> SimResult<Nanos> {
        let asm = match &mut self.assembling {
            Some(a) if a.img.epoch == epoch => a,
            _ => {
                return Err(SimError::Invalid(format!(
                    "cow chunk for epoch {epoch} with no matching assembly"
                )))
            }
        };
        let bytes = pages.len() as u64 * PAGE_SIZE as u64
            + deltas.iter().map(|(_, _, e)| e.encoded_bytes()).sum::<u64>();
        let cpu = self.costs.backup_recv(bytes, 1);
        self.cpu += cpu;
        asm.received_pages += (pages.len() + deltas.len()) as u64;
        asm.received_chunks += 1;
        asm.img.pages.extend(pages);
        asm.img.page_deltas.extend(deltas);
        Ok(cpu)
    }

    /// COW streaming step 3: the commit barrier. Verifies every deferred
    /// page of the epoch arrived and only then moves the image into
    /// `pending` — before this, [`BackupAgent::epoch_complete`] is false and
    /// the epoch can be neither acked nor committed.
    pub fn finish_assembly(&mut self, epoch: u64) -> SimResult<()> {
        let asm = match self.assembling.take() {
            Some(a) if a.img.epoch == epoch => a,
            other => {
                self.assembling = other;
                return Err(SimError::Invalid(format!(
                    "finish_assembly({epoch}) with no matching assembly"
                )));
            }
        };
        if asm.received_pages != asm.expected_pages {
            return Err(SimError::Invalid(format!(
                "epoch {epoch} assembly incomplete: {}/{} pages",
                asm.received_pages, asm.expected_pages
            )));
        }
        self.pending.insert(epoch, asm.img);
        Ok(())
    }

    /// Receive DRBD traffic.
    pub fn ingest_drbd(&mut self, msgs: Vec<DrbdMsg>) -> Nanos {
        let mut bytes = 0u64;
        let n = msgs.len() as u64;
        for m in msgs {
            bytes += m.wire_bytes();
            self.drbd.receive(m);
        }
        let cpu = self.costs.backup_recv(bytes, n.max(1));
        self.cpu += cpu;
        cpu
    }

    /// Whether `epoch`'s container state *and* disk barrier have both
    /// arrived — the ack condition (§IV).
    pub fn epoch_complete(&self, epoch: u64) -> bool {
        self.pending.contains_key(&epoch) && self.drbd.epoch_complete(epoch)
    }

    /// Commit everything up to and including `epoch`: merge pages into the
    /// store, merge fs-cache state, adopt the metadata image, apply disk
    /// writes. Returns backup CPU consumed.
    pub fn commit(&mut self, epoch: u64, backup_disk: &mut BlockDevice) -> SimResult<Nanos> {
        let epochs: Vec<u64> = self.pending.range(..=epoch).map(|(&e, _)| e).collect();
        let per_probe = if self.use_radix {
            self.costs.radix_insert / 4 // insert() reports 4 probes
        } else {
            self.costs.list_probe_per_ckpt
        };
        let mut cpu: Nanos = 0;
        let mut total_probes = 0u64;
        for e in epochs {
            let mut img = self.pending.remove(&e).expect("epoch listed from range");
            self.store.begin_checkpoint();
            let mut probes = 0u64;
            for (pid, vpn, data) in img.pages.drain(..) {
                probes += self.store.insert(PageKey { pid, vpn }, data);
            }
            // Delta-encoded pages: reconstruct against the store's current
            // copy (epochs apply in order, so that copy is exactly the
            // primary-side shadow base) and charge the modeled decode CPU.
            let delta_pages = img.page_deltas.len() as u64;
            for (pid, vpn, enc) in img.page_deltas.drain(..) {
                probes += self.store.apply_delta(PageKey { pid, vpn }, &enc);
            }
            cpu += delta_pages * self.costs.delta_apply_per_page;
            total_probes += probes;
            cpu += probes * per_probe;
            // Merge file-cache state.
            for (ino, idx, data, dirty) in img.fs_pages.pages.drain(..) {
                self.fs_pages.insert((ino, idx), (data, dirty));
            }
            for inode in img.fs_inodes.drain(..) {
                self.fs_inodes.insert(inode.ino, inode);
            }
            self.committed_meta = Some(img);
            self.committed_epoch = Some(e);
        }
        let disk_pages = self.drbd.commit(epoch, backup_disk) as u64;
        cpu += disk_pages as Nanos * self.costs.restore_disk_per_page;
        self.last_commit_stats = (total_probes, disk_pages);
        self.cpu += cpu;
        Ok(cpu)
    }

    /// `(page-store probes, disk pages applied)` of the most recent commit.
    pub fn last_commit_stats(&self) -> (u64, u64) {
        self.last_commit_stats
    }

    /// Failover step 1: discard everything not committed (§IV: "the backup
    /// agent discards any uncommitted state"). Returns what was dropped,
    /// per class.
    pub fn discard_uncommitted(&mut self) -> DiscardCounts {
        let epochs = self.pending.len();
        self.pending.clear();
        // A half-assembled COW epoch is by definition uncommitted: dropping
        // it means failover falls back to the last *fully-assembled*
        // committed epoch.
        let chunks = self
            .assembling
            .take()
            .map_or(0, |a| a.received_chunks as usize);
        let drbd = self.drbd.discard_uncommitted();
        DiscardCounts {
            epochs,
            chunks,
            drbd,
        }
    }

    /// Failover step 2: materialize the merged committed state as one full
    /// checkpoint image ("uses the committed state to create image files in
    /// a format that CRIU expects", §IV).
    pub fn materialize(&self) -> SimResult<CheckpointImage> {
        let meta = self
            .committed_meta
            .as_ref()
            .ok_or_else(|| SimError::ImageCorrupt("no committed checkpoint".into()))?;
        let mut img = meta.clone();
        img.pages = self
            .store
            .iter_sorted()
            .into_iter()
            .map(|(k, p)| (k.pid, k.vpn, p.clone()))
            .collect();
        // Merged fs state.
        let mut fs = FsCacheCheckpoint::default();
        let mut keys: Vec<(Ino, u64)> = self.fs_pages.keys().copied().collect();
        keys.sort();
        for k in keys {
            let (data, dirty) = &self.fs_pages[&k];
            fs.pages.push((k.0, k.1, data.clone(), *dirty));
        }
        img.fs_pages = fs;
        let mut inodes: Vec<Inode> = self.fs_inodes.values().cloned().collect();
        inodes.sort_by_key(|i| i.ino);
        img.fs_inodes = inodes;
        Ok(img)
    }

    /// Highest committed epoch.
    pub fn committed_epoch(&self) -> Option<u64> {
        self.committed_epoch
    }

    /// Total backup CPU consumed so far (Table V).
    pub fn cpu_total(&self) -> Nanos {
        self.cpu
    }

    /// Pages currently in the committed store.
    pub fn stored_pages(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::ids::{DevId, Pid};
    use nilicon_sim::ns::NsSet;

    fn img(epoch: u64, pages: &[(u32, u64, u8)]) -> CheckpointImage {
        let mut i = CheckpointImage {
            epoch,
            name: "t".into(),
            addr: 10,
            ns: Some(NsSet {
                pid: nilicon_sim::ids::NsId(1),
                net: nilicon_sim::ids::NsId(2),
                mnt: nilicon_sim::ids::NsId(3),
                uts: nilicon_sim::ids::NsId(4),
                ipc: nilicon_sim::ids::NsId(5),
                user: nilicon_sim::ids::NsId(6),
            }),
            ..Default::default()
        };
        for &(pid, vpn, tag) in pages {
            i.pages.push((Pid(pid), vpn, std::rc::Rc::new([tag; PAGE_SIZE])));
        }
        i
    }

    fn agent() -> BackupAgent {
        BackupAgent::new(CostModel::default(), true)
    }

    #[test]
    fn ingest_commit_materialize_merges_pages() {
        let mut a = agent();
        let mut disk = BlockDevice::new(DevId(2));
        a.ingest(img(1, &[(1, 0x10, 1), (1, 0x11, 1)]));
        a.ingest_drbd(vec![DrbdMsg::Barrier(1)]);
        assert!(a.epoch_complete(1));
        a.commit(1, &mut disk).unwrap();

        a.ingest(img(2, &[(1, 0x10, 2)])); // overwrites one page
        a.ingest_drbd(vec![DrbdMsg::Barrier(2)]);
        a.commit(2, &mut disk).unwrap();

        let full = a.materialize().unwrap();
        assert_eq!(full.pages.len(), 2);
        let p10 = full.pages.iter().find(|(_, v, _)| *v == 0x10).unwrap();
        assert_eq!(p10.2[0], 2, "latest committed value wins");
        assert_eq!(a.committed_epoch(), Some(2));
    }

    #[test]
    fn uncommitted_epoch_never_materializes() {
        let mut a = agent();
        let mut disk = BlockDevice::new(DevId(2));
        a.ingest(img(1, &[(1, 0x10, 1)]));
        a.ingest_drbd(vec![DrbdMsg::Barrier(1)]);
        a.commit(1, &mut disk).unwrap();
        // Epoch 2 arrives but is never committed (primary died pre-ack).
        a.ingest(img(2, &[(1, 0x10, 99)]));
        a.discard_uncommitted();
        let full = a.materialize().unwrap();
        let p10 = full.pages.iter().find(|(_, v, _)| *v == 0x10).unwrap();
        assert_eq!(p10.2[0], 1, "uncommitted value must not leak into failover");
    }

    #[test]
    fn ack_requires_both_state_and_disk_barrier() {
        let mut a = agent();
        a.ingest(img(1, &[]));
        assert!(!a.epoch_complete(1), "state yes, disk barrier no");
        a.ingest_drbd(vec![DrbdMsg::Barrier(1)]);
        assert!(a.epoch_complete(1));
        assert!(!a.epoch_complete(2));
    }

    #[test]
    fn materialize_without_commit_errors() {
        let a = agent();
        assert!(matches!(a.materialize(), Err(SimError::ImageCorrupt(_))));
    }

    #[test]
    fn fs_state_merges_across_epochs() {
        let mut a = agent();
        let mut disk = BlockDevice::new(DevId(2));
        let mut i1 = img(1, &[]);
        i1.fs_pages
            .pages
            .push((Ino(5), 0, Box::new([1u8; PAGE_SIZE]), true));
        i1.fs_pages
            .pages
            .push((Ino(5), 1, Box::new([1u8; PAGE_SIZE]), false));
        a.ingest(i1);
        a.ingest_drbd(vec![DrbdMsg::Barrier(1)]);
        a.commit(1, &mut disk).unwrap();

        let mut i2 = img(2, &[]);
        i2.fs_pages
            .pages
            .push((Ino(5), 0, Box::new([2u8; PAGE_SIZE]), true)); // update
        a.ingest(i2);
        a.ingest_drbd(vec![DrbdMsg::Barrier(2)]);
        a.commit(2, &mut disk).unwrap();

        let full = a.materialize().unwrap();
        assert_eq!(full.fs_pages.pages.len(), 2, "merged, not just the delta");
        assert_eq!(full.fs_pages.pages[0].2[0], 2);
        assert_eq!(full.fs_pages.pages[1].2[0], 1);
    }

    #[test]
    fn delta_committed_image_matches_full_page_path() {
        use nilicon_criu::ShadowStore;
        let mut full_agent = agent();
        let mut delta_agent = agent();
        let mut d1 = BlockDevice::new(DevId(1));
        let mut d2 = BlockDevice::new(DevId(2));
        let mut shadow = ShadowStore::new();
        for e in 1..=5u64 {
            // Page contents evolve: one sparse edit per epoch, one zero page.
            let mut p = [0u8; PAGE_SIZE];
            p[7] = e as u8;
            p[3000] = 255 - e as u8;
            let mut i = img(e, &[]);
            i.pages.push((Pid(1), 0x10, std::rc::Rc::new(p)));
            i.pages.push((Pid(1), 0x11, nilicon_sim::zero_page()));
            let mut di = i.clone();
            di.encode_pages(&mut shadow);
            assert!(
                di.state_bytes() < i.state_bytes(),
                "epoch {e}: encoded wire bytes smaller"
            );
            full_agent.ingest(i);
            full_agent.ingest_drbd(vec![DrbdMsg::Barrier(e)]);
            full_agent.commit(e, &mut d1).unwrap();
            delta_agent.ingest(di);
            delta_agent.ingest_drbd(vec![DrbdMsg::Barrier(e)]);
            delta_agent.commit(e, &mut d2).unwrap();
        }
        let a = full_agent.materialize().unwrap();
        let b = delta_agent.materialize().unwrap();
        assert_eq!(a.pages.len(), b.pages.len());
        for (pa, pb) in a.pages.iter().zip(b.pages.iter()) {
            assert_eq!((pa.0, pa.1), (pb.0, pb.1));
            assert_eq!(pa.2, pb.2, "page {:?}/{:#x} byte-identical", pa.0, pa.1);
        }
    }

    #[test]
    fn cow_assembly_gates_ack_on_every_deferred_page() {
        let mut a = agent();
        let mut disk = BlockDevice::new(DevId(2));
        a.begin_assembly(img(1, &[]), 3);
        a.ingest_drbd(vec![DrbdMsg::Barrier(1)]);
        assert!(
            !a.epoch_complete(1),
            "metadata + barrier alone must not ack a COW epoch"
        );
        a.ingest_chunk(1, vec![(Pid(1), 0x10, std::rc::Rc::new([1u8; PAGE_SIZE]))], vec![])
            .unwrap();
        a.ingest_chunk(1, vec![(Pid(1), 0x11, std::rc::Rc::new([2u8; PAGE_SIZE]))], vec![])
            .unwrap();
        assert!(
            a.finish_assembly(1).is_err(),
            "2/3 pages: the commit barrier must hold"
        );
        // The failed finish consumed the assembly; rebuild and complete it.
        a.begin_assembly(img(1, &[]), 1);
        a.ingest_chunk(1, vec![(Pid(1), 0x10, std::rc::Rc::new([1u8; PAGE_SIZE]))], vec![])
            .unwrap();
        a.finish_assembly(1).unwrap();
        assert!(a.epoch_complete(1));
        a.commit(1, &mut disk).unwrap();
        assert_eq!(a.stored_pages(), 1);
    }

    #[test]
    fn cow_chunk_without_assembly_is_rejected() {
        let mut a = agent();
        assert!(a
            .ingest_chunk(1, vec![(Pid(1), 0x10, std::rc::Rc::new([0u8; PAGE_SIZE]))], vec![])
            .is_err());
        a.begin_assembly(img(2, &[]), 1);
        assert!(a.ingest_chunk(1, vec![], vec![]).is_err(), "epoch mismatch");
        assert!(a.finish_assembly(1).is_err(), "epoch mismatch");
    }

    #[test]
    fn discard_uncommitted_drops_partial_assembly() {
        let mut a = agent();
        let mut disk = BlockDevice::new(DevId(2));
        a.ingest(img(1, &[(1, 0x10, 7)]));
        a.ingest_drbd(vec![DrbdMsg::Barrier(1)]);
        a.commit(1, &mut disk).unwrap();
        // Epoch 2 streams in COW chunks; the primary dies mid-copy.
        a.begin_assembly(img(2, &[]), 2);
        a.ingest_chunk(2, vec![(Pid(1), 0x10, std::rc::Rc::new([99u8; PAGE_SIZE]))], vec![])
            .unwrap();
        let dropped = a.discard_uncommitted();
        assert_eq!(
            dropped,
            DiscardCounts {
                epochs: 0,
                chunks: 1,
                drbd: 0
            }
        );
        let full = a.materialize().unwrap();
        let p10 = full.pages.iter().find(|(_, v, _)| *v == 0x10).unwrap();
        assert_eq!(p10.2[0], 7, "failover falls back to the last full epoch");
        assert_eq!(a.committed_epoch(), Some(1));
    }

    #[test]
    fn discard_counts_report_each_class() {
        let mut a = agent();
        // One fully-received (but unacked) epoch, one half-assembled COW
        // epoch with three chunks, and two buffered disk writes + a barrier.
        a.ingest(img(1, &[(1, 0x10, 1)]));
        a.begin_assembly(img(2, &[]), 5);
        for vpn in [0x20u64, 0x21, 0x22] {
            a.ingest_chunk(2, vec![(Pid(1), vpn, std::rc::Rc::new([9u8; PAGE_SIZE]))], vec![])
                .unwrap();
        }
        let w = nilicon_sim::block::DiskWrite {
            ino: Ino(4),
            page_idx: 0,
            data: Box::new([0u8; PAGE_SIZE]),
        };
        a.ingest_drbd(vec![
            DrbdMsg::Write(w.clone()),
            DrbdMsg::Barrier(1),
            DrbdMsg::Write(w),
        ]);
        let dropped = a.discard_uncommitted();
        assert_eq!(
            dropped,
            DiscardCounts {
                epochs: 1,
                chunks: 3,
                drbd: 2
            }
        );
        assert!(!dropped.is_empty());
        // Everything is gone: a second discard reports nothing.
        assert!(a.discard_uncommitted().is_empty());
    }

    #[test]
    fn radix_vs_list_backup_cpu_gap() {
        // Stock linked-list store: per-page cost grows with history.
        let mut radix = BackupAgent::new(CostModel::default(), true);
        let mut list = BackupAgent::new(CostModel::default(), false);
        let mut d1 = BlockDevice::new(DevId(1));
        let mut d2 = BlockDevice::new(DevId(2));
        let (mut radix_commit, mut list_commit) = (0u64, 0u64);
        for e in 1..=60 {
            let i = img(e, &[(1, 0x10, e as u8), (1, 0x20, e as u8)]);
            radix.ingest(i.clone());
            radix.ingest_drbd(vec![DrbdMsg::Barrier(e)]);
            radix_commit += radix.commit(e, &mut d1).unwrap();
            list.ingest(i);
            list.ingest_drbd(vec![DrbdMsg::Barrier(e)]);
            list_commit += list.commit(e, &mut d2).unwrap();
        }
        assert!(
            list_commit > 10 * radix_commit,
            "list commit {list_commit} vs radix {radix_commit} — §V-A gap grows with history"
        );
        assert_eq!(radix.stored_pages(), list.stored_pages());
    }
}
