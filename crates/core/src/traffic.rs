//! Client traffic: the [`ClientBehavior`] seam and the [`ClientPool`] that
//! drives real sockets on the client host.
//!
//! Clients are closed-loop (one outstanding request each), which is how the
//! paper's YCSB/SIEGE drivers saturate the servers. All traffic flows through
//! the simulated TCP stacks — a request the client never got a (released!)
//! response to is genuinely outstanding, which is what makes the §VII-A
//! validation meaningful across a failover.

use crate::trace::{TraceEvent, Tracer};
use nilicon_container::{encode_frame, try_decode_frame};
use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::{Endpoint, HostId, NsId, SockId};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};
use std::collections::HashMap;

/// Workload-defined client behavior.
pub trait ClientBehavior {
    /// Number of concurrent clients.
    fn client_count(&self) -> usize;

    /// Payload of client `idx`'s next request, or `None` when that client is
    /// done issuing.
    fn next_request(&mut self, idx: usize, now: Nanos) -> Option<Vec<u8>>;

    /// A response to client `idx` arrived at `now` with end-to-end `latency`.
    fn on_response(&mut self, idx: usize, resp: &[u8], now: Nanos, latency: Nanos);

    /// End-of-run validation (§VII-A): return `Err` on any inconsistency
    /// (lost update, wrong value, corrupted echo).
    fn verify(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Per-client connection state.
#[derive(Debug)]
struct ClientConn {
    sock: SockId,
    rx: Vec<u8>,
    /// Send time of the outstanding request, if any.
    outstanding: Option<Nanos>,
    done: bool,
}

/// A pool of closed-loop clients with real sockets on the client host.
#[derive(Debug)]
pub struct ClientPool {
    /// Client host.
    pub host: HostId,
    /// Client network namespace.
    pub ns: NsId,
    /// Server endpoint the clients talk to.
    pub server: Endpoint,
    conns: Vec<ClientConn>,
    issued_total: u64,
    completed_total: u64,
    jitter_state: u64,
}

impl ClientPool {
    /// Connect `n` clients to `server`. Pumps the cluster until all
    /// handshakes complete.
    pub fn connect(
        cluster: &mut Cluster,
        host: HostId,
        ns: NsId,
        n: usize,
        server: Endpoint,
    ) -> SimResult<Self> {
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let stack = cluster.host_mut(host).stack_mut(ns)?;
            let s = stack.socket();
            stack.connect(s, server)?;
            conns.push(ClientConn {
                sock: s,
                rx: Vec::new(),
                outstanding: None,
                done: false,
            });
        }
        cluster.pump();
        // Verify establishment.
        for c in &conns {
            let st = cluster.host_mut(host).stack_mut(ns)?.sock(c.sock)?.state;
            if st != nilicon_sim::net::TcpState::Established {
                return Err(SimError::ConnRefused);
            }
        }
        Ok(ClientPool {
            host,
            ns,
            server,
            conns,
            issued_total: 0,
            completed_total: 0,
            jitter_state: 0x13198A2E03707344,
        })
    }

    /// Let every idle client issue its next request. Each send is stamped
    /// `now + think-jitter` with jitter uniform in `[0, jitter_range)` —
    /// real clients are not phase-locked to the server's epoch clock.
    /// Returns the number of requests put on the wire.
    pub fn issue(
        &mut self,
        cluster: &mut Cluster,
        behavior: &mut dyn ClientBehavior,
        now: Nanos,
        jitter_range: Nanos,
    ) -> SimResult<usize> {
        let mut sent = 0;
        for (idx, c) in self.conns.iter_mut().enumerate() {
            if c.outstanding.is_some() || c.done {
                continue;
            }
            match behavior.next_request(idx, now) {
                Some(req) => {
                    let stack = cluster.host_mut(self.host).stack_mut(self.ns)?;
                    stack.send(c.sock, &encode_frame(&req))?;
                    // SplitMix64 think-time jitter.
                    self.jitter_state = self.jitter_state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = self.jitter_state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    let j = (z ^ (z >> 31)) % jitter_range.max(1);
                    c.outstanding = Some(now + j);
                    self.issued_total += 1;
                    sent += 1;
                }
                None => c.done = true,
            }
        }
        Ok(sent)
    }

    /// Drain arrived responses. `receipt_times` supplies, per connection
    /// (keyed by the client's local endpoint), the logical receipt times of
    /// responses released by the server, in order. Returns the end-to-end
    /// latency of each completed request. Deliveries are traced as one
    /// [`TraceEvent::ClientDeliver`] per non-empty collection.
    pub fn collect(
        &mut self,
        cluster: &mut Cluster,
        behavior: &mut dyn ClientBehavior,
        receipt_times: &mut HashMap<Endpoint, std::collections::VecDeque<Nanos>>,
        fallback_now: Nanos,
        tracer: &Tracer,
    ) -> SimResult<Vec<Nanos>> {
        let mut latencies = Vec::new();
        for (idx, c) in self.conns.iter_mut().enumerate() {
            let stack = cluster.host_mut(self.host).stack_mut(self.ns)?;
            let local = stack.sock(c.sock)?.local;
            let bytes = stack.recv(c.sock, usize::MAX)?;
            if !bytes.is_empty() {
                c.rx.extend_from_slice(&bytes);
            }
            while let Some((frame, consumed)) = try_decode_frame(&c.rx) {
                c.rx.drain(..consumed);
                let receipt = receipt_times
                    .get_mut(&local)
                    .and_then(|q| q.pop_front())
                    .unwrap_or(fallback_now);
                let sent_at = c.outstanding.take().unwrap_or(receipt);
                let latency = receipt.saturating_sub(sent_at);
                behavior.on_response(idx, &frame, receipt, latency);
                latencies.push(latency);
                self.completed_total += 1;
            }
        }
        if !latencies.is_empty() {
            tracer.event_at(
                TraceEvent::ClientDeliver {
                    responses: latencies.len() as u64,
                },
                fallback_now,
            );
        }
        Ok(latencies)
    }

    /// After failover: retransmit every client's unacknowledged bytes (the
    /// client-side TCP stacks' RTO firing). Each connection's whole unacked
    /// window is drained in MSS-sized segments, so a multi-segment backlog
    /// (several requests in flight at the fault) is fully re-sent, not just
    /// its first segment. Returns the number of segments injected.
    pub fn retransmit(&mut self, cluster: &mut Cluster) -> SimResult<usize> {
        let stack = cluster.host_mut(self.host).stack_mut(self.ns)?;
        let mut n = 0;
        for c in &self.conns {
            let mut off = 0;
            while let Some(pkt) = stack.sock(c.sock)?.retransmit_at(off) {
                off += pkt.payload.len();
                stack.inject_egress(pkt);
                n += 1;
            }
        }
        cluster.pump();
        Ok(n)
    }

    /// The client local endpoint for connection `idx` (keys receipt queues).
    pub fn local_endpoint(&self, cluster: &mut Cluster, idx: usize) -> SimResult<Endpoint> {
        Ok(cluster
            .host_mut(self.host)
            .stack_mut(self.ns)?
            .sock(self.conns[idx].sock)?
            .local)
    }

    /// Clients with a request in flight.
    pub fn outstanding(&self) -> usize {
        self.conns
            .iter()
            .filter(|c| c.outstanding.is_some())
            .count()
    }

    /// `(issued, completed)` lifetime counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.issued_total, self.completed_total)
    }

    /// Connections broken by RST on the client side (§VII-A: must be zero).
    /// A failed stack lookup is an error, not zero — swallowing it would let
    /// the zero-broken-connections gate pass vacuously.
    pub fn broken_connections(&self, cluster: &mut Cluster) -> SimResult<u64> {
        Ok(cluster
            .host_mut(self.host)
            .stack_mut(self.ns)?
            .broken_connections())
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if no clients.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}
