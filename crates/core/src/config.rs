//! Replication configuration: the §V optimizations as toggles.

use nilicon_criu::{DumpConfig, FsCacheMode};
use nilicon_sim::kernel::{PageTransferVia, VmaCollectVia};
use nilicon_sim::proc::FreezeStrategy;
use nilicon_sim::time::{Nanos, MILLISECOND};

/// The six §V optimizations, one per Table I row.
///
/// `basic()` is the unoptimized port of CRIU+Remus to containers (Table I:
/// 1940% overhead on streamcluster); [`OptimizationConfig::nilicon`] enables
/// everything (31%). [`OptimizationConfig::table1_rows`] yields the paper's
/// cumulative sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationConfig {
    /// §V-A: radix-tree page store + busy-poll freeze + no proxy processes
    /// ("Optimize CRIU", 1940% → 619%).
    pub optimize_criu: bool,
    /// §V-B: cache infrequently-modified in-kernel state, invalidated by
    /// ftrace hooks (619% → 84%).
    pub cache_infrequent: bool,
    /// §V-C: block input by buffering in the plug qdisc instead of firewall
    /// rules (84% → 65%).
    pub plug_input_blocking: bool,
    /// §V-D(1): VMAs via netlink instead of /proc/pid/smaps (65% → 53%).
    pub netlink_vmas: bool,
    /// §V-D(2): staging buffer — resume the container before transferring
    /// state to the backup (53% → 37%).
    pub staging_buffer: bool,
    /// §V-D(3): parasite transfers dirty pages via shared memory instead of
    /// a pipe (37% → 31%).
    pub shm_page_transfer: bool,
    /// §V-E: 200 ms repair-mode minimum RTO at restore (recovery latency,
    /// not normal-operation overhead).
    pub optimized_rto: bool,
    /// EXTENSION (not in the paper's implementation): hardware
    /// page-modification logging instead of soft-dirty PTEs — the §VIII
    /// direction Phantasy takes. Eliminates per-write tracking faults and
    /// replaces the footprint-proportional pagemap scan with a
    /// dirty-proportional log drain. Off in every paper reproduction run.
    pub pml_tracking: bool,
    /// EXTENSION (HyCoR, arXiv:2101.09584): delta-encode the epoch's dirty
    /// pages against the last shipped epoch before transfer — zero pages
    /// elided, sparse changes as XOR deltas, dense churn as full pages.
    /// `transfer_cost` is then charged on *encoded* bytes; a per-page encode
    /// cost lands in the stop phase and a decode cost on the backup. Off in
    /// every paper reproduction run.
    pub delta_transfer: bool,
    /// EXTENSION (§VIII concurrency): shard the per-process dump loop across
    /// this many workers; stop time charges the max shard instead of the
    /// sum. `1` (the paper's serial dump) in every reproduction run.
    pub dump_workers: u32,
    /// EXTENSION (§VIII pause-shrinking; HyCoR, arXiv:2101.09584):
    /// copy-on-write checkpointing — at pause, dirty pages are
    /// *write-protected* (cheap) instead of copied; the container resumes
    /// immediately and a background copier drains the protected set into
    /// staging during the next execution phase, with write faults triggering
    /// an eager copy-before-write. The drain, transfer, and backup ingest
    /// all land on the ack path; the epoch is acked only once every deferred
    /// page has reached the backup. Off in every paper reproduction run.
    pub cow_checkpoint: bool,
    /// EXTENSION (HyCoR, arXiv:2101.09584; CRIU live migration): post-failover
    /// re-replication — after a failover the promoted container keeps serving
    /// while a replacement backup is bootstrapped online (full checkpoint
    /// streamed in bounded chunks over the COW machinery, then incremental
    /// epochs resume toward the new backup). The paper stops at a single
    /// failover, so this is off in every paper reproduction run.
    pub rearm: bool,
    /// EXTENSION (placement): number of backup replicas `n`. Each committed
    /// epoch's pages are erasure-coded into `n` fragments, one per replica.
    /// `1` (the paper's single warm backup) disables the placement layer
    /// entirely; every paper reproduction run uses `1`.
    pub backups: u32,
    /// EXTENSION (placement): quorum `k` — the epoch acks once any `k`
    /// fragment sets are durable, failover reconstructs the committed image
    /// from any `k` survivors, and per-replica storage is `ceil(4 KiB / k)`
    /// per page (total overhead `n/k`× instead of mirroring's `n`×).
    /// Must satisfy `1 ≤ k ≤ n`. Ignored when `backups == 1`.
    pub quorum: u32,
    /// EXTENSION (HyCoR, arXiv:2101.09584): hybrid checkpoint + replay —
    /// record every nondeterministic event (request dispatch, recv payload +
    /// delivery order, timer reads, scheduling points) into a per-epoch log,
    /// ship log chunks to the backup continuously, and release output as soon
    /// as the *log* commits instead of waiting for the epoch ack. At failover
    /// the backup restores the last committed checkpoint and re-executes the
    /// sealed log tail, reproducing byte-identical state and the exact output
    /// stream; a log gap or partial tail falls back to the plain NiLiCon
    /// last-checkpoint path. Off in every paper reproduction run.
    pub hybrid_replay: bool,
    /// EXTENSION (§VIII concurrency): staged checkpoint pipeline — the
    /// dump-drain, delta-encode, transfer, and backup-ingest stages run as a
    /// bounded-queue pipeline overlapped with the next execution phase
    /// instead of the synchronous dump→encode→ship→ingest sequence. Chunks
    /// hand off peek-before-commit: a stage removes its input only after the
    /// downstream stage durably accepted it, so a crashed-and-restarted stage
    /// replays its in-flight chunk without loss or duplication, and the
    /// committed image stays byte-identical to the synchronous path. When the
    /// pipeline cannot drain an epoch before the next checkpoint, the backlog
    /// stalls the next stop phase (backpressure), degrading toward the
    /// paper's synchronous behavior. Off in every paper reproduction run.
    pub pipeline: bool,
    /// EXTENSION (fleet scale; ROADMAP item 1): multiplex this many
    /// containers over one primary/backup pair via the [`crate::fleet`]
    /// scheduler — per-container shadow stores and epoch state feeding one
    /// shared transfer link, staggered epoch boundaries (phase offset
    /// `i·epoch/N`), one consolidated heartbeat channel carrying per-container
    /// liveness bits, and fair-share output commit. `0` disables the fleet
    /// layer entirely (the paper's one-container-per-pair topology); every
    /// paper reproduction run uses `0`.
    pub fleet: u32,
    /// EXTENSION (fleet scale): align every fleet member's epoch boundary to
    /// the same phase instead of staggering — the stop-phase convoy
    /// configuration the stagger exists to avoid; used by `fleet_bench
    /// --aligned` to measure the convoy. Ignored when `fleet == 0`; off in
    /// every paper reproduction run.
    pub fleet_aligned: bool,
}

impl OptimizationConfig {
    /// Everything off: the basic implementation (Table I row 1).
    pub fn basic() -> Self {
        OptimizationConfig {
            optimize_criu: false,
            cache_infrequent: false,
            plug_input_blocking: false,
            netlink_vmas: false,
            staging_buffer: false,
            shm_page_transfer: false,
            optimized_rto: false,
            pml_tracking: false,
            delta_transfer: false,
            dump_workers: 1,
            cow_checkpoint: false,
            rearm: false,
            backups: 1,
            quorum: 1,
            hybrid_replay: false,
            pipeline: false,
            fleet: 0,
            fleet_aligned: false,
        }
    }

    /// Everything on: NiLiCon as evaluated (Table I last row).
    pub fn nilicon() -> Self {
        OptimizationConfig {
            optimize_criu: true,
            cache_infrequent: true,
            plug_input_blocking: true,
            netlink_vmas: true,
            staging_buffer: true,
            shm_page_transfer: true,
            optimized_rto: true,
            pml_tracking: false,
            delta_transfer: false,
            dump_workers: 1,
            cow_checkpoint: false,
            rearm: false,
            backups: 1,
            quorum: 1,
            hybrid_replay: false,
            pipeline: false,
            fleet: 0,
            fleet_aligned: false,
        }
    }

    /// The cumulative Table I sequence: `(row label, config)`.
    pub fn table1_rows() -> Vec<(&'static str, OptimizationConfig)> {
        let mut rows = Vec::new();
        let mut cfg = Self::basic();
        rows.push(("Basic implementation", cfg));
        cfg.optimize_criu = true;
        rows.push(("+ Optimize CRIU", cfg));
        cfg.cache_infrequent = true;
        rows.push(("+ Cache infrequently-modified state", cfg));
        cfg.plug_input_blocking = true;
        rows.push(("+ Optimize blocking network input", cfg));
        cfg.netlink_vmas = true;
        rows.push(("+ Obtain VMAs from netlink", cfg));
        cfg.staging_buffer = true;
        rows.push(("+ Add memory staging buffer", cfg));
        cfg.shm_page_transfer = true;
        rows.push(("+ Transfer dirty pages via shared memory", cfg));
        rows
    }

    /// Derive the CRIU dump configuration these toggles imply.
    pub fn dump_config(&self) -> DumpConfig {
        DumpConfig {
            freeze: if self.optimize_criu {
                FreezeStrategy::BusyPoll
            } else {
                FreezeStrategy::Stock
            },
            vma_via: if self.netlink_vmas {
                VmaCollectVia::Netlink
            } else {
                VmaCollectVia::Smaps
            },
            page_via: if self.shm_page_transfer {
                PageTransferVia::SharedMem
            } else {
                PageTransferVia::Pipe
            },
            via_proxy: !self.optimize_criu,
            incremental: true,
            dirty_source: if self.pml_tracking {
                nilicon_criu::DirtySource::Pml
            } else {
                nilicon_criu::DirtySource::SoftDirty
            },
            // NiLiCon always uses fgetfc — the DNC kernel change predates the
            // §V optimization sequence (it is part of the basic design, §III).
            fs_cache: FsCacheMode::Fgetfc,
            workers: self.dump_workers.max(1),
            cow: self.cow_checkpoint,
        }
    }
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        Self::nilicon()
    }
}

/// Top-level replication run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// Execution-phase length (§IV: 30 ms).
    pub epoch_exec: Nanos,
    /// Heartbeat interval (§IV: 30 ms).
    pub heartbeat_interval: Nanos,
    /// Consecutive missed heartbeats before failover (§IV: 3).
    pub heartbeat_misses: u32,
    /// Optimization toggles.
    pub opts: OptimizationConfig,
    /// Re-replication only ([`OptimizationConfig::rearm`]): delay from the
    /// end of failover recovery to the start of the replacement-backup
    /// bootstrap (models provisioning the standby host).
    pub rearm_delay: Nanos,
    /// Re-replication only: base retry backoff after a bootstrap attempt is
    /// killed by a standby fault; doubles per consecutive failed attempt.
    pub rearm_backoff: Nanos,
    /// Re-replication only: bootstrap streaming budget — at most this many
    /// deferred pages are drained to the replacement backup per 30 ms epoch,
    /// bounding the background bandwidth the bootstrap may take.
    pub rearm_chunk_pages: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            epoch_exec: 30 * MILLISECOND,
            heartbeat_interval: 30 * MILLISECOND,
            heartbeat_misses: 3,
            opts: OptimizationConfig::nilicon(),
            rearm_delay: 60 * MILLISECOND,
            rearm_backoff: 120 * MILLISECOND,
            rearm_chunk_pages: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_are_cumulative() {
        let rows = OptimizationConfig::table1_rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].1, OptimizationConfig::basic());
        let last = rows.last().unwrap().1;
        let mut full = OptimizationConfig::nilicon();
        full.optimized_rto = false; // §V-E is not a Table I row
        assert_eq!(last, full);
        // Each row flips exactly one flag relative to the previous.
        for w in rows.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            let flips = [
                a.optimize_criu != b.optimize_criu,
                a.cache_infrequent != b.cache_infrequent,
                a.plug_input_blocking != b.plug_input_blocking,
                a.netlink_vmas != b.netlink_vmas,
                a.staging_buffer != b.staging_buffer,
                a.shm_page_transfer != b.shm_page_transfer,
            ]
            .iter()
            .filter(|&&x| x)
            .count();
            assert_eq!(flips, 1, "{} -> {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn dump_config_derivation() {
        let basic = OptimizationConfig::basic().dump_config();
        assert_eq!(basic.freeze, FreezeStrategy::Stock);
        assert_eq!(basic.vma_via, VmaCollectVia::Smaps);
        assert_eq!(basic.page_via, PageTransferVia::Pipe);
        assert!(basic.via_proxy);

        let full = OptimizationConfig::nilicon().dump_config();
        assert_eq!(full.freeze, FreezeStrategy::BusyPoll);
        assert_eq!(full.vma_via, VmaCollectVia::Netlink);
        assert_eq!(full.page_via, PageTransferVia::SharedMem);
        assert!(!full.via_proxy);
        assert_eq!(full.fs_cache, FsCacheMode::Fgetfc);
        assert_eq!(full.workers, 1, "paper runs dump serially");
    }

    #[test]
    fn extensions_default_off_in_paper_configs() {
        for cfg in [OptimizationConfig::basic(), OptimizationConfig::nilicon()] {
            assert!(!cfg.pml_tracking);
            assert!(!cfg.delta_transfer);
            assert_eq!(cfg.dump_workers, 1);
            assert!(!cfg.cow_checkpoint);
            assert!(!cfg.rearm);
            assert_eq!(cfg.backups, 1, "paper rows: single warm backup");
            assert_eq!(cfg.quorum, 1);
            assert!(!cfg.hybrid_replay, "paper rows: release waits for epoch ack");
            assert!(!cfg.pipeline, "paper rows: synchronous checkpoint path");
            assert_eq!(cfg.fleet, 0, "paper rows: one container per pair");
            assert!(!cfg.fleet_aligned);
            assert!(!cfg.dump_config().cow);
        }
        // The COW knob flows through to the CRIU dump config.
        let mut cow = OptimizationConfig::nilicon();
        cow.cow_checkpoint = true;
        assert!(cow.dump_config().cow);
        // Sharding knob flows through to the CRIU dump config (clamped ≥ 1).
        let mut cfg = OptimizationConfig::nilicon();
        cfg.dump_workers = 4;
        assert_eq!(cfg.dump_config().workers, 4);
        cfg.dump_workers = 0;
        assert_eq!(cfg.dump_config().workers, 1);
    }

    #[test]
    fn default_replication_config_matches_paper() {
        let c = ReplicationConfig::default();
        assert_eq!(c.epoch_exec, 30 * MILLISECOND);
        assert_eq!(c.heartbeat_interval, 30 * MILLISECOND);
        assert_eq!(c.heartbeat_misses, 3);
        // Re-replication pacing knobs exist but the knob itself is off.
        assert!(!c.opts.rearm);
        assert!(!c.opts.hybrid_replay);
        assert_eq!(c.rearm_delay, 60 * MILLISECOND);
        assert_eq!(c.rearm_backoff, 120 * MILLISECOND);
        assert_eq!(c.rearm_chunk_pages, 256);
    }
}
