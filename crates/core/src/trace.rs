//! Epoch-phase tracing: typed spans and events over the replication pipeline.
//!
//! Every phase of the Fig. 1 epoch loop — execute, freeze, dump, local copy,
//! transfer, backup ingest, ack, output release — can emit a [`TraceRecord`]
//! into a [`TraceSink`]: a no-op (the default), an in-memory ring buffer
//! ([`RingSink`]), or a JSONL file ([`JsonlSink`]). All timestamps and
//! durations are **virtual nanoseconds** from the simulation clock/meter, so
//! traces are bit-for-bit deterministic across runs.
//!
//! The full event schema (every variant, units, and the reconciliation
//! invariants) is documented in `OBSERVABILITY.md` at the repository root;
//! `trace-report` in `nilicon-bench` renders per-phase percentiles and a
//! Table-I-style attribution from a JSONL trace.
//!
//! ## Reconciliation invariant
//!
//! The phase spans of an epoch are not free-floating: they must sum to the
//! engine-reported [`CheckpointOutcome`](crate::engine::CheckpointOutcome)
//! components. With a staging buffer (§V-D(2)):
//!
//! ```text
//! Freeze + Dump + [DeltaEncode] + LocalCopy   == stop_time
//! [CowCopy] + Transfer + BackupIngest + Ack   == ack_delay
//! ```
//!
//! Without one, every phase sits on the stop critical path:
//!
//! ```text
//! Freeze + Dump + [DeltaEncode] + LocalCopy + Transfer + BackupIngest + Ack == stop_time
//! ack_delay == 0
//! ```
//!
//! (`DeltaEncode` appears only when `delta_transfer` is enabled; `CowCopy` —
//! the background drain of write-protected pages — only when `cow_checkpoint`
//! is. COW moves the page copy *and* any delta encoding off the stop phase,
//! so with `--cow` the `Dump` span shrinks to the protect cost and the copy
//! shows up on the ack path instead.)
//!
//! [`Tracer::reconcile`] checks this once per epoch; the harness turns a
//! mismatch into a hard [`SimError::Invalid`](nilicon_sim::SimError) — an
//! instrumented run cannot silently misattribute time.
//!
//! ## Example
//!
//! ```
//! use nilicon::trace::{TraceEvent, Tracer};
//!
//! let (tracer, ring) = Tracer::in_memory(64);
//! tracer.begin_epoch(1, 0);
//! tracer.span(TraceEvent::Freeze, 10);
//! tracer.span(TraceEvent::Dump { dirty_pages: 3 }, 90);
//! tracer.span(TraceEvent::LocalCopy, 5);
//! tracer.span(TraceEvent::Transfer { bytes: 12_288 }, 40);
//! tracer.span(TraceEvent::BackupIngest { probes: 12 }, 20);
//! tracer.span(TraceEvent::Ack, 30);
//! tracer.reconcile(1, 105, 90).unwrap();
//! let recs = ring.snapshot();
//! assert_eq!(recs.len(), 6);
//! assert_eq!(recs[1].t, 10, "spans are laid out contiguously");
//! ```

use nilicon_sim::time::Nanos;
use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

/// One typed span or event in the epoch pipeline.
///
/// Variants with a natural duration are emitted as *spans* (`dur > 0`);
/// instantaneous markers are emitted with `dur == 0`. See `OBSERVABILITY.md`
/// for the full schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A new run begins: everything that follows (until the next `RunStart`)
    /// belongs to this workload/mode pair. Epoch numbers restart at 0.
    RunStart {
        /// Workload name (e.g. "redis").
        name: String,
        /// Mode label (e.g. "NiLiCon", "MC", "stock", a Table-I row).
        mode: String,
    },
    /// The execution phase of an epoch (wall duration = configured
    /// `epoch_exec`).
    Exec {
        /// Server requests completed this epoch.
        requests: u64,
        /// Batch steps completed this epoch.
        steps: u64,
    },
    /// Cgroup freeze plus network-input blocking (§V-A, §V-C).
    Freeze,
    /// The incremental CRIU dump (§V-B, §V-D).
    Dump {
        /// Dirty pages captured by this dump.
        dirty_pages: u64,
    },
    /// Per-stage breakdown of the preceding [`TraceEvent::Dump`] span
    /// (marker, `dur == 0`). The five fields sum to the `Dump` duration.
    DumpDetail {
        /// VMA/thread/fd collection cost (ns).
        processes: Nanos,
        /// Dirty-page identification + page copy cost (ns).
        pages: Nanos,
        /// TCP repair-mode socket checkpoint cost (ns).
        sockets: Nanos,
        /// File-system cache capture cost (ns, §III).
        fs_cache: Nanos,
        /// Infrequently-modified state collection cost (ns, §V-B).
        infrequent: Nanos,
    },
    /// Delta-encoding of the epoch's dirty pages against the last shipped
    /// epoch (HyCoR extension; emitted only when `delta_transfer` is on).
    /// Part of the stop phase — encoding happens before the container
    /// resumes.
    DeltaEncode {
        /// Pages elided as all-zero (1 marker word each).
        zero_pages: u64,
        /// Pages shipped as sparse XOR deltas.
        delta_pages: u64,
        /// Pages shipped in full (first touch / dense churn).
        full_pages: u64,
        /// Bytes the full-page path would have shipped (pages × 4 KiB).
        raw_bytes: u64,
        /// Bytes actually put on the wire after encoding.
        encoded_bytes: u64,
    },
    /// DRBD ship + epoch barrier + container resume — the tail of the stop
    /// phase after the dump proper.
    LocalCopy,
    /// DRBD messages put on the replication link this epoch (marker).
    DrbdShip {
        /// Replicated disk writes shipped.
        writes: u64,
        /// Wire bytes including the barrier.
        bytes: u64,
    },
    /// Background copy-out of the pages write-protected at pause (COW
    /// extension; emitted only when `cow_checkpoint` is on). Runs during the
    /// next execution phase, so it sits on the *ack* path, not the stop
    /// phase.
    CowCopy {
        /// Pages drained (protected set + fault-staged copies).
        pages: u64,
        /// Bytes handed to the transfer path (encoded bytes under `--delta`).
        bytes: u64,
    },
    /// Container writes that hit a still-protected page and triggered an
    /// eager copy-before-write (marker; emitted only when `faults > 0`). The
    /// fault cost is charged to the container's runtime tracking overhead.
    CowFault {
        /// Write faults taken on protected pages this epoch.
        faults: u64,
    },
    /// Wire transfer of the epoch's state to the backup.
    Transfer {
        /// Bytes transferred (container state + DRBD traffic).
        bytes: u64,
    },
    /// Backup-side receive (plus inline commit when there is no staging
    /// buffer).
    BackupIngest {
        /// Page-store insertion probes performed (0 in staging mode, where
        /// the commit — and its probes — happens after the ack).
        probes: u64,
    },
    /// Ack propagation back to the primary (one replication-link latency).
    Ack,
    /// The deferred backup commit after the ack (staging mode; marker —
    /// this work is off the client-visible critical path).
    BackupCommit {
        /// Page-store insertion probes performed.
        probes: u64,
        /// DRBD-buffered disk pages applied to the backup disk.
        disk_pages: u64,
    },
    /// The epoch's buffered network output was released (output commit,
    /// §II-A). Emitted at the *release* time.
    OutputRelease {
        /// Packets released from the plugged qdisc.
        packets: u64,
    },
    /// Responses logically delivered to clients (closed-loop collection).
    ClientDeliver {
        /// Responses handed to client behaviors this collection.
        responses: u64,
    },
    /// A heartbeat interval elapsed with no beat (failure suspected).
    HeartbeatMiss {
        /// Consecutive misses so far (detection fires at the configured
        /// allowance, 3 in the paper).
        misses: u32,
    },
    /// Buffered output discarded at failover (output commit, §II-A: packets
    /// not yet released when the primary died must never reach clients, since
    /// the state that produced them was lost). Emitted at the fault time,
    /// before the failover record.
    OutputDiscard {
        /// Buffered packets dropped.
        packets: u64,
    },
    /// Re-replication bootstrap started toward a freshly provisioned
    /// replacement backup (`rearm` extension; `attempt > 0` after a
    /// fault-during-bootstrap retry).
    RearmStart {
        /// Zero-based bootstrap attempt number.
        attempt: u32,
    },
    /// One bounded background chunk of the bootstrap image streamed to the
    /// replacement backup (`rearm` extension; marker — the stream overlaps
    /// execution and is not an epoch phase).
    BootstrapChunk {
        /// Deferred pages drained and shipped this epoch.
        pages: u64,
        /// Bytes those pages carried on the wire.
        bytes: u64,
    },
    /// The bootstrap image is fully streamed and committed: incremental
    /// epochs, output commit, heartbeats, and DRBD replication are re-armed
    /// toward the replacement backup (`rearm` extension).
    RearmComplete {
        /// Total deferred pages streamed by the bootstrap.
        pages: u64,
        /// Total bytes the bootstrap stream put on the wire.
        bytes: u64,
    },
    /// Failure declared and failover executed (Table II breakdown).
    Failover {
        /// Fault-to-detection latency (ns).
        detection_latency: Nanos,
        /// Container restore time on the backup (ns).
        restore: Nanos,
        /// Gratuitous-ARP broadcast time (ns).
        arp: Nanos,
        /// Non-overlapped TCP retransmission delay (ns).
        tcp: Nanos,
        /// Remaining recovery bookkeeping (ns).
        others: Nanos,
    },
    /// A chaos-schedule fault window opened a partition of the replication/
    /// heartbeat link (chaos extension; marker at the first epoch boundary
    /// inside the window).
    PartitionStart,
    /// The partition healed: link-held traffic flushes in FIFO order (chaos
    /// extension; marker at the first epoch boundary past the window).
    PartitionHeal,
    /// The backup's epoch ack granted (renewed) the primary's output-release
    /// lease (chaos extension; emitted at the ack's arrival time).
    LeaseAcquire {
        /// The *primary's* conservative expiry — anchored at its own
        /// checkpoint-start time, so always ≤ the backup's granted expiry.
        until: Nanos,
    },
    /// The primary's lease lapsed un-renewed: output release fences until a
    /// later ack renews it (chaos extension).
    LeaseExpire {
        /// The expiry instant that passed.
        at: Nanos,
    },
    /// An output release was withheld because the lease had expired — the
    /// exactly-one-owner fence in action (chaos extension). The packets stay
    /// plugged and ride the next valid release.
    FencedOutput {
        /// Packets withheld.
        packets: u64,
    },
    /// A failure suspicion was cancelled by a late heartbeat before the
    /// lease gate allowed promotion: a detector false positive under
    /// delay/loss (chaos extension).
    FalseSuspicion {
        /// How long the suspicion stood before the rescinding beat (ns).
        suspected_for: Nanos,
    },
    /// Extra replication-link delay the chaos schedule injected into this
    /// epoch's ack round-trip (chaos extension; an ack-phase *span* — it
    /// participates in the ack reconciliation identity, see
    /// OBSERVABILITY.md).
    ChaosDelay {
        /// Added round-trip delay (ns).
        extra: Nanos,
    },
    /// Erasure-coding of the epoch's dirty pages into n shard fragments
    /// (placement extension; emitted only when `backups > 1`). An ack-phase
    /// *span*: encoding happens after the container resumes, before the
    /// fragments fan out to the replicas.
    ShardCommit {
        /// Fragments produced per page (= configured `backups` n).
        shards: u32,
        /// Dirty pages encoded this epoch.
        pages: u64,
        /// Bytes of one fragment set shipped per replica
        /// (`pages × ceil(4 KiB / k)` + metadata).
        frag_bytes: u64,
    },
    /// A stream-while-serving placement flow started (placement extension;
    /// marker). `kind` is `"repair"` (coded repair of a lost replica) or
    /// `"migration"` (planned move); `attempt > 0` after a
    /// fault-during-repair retry. Rearm keeps its own `RearmStart`.
    RepairStart {
        /// Which placement flow: `"repair"` or `"migration"`.
        kind: String,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// One bounded background chunk of a repair/migration stream: fragments
    /// regenerated from k surviving peers (decode + re-encode) or pages
    /// streamed to the destination (placement extension; marker — the
    /// stream overlaps execution and is not an epoch phase).
    RepairChunk {
        /// Pages whose fragment/body was regenerated or streamed this chunk.
        pages: u64,
        /// Wire bytes the chunk put on the links (repair reads k fragments
        /// per regenerated page — the RS repair read amplification).
        bytes: u64,
    },
    /// The repair/migration stream finished and the replica committed: the
    /// placement is back at full redundancy (placement extension; marker).
    RepairComplete {
        /// Total pages regenerated/streamed.
        pages: u64,
        /// Total wire bytes of the stream.
        bytes: u64,
    },
    /// A replica was lost but the quorum still holds: epochs keep acking
    /// with `alive ≥ k` fragment sets durable while repair is pending
    /// (placement extension; marker at the fault's epoch boundary).
    DegradedMode {
        /// Replicas still alive.
        alive: u32,
        /// Quorum k required to ack (and to repair).
        need: u32,
    },
    /// The epoch's nondeterminism-log chunks shipped to the backup (hybrid
    /// replay extension; a *log-path* span — it participates in the log
    /// reconciliation identity `LogShip == log_total`, see OBSERVABILITY.md).
    /// Shipping overlaps execution; the duration is the summed commit
    /// round-trips the released outputs waited on.
    LogShip {
        /// Events shipped this epoch.
        events: u64,
        /// Wire bytes those events carried.
        bytes: u64,
    },
    /// The epoch's log sealed and committed on the backup — the new output
    /// release point (hybrid replay extension; marker). From here the epoch's
    /// buffered output is safe to release even though its checkpoint has not
    /// acked yet.
    LogCommit {
        /// Events in the sealed epoch log.
        events: u64,
        /// One log-chunk commit round-trip (ns) — the client-visible release
        /// wait that replaces the epoch ack.
        commit_latency: Nanos,
    },
    /// Failover replay began: the backup restored the last committed
    /// checkpoint and starts re-executing the sealed log tail (hybrid replay
    /// extension; marker).
    ReplayStart {
        /// Sealed epoch logs in the tail.
        epochs: u64,
        /// Total events to re-execute.
        events: u64,
    },
    /// Failover replay finished: re-executed state and output stream verified
    /// byte-identical against the recorded hashes (hybrid replay extension;
    /// marker).
    ReplayComplete {
        /// Events re-executed.
        events: u64,
        /// Virtual time the replay took (ns; added to the failover outage).
        replay_time: Nanos,
    },
    /// Failover replay was abandoned — log gap, partial (unsealed) tail, or
    /// a re-execution hash mismatch — and recovery fell back to the plain
    /// NiLiCon last-checkpoint path (hybrid replay extension; marker).
    ReplayDiverge {
        /// Why: `"gap"`, `"partial"`, or `"mismatch"`.
        reason: String,
    },
    /// A pipeline stage accepted a chunk into its bounded input queue
    /// (staged-pipeline extension; marker). The chunk stays in the upstream
    /// queue until the downstream stage durably accepts it
    /// (peek-before-commit), so a stage restart replays it.
    StageEnqueue {
        /// Stage name: `"encode"`, `"transfer"`, or `"ingest"`.
        stage: String,
        /// Zero-based chunk index within the epoch.
        chunk: u64,
    },
    /// A pipeline stage finished a chunk and the downstream stage accepted
    /// it — the chunk is now removed from the upstream queue
    /// (staged-pipeline extension; marker).
    StageDequeue {
        /// Stage name: `"encode"`, `"transfer"`, or `"ingest"`.
        stage: String,
        /// Zero-based chunk index within the epoch.
        chunk: u64,
        /// Virtual ns the chunk waited in the queue before the stage could
        /// start it (queueing delay — the pipeline's internal backpressure).
        wait: Nanos,
    },
    /// A pipeline stage crashed mid-chunk and was restarted by its
    /// supervisor; the in-flight chunk is replayed from the upstream queue
    /// — charged twice in time, applied once in state (staged-pipeline
    /// extension; marker).
    StageRestart {
        /// Stage name: `"encode"`, `"transfer"`, or `"ingest"`.
        stage: String,
        /// Zero-based chunk index that was replayed.
        chunk: u64,
    },
    /// The previous epoch's pipeline had not fully drained when this epoch's
    /// checkpoint began: the stop phase stalls until the backlog clears
    /// (staged-pipeline extension; a *stop-phase* span). Persistent
    /// backpressure degrades the pipeline toward the paper's synchronous
    /// behavior.
    Backpressure {
        /// Virtual ns the stop phase stalled waiting for the pipeline.
        stalled: Nanos,
    },
    /// A fleet member's epoch began at its staggered phase offset (fleet
    /// extension; marker at the member's epoch boundary). Under `--aligned`
    /// every lane's offset is 0 — the convoy configuration.
    FleetEpochStart {
        /// Fleet lane (container index within the pair).
        lane: u32,
        /// This lane's phase offset within the epoch period (`i·epoch/N` ns).
        offset: Nanos,
    },
    /// Extra time this lane's transfer waited on the shared replication link
    /// beyond its own wire time, under the fair-share (deficit round-robin)
    /// arbiter (fleet extension; an ack-phase *span* — it participates in the
    /// per-lane ack reconciliation identity, see OBSERVABILITY.md).
    FairShareWait {
        /// Fleet lane (container index within the pair).
        lane: u32,
        /// Virtual ns waited for other lanes' quanta on the shared link.
        waited: Nanos,
    },
}

impl TraceEvent {
    /// Stable name of this variant (the JSONL tag; used for report grouping).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "RunStart",
            TraceEvent::Exec { .. } => "Exec",
            TraceEvent::Freeze => "Freeze",
            TraceEvent::Dump { .. } => "Dump",
            TraceEvent::DumpDetail { .. } => "DumpDetail",
            TraceEvent::DeltaEncode { .. } => "DeltaEncode",
            TraceEvent::LocalCopy => "LocalCopy",
            TraceEvent::DrbdShip { .. } => "DrbdShip",
            TraceEvent::CowCopy { .. } => "CowCopy",
            TraceEvent::CowFault { .. } => "CowFault",
            TraceEvent::Transfer { .. } => "Transfer",
            TraceEvent::BackupIngest { .. } => "BackupIngest",
            TraceEvent::Ack => "Ack",
            TraceEvent::BackupCommit { .. } => "BackupCommit",
            TraceEvent::OutputRelease { .. } => "OutputRelease",
            TraceEvent::ClientDeliver { .. } => "ClientDeliver",
            TraceEvent::HeartbeatMiss { .. } => "HeartbeatMiss",
            TraceEvent::OutputDiscard { .. } => "OutputDiscard",
            TraceEvent::RearmStart { .. } => "RearmStart",
            TraceEvent::BootstrapChunk { .. } => "BootstrapChunk",
            TraceEvent::RearmComplete { .. } => "RearmComplete",
            TraceEvent::Failover { .. } => "Failover",
            TraceEvent::PartitionStart => "PartitionStart",
            TraceEvent::PartitionHeal => "PartitionHeal",
            TraceEvent::LeaseAcquire { .. } => "LeaseAcquire",
            TraceEvent::LeaseExpire { .. } => "LeaseExpire",
            TraceEvent::FencedOutput { .. } => "FencedOutput",
            TraceEvent::FalseSuspicion { .. } => "FalseSuspicion",
            TraceEvent::ChaosDelay { .. } => "ChaosDelay",
            TraceEvent::ShardCommit { .. } => "ShardCommit",
            TraceEvent::RepairStart { .. } => "RepairStart",
            TraceEvent::RepairChunk { .. } => "RepairChunk",
            TraceEvent::RepairComplete { .. } => "RepairComplete",
            TraceEvent::DegradedMode { .. } => "DegradedMode",
            TraceEvent::LogShip { .. } => "LogShip",
            TraceEvent::LogCommit { .. } => "LogCommit",
            TraceEvent::ReplayStart { .. } => "ReplayStart",
            TraceEvent::ReplayComplete { .. } => "ReplayComplete",
            TraceEvent::ReplayDiverge { .. } => "ReplayDiverge",
            TraceEvent::StageEnqueue { .. } => "StageEnqueue",
            TraceEvent::StageDequeue { .. } => "StageDequeue",
            TraceEvent::StageRestart { .. } => "StageRestart",
            TraceEvent::Backpressure { .. } => "Backpressure",
            TraceEvent::FleetEpochStart { .. } => "FleetEpochStart",
            TraceEvent::FairShareWait { .. } => "FairShareWait",
        }
    }

    /// Phase spans charged to the container's *stop* time.
    pub fn is_stop_phase(&self) -> bool {
        matches!(
            self,
            TraceEvent::Freeze
                | TraceEvent::Dump { .. }
                | TraceEvent::DeltaEncode { .. }
                | TraceEvent::LocalCopy
                | TraceEvent::Backpressure { .. }
        )
    }

    /// Phase spans charged to the post-resume *ack* path.
    pub fn is_ack_phase(&self) -> bool {
        matches!(
            self,
            TraceEvent::CowCopy { .. }
                | TraceEvent::ShardCommit { .. }
                | TraceEvent::Transfer { .. }
                | TraceEvent::BackupIngest { .. }
                | TraceEvent::Ack
                | TraceEvent::ChaosDelay { .. }
                | TraceEvent::FairShareWait { .. }
        )
    }

    /// Phase spans charged to the continuous log-ship path (hybrid replay).
    pub fn is_log_phase(&self) -> bool {
        matches!(self, TraceEvent::LogShip { .. })
    }
}

// The offline serde stand-in's derive does not handle struct-style enum
// variants, so (de)serialization is spelled out. The wire format follows
// serde's externally-tagged convention: `"Freeze"` for unit variants,
// `{"Dump":{"dirty_pages":3}}` for data variants.
impl serde::ser::Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        fn u(v: u64) -> Value {
            Value::Int(v as i128)
        }
        fn tagged(tag: &str, fields: Vec<(String, Value)>) -> Value {
            Value::Object(vec![(tag.to_string(), Value::Object(fields))])
        }
        match self {
            TraceEvent::Freeze => Value::Str("Freeze".into()),
            TraceEvent::LocalCopy => Value::Str("LocalCopy".into()),
            TraceEvent::Ack => Value::Str("Ack".into()),
            TraceEvent::PartitionStart => Value::Str("PartitionStart".into()),
            TraceEvent::PartitionHeal => Value::Str("PartitionHeal".into()),
            TraceEvent::RunStart { name, mode } => tagged(
                "RunStart",
                vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("mode".into(), Value::Str(mode.clone())),
                ],
            ),
            TraceEvent::Exec { requests, steps } => tagged(
                "Exec",
                vec![
                    ("requests".into(), u(*requests)),
                    ("steps".into(), u(*steps)),
                ],
            ),
            TraceEvent::Dump { dirty_pages } => {
                tagged("Dump", vec![("dirty_pages".into(), u(*dirty_pages))])
            }
            TraceEvent::DumpDetail {
                processes,
                pages,
                sockets,
                fs_cache,
                infrequent,
            } => tagged(
                "DumpDetail",
                vec![
                    ("processes".into(), u(*processes)),
                    ("pages".into(), u(*pages)),
                    ("sockets".into(), u(*sockets)),
                    ("fs_cache".into(), u(*fs_cache)),
                    ("infrequent".into(), u(*infrequent)),
                ],
            ),
            TraceEvent::DeltaEncode {
                zero_pages,
                delta_pages,
                full_pages,
                raw_bytes,
                encoded_bytes,
            } => tagged(
                "DeltaEncode",
                vec![
                    ("zero_pages".into(), u(*zero_pages)),
                    ("delta_pages".into(), u(*delta_pages)),
                    ("full_pages".into(), u(*full_pages)),
                    ("raw_bytes".into(), u(*raw_bytes)),
                    ("encoded_bytes".into(), u(*encoded_bytes)),
                ],
            ),
            TraceEvent::DrbdShip { writes, bytes } => tagged(
                "DrbdShip",
                vec![("writes".into(), u(*writes)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::CowCopy { pages, bytes } => tagged(
                "CowCopy",
                vec![("pages".into(), u(*pages)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::CowFault { faults } => {
                tagged("CowFault", vec![("faults".into(), u(*faults))])
            }
            TraceEvent::Transfer { bytes } => tagged("Transfer", vec![("bytes".into(), u(*bytes))]),
            TraceEvent::BackupIngest { probes } => {
                tagged("BackupIngest", vec![("probes".into(), u(*probes))])
            }
            TraceEvent::BackupCommit { probes, disk_pages } => tagged(
                "BackupCommit",
                vec![
                    ("probes".into(), u(*probes)),
                    ("disk_pages".into(), u(*disk_pages)),
                ],
            ),
            TraceEvent::OutputRelease { packets } => {
                tagged("OutputRelease", vec![("packets".into(), u(*packets))])
            }
            TraceEvent::ClientDeliver { responses } => {
                tagged("ClientDeliver", vec![("responses".into(), u(*responses))])
            }
            TraceEvent::HeartbeatMiss { misses } => {
                tagged("HeartbeatMiss", vec![("misses".into(), u(*misses as u64))])
            }
            TraceEvent::OutputDiscard { packets } => {
                tagged("OutputDiscard", vec![("packets".into(), u(*packets))])
            }
            TraceEvent::RearmStart { attempt } => {
                tagged("RearmStart", vec![("attempt".into(), u(*attempt as u64))])
            }
            TraceEvent::BootstrapChunk { pages, bytes } => tagged(
                "BootstrapChunk",
                vec![("pages".into(), u(*pages)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::RearmComplete { pages, bytes } => tagged(
                "RearmComplete",
                vec![("pages".into(), u(*pages)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::Failover {
                detection_latency,
                restore,
                arp,
                tcp,
                others,
            } => tagged(
                "Failover",
                vec![
                    ("detection_latency".into(), u(*detection_latency)),
                    ("restore".into(), u(*restore)),
                    ("arp".into(), u(*arp)),
                    ("tcp".into(), u(*tcp)),
                    ("others".into(), u(*others)),
                ],
            ),
            TraceEvent::LeaseAcquire { until } => {
                tagged("LeaseAcquire", vec![("until".into(), u(*until))])
            }
            TraceEvent::LeaseExpire { at } => tagged("LeaseExpire", vec![("at".into(), u(*at))]),
            TraceEvent::FencedOutput { packets } => {
                tagged("FencedOutput", vec![("packets".into(), u(*packets))])
            }
            TraceEvent::FalseSuspicion { suspected_for } => tagged(
                "FalseSuspicion",
                vec![("suspected_for".into(), u(*suspected_for))],
            ),
            TraceEvent::ChaosDelay { extra } => {
                tagged("ChaosDelay", vec![("extra".into(), u(*extra))])
            }
            TraceEvent::ShardCommit {
                shards,
                pages,
                frag_bytes,
            } => tagged(
                "ShardCommit",
                vec![
                    ("shards".into(), u(*shards as u64)),
                    ("pages".into(), u(*pages)),
                    ("frag_bytes".into(), u(*frag_bytes)),
                ],
            ),
            TraceEvent::RepairStart { kind, attempt } => tagged(
                "RepairStart",
                vec![
                    ("kind".into(), Value::Str(kind.clone())),
                    ("attempt".into(), u(*attempt as u64)),
                ],
            ),
            TraceEvent::RepairChunk { pages, bytes } => tagged(
                "RepairChunk",
                vec![("pages".into(), u(*pages)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::RepairComplete { pages, bytes } => tagged(
                "RepairComplete",
                vec![("pages".into(), u(*pages)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::DegradedMode { alive, need } => tagged(
                "DegradedMode",
                vec![
                    ("alive".into(), u(*alive as u64)),
                    ("need".into(), u(*need as u64)),
                ],
            ),
            TraceEvent::LogShip { events, bytes } => tagged(
                "LogShip",
                vec![("events".into(), u(*events)), ("bytes".into(), u(*bytes))],
            ),
            TraceEvent::LogCommit {
                events,
                commit_latency,
            } => tagged(
                "LogCommit",
                vec![
                    ("events".into(), u(*events)),
                    ("commit_latency".into(), u(*commit_latency)),
                ],
            ),
            TraceEvent::ReplayStart { epochs, events } => tagged(
                "ReplayStart",
                vec![("epochs".into(), u(*epochs)), ("events".into(), u(*events))],
            ),
            TraceEvent::ReplayComplete {
                events,
                replay_time,
            } => tagged(
                "ReplayComplete",
                vec![
                    ("events".into(), u(*events)),
                    ("replay_time".into(), u(*replay_time)),
                ],
            ),
            TraceEvent::ReplayDiverge { reason } => tagged(
                "ReplayDiverge",
                vec![("reason".into(), Value::Str(reason.clone()))],
            ),
            TraceEvent::StageEnqueue { stage, chunk } => tagged(
                "StageEnqueue",
                vec![
                    ("stage".into(), Value::Str(stage.clone())),
                    ("chunk".into(), u(*chunk)),
                ],
            ),
            TraceEvent::StageDequeue { stage, chunk, wait } => tagged(
                "StageDequeue",
                vec![
                    ("stage".into(), Value::Str(stage.clone())),
                    ("chunk".into(), u(*chunk)),
                    ("wait".into(), u(*wait)),
                ],
            ),
            TraceEvent::StageRestart { stage, chunk } => tagged(
                "StageRestart",
                vec![
                    ("stage".into(), Value::Str(stage.clone())),
                    ("chunk".into(), u(*chunk)),
                ],
            ),
            TraceEvent::Backpressure { stalled } => {
                tagged("Backpressure", vec![("stalled".into(), u(*stalled))])
            }
            TraceEvent::FleetEpochStart { lane, offset } => tagged(
                "FleetEpochStart",
                vec![
                    ("lane".into(), u(*lane as u64)),
                    ("offset".into(), u(*offset)),
                ],
            ),
            TraceEvent::FairShareWait { lane, waited } => tagged(
                "FairShareWait",
                vec![
                    ("lane".into(), u(*lane as u64)),
                    ("waited".into(), u(*waited)),
                ],
            ),
        }
    }
}

impl serde::de::Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        if let Some(s) = v.as_str() {
            return match s {
                "Freeze" => Ok(TraceEvent::Freeze),
                "LocalCopy" => Ok(TraceEvent::LocalCopy),
                "Ack" => Ok(TraceEvent::Ack),
                "PartitionStart" => Ok(TraceEvent::PartitionStart),
                "PartitionHeal" => Ok(TraceEvent::PartitionHeal),
                other => Err(serde::Error::msg(format!("unknown trace event {other:?}"))),
            };
        }
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("trace event: expected string or object"))?;
        let [(tag, inner)] = obj else {
            return Err(serde::Error::msg("trace event: expected single-key object"));
        };
        let f = serde::de::field::<u64>;
        let fields = inner
            .as_object()
            .ok_or_else(|| serde::Error::msg(format!("{tag}: expected object payload")))?;
        match tag.as_str() {
            "RunStart" => Ok(TraceEvent::RunStart {
                name: serde::de::field(fields, "name")?,
                mode: serde::de::field(fields, "mode")?,
            }),
            "Exec" => Ok(TraceEvent::Exec {
                requests: f(fields, "requests")?,
                steps: f(fields, "steps")?,
            }),
            "Dump" => Ok(TraceEvent::Dump {
                dirty_pages: f(fields, "dirty_pages")?,
            }),
            "DumpDetail" => Ok(TraceEvent::DumpDetail {
                processes: f(fields, "processes")?,
                pages: f(fields, "pages")?,
                sockets: f(fields, "sockets")?,
                fs_cache: f(fields, "fs_cache")?,
                infrequent: f(fields, "infrequent")?,
            }),
            "DeltaEncode" => Ok(TraceEvent::DeltaEncode {
                zero_pages: f(fields, "zero_pages")?,
                delta_pages: f(fields, "delta_pages")?,
                full_pages: f(fields, "full_pages")?,
                raw_bytes: f(fields, "raw_bytes")?,
                encoded_bytes: f(fields, "encoded_bytes")?,
            }),
            "DrbdShip" => Ok(TraceEvent::DrbdShip {
                writes: f(fields, "writes")?,
                bytes: f(fields, "bytes")?,
            }),
            "CowCopy" => Ok(TraceEvent::CowCopy {
                pages: f(fields, "pages")?,
                bytes: f(fields, "bytes")?,
            }),
            "CowFault" => Ok(TraceEvent::CowFault {
                faults: f(fields, "faults")?,
            }),
            "Transfer" => Ok(TraceEvent::Transfer {
                bytes: f(fields, "bytes")?,
            }),
            "BackupIngest" => Ok(TraceEvent::BackupIngest {
                probes: f(fields, "probes")?,
            }),
            "BackupCommit" => Ok(TraceEvent::BackupCommit {
                probes: f(fields, "probes")?,
                disk_pages: f(fields, "disk_pages")?,
            }),
            "OutputRelease" => Ok(TraceEvent::OutputRelease {
                packets: f(fields, "packets")?,
            }),
            "ClientDeliver" => Ok(TraceEvent::ClientDeliver {
                responses: f(fields, "responses")?,
            }),
            "HeartbeatMiss" => Ok(TraceEvent::HeartbeatMiss {
                misses: serde::de::field(fields, "misses")?,
            }),
            "OutputDiscard" => Ok(TraceEvent::OutputDiscard {
                packets: f(fields, "packets")?,
            }),
            "RearmStart" => Ok(TraceEvent::RearmStart {
                attempt: serde::de::field(fields, "attempt")?,
            }),
            "BootstrapChunk" => Ok(TraceEvent::BootstrapChunk {
                pages: f(fields, "pages")?,
                bytes: f(fields, "bytes")?,
            }),
            "RearmComplete" => Ok(TraceEvent::RearmComplete {
                pages: f(fields, "pages")?,
                bytes: f(fields, "bytes")?,
            }),
            "Failover" => Ok(TraceEvent::Failover {
                detection_latency: f(fields, "detection_latency")?,
                restore: f(fields, "restore")?,
                arp: f(fields, "arp")?,
                tcp: f(fields, "tcp")?,
                others: f(fields, "others")?,
            }),
            "LeaseAcquire" => Ok(TraceEvent::LeaseAcquire {
                until: f(fields, "until")?,
            }),
            "LeaseExpire" => Ok(TraceEvent::LeaseExpire {
                at: f(fields, "at")?,
            }),
            "FencedOutput" => Ok(TraceEvent::FencedOutput {
                packets: f(fields, "packets")?,
            }),
            "FalseSuspicion" => Ok(TraceEvent::FalseSuspicion {
                suspected_for: f(fields, "suspected_for")?,
            }),
            "ChaosDelay" => Ok(TraceEvent::ChaosDelay {
                extra: f(fields, "extra")?,
            }),
            "ShardCommit" => Ok(TraceEvent::ShardCommit {
                shards: serde::de::field(fields, "shards")?,
                pages: f(fields, "pages")?,
                frag_bytes: f(fields, "frag_bytes")?,
            }),
            "RepairStart" => Ok(TraceEvent::RepairStart {
                kind: serde::de::field(fields, "kind")?,
                attempt: serde::de::field(fields, "attempt")?,
            }),
            "RepairChunk" => Ok(TraceEvent::RepairChunk {
                pages: f(fields, "pages")?,
                bytes: f(fields, "bytes")?,
            }),
            "RepairComplete" => Ok(TraceEvent::RepairComplete {
                pages: f(fields, "pages")?,
                bytes: f(fields, "bytes")?,
            }),
            "DegradedMode" => Ok(TraceEvent::DegradedMode {
                alive: serde::de::field(fields, "alive")?,
                need: serde::de::field(fields, "need")?,
            }),
            "LogShip" => Ok(TraceEvent::LogShip {
                events: f(fields, "events")?,
                bytes: f(fields, "bytes")?,
            }),
            "LogCommit" => Ok(TraceEvent::LogCommit {
                events: f(fields, "events")?,
                commit_latency: f(fields, "commit_latency")?,
            }),
            "ReplayStart" => Ok(TraceEvent::ReplayStart {
                epochs: f(fields, "epochs")?,
                events: f(fields, "events")?,
            }),
            "ReplayComplete" => Ok(TraceEvent::ReplayComplete {
                events: f(fields, "events")?,
                replay_time: f(fields, "replay_time")?,
            }),
            "ReplayDiverge" => Ok(TraceEvent::ReplayDiverge {
                reason: serde::de::field(fields, "reason")?,
            }),
            "StageEnqueue" => Ok(TraceEvent::StageEnqueue {
                stage: serde::de::field(fields, "stage")?,
                chunk: f(fields, "chunk")?,
            }),
            "StageDequeue" => Ok(TraceEvent::StageDequeue {
                stage: serde::de::field(fields, "stage")?,
                chunk: f(fields, "chunk")?,
                wait: f(fields, "wait")?,
            }),
            "StageRestart" => Ok(TraceEvent::StageRestart {
                stage: serde::de::field(fields, "stage")?,
                chunk: f(fields, "chunk")?,
            }),
            "Backpressure" => Ok(TraceEvent::Backpressure {
                stalled: f(fields, "stalled")?,
            }),
            "FleetEpochStart" => Ok(TraceEvent::FleetEpochStart {
                lane: serde::de::field(fields, "lane")?,
                offset: f(fields, "offset")?,
            }),
            "FairShareWait" => Ok(TraceEvent::FairShareWait {
                lane: serde::de::field(fields, "lane")?,
                waited: f(fields, "waited")?,
            }),
            other => Err(serde::Error::msg(format!("unknown trace event {other:?}"))),
        }
    }
}

/// One record in a trace: an epoch-attributed span or marker in virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Epoch the record belongs to (restarts at 0 per `RunStart`).
    pub epoch: u64,
    /// Start time (virtual ns).
    pub t: Nanos,
    /// Duration (virtual ns; 0 for markers/events).
    pub dur: Nanos,
    /// What happened.
    pub kind: TraceEvent,
}

/// Where trace records go. Implementations must be cheap: the pipeline emits
/// up to ~10 records per epoch.
pub trait TraceSink {
    /// Accept one record.
    fn record(&mut self, rec: &TraceRecord);
    /// Flush buffered output (file sinks). Default: nothing to do.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The default sink: discards everything.
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Bounded in-memory sink: keeps the most recent `cap` records. Read the
/// contents back through the [`RingHandle`] from [`RingSink::handle`] (or
/// [`Tracer::in_memory`]).
pub struct RingSink {
    cap: usize,
    buf: Rc<RefCell<VecDeque<TraceRecord>>>,
}

impl RingSink {
    /// New ring buffer holding at most `cap` records.
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Rc::new(RefCell::new(VecDeque::new())),
        }
    }

    /// A read handle sharing this sink's buffer.
    pub fn handle(&self) -> RingHandle {
        RingHandle(Rc::clone(&self.buf))
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(rec.clone());
    }
}

/// Read handle over a [`RingSink`]'s buffer.
#[derive(Clone)]
pub struct RingHandle(Rc<RefCell<VecDeque<TraceRecord>>>);

impl RingHandle {
    /// Copy of the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.0.borrow().iter().cloned().collect()
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

/// JSONL file sink: one [`TraceRecord`] per line.
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream records into it.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, rec: &TraceRecord) {
        // Serialization of a TraceRecord cannot fail; a full disk surfaces
        // on flush.
        if let Ok(line) = serde_json::to_string(rec) {
            let _ = writeln!(self.out, "{line}");
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

struct TracerInner {
    sink: Box<dyn TraceSink>,
    epoch: u64,
    /// Where the next contiguous span starts.
    cursor: Nanos,
    /// Running sum of stop-phase span durations this epoch.
    stop_sum: Nanos,
    /// Running sum of ack-path span durations this epoch.
    ack_sum: Nanos,
    /// Running sum of log-ship span durations this epoch (hybrid replay).
    log_sum: Nanos,
    /// Whether any phase span was emitted this epoch (uninstrumented engines
    /// emit none, and then reconciliation is vacuous).
    saw_phase: bool,
}

/// Shared handle to a trace in progress. Cloning is cheap (`Rc`); the
/// harness, engine, detector, and client pool all hold clones of one tracer.
/// A disabled tracer ([`Tracer::disabled`], also [`Default`]) makes every
/// operation a no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TracerInner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(i) => write!(f, "Tracer(epoch={})", i.borrow().epoch),
        }
    }
}

impl Tracer {
    /// A tracer that records nothing (the default everywhere).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer feeding `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TracerInner {
                sink,
                epoch: 0,
                cursor: 0,
                stop_sum: 0,
                ack_sum: 0,
                log_sum: 0,
                saw_phase: false,
            }))),
        }
    }

    /// A tracer writing JSONL to `path`.
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Tracer::new(Box::new(JsonlSink::create(path)?)))
    }

    /// A tracer over a fresh ring buffer, plus the read handle.
    pub fn in_memory(cap: usize) -> (Self, RingHandle) {
        let sink = RingSink::new(cap);
        let handle = sink.handle();
        (Tracer::new(Box::new(sink)), handle)
    }

    /// Whether records are being kept. Use to skip costly argument
    /// computation at call sites.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a new epoch: spans emitted via [`Tracer::span`] are laid out
    /// contiguously from `start`.
    pub fn begin_epoch(&self, epoch: u64, start: Nanos) {
        if let Some(inner) = &self.inner {
            let mut i = inner.borrow_mut();
            i.epoch = epoch;
            i.cursor = start;
            i.stop_sum = 0;
            i.ack_sum = 0;
            i.log_sum = 0;
            i.saw_phase = false;
        }
    }

    /// Emit a span of `dur` at the cursor and advance the cursor past it.
    /// Phase spans also feed the reconciliation sums.
    pub fn span(&self, kind: TraceEvent, dur: Nanos) {
        if let Some(inner) = &self.inner {
            let mut i = inner.borrow_mut();
            if kind.is_stop_phase() {
                i.stop_sum += dur;
                i.saw_phase = true;
            } else if kind.is_ack_phase() {
                i.ack_sum += dur;
                i.saw_phase = true;
            } else if kind.is_log_phase() {
                i.log_sum += dur;
                i.saw_phase = true;
            }
            let rec = TraceRecord {
                epoch: i.epoch,
                t: i.cursor,
                dur,
                kind,
            };
            i.cursor += dur;
            i.sink.record(&rec);
        }
    }

    /// Emit a zero-duration marker at the cursor (breakdowns, commit notes).
    pub fn mark(&self, kind: TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut i = inner.borrow_mut();
            let rec = TraceRecord {
                epoch: i.epoch,
                t: i.cursor,
                dur: 0,
                kind,
            };
            i.sink.record(&rec);
        }
    }

    /// Emit a zero-duration event at an explicit time `t` (releases,
    /// heartbeat misses, failover) without moving the cursor.
    pub fn event_at(&self, kind: TraceEvent, t: Nanos) {
        if let Some(inner) = &self.inner {
            let mut i = inner.borrow_mut();
            let rec = TraceRecord {
                epoch: i.epoch,
                t,
                dur: 0,
                kind,
            };
            i.sink.record(&rec);
        }
    }

    /// Check the epoch's phase spans against the engine-reported
    /// `stop_time`/`ack_delay` (see the module docs for the exact identity)
    /// and reset the sums. Vacuously `Ok` if no phase spans were emitted.
    pub fn reconcile(&self, epoch: u64, stop_time: Nanos, ack_delay: Nanos) -> Result<(), String> {
        self.reconcile_with_log(epoch, stop_time, ack_delay, 0)
    }

    /// [`Tracer::reconcile`] extended with the hybrid-replay axis: log-ship
    /// spans must additionally sum to `log_total` (the engine-reported
    /// cumulative log commit latency this epoch). Paper-path epochs pass 0.
    pub fn reconcile_with_log(
        &self,
        epoch: u64,
        stop_time: Nanos,
        ack_delay: Nanos,
        log_total: Nanos,
    ) -> Result<(), String> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut i = inner.borrow_mut();
        let (stop_sum, ack_sum, log_sum, saw) = (i.stop_sum, i.ack_sum, i.log_sum, i.saw_phase);
        i.stop_sum = 0;
        i.ack_sum = 0;
        i.log_sum = 0;
        i.saw_phase = false;
        if !saw {
            return Ok(());
        }
        let ok = log_sum == log_total
            && if ack_delay > 0 {
                stop_sum == stop_time && ack_sum == ack_delay
            } else {
                stop_sum + ack_sum == stop_time
            };
        if ok {
            Ok(())
        } else {
            Err(format!(
                "trace reconciliation failed for epoch {epoch}: stop spans {stop_sum}ns + ack \
                 spans {ack_sum}ns + log spans {log_sum}ns vs stop_time {stop_time}ns / \
                 ack_delay {ack_delay}ns / log_total {log_total}ns"
            ))
        }
    }

    /// Flush the underlying sink (file sinks buffer).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.borrow_mut().sink.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.begin_epoch(1, 0);
        t.span(TraceEvent::Freeze, 100);
        t.reconcile(1, 999, 999).unwrap(); // never fails when disabled
        t.flush().unwrap();
    }

    #[test]
    fn spans_are_contiguous_and_epoch_tagged() {
        let (t, ring) = Tracer::in_memory(16);
        t.begin_epoch(7, 1000);
        t.span(
            TraceEvent::Exec {
                requests: 3,
                steps: 0,
            },
            500,
        );
        t.span(TraceEvent::Freeze, 10);
        t.span(TraceEvent::Dump { dirty_pages: 2 }, 40);
        let recs = ring.snapshot();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.epoch == 7));
        assert_eq!((recs[0].t, recs[0].dur), (1000, 500));
        assert_eq!((recs[1].t, recs[1].dur), (1500, 10));
        assert_eq!((recs[2].t, recs[2].dur), (1510, 40));
    }

    #[test]
    fn reconcile_staging_and_inline_modes() {
        let (t, _ring) = Tracer::in_memory(16);
        // Staging: stop spans == stop_time, ack spans == ack_delay.
        t.begin_epoch(1, 0);
        t.span(TraceEvent::Freeze, 10);
        t.span(TraceEvent::Dump { dirty_pages: 0 }, 20);
        t.span(TraceEvent::LocalCopy, 5);
        t.span(TraceEvent::Transfer { bytes: 1 }, 7);
        t.span(TraceEvent::BackupIngest { probes: 0 }, 3);
        t.span(TraceEvent::Ack, 2);
        t.reconcile(1, 35, 12).unwrap();
        // Inline (no staging): everything inside stop_time.
        t.begin_epoch(2, 0);
        t.span(TraceEvent::Freeze, 10);
        t.span(TraceEvent::Dump { dirty_pages: 0 }, 20);
        t.span(TraceEvent::LocalCopy, 5);
        t.span(TraceEvent::Transfer { bytes: 1 }, 7);
        t.span(TraceEvent::BackupIngest { probes: 0 }, 3);
        t.span(TraceEvent::Ack, 2);
        t.reconcile(2, 47, 0).unwrap();
    }

    #[test]
    fn cow_copy_counts_toward_ack_sum() {
        let (t, _ring) = Tracer::in_memory(16);
        t.begin_epoch(1, 0);
        t.span(TraceEvent::Freeze, 10);
        t.span(TraceEvent::Dump { dirty_pages: 8 }, 20);
        t.span(TraceEvent::LocalCopy, 5);
        t.span(
            TraceEvent::CowCopy {
                pages: 8,
                bytes: 32_768,
            },
            40,
        );
        t.mark(TraceEvent::CowFault { faults: 2 }); // marker: no sum impact
        t.span(TraceEvent::Transfer { bytes: 32_768 }, 7);
        t.span(TraceEvent::BackupIngest { probes: 0 }, 3);
        t.span(TraceEvent::Ack, 2);
        t.reconcile(1, 35, 52).unwrap();
    }

    #[test]
    fn log_ship_counts_toward_log_sum() {
        let (t, _ring) = Tracer::in_memory(16);
        t.begin_epoch(1, 0);
        t.span(TraceEvent::Freeze, 10);
        t.span(TraceEvent::Dump { dirty_pages: 1 }, 20);
        t.span(TraceEvent::LocalCopy, 5);
        t.span(
            TraceEvent::LogShip {
                events: 6,
                bytes: 900,
            },
            68,
        );
        t.span(TraceEvent::Transfer { bytes: 4096 }, 7);
        t.span(TraceEvent::BackupIngest { probes: 1 }, 3);
        t.span(TraceEvent::Ack, 2);
        t.reconcile_with_log(1, 35, 12, 68).unwrap();
        // A missing log total is a reconciliation failure, not a silent pass.
        t.begin_epoch(2, 0);
        t.span(TraceEvent::Freeze, 35);
        t.span(
            TraceEvent::LogShip {
                events: 1,
                bytes: 50,
            },
            9,
        );
        let err = t.reconcile(2, 35, 0).unwrap_err();
        assert!(err.contains("log spans 9ns"), "{err}");
    }

    #[test]
    fn reconcile_detects_missing_span() {
        let (t, _ring) = Tracer::in_memory(16);
        t.begin_epoch(1, 0);
        t.span(TraceEvent::Freeze, 10);
        let err = t.reconcile(1, 35, 0).unwrap_err();
        assert!(err.contains("epoch 1"), "{err}");
        // Sums reset: the next epoch starts clean.
        t.begin_epoch(2, 0);
        t.span(TraceEvent::Freeze, 35);
        t.reconcile(2, 35, 0).unwrap();
    }

    #[test]
    fn reconcile_vacuous_without_phase_spans() {
        let (t, _ring) = Tracer::in_memory(16);
        t.begin_epoch(1, 0);
        t.span(
            TraceEvent::Exec {
                requests: 1,
                steps: 0,
            },
            30,
        );
        t.event_at(TraceEvent::OutputRelease { packets: 4 }, 99);
        t.reconcile(1, 123, 456).unwrap();
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let (t, ring) = Tracer::in_memory(2);
        t.begin_epoch(1, 0);
        t.span(TraceEvent::Freeze, 1);
        t.span(TraceEvent::LocalCopy, 1);
        t.span(TraceEvent::Ack, 1);
        let recs = ring.snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, TraceEvent::LocalCopy);
        assert_eq!(recs[1].kind, TraceEvent::Ack);
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let variants = vec![
            TraceEvent::RunStart {
                name: "redis".into(),
                mode: "NiLiCon".into(),
            },
            TraceEvent::Exec {
                requests: 5,
                steps: 6,
            },
            TraceEvent::Freeze,
            TraceEvent::Dump { dirty_pages: 99 },
            TraceEvent::DumpDetail {
                processes: 1,
                pages: 2,
                sockets: 3,
                fs_cache: 4,
                infrequent: 5,
            },
            TraceEvent::DeltaEncode {
                zero_pages: 4,
                delta_pages: 80,
                full_pages: 15,
                raw_bytes: 405_504,
                encoded_bytes: 71_300,
            },
            TraceEvent::LocalCopy,
            TraceEvent::DrbdShip {
                writes: 7,
                bytes: 4120,
            },
            TraceEvent::CowCopy {
                pages: 300,
                bytes: 1_228_800,
            },
            TraceEvent::CowFault { faults: 12 },
            TraceEvent::Transfer { bytes: 12345 },
            TraceEvent::BackupIngest { probes: 44 },
            TraceEvent::Ack,
            TraceEvent::BackupCommit {
                probes: 8,
                disk_pages: 2,
            },
            TraceEvent::OutputRelease { packets: 3 },
            TraceEvent::ClientDeliver { responses: 2 },
            TraceEvent::HeartbeatMiss { misses: 2 },
            TraceEvent::OutputDiscard { packets: 4 },
            TraceEvent::RearmStart { attempt: 1 },
            TraceEvent::BootstrapChunk {
                pages: 256,
                bytes: 1_048_576,
            },
            TraceEvent::RearmComplete {
                pages: 4096,
                bytes: 16_777_216,
            },
            TraceEvent::Failover {
                detection_latency: 90,
                restore: 218,
                arp: 28,
                tcp: 54,
                others: 7,
            },
            TraceEvent::PartitionStart,
            TraceEvent::PartitionHeal,
            TraceEvent::LeaseAcquire { until: 550_000_000 },
            TraceEvent::LeaseExpire { at: 550_000_000 },
            TraceEvent::FencedOutput { packets: 9 },
            TraceEvent::FalseSuspicion {
                suspected_for: 20_000_000,
            },
            TraceEvent::ChaosDelay { extra: 160_000_000 },
            TraceEvent::ShardCommit {
                shards: 3,
                pages: 120,
                frag_bytes: 245_760,
            },
            TraceEvent::RepairStart {
                kind: "repair".into(),
                attempt: 1,
            },
            TraceEvent::RepairChunk {
                pages: 256,
                bytes: 2_097_152,
            },
            TraceEvent::RepairComplete {
                pages: 4096,
                bytes: 33_554_432,
            },
            TraceEvent::DegradedMode { alive: 2, need: 2 },
            TraceEvent::LogShip {
                events: 42,
                bytes: 13_456,
            },
            TraceEvent::LogCommit {
                events: 42,
                commit_latency: 68_000,
            },
            TraceEvent::ReplayStart {
                epochs: 1,
                events: 42,
            },
            TraceEvent::ReplayComplete {
                events: 42,
                replay_time: 900_000,
            },
            TraceEvent::ReplayDiverge {
                reason: "partial".into(),
            },
            TraceEvent::StageEnqueue {
                stage: "encode".into(),
                chunk: 7,
            },
            TraceEvent::StageDequeue {
                stage: "transfer".into(),
                chunk: 7,
                wait: 12_000,
            },
            TraceEvent::StageRestart {
                stage: "ingest".into(),
                chunk: 3,
            },
            TraceEvent::Backpressure { stalled: 2_500_000 },
            TraceEvent::FleetEpochStart {
                lane: 5,
                offset: 1_875_000,
            },
            TraceEvent::FairShareWait {
                lane: 5,
                waited: 430_000,
            },
        ];
        for kind in variants {
            let rec = TraceRecord {
                epoch: 3,
                t: 100,
                dur: 50,
                kind: kind.clone(),
            };
            let line = serde_json::to_string(&rec).unwrap();
            let back: TraceRecord = serde_json::from_str(&line)
                .unwrap_or_else(|e| panic!("{}: {e:?} in {line}", kind.name()));
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let path = std::env::temp_dir().join("nilicon-trace-test.jsonl");
        let t = Tracer::to_file(&path).unwrap();
        t.begin_epoch(0, 0);
        t.span(TraceEvent::Freeze, 5);
        t.span(TraceEvent::Dump { dirty_pages: 1 }, 10);
        t.flush().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: TraceRecord = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.kind, TraceEvent::Freeze);
        let _ = std::fs::remove_file(&path);
    }
}
