//! Per-epoch metrics and aggregation — the raw material of Tables III-VI.

use nilicon_sim::time::Nanos;
use serde::Serialize;

/// One epoch's measurements.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct EpochRecord {
    /// Epoch number.
    pub epoch: u64,
    /// Container/VM stop time (freeze + dump + local copy).
    pub stop_time: Nanos,
    /// Dirty pages captured.
    pub dirty_pages: u64,
    /// Bytes transferred to the backup for this epoch.
    pub state_bytes: u64,
    /// Time from resume until the backup's ack (output-release delay beyond
    /// the stop).
    pub ack_delay: Nanos,
    /// CPU the container actually consumed during the execution phase.
    pub exec_cpu: Nanos,
    /// Runtime overhead charged to page-tracking faults during execution.
    pub tracking_overhead: Nanos,
    /// Backup CPU spent ingesting this epoch's state.
    pub backup_cpu: Nanos,
    /// Requests completed this epoch (server workloads).
    pub requests_done: u64,
    /// Batch steps completed this epoch (batch workloads).
    pub steps_done: u64,
}

/// Aggregated metrics over a run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunMetrics {
    /// All epoch records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Total virtual run time.
    pub elapsed: Nanos,
    /// Total requests completed.
    pub requests_total: u64,
    /// Total batch steps completed.
    pub steps_total: u64,
    /// Total backup CPU.
    pub backup_cpu_total: Nanos,
    /// Total primary exec CPU.
    pub exec_cpu_total: Nanos,
    /// Per-response client latencies (server workloads).
    pub response_latencies: Vec<Nanos>,
    /// Per-response output-release waits: time from a response being ready
    /// until it is externalizable. Epoch-ack release waits for the next
    /// checkpoint commit (~tens of ms); hybrid-replay release waits only for
    /// the response's log chunk to commit (~tens of µs).
    pub release_waits: Vec<Nanos>,
}

impl RunMetrics {
    /// Record one epoch.
    pub fn push(&mut self, r: EpochRecord) {
        self.requests_total += r.requests_done;
        self.steps_total += r.steps_done;
        self.backup_cpu_total += r.backup_cpu;
        self.exec_cpu_total += r.exec_cpu;
        self.epochs.push(r);
    }

    /// Average stop time (Table III).
    pub fn avg_stop(&self) -> Nanos {
        avg(self.epochs.iter().map(|e| e.stop_time))
    }

    /// Average dirty pages per epoch (Table III).
    pub fn avg_dirty_pages(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.dirty_pages).sum::<u64>() as f64 / self.epochs.len() as f64
    }

    /// Stop-time percentile (Table IV).
    pub fn stop_percentile(&self, p: f64) -> Nanos {
        percentile(self.epochs.iter().map(|e| e.stop_time).collect(), p)
    }

    /// State-size percentile in bytes (Table IV).
    pub fn state_percentile(&self, p: f64) -> u64 {
        percentile(self.epochs.iter().map(|e| e.state_bytes).collect(), p)
    }

    /// Requests per virtual second (server throughput).
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.requests_total as f64 / (self.elapsed as f64 / 1e9)
    }

    /// Batch steps per virtual second.
    pub fn steps_per_sec(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.steps_total as f64 / (self.elapsed as f64 / 1e9)
    }

    /// Mean response latency (Table VI).
    pub fn mean_latency(&self) -> Nanos {
        avg(self.response_latencies.iter().copied())
    }

    /// Mean output-release wait (the Table-VI latency component that hybrid
    /// replay attacks).
    pub fn mean_release_wait(&self) -> Nanos {
        avg(self.release_waits.iter().copied())
    }

    /// Output-release-wait percentile.
    pub fn release_wait_percentile(&self, p: f64) -> Nanos {
        percentile(self.release_waits.clone(), p)
    }

    /// Backup core utilization: backup CPU / elapsed (Table V).
    pub fn backup_utilization(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.backup_cpu_total as f64 / self.elapsed as f64
    }

    /// Active (primary) core utilization: exec CPU / elapsed (Table V).
    pub fn active_utilization(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.exec_cpu_total as f64 / self.elapsed as f64
    }

    /// Fraction of total overhead attributable to stop time vs runtime
    /// tracking: `(stop_total, tracking_total)` (Fig. 3 breakdown).
    pub fn overhead_split(&self) -> (Nanos, Nanos) {
        (
            self.epochs.iter().map(|e| e.stop_time).sum(),
            self.epochs.iter().map(|e| e.tracking_overhead).sum(),
        )
    }
}

fn avg(it: impl Iterator<Item = Nanos>) -> Nanos {
    let mut sum = 0u128;
    let mut n = 0u128;
    for v in it {
        sum += v as u128;
        n += 1;
    }
    sum.checked_div(n).unwrap_or(0) as Nanos
}

/// Nearest-rank percentile (`p` in 0..=100) of an unsorted sample.
pub fn percentile<T: Ord + Copy + Default>(mut v: Vec<T>, p: f64) -> T {
    if v.is_empty() {
        return T::default();
    }
    v.sort_unstable();
    let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    v[rank.min(v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(v.clone(), 10.0), 10);
        assert_eq!(percentile(v.clone(), 50.0), 50);
        assert_eq!(percentile(v.clone(), 90.0), 90);
        assert_eq!(percentile(v, 100.0), 100);
        assert_eq!(percentile(vec![42u64], 10.0), 42);
        assert_eq!(percentile(Vec::<u64>::new(), 50.0), 0);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty sample: the type's default, at any p.
        assert_eq!(percentile(Vec::<u64>::new(), 0.0), 0);
        assert_eq!(percentile(Vec::<u64>::new(), 100.0), 0);
        // Single element: that element, at any p.
        assert_eq!(percentile(vec![7u64], 0.0), 7);
        assert_eq!(percentile(vec![7u64], 50.0), 7);
        assert_eq!(percentile(vec![7u64], 100.0), 7);
        // p0 clamps to the minimum, p100 to the maximum (nearest-rank).
        let v = vec![30u64, 10, 20];
        assert_eq!(percentile(v.clone(), 0.0), 10);
        assert_eq!(percentile(v, 100.0), 30);
        // Two elements: p50 is the lower, anything above is the upper.
        assert_eq!(percentile(vec![1u64, 2], 50.0), 1);
        assert_eq!(percentile(vec![1u64, 2], 51.0), 2);
    }

    #[test]
    fn aggregation() {
        let mut m = RunMetrics::default();
        for i in 1..=4u64 {
            m.push(EpochRecord {
                epoch: i,
                stop_time: i * 1000,
                dirty_pages: 10 * i,
                state_bytes: 4096 * i,
                exec_cpu: 30_000_000,
                backup_cpu: 1_000_000,
                requests_done: 5,
                ..Default::default()
            });
        }
        m.elapsed = 4 * 40_000_000;
        assert_eq!(m.avg_stop(), 2500);
        assert_eq!(m.avg_dirty_pages(), 25.0);
        assert_eq!(m.requests_total, 20);
        assert_eq!(m.stop_percentile(50.0), 2000);
        assert_eq!(m.state_percentile(90.0), 4096 * 4);
        assert!((m.throughput_rps() - 125.0).abs() < 1e-9);
        assert!((m.backup_utilization() - 0.025).abs() < 1e-9);
        assert!((m.active_utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn latency_mean() {
        let m = RunMetrics {
            response_latencies: vec![10, 20, 30],
            ..Default::default()
        };
        assert_eq!(m.mean_latency(), 20);
        let empty = RunMetrics::default();
        assert_eq!(empty.mean_latency(), 0);
    }

    #[test]
    fn overhead_split_sums() {
        let mut m = RunMetrics::default();
        m.push(EpochRecord {
            stop_time: 100,
            tracking_overhead: 7,
            ..Default::default()
        });
        m.push(EpochRecord {
            stop_time: 50,
            tracking_overhead: 3,
            ..Default::default()
        });
        assert_eq!(m.overhead_split(), (150, 10));
    }
}
