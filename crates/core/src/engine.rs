//! The [`Checkpointer`] seam between the epoch-loop harness and a
//! replication engine (NiLiCon here, MC in `nilicon-mc`).

use nilicon_container::Container;
use nilicon_criu::RestoredContainer;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::replay::{ReplayEvent, ReplayLog};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};

/// What one stop-phase checkpoint produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointOutcome {
    /// Virtual time the container/VM was stopped.
    pub stop_time: Nanos,
    /// Bytes shipped to the backup for this epoch (container state + disk).
    pub state_bytes: u64,
    /// Dirty pages captured.
    pub dirty_pages: u64,
    /// Delay from resume until the backup's ack arrives (release point of
    /// this epoch's buffered output). Zero if the transfer completed inside
    /// the stop phase (no staging buffer).
    pub ack_delay: Nanos,
    /// Backup CPU consumed ingesting this epoch.
    pub backup_cpu: Nanos,
}

/// Recovery-latency breakdown (Table II).
#[derive(Debug, Clone, Copy, Default)]
pub struct FailoverReport {
    /// Time to restore the container state on the backup.
    pub restore: Nanos,
    /// Gratuitous-ARP broadcast + propagation.
    pub arp: Nanos,
    /// Packet-retransmission delay not overlapped with other recovery
    /// actions (§V-E).
    pub tcp: Nanos,
    /// Everything else (bookkeeping, reconnecting the bridge).
    pub others: Nanos,
    /// Disk pages committed from the DRBD buffer during failover.
    pub disk_pages_committed: u64,
}

impl FailoverReport {
    /// Total recovery latency (excludes detection).
    pub fn total(&self) -> Nanos {
        self.restore + self.arp + self.tcp + self.others
    }
}

/// What starting a re-replication bootstrap produced
/// ([`Checkpointer::bootstrap_begin`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BootstrapBegin {
    /// Virtual time the container was stopped to write-protect its full
    /// resident set (the COW protect pass — roughly one epoch's stop time,
    /// not footprint-proportional).
    pub stop_time: Nanos,
    /// Deferred pages awaiting the background stream to the new backup.
    pub total_pages: u64,
    /// Metadata bytes of the full image (excluding the deferred pages).
    pub state_bytes: u64,
}

/// One bounded streaming step of a re-replication bootstrap
/// ([`Checkpointer::bootstrap_step`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BootstrapStep {
    /// Pages drained and shipped this step.
    pub pages: u64,
    /// Bytes those pages carried on the wire.
    pub bytes: u64,
    /// Backup CPU consumed ingesting this step's chunks.
    pub backup_cpu: Nanos,
    /// Deferred pages still awaiting a later step (0 means the bootstrap
    /// image is fully streamed and may be finished).
    pub remaining: u64,
}

fn no_rearm<T>() -> SimResult<T> {
    Err(SimError::Invalid(
        "engine does not support re-replication".into(),
    ))
}

/// What starting a coded repair produced ([`Checkpointer::repair_begin`]).
///
/// Unlike [`BootstrapBegin`] there is no `stop_time`: repair reads the
/// *committed* fragment stores of the surviving replicas, so the primary
/// container is never stopped.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairBegin {
    /// Committed pages whose missing fragment must be regenerated onto the
    /// replacement replica.
    pub total_pages: u64,
    /// Metadata bytes of the committed image (shipped with the base
    /// assembly, not per-page).
    pub state_bytes: u64,
}

fn no_placement<T>() -> SimResult<T> {
    Err(SimError::Invalid(
        "engine does not support k-of-n placement".into(),
    ))
}

/// What shipping one batch of nondeterminism-log events produced
/// ([`Checkpointer::ship_log`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogShipOutcome {
    /// Wire bytes the events carried.
    pub bytes: u64,
    /// Chunks (messages) the batch was shipped as.
    pub chunks: u64,
    /// Round-trip from handing the batch to the link until the backup's
    /// log-commit confirmation — the client-visible release wait under
    /// hybrid replay (replaces the epoch ack).
    pub commit_latency: Nanos,
    /// Backup CPU consumed receiving and storing the batch.
    pub backup_cpu: Nanos,
}

/// The sealed-log tail available for failover replay
/// ([`Checkpointer::take_replay_tail`]): every *sealed* epoch log past the
/// last committed checkpoint, stopping at the first gap or unsealed log.
#[derive(Debug, Clone, Default)]
pub struct ReplayTail {
    /// Contiguous sealed logs, ascending epoch order, all `> committed`.
    pub logs: Vec<ReplayLog>,
    /// True if an unsealed (partial) or missing epoch log truncated the tail
    /// — the divergence signal that forces the last-checkpoint fallback when
    /// it cuts the tail short of the fault epoch.
    pub dropped_partial: bool,
}

impl ReplayTail {
    /// Total events across the tail.
    pub fn events(&self) -> u64 {
        self.logs.iter().map(|l| l.len() as u64).sum()
    }
}

fn no_replay<T>() -> SimResult<T> {
    Err(SimError::Invalid(
        "engine does not support hybrid replay".into(),
    ))
}

/// A replication engine driven by the harness once per epoch.
pub trait Checkpointer {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Attach a [`Tracer`](crate::trace::Tracer): subsequent checkpoints
    /// should emit their phase spans into it. The default ignores the tracer
    /// (engines without instrumentation stay valid — the harness's
    /// reconciliation check is vacuous for them).
    fn set_tracer(&mut self, _tracer: crate::trace::Tracer) {}

    /// One-time setup on the primary (arm page tracking, initial full sync
    /// of memory and disk to the backup).
    fn prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()>;

    /// Execute one stop-phase checkpoint: freeze/pause, capture state,
    /// resume. Reports the stop time, the ack delay, and the transfer stats
    /// in the outcome. Without a staging buffer the transfer and the
    /// backup's inline ingest sit on the stop critical path (§V-D (2));
    /// with one, they overlap the next execution phase.
    fn checkpoint(
        &mut self,
        primary: &mut Kernel,
        backup: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<CheckpointOutcome>;

    /// The backup acked `epoch` (called at ack time): commit buffered disk
    /// writes and image state. Returns backup CPU consumed by the commit.
    fn commit(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos>;

    /// Staged-pipeline engines only ([`pipeline`]: the harness grants the
    /// engine's background stages `elapsed` nanoseconds of overlap (one
    /// execution phase) so the pipeline can drain its backlog. Engines
    /// without a pipeline ignore it.
    ///
    /// [`pipeline`]: crate::OptimizationConfig::pipeline
    fn pipeline_advance(&mut self, _elapsed: Nanos) {}

    /// Chaos hook: arm a one-shot pipeline-stage crash. The next checkpoint
    /// whose staged transfer reaches `chunk` loses that stage mid-chunk; the
    /// peek-before-commit channel holds the chunk until the stage's commit,
    /// so the restarted stage replays it exactly once (`StageRestart` in the
    /// trace). Engines without staged transfer ignore the hook.
    fn inject_stage_fail(&mut self, _chunk: u64) {}

    /// The primary failed: restore on `backup` from the last committed
    /// state. Returns the restored container and the latency breakdown.
    fn failover(&mut self, backup: &mut Kernel) -> SimResult<(RestoredContainer, FailoverReport)>;

    /// Highest committed epoch (None before the first commit).
    fn committed_epoch(&self) -> Option<u64>;

    /// Whether this engine can re-establish redundancy after a failover
    /// (the `rearm` extension). Engines that return `false` keep the paper's
    /// behavior: one failover permanently exhausts fault tolerance.
    fn supports_rearm(&self) -> bool {
        false
    }

    /// Reset replica-side state (the old backup died with its buffers) and
    /// re-arm page tracking / output plugging on the promoted container, in
    /// preparation for bootstrapping a replacement backup.
    fn rearm_prepare(&mut self, _primary: &mut Kernel, _container: &Container) -> SimResult<()> {
        no_rearm()
    }

    /// Start a re-replication bootstrap: take a *full* checkpoint of the
    /// promoted container with the page copies deferred via COW, so the
    /// container resumes after ~one epoch's stop time and the image streams
    /// to the new backup in the background.
    fn bootstrap_begin(
        &mut self,
        _primary: &mut Kernel,
        _container: &Container,
        _epoch: u64,
    ) -> SimResult<BootstrapBegin> {
        no_rearm()
    }

    /// Stream at most `max_pages` deferred pages of the bootstrap image to
    /// the new backup. Called once per epoch while the bootstrap is active.
    fn bootstrap_step(
        &mut self,
        _primary: &mut Kernel,
        _epoch: u64,
        _max_pages: u64,
    ) -> SimResult<BootstrapStep> {
        no_rearm()
    }

    /// All deferred pages arrived: seal and commit the bootstrap image on
    /// the new backup. Returns backup CPU consumed by the commit. After this
    /// the engine is ready for incremental [`Checkpointer::checkpoint`]
    /// epochs again.
    fn bootstrap_finish(&mut self, _backup: &mut Kernel, _epoch: u64) -> SimResult<Nanos> {
        no_rearm()
    }

    /// The replacement backup died mid-bootstrap: unwind the COW protect set
    /// on the primary and discard the half-assembled image so the promoted
    /// container can continue unreplicated (the harness retries later).
    fn bootstrap_abort(&mut self, _primary: &mut Kernel, _container: &Container) -> SimResult<()> {
        no_rearm()
    }

    /// Whether this engine stripes committed state across k-of-n replicas
    /// (the `placement` extension). When `false`, the remaining methods in
    /// this block error by default and the harness never calls them.
    fn supports_placement(&self) -> bool {
        false
    }

    /// The placement parameters `(quorum k, backups n)`. Engines without
    /// placement report the paper's implicit `(1, 1)` single warm backup.
    fn placement(&self) -> (u32, u32) {
        (1, 1)
    }

    /// The designated replica (the one backed by the harness's real backup
    /// kernel) was lost. Marks it dead and returns the number of replicas
    /// still alive; the caller decides whether the quorum still holds.
    fn replica_fault(&mut self) -> SimResult<u32> {
        no_placement()
    }

    /// Start a coded repair: regenerate the lost replica's fragment store
    /// from k surviving peers onto a fresh agent. The primary keeps serving
    /// — repair never stops the container.
    fn repair_begin(&mut self, _epoch: u64) -> SimResult<RepairBegin> {
        no_placement()
    }

    /// Regenerate at most `max_pages` missing fragments from k surviving
    /// peers (decode + re-encode). Called once per epoch while the repair is
    /// active; reuses [`BootstrapStep`] for accounting.
    fn repair_step(&mut self, _epoch: u64, _max_pages: u64) -> SimResult<BootstrapStep> {
        no_placement()
    }

    /// All fragments regenerated: seal and commit the repaired replica
    /// (including pages re-dirtied during the repair and a full disk resync
    /// onto `backup`). Returns backup CPU consumed by the commit.
    fn repair_finish(&mut self, _backup: &mut Kernel, _epoch: u64) -> SimResult<Nanos> {
        no_placement()
    }

    /// The replacement replica died mid-repair: discard the half-regenerated
    /// fragment store (the harness retries later with backoff).
    fn repair_abort(&mut self) -> SimResult<()> {
        no_placement()
    }

    /// Whether this engine ships a nondeterminism log and can replay it at
    /// failover (the `hybrid_replay` extension). When `false`, the remaining
    /// methods in this block error by default and the harness keeps the
    /// paper's release-at-epoch-ack behavior.
    fn supports_replay(&self) -> bool {
        false
    }

    /// Ship a batch of recorded nondeterministic events for `epoch` to the
    /// backup's log store. Called continuously during the execution phase —
    /// the returned `commit_latency` is what released output waits on
    /// instead of the epoch ack.
    fn ship_log(
        &mut self,
        _primary: &mut Kernel,
        _epoch: u64,
        _events: &[ReplayEvent],
    ) -> SimResult<LogShipOutcome> {
        no_replay()
    }

    /// Mark `epoch`'s log complete on the backup. Only sealed logs are
    /// eligible for failover replay; an unsealed log is a partial tail.
    fn seal_log(&mut self, _epoch: u64) -> SimResult<()> {
        no_replay()
    }

    /// At failover: take the contiguous sealed-log tail past the last
    /// committed checkpoint (see [`ReplayTail`]). Logs for committed epochs
    /// are dropped — their effects are already in the checkpoint.
    fn take_replay_tail(&mut self) -> SimResult<ReplayTail> {
        no_replay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_report_total() {
        let r = FailoverReport {
            restore: 218,
            arp: 28,
            tcp: 54,
            others: 7,
            disk_pages_committed: 0,
        };
        assert_eq!(r.total(), 307, "Table II Net row");
    }
}
