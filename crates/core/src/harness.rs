//! The run harness: hosts a workload in a container and drives the epoch
//! loop of Fig. 1 — unreplicated (stock), under NiLiCon, or under any other
//! [`Checkpointer`] (the MC baseline) — with fault injection.
//!
//! ## Timing model
//!
//! Virtual time advances in epochs: an execution phase of fixed wall length
//! (30 ms), then a stop phase whose length the engine meters. Within the
//! execution phase the container can spend up to `epoch_exec × parallelism`
//! of CPU (its dedicated cores); request service costs are metered by the
//! kernel, so page-tracking faults automatically slow the container down
//! (the Fig. 3 "runtime overhead" component).
//!
//! Output commit: server responses enter the plugged qdisc during the epoch
//! and are released when the backup acknowledges that epoch's state; client
//! response latencies are computed against the *release* time (§II-A), which
//! is what produces the Table VI latency inflation.

use crate::config::ReplicationConfig;
use crate::detector::{FailureDetector, HeartbeatSender};
use crate::engine::{Checkpointer, FailoverReport};
use crate::metrics::{EpochRecord, RunMetrics};
use crate::trace::{TraceEvent, Tracer};
use crate::traffic::{ClientBehavior, ClientPool};
use nilicon_container::{
    encode_frame, try_decode_frame, Application, Container, ContainerRuntime, ContainerSpec,
    GuestCtx,
};
use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::{Endpoint, HostId, Pid};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::InputMode;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};
use std::collections::{HashMap, VecDeque};

/// Address of the client host's stack on the bridge.
pub const CLIENT_ADDR: u32 = 200;
/// CPU cost of the keep-alive process per 30 ms interval (§IV: ~1000
/// instructions).
const KEEPALIVE_COST: Nanos = 300;

/// How the container runs.
pub enum RunMode {
    /// No replication (the paper's "stock" baseline).
    Unreplicated,
    /// Replicated under an engine (NiLiCon or MC).
    Replicated(Box<dyn Checkpointer>),
}

impl std::fmt::Debug for RunMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunMode::Unreplicated => write!(f, "Unreplicated"),
            RunMode::Replicated(e) => write!(f, "Replicated({})", e.name()),
        }
    }
}

/// Final outcome of a run.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregated metrics.
    pub metrics: RunMetrics,
    /// Recovery breakdown, if a failover happened.
    pub failover: Option<FailoverReport>,
    /// Detection latency, if a fault was injected.
    pub detection_latency: Option<Nanos>,
    /// Whether the run ended with the service healthy (no fault, or fault +
    /// successful recovery).
    pub recovered: bool,
    /// Client connections broken by RST (§VII-A criterion: must be 0).
    pub broken_connections: u64,
    /// Workload self-validation (§VII-A).
    pub verify: Result<(), String>,
}

/// Deterministic SplitMix64 jitter in `[0, range)`.
fn jitter(state: &mut u64, range: Nanos) -> Nanos {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) % range.max(1)
}

/// The harness itself.
pub struct RunHarness {
    /// The simulated cluster: primary, backup, client hosts.
    pub cluster: Cluster,
    /// Primary host id.
    pub primary: HostId,
    /// Backup host id.
    pub backup: HostId,
    /// Client host id.
    pub client_host: HostId,
    container: Container,
    app: Box<dyn Application>,
    behavior: Option<Box<dyn ClientBehavior>>,
    pool: Option<ClientPool>,
    cfg: ReplicationConfig,
    mode: RunMode,
    parallelism: f64,
    metrics: RunMetrics,
    /// Decoded requests awaiting service: (client endpoint, payload, arrival).
    pending: VecDeque<(Endpoint, Vec<u8>, Nanos)>,
    /// Per-connection queue of logical response receipt times.
    receipts: HashMap<Endpoint, VecDeque<Nanos>>,
    sender: HeartbeatSender,
    detector: FailureDetector,
    fault_at: Option<Nanos>,
    failover_report: Option<FailoverReport>,
    detection_latency: Option<Nanos>,
    on_backup: bool,
    epoch: u64,
    rr: u64,
    batch_done: bool,
    jitter_state: u64,
    /// CPU consumed beyond the previous epoch's budget (a request larger
    /// than one epoch's budget keeps the cores busy into the next epoch).
    cpu_debt: Nanos,
    /// Previous epoch's stop time — the steady-state duty-cycle stretch for
    /// service-time accounting (a C-ms request takes C·(E+stop)/E of wall
    /// time under replication because the container freezes every epoch).
    last_stop: Nanos,
    tracer: Tracer,
}

impl std::fmt::Debug for RunHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHarness")
            .field("mode", &self.mode)
            .field("epoch", &self.epoch)
            .field("on_backup", &self.on_backup)
            .finish()
    }
}

impl RunHarness {
    /// Build a harness: three hosts, the container on the primary, the
    /// workload initialized, clients connected (if `behavior` is given), and
    /// the engine prepared (if replicated).
    ///
    /// `parallelism` is the workload's usable core count (drives the exec
    /// CPU budget and Table V's "Active" row).
    pub fn new(
        spec: ContainerSpec,
        mut app: Box<dyn Application>,
        behavior: Option<Box<dyn ClientBehavior>>,
        mut mode: RunMode,
        cfg: ReplicationConfig,
        parallelism: f64,
    ) -> SimResult<Self> {
        let mut cluster = Cluster::new();
        let primary = cluster.add_host(Kernel::default());
        let backup = cluster.add_host(Kernel::default());
        let client_host = cluster.add_host(Kernel::default());

        // Container on the primary.
        let container = ContainerRuntime::create(cluster.host_mut(primary), &spec)?;
        cluster.bind_addr(spec.addr, primary, container.ns.net);

        // Client stack.
        let client_ns = cluster
            .host_mut(client_host)
            .namespaces
            .create_set("client")
            .net;
        cluster
            .host_mut(client_host)
            .create_stack(client_ns, CLIENT_ADDR, InputMode::Buffer);
        cluster.bind_addr(CLIENT_ADDR, client_host, client_ns);

        // Workload init.
        {
            let k = cluster.host_mut(primary);
            let mut ctx = GuestCtx::new(k, container.workers[0], 0);
            app.init(&mut ctx)?;
            k.meter.take();
            k.fault_meter.take();
        }

        // Clients connect before the qdisc is plugged (handshakes flow
        // freely during setup).
        let pool = match (&behavior, spec.listen_port) {
            (Some(b), Some(port)) => Some(ClientPool::connect(
                &mut cluster,
                client_host,
                client_ns,
                b.client_count(),
                Endpoint::new(spec.addr, port),
            )?),
            _ => None,
        };

        // Engine preparation (arms tracking, plugs the qdisc).
        if let RunMode::Replicated(engine) = &mut mode {
            engine.prepare(cluster.host_mut(primary), &container)?;
            cluster.host_mut(primary).meter.take();
        }

        let interval = cfg.heartbeat_interval;
        let misses = cfg.heartbeat_misses;
        Ok(RunHarness {
            cluster,
            primary,
            backup,
            client_host,
            container,
            app,
            behavior,
            pool,
            cfg,
            mode,
            parallelism,
            metrics: RunMetrics::default(),
            pending: VecDeque::new(),
            receipts: HashMap::new(),
            sender: HeartbeatSender::new(),
            detector: FailureDetector::new(interval, misses, 0),
            fault_at: None,
            failover_report: None,
            detection_latency: None,
            on_backup: false,
            epoch: 0,
            rr: 0,
            batch_done: false,
            jitter_state: 0x243F6A8885A308D3,
            cpu_debt: 0,
            last_stop: 0,
            tracer: Tracer::disabled(),
        })
    }

    /// Attach a [`Tracer`]: the harness, the engine, and the failure
    /// detector all emit spans/events into it (see `OBSERVABILITY.md` for
    /// the schema). Call before running epochs.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        if let RunMode::Replicated(engine) = &mut self.mode {
            engine.set_tracer(tracer.clone());
        }
        self.detector.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Schedule a fail-stop fault at absolute virtual time `t` (§VII-A).
    pub fn inject_fault_at(&mut self, t: Nanos) {
        self.fault_at = Some(t);
    }

    fn active_host(&self) -> HostId {
        if self.on_backup {
            self.backup
        } else {
            self.primary
        }
    }

    /// Current container handle.
    pub fn container(&self) -> &Container {
        &self.container
    }

    /// True once the batch workload reported completion.
    pub fn batch_done(&self) -> bool {
        self.batch_done
    }

    /// Completed epochs so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// Whether the run has failed over to the backup.
    pub fn on_backup(&self) -> bool {
        self.on_backup
    }

    // ------------------------------------------------------------------
    // Client plumbing
    // ------------------------------------------------------------------

    /// Issue requests from idle clients, pump the wire, and harvest complete
    /// frames into `pending` (with jittered arrival times — real clients are
    /// not phase-locked to the epoch clock).
    fn client_turnaround(&mut self, base: Nanos) -> SimResult<()> {
        let jitter_range = self.cfg.epoch_exec;
        if let (Some(pool), Some(behavior)) = (self.pool.as_mut(), self.behavior.as_mut()) {
            pool.issue(&mut self.cluster, behavior.as_mut(), base, jitter_range)?;
        } else {
            return Ok(());
        }
        self.cluster.pump();

        let host = self.active_host();
        let ns = self.container.ns.net;
        let k = self.cluster.host_mut(host);
        let cl_lat = k.costs.client_link_latency;
        let conns = k.stack(ns)?.established_ids();
        for (sid, remote) in conns {
            let buf = k.stack(ns)?.peek_recv(sid)?;
            let mut offset = 0;
            while let Some((frame, consumed)) = try_decode_frame(&buf[offset..]) {
                offset += consumed;
                let arrival = base + jitter(&mut self.jitter_state, jitter_range) + 2 * cl_lat;
                self.pending.push_back((remote, frame, arrival));
            }
            if offset > 0 {
                k.stack_mut(ns)?.consume_recv(sid, offset)?;
            }
        }
        self.pending
            .make_contiguous()
            .sort_by_key(|(_, _, arrival)| *arrival);
        Ok(())
    }

    /// Deliver released responses to clients at their logical receipt times;
    /// record latencies.
    fn client_collect(&mut self, fallback_now: Nanos) -> SimResult<()> {
        if let (Some(pool), Some(behavior)) = (self.pool.as_mut(), self.behavior.as_mut()) {
            let lats = pool.collect(
                &mut self.cluster,
                behavior.as_mut(),
                &mut self.receipts,
                fallback_now,
                &self.tracer,
            )?;
            self.metrics.response_latencies.extend(lats);
        }
        Ok(())
    }

    /// Send one response on the connection to `remote` (looked up fresh so
    /// it works across failovers).
    fn send_response(&mut self, remote: Endpoint, payload: &[u8]) -> SimResult<()> {
        let host = self.active_host();
        let ns = self.container.ns.net;
        let k = self.cluster.host_mut(host);
        let sid = k
            .stack(ns)?
            .established_ids()
            .into_iter()
            .find(|(_, r)| *r == remote)
            .map(|(sid, _)| sid)
            .ok_or_else(|| SimError::Invalid(format!("no connection to {remote}")))?;
        k.stack_mut(ns)?.send(sid, &encode_frame(payload))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // The epoch loop
    // ------------------------------------------------------------------

    /// Run up to `n` epochs (stops early if a batch workload completes).
    pub fn run_epochs(&mut self, n: u64) -> SimResult<()> {
        for _ in 0..n {
            if self.batch_done {
                break;
            }
            let now = self.cluster.clock.now();
            if let Some(f) = self.fault_at {
                if !self.on_backup && f <= now + self.cfg.epoch_exec {
                    self.do_failover(f.max(now))?;
                    continue;
                }
            }
            self.run_one_epoch()?;
        }
        self.metrics.elapsed = self.cluster.clock.now();
        Ok(())
    }

    /// Run epochs until the batch workload completes (bounded by
    /// `max_epochs`). Errors if the bound is hit first.
    pub fn run_batch_to_completion(&mut self, max_epochs: u64) -> SimResult<()> {
        let mut left = max_epochs;
        while !self.batch_done {
            if left == 0 {
                return Err(SimError::Invalid(
                    "batch did not complete within bound".into(),
                ));
            }
            let chunk = left.min(64);
            self.run_epochs(chunk)?;
            left -= chunk;
        }
        self.metrics.elapsed = self.cluster.clock.now();
        Ok(())
    }

    fn run_one_epoch(&mut self) -> SimResult<()> {
        let exec_start = self.cluster.clock.now();
        let host = self.active_host();
        self.tracer.begin_epoch(self.epoch, exec_start);

        // --- Client requests arrive -------------------------------------
        self.client_turnaround(exec_start)?;

        // --- Execution phase --------------------------------------------
        let budget = (self.cfg.epoch_exec as f64 * self.parallelism) as Nanos;
        let epoch_end = exec_start + self.cfg.epoch_exec;
        let mut used: Nanos = KEEPALIVE_COST + self.cpu_debt;
        let mut requests_done = 0u64;
        let mut steps_done = 0u64;
        let mut completions: Vec<(Endpoint, Nanos)> = Vec::new();

        {
            let k = self.cluster.host_mut(host);
            k.meter.take();
            k.fault_meter.take();
        }

        if self.app.is_server() {
            while used < budget {
                let Some(pos) = self
                    .pending
                    .iter()
                    .position(|(_, _, arrival)| *arrival <= epoch_end)
                else {
                    break;
                };
                let (remote, req, arrival) = self.pending.remove(pos).expect("pos valid");
                let pid = self.pick_worker();
                let response = {
                    let k = self.cluster.host_mut(host);
                    let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                    self.app.handle_request(&mut ctx, &req)?
                };
                let cost = self.cluster.host_mut(host).meter.take();
                used += cost.max(100);
                // Wall time to completion: queueing + service, stretched by
                // the epoch duty cycle (the container is frozen for
                // `last_stop` out of every `epoch_exec + last_stop`).
                let stretch_num = self.cfg.epoch_exec + self.last_stop;
                let wall_used = used.saturating_mul(stretch_num) / self.cfg.epoch_exec;
                let t_done = arrival.max(exec_start) + wall_used;
                self.send_response(remote, &response.response)?;
                completions.push((remote, t_done));
                requests_done += 1;
            }
        } else {
            while used < budget && !self.batch_done {
                let pid = self.container.workers[0];
                let outcome = {
                    let k = self.cluster.host_mut(host);
                    let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                    self.app.step(&mut ctx)?
                };
                let cost = self.cluster.host_mut(host).meter.take();
                used += cost.max(100);
                steps_done += 1;
                if outcome.done {
                    self.batch_done = true;
                }
            }
        }

        self.cpu_debt = used.saturating_sub(budget);
        let consumed = used.min(budget);
        let tracking_overhead = self.cluster.host_mut(host).fault_meter.take();
        let cg = self.container.cgroup;
        self.cluster.host_mut(host).cgroups.charge_cpu(cg, consumed);
        self.cluster.clock.advance_to(epoch_end);
        self.tracer.span(
            TraceEvent::Exec {
                requests: requests_done,
                steps: steps_done,
            },
            self.cfg.epoch_exec,
        );

        // --- Heartbeat ---------------------------------------------------
        let cpuacct = self.cluster.host_mut(host).cgroups.cpuacct_usage(cg);
        if self.sender.tick(cpuacct) && !self.cluster.is_partitioned(host) {
            self.detector.on_beat(epoch_end);
        }

        // --- Stop phase / release ----------------------------------------
        let epoch = self.epoch;
        if matches!(self.mode, RunMode::Unreplicated) {
            self.cluster.pump();
            let cl = self.cluster.host_mut(host).costs.client_link_latency;
            for (remote, t_done) in completions {
                self.receipts
                    .entry(remote)
                    .or_default()
                    .push_back(t_done + cl);
            }
            self.client_collect(epoch_end)?;
            self.metrics.push(EpochRecord {
                epoch,
                exec_cpu: consumed,
                tracking_overhead,
                requests_done,
                steps_done,
                ..Default::default()
            });
        } else {
            let outcome = {
                let RunMode::Replicated(engine) = &mut self.mode else {
                    unreachable!()
                };
                let (pk, bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                engine.checkpoint(pk, bk, &self.container, epoch)?
            };
            self.cluster.clock.advance(outcome.stop_time);
            self.last_stop = outcome.stop_time;
            // The engine's phase spans must tile exactly the stop time and
            // ack delay it reported (the OBSERVABILITY.md invariant).
            self.tracer
                .reconcile(epoch, outcome.stop_time, outcome.ack_delay)
                .map_err(SimError::Invalid)?;
            let release_time = self.cluster.clock.now() + outcome.ack_delay;

            // Mechanically release now; logically at release_time.
            let ns = self.container.ns.net;
            let released = self
                .cluster
                .host_mut(self.primary)
                .stack_mut(ns)?
                .release_output();
            self.tracer.event_at(
                TraceEvent::OutputRelease {
                    packets: released as u64,
                },
                release_time,
            );
            self.cluster.pump();
            let commit_cpu = {
                let RunMode::Replicated(engine) = &mut self.mode else {
                    unreachable!()
                };
                let (_pk, bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                engine.commit(bk, epoch)?
            };

            let cl = self
                .cluster
                .host_mut(self.primary)
                .costs
                .client_link_latency;
            for (remote, t_done) in completions {
                let receipt = t_done.max(release_time) + cl;
                self.receipts.entry(remote).or_default().push_back(receipt);
            }
            self.client_collect(release_time)?;
            self.metrics.push(EpochRecord {
                epoch,
                stop_time: outcome.stop_time,
                dirty_pages: outcome.dirty_pages,
                state_bytes: outcome.state_bytes,
                ack_delay: outcome.ack_delay,
                exec_cpu: consumed,
                tracking_overhead,
                backup_cpu: outcome.backup_cpu + commit_cpu,
                requests_done,
                steps_done,
            });
        }

        // The epoch (including its stop phase) completed healthy: the agent
        // heart-beats again. (The agent process is not frozen during its own
        // checkpoint; gating on cpuacct exists to catch *container* hangs.)
        let now = self.cluster.clock.now();
        if !self.cluster.is_partitioned(host) {
            self.detector.on_beat(now);
        }
        self.epoch += 1;
        Ok(())
    }

    fn pick_worker(&mut self) -> Pid {
        // Requests are handled in the leader's context: application fds are
        // opened there, and concentrating guest state in one address space
        // is checkpoint-equivalent (the dump walks every process either
        // way). Multi-process CPU capacity is modeled by `parallelism`.
        self.rr += 1;
        self.container.workers[0]
    }

    // ------------------------------------------------------------------
    // Failover
    // ------------------------------------------------------------------

    fn do_failover(&mut self, fault_time: Nanos) -> SimResult<()> {
        if matches!(self.mode, RunMode::Unreplicated) {
            return Err(SimError::Invalid(
                "fault injected into an unreplicated run".into(),
            ));
        }
        // Fail-stop: block all primary traffic (§VII-A).
        self.cluster.clock.advance_to(fault_time);
        self.cluster.partition(self.primary);

        // Detection.
        let mut t = fault_time;
        while !self.detector.check(t) {
            t += self.cfg.heartbeat_interval;
        }
        let detected = self.detector.detected_at().expect("check returned true");
        self.cluster.clock.advance_to(detected.max(fault_time));
        self.detection_latency = Some(detected.saturating_sub(fault_time));

        // Failover on the backup.
        let (restored, report) = {
            let RunMode::Replicated(engine) = &mut self.mode else {
                unreachable!()
            };
            let bk = &mut *self.cluster.host_mut(self.backup);
            engine.failover(bk)?
        };
        self.cluster.clock.advance(report.total());

        // Gratuitous ARP: the address moves to the backup.
        self.cluster.bind_addr(
            restored.container.spec.addr,
            self.backup,
            restored.container.ns.net,
        );
        restored.finish(self.cluster.host_mut(self.backup))?;

        // Rebuild the application's working state from restored guest memory.
        {
            let now = self.cluster.clock.now();
            let k = self.cluster.host_mut(self.backup);
            let mut ctx = GuestCtx::new(k, restored.container.workers[0], now);
            self.app.recover(&mut ctx)?;
            k.meter.take();
            k.fault_meter.take();
        }

        // Uncommitted driver-side buffers are garbage now: the clients will
        // retransmit anything the committed state has not consumed.
        self.pending.clear();

        self.tracer.event_at(
            TraceEvent::Failover {
                detection_latency: detected.saturating_sub(fault_time),
                restore: report.restore,
                arp: report.arp,
                tcp: report.tcp,
                others: report.others,
            },
            self.cluster.clock.now(),
        );

        self.container = restored.container;
        self.on_backup = true;
        self.failover_report = Some(report);

        // Retransmissions: restored server sockets re-send unacked
        // responses (§V-E); clients re-send unacked requests.
        let ns = self.container.ns.net;
        self.cluster
            .host_mut(self.backup)
            .stack_mut(ns)?
            .retransmit_all();
        if let Some(pool) = self.pool.as_mut() {
            pool.retransmit(&mut self.cluster)?;
        }
        self.cluster.pump();
        // Retransmitted responses reach clients now.
        let now = self.cluster.clock.now();
        self.client_collect(now)?;

        // Continue unreplicated on the backup (the paper does not re-arm
        // replication after failover).
        self.mode = RunMode::Unreplicated;
        self.epoch += 1;
        Ok(())
    }

    /// Finish the run: validate and hand back the results.
    pub fn finish(mut self) -> RunResult {
        let _ = self.tracer.flush();
        self.metrics.elapsed = self.cluster.clock.now();
        let broken = match self.pool.as_mut() {
            Some(p) => p.broken_connections(&mut self.cluster),
            None => 0,
        };
        let verify = match &self.behavior {
            Some(b) => b.verify(),
            None => Ok(()),
        };
        let recovered = self.fault_at.is_none() || self.on_backup;
        RunResult {
            metrics: self.metrics,
            failover: self.failover_report,
            detection_latency: self.detection_latency,
            recovered,
            broken_connections: broken,
            verify,
        }
    }

    /// Read-only metrics access mid-run.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }
}
