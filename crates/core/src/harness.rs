//! The run harness: hosts a workload in a container and drives the epoch
//! loop of Fig. 1 — unreplicated (stock), under NiLiCon, or under any other
//! [`Checkpointer`] (the MC baseline) — with fault injection.
//!
//! ## Timing model
//!
//! Virtual time advances in epochs: an execution phase of fixed wall length
//! (30 ms), then a stop phase whose length the engine meters. Within the
//! execution phase the container can spend up to `epoch_exec × parallelism`
//! of CPU (its dedicated cores); request service costs are metered by the
//! kernel, so page-tracking faults automatically slow the container down
//! (the Fig. 3 "runtime overhead" component).
//!
//! Output commit: server responses enter the plugged qdisc during the epoch
//! and are released when the backup acknowledges that epoch's state; client
//! response latencies are computed against the *release* time (§II-A), which
//! is what produces the Table VI latency inflation.

use crate::config::ReplicationConfig;
use crate::detector::{FailureDetector, HeartbeatSender, Lease};
use crate::engine::{Checkpointer, FailoverReport};
use crate::metrics::{EpochRecord, RunMetrics};
use crate::replay::replay_tail;
use crate::trace::{TraceEvent, Tracer};
use nilicon_sim::replay::{content_hash, ReplayEvent};
use crate::traffic::{ClientBehavior, ClientPool};
use nilicon_container::{
    encode_frame, try_decode_frame, Application, Container, ContainerRuntime, ContainerSpec,
    GuestCtx, MemLayout,
};
use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::{Endpoint, HostId, Pid};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::{ChaosConfig, ChaosLink, InputMode, LinkDir};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};
use std::collections::{HashMap, VecDeque};

/// Address of the client host's stack on the bridge.
pub const CLIENT_ADDR: u32 = 200;
/// CPU cost of the keep-alive process per 30 ms interval (§IV: ~1000
/// instructions).
const KEEPALIVE_COST: Nanos = 300;

/// How the container runs.
pub enum RunMode {
    /// No replication (the paper's "stock" baseline).
    Unreplicated,
    /// Replicated under an engine (NiLiCon or MC).
    Replicated(Box<dyn Checkpointer>),
}

impl std::fmt::Debug for RunMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunMode::Unreplicated => write!(f, "Unreplicated"),
            RunMode::Replicated(e) => write!(f, "Replicated({})", e.name()),
        }
    }
}

/// Final outcome of a run.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregated metrics.
    pub metrics: RunMetrics,
    /// Recovery breakdown, if a failover happened.
    pub failover: Option<FailoverReport>,
    /// Detection latency, if a fault was injected.
    pub detection_latency: Option<Nanos>,
    /// Whether the service survived every injected fault: true iff no
    /// injected fault went unrecovered (scheduled-but-never-fired faults
    /// count as unrecovered — the run ended before proving survival).
    pub recovered: bool,
    /// Completed failovers (0 or 1 in paper configurations; 2+ only with
    /// the `rearm` extension).
    pub failovers: u64,
    /// Injected primary faults the service did not survive, plus any
    /// scheduled faults that never fired.
    pub unrecovered_faults: u64,
    /// Client connections broken by RST (§VII-A criterion: must be 0).
    pub broken_connections: u64,
    /// Workload self-validation (§VII-A).
    pub verify: Result<(), String>,
}

/// Where the re-replication extension stands (always `Idle` in paper
/// configurations — every transition below is gated on
/// [`Checkpointer::supports_rearm`]).
#[derive(Debug, Clone, Copy)]
enum RearmState {
    /// No re-arm pending.
    Idle,
    /// A failover (or backup loss) happened; a bootstrap starts at `at`.
    Scheduled { at: Nanos, attempt: u32 },
    /// A replacement backup is ingesting the full bootstrap image in
    /// bounded per-epoch chunks while the promoted container keeps serving.
    Bootstrapping {
        attempt: u32,
        /// Epoch number the bootstrap image was taken at.
        epoch: u64,
        streamed_pages: u64,
        streamed_bytes: u64,
    },
    /// Redundancy re-established: incremental epochs are running again.
    Armed,
}

/// Where a coded repair stands (always `Idle` unless the active engine
/// supports the `placement` extension — see
/// [`Checkpointer::supports_placement`]). Unlike [`RearmState`], the engine
/// keeps driving epochs throughout: the placement is merely *degraded*
/// (`alive ≥ k` replicas still ack every epoch) while the lost replica's
/// fragment store regenerates on a replacement host.
#[derive(Debug, Clone, Copy)]
enum RepairState {
    /// Full redundancy (or no placement at all).
    Idle,
    /// A replica was lost with the quorum intact; a coded repair starts at
    /// `at`.
    Scheduled { at: Nanos, attempt: u32 },
    /// The replacement is regenerating the missing fragments from k peers
    /// in bounded per-epoch chunks while the primary keeps serving.
    Repairing {
        attempt: u32,
        streamed_pages: u64,
        streamed_bytes: u64,
    },
}

/// Live counters of the chaos extension, for scenario classification by the
/// `chaos` bench bin (all zero when no chaos schedule is armed).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct ChaosStats {
    /// Partition windows the run entered.
    pub partitions: u64,
    /// Epochs whose checkpoint could not reach the backup (link cut at the
    /// epoch boundary): execution continued, output stayed plugged.
    pub stalled_epochs: u64,
    /// Epochs whose state committed on the backup but whose ack never
    /// returned (release withheld, lease not renewed).
    pub withheld_acks: u64,
    /// Output releases withheld because the primary's lease had expired
    /// (the exactly-one-owner fence).
    pub fenced_releases: u64,
    /// Failure suspicions cancelled by a late heartbeat before the lease
    /// gate allowed promotion.
    pub false_suspicions: u64,
    /// Times the primary's lease lapsed un-renewed.
    pub lease_expiries: u64,
    /// True iff the exactly-one-owner invariant was ever violated. Must stay
    /// false: a violation also fails the run with a hard error.
    pub split_brain: bool,
}

/// Chaos-mode run state: the heartbeat link under the fault schedule plus
/// both views of the output-release lease.
struct ChaosState {
    cfg: ChaosConfig,
    /// Heartbeats in flight (payload = send time).
    hb: ChaosLink<Nanos>,
    /// The primary's (conservative, early-anchored) view of its lease.
    holder: Lease,
    /// The backup's granted view (late-anchored; gates promotion).
    grant: Lease,
    last_beat_delivered: Nanos,
    holder_was_valid: bool,
    in_partition: bool,
    partition_started_at: Option<Nanos>,
    /// Acks attempted inside a partial-loss window (drives `drop_nth`).
    acks_attempted: u64,
    stats: ChaosStats,
}

/// An output release deferred to its logical release time (chaos mode): the
/// qdisc stays plugged until the lease check at flush. A primary fault in
/// the gap voids it — fault-during-output-release.
struct PendingRelease {
    release_time: Nanos,
    /// Completions riding this release: (client endpoint, service-done time).
    receipts: Vec<(Endpoint, Nanos)>,
}

/// Deterministic SplitMix64 jitter in `[0, range)`.
fn jitter(state: &mut u64, range: Nanos) -> Nanos {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) % range.max(1)
}

/// The harness itself.
pub struct RunHarness {
    /// The simulated cluster: primary, backup, client hosts.
    pub cluster: Cluster,
    /// Primary host id.
    pub primary: HostId,
    /// Backup host id.
    pub backup: HostId,
    /// Client host id.
    pub client_host: HostId,
    container: Container,
    app: Box<dyn Application>,
    behavior: Option<Box<dyn ClientBehavior>>,
    pool: Option<ClientPool>,
    cfg: ReplicationConfig,
    mode: RunMode,
    parallelism: f64,
    metrics: RunMetrics,
    /// Decoded requests awaiting service: (client endpoint, payload, arrival).
    pending: VecDeque<(Endpoint, Vec<u8>, Nanos)>,
    /// Per-connection queue of logical response receipt times.
    receipts: HashMap<Endpoint, VecDeque<Nanos>>,
    sender: HeartbeatSender,
    detector: FailureDetector,
    /// Pending primary-host faults, in firing order.
    faults: VecDeque<Nanos>,
    /// Pending backup-host faults, in firing order.
    backup_faults: VecDeque<Nanos>,
    stage_fails: VecDeque<(Nanos, u64)>,
    failover_report: Option<FailoverReport>,
    detection_latency: Option<Nanos>,
    on_backup: bool,
    /// Whether the run was constructed replicated (fault injection into a
    /// stock run is a harness-usage error, even after degradation).
    replicated_run: bool,
    failovers: u64,
    unrecovered_faults: u64,
    /// The service is gone (unprotected fault): no further epochs run.
    dead: bool,
    rearm: RearmState,
    repair: RepairState,
    /// The engine while it is not driving epochs (between a failover and
    /// the completion of the re-replication bootstrap).
    parked: Option<Box<dyn Checkpointer>>,
    /// Completions produced during a bootstrap: their responses sit in the
    /// plugged qdisc until the first post-re-arm epoch commits (the
    /// bootstrap image predates them, so output commit must wait for the
    /// first incremental checkpoint that covers them).
    held: Vec<(Endpoint, Nanos)>,
    epoch: u64,
    rr: u64,
    batch_done: bool,
    jitter_state: u64,
    /// CPU consumed beyond the previous epoch's budget (a request larger
    /// than one epoch's budget keeps the cores busy into the next epoch).
    cpu_debt: Nanos,
    /// Previous epoch's stop time — the steady-state duty-cycle stretch for
    /// service-time accounting (a C-ms request takes C·(E+stop)/E of wall
    /// time under replication because the container freezes every epoch).
    last_stop: Nanos,
    /// Chaos extension state (None on every paper path).
    chaos: Option<ChaosState>,
    /// Chaos mode: the release deferred from the previous epoch, if any.
    pending_release: Option<PendingRelease>,
    tracer: Tracer,
}

impl std::fmt::Debug for RunHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHarness")
            .field("mode", &self.mode)
            .field("epoch", &self.epoch)
            .field("on_backup", &self.on_backup)
            .finish()
    }
}

impl RunHarness {
    /// Build a harness: three hosts, the container on the primary, the
    /// workload initialized, clients connected (if `behavior` is given), and
    /// the engine prepared (if replicated).
    ///
    /// `parallelism` is the workload's usable core count (drives the exec
    /// CPU budget and Table V's "Active" row).
    pub fn new(
        spec: ContainerSpec,
        mut app: Box<dyn Application>,
        behavior: Option<Box<dyn ClientBehavior>>,
        mut mode: RunMode,
        cfg: ReplicationConfig,
        parallelism: f64,
    ) -> SimResult<Self> {
        let mut cluster = Cluster::new();
        let primary = cluster.add_host(Kernel::default());
        let backup = cluster.add_host(Kernel::default());
        let client_host = cluster.add_host(Kernel::default());

        // Container on the primary.
        let container = ContainerRuntime::create(cluster.host_mut(primary), &spec)?;
        cluster.bind_addr(spec.addr, primary, container.ns.net);

        // Client stack.
        let client_ns = cluster
            .host_mut(client_host)
            .namespaces
            .create_set("client")
            .net;
        cluster
            .host_mut(client_host)
            .create_stack(client_ns, CLIENT_ADDR, InputMode::Buffer);
        cluster.bind_addr(CLIENT_ADDR, client_host, client_ns);

        // Workload init.
        {
            let k = cluster.host_mut(primary);
            let mut ctx = GuestCtx::new(k, container.workers[0], 0);
            app.init(&mut ctx)?;
            k.meter.take();
            k.fault_meter.take();
        }

        // Clients connect before the qdisc is plugged (handshakes flow
        // freely during setup).
        let pool = match (&behavior, spec.listen_port) {
            (Some(b), Some(port)) => Some(ClientPool::connect(
                &mut cluster,
                client_host,
                client_ns,
                b.client_count(),
                Endpoint::new(spec.addr, port),
            )?),
            _ => None,
        };

        // Engine preparation (arms tracking, plugs the qdisc).
        if let RunMode::Replicated(engine) = &mut mode {
            engine.prepare(cluster.host_mut(primary), &container)?;
            cluster.host_mut(primary).meter.take();
            if engine.supports_replay() {
                // Hybrid replay: the primary kernel records nondeterministic
                // events from here on (dormant on every paper row).
                cluster.host_mut(primary).replay.enable();
            }
        }

        let interval = cfg.heartbeat_interval;
        let misses = cfg.heartbeat_misses;
        let replicated_run = matches!(mode, RunMode::Replicated(_));
        Ok(RunHarness {
            cluster,
            primary,
            backup,
            client_host,
            container,
            app,
            behavior,
            pool,
            cfg,
            mode,
            parallelism,
            metrics: RunMetrics::default(),
            pending: VecDeque::new(),
            receipts: HashMap::new(),
            sender: HeartbeatSender::new(),
            detector: FailureDetector::new(interval, misses, 0),
            faults: VecDeque::new(),
            backup_faults: VecDeque::new(),
            stage_fails: VecDeque::new(),
            failover_report: None,
            detection_latency: None,
            on_backup: false,
            replicated_run,
            failovers: 0,
            unrecovered_faults: 0,
            dead: false,
            rearm: RearmState::Idle,
            repair: RepairState::Idle,
            parked: None,
            held: Vec::new(),
            epoch: 0,
            rr: 0,
            batch_done: false,
            jitter_state: 0x243F6A8885A308D3,
            cpu_debt: 0,
            last_stop: 0,
            chaos: None,
            pending_release: None,
            tracer: Tracer::disabled(),
        })
    }

    /// Arm the chaos extension: inject the network-fault schedule on the
    /// replication/heartbeat link and turn on the output-release lease
    /// (split-brain fence). Call on a replicated harness before any epochs
    /// run; paper rows never call this, so the paper path is untouched.
    ///
    /// The lease term defaults to `(heartbeat_misses + 2) × interval`
    /// (150 ms in the paper config) — deliberately longer than the 90 ms
    /// detection threshold, so a false suspicion under delay can resolve
    /// before the promotion gate opens. The price of the fence is promotion
    /// latency: the backup waits out the granted lease even when the primary
    /// is truly dead.
    pub fn set_chaos(&mut self, cfg: ChaosConfig) {
        self.set_chaos_with_lease(cfg, None)
    }

    /// [`RunHarness::set_chaos`] with an explicit lease term override.
    pub fn set_chaos_with_lease(&mut self, mut cfg: ChaosConfig, lease_term: Option<Nanos>) {
        if cfg.link_latency == 0 {
            cfg.link_latency = self.cluster.host_mut(self.primary).costs.repl_link_latency;
        }
        let term = lease_term.unwrap_or(
            (self.cfg.heartbeat_misses as Nanos + 2) * self.cfg.heartbeat_interval,
        );
        let now = self.cluster.clock.now();
        let hb = ChaosLink::new(LinkDir::AtoB, cfg.link_latency, cfg.schedule.clone());
        self.chaos = Some(ChaosState {
            hb,
            holder: Lease::new(term, now),
            grant: Lease::new(term, now),
            last_beat_delivered: now,
            holder_was_valid: true,
            in_partition: false,
            partition_started_at: None,
            acks_attempted: 0,
            stats: ChaosStats::default(),
            cfg,
        });
    }

    /// Chaos counters so far (None if [`RunHarness::set_chaos`] was never
    /// called).
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.stats)
    }

    /// Whether replication is currently driving epochs (false after a
    /// non-rearm failover or backup loss).
    pub fn replication_active(&self) -> bool {
        matches!(self.mode, RunMode::Replicated(_))
    }

    /// Whether the hybrid-replay extension is recording this run's epochs
    /// (the active engine supports it and is driving epochs).
    fn replay_on(&self) -> bool {
        matches!(&self.mode, RunMode::Replicated(e) if e.supports_replay())
    }

    /// Byte snapshot of the active container's guest heap: `pages` pages per
    /// worker process, unmapped pages reading as zeros. This is the
    /// committed-state probe behind the chaos matrix's byte-identical check
    /// (the `tests/cow_equivalence.rs` pattern as a harness method).
    pub fn snapshot_heap(&mut self, pages: u64) -> Vec<u8> {
        let host = self.active_host();
        let mut out = Vec::new();
        for pid in self.container.workers.clone() {
            for page in 0..pages {
                let mut buf = vec![0u8; PAGE_SIZE];
                let _ = self
                    .cluster
                    .host_mut(host)
                    .mem_read(pid, MemLayout::heap_page(page), &mut buf);
                out.extend_from_slice(&buf);
            }
        }
        out
    }

    /// Attach a [`Tracer`]: the harness, the engine, and the failure
    /// detector all emit spans/events into it (see `OBSERVABILITY.md` for
    /// the schema). Call before running epochs.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        if let RunMode::Replicated(engine) = &mut self.mode {
            engine.set_tracer(tracer.clone());
        }
        self.detector.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Schedule a fail-stop fault of the active host at absolute virtual
    /// time `t` (§VII-A). May be called repeatedly: faults fire in time
    /// order, and with the `rearm` extension a later fault exercises a
    /// second failover onto the bootstrapped replacement backup.
    pub fn inject_fault_at(&mut self, t: Nanos) {
        let pos = self
            .faults
            .iter()
            .position(|&f| f > t)
            .unwrap_or(self.faults.len());
        self.faults.insert(pos, t);
    }

    /// Schedule a fail-stop fault of the *backup* host at `t`. During a
    /// re-replication bootstrap this kills the replacement (the bootstrap
    /// aborts and retries with backoff); against a healthy replicated pair
    /// it degrades the run to unreplicated.
    pub fn inject_backup_fault_at(&mut self, t: Nanos) {
        let pos = self
            .backup_faults
            .iter()
            .position(|&f| f > t)
            .unwrap_or(self.backup_faults.len());
        self.backup_faults.insert(pos, t);
    }

    /// Schedule a one-shot pipeline-stage crash: at the first checkpoint at
    /// or after virtual time `t`, the engine's staged transfer loses its
    /// ingest stage when it reaches `chunk` (replayed from the bounded
    /// channel's peek-before-commit slot — see `DESIGN.md` §12). A no-op
    /// for engines without staged transfer.
    pub fn inject_stage_fail_at(&mut self, t: Nanos, chunk: u64) {
        let pos = self
            .stage_fails
            .iter()
            .position(|&(f, _)| f > t)
            .unwrap_or(self.stage_fails.len());
        self.stage_fails.insert(pos, (t, chunk));
    }

    fn active_host(&self) -> HostId {
        if self.on_backup {
            self.backup
        } else {
            self.primary
        }
    }

    /// Current container handle.
    pub fn container(&self) -> &Container {
        &self.container
    }

    /// True once the batch workload reported completion.
    pub fn batch_done(&self) -> bool {
        self.batch_done
    }

    /// Completed epochs so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// Whether the run has failed over at least once (the container now
    /// lives on a host other than the original primary).
    pub fn on_backup(&self) -> bool {
        self.on_backup || self.failovers > 0
    }

    /// Completed failovers so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Whether the `rearm` extension has re-established redundancy after
    /// the most recent failover (or backup loss).
    pub fn rearmed(&self) -> bool {
        matches!(self.rearm, RearmState::Armed)
    }

    /// Whether a coded repair is scheduled or streaming (the placement
    /// extension's degraded window).
    pub fn repair_active(&self) -> bool {
        !matches!(self.repair, RepairState::Idle)
    }

    // ------------------------------------------------------------------
    // Client plumbing
    // ------------------------------------------------------------------

    /// Issue requests from idle clients, pump the wire, and harvest complete
    /// frames into `pending` (with jittered arrival times — real clients are
    /// not phase-locked to the epoch clock).
    fn client_turnaround(&mut self, base: Nanos) -> SimResult<()> {
        let jitter_range = self.cfg.epoch_exec;
        if let (Some(pool), Some(behavior)) = (self.pool.as_mut(), self.behavior.as_mut()) {
            pool.issue(&mut self.cluster, behavior.as_mut(), base, jitter_range)?;
        } else {
            return Ok(());
        }
        self.cluster.pump();

        let host = self.active_host();
        let ns = self.container.ns.net;
        let k = self.cluster.host_mut(host);
        let cl_lat = k.costs.client_link_latency;
        let conns = k.stack(ns)?.established_ids();
        for (sid, remote) in conns {
            let buf = k.stack(ns)?.peek_recv(sid)?;
            let mut offset = 0;
            while let Some((frame, consumed)) = try_decode_frame(&buf[offset..]) {
                offset += consumed;
                let arrival = base + jitter(&mut self.jitter_state, jitter_range) + 2 * cl_lat;
                self.pending.push_back((remote, frame, arrival));
            }
            if offset > 0 {
                k.stack_mut(ns)?.consume_recv(sid, offset)?;
            }
        }
        self.pending
            .make_contiguous()
            .sort_by_key(|(_, _, arrival)| *arrival);
        Ok(())
    }

    /// Deliver released responses to clients at their logical receipt times;
    /// record latencies.
    fn client_collect(&mut self, fallback_now: Nanos) -> SimResult<()> {
        if let (Some(pool), Some(behavior)) = (self.pool.as_mut(), self.behavior.as_mut()) {
            let lats = pool.collect(
                &mut self.cluster,
                behavior.as_mut(),
                &mut self.receipts,
                fallback_now,
                &self.tracer,
            )?;
            self.metrics.response_latencies.extend(lats);
        }
        Ok(())
    }

    /// Send one response on the connection to `remote` (looked up fresh so
    /// it works across failovers).
    fn send_response(&mut self, remote: Endpoint, payload: &[u8]) -> SimResult<()> {
        let host = self.active_host();
        let ns = self.container.ns.net;
        let k = self.cluster.host_mut(host);
        let sid = k
            .stack(ns)?
            .established_ids()
            .into_iter()
            .find(|(_, r)| *r == remote)
            .map(|(sid, _)| sid)
            .ok_or_else(|| SimError::Invalid(format!("no connection to {remote}")))?;
        k.stack_mut(ns)?.send(sid, &encode_frame(payload))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Chaos extension: faulty links, leases, fencing
    // ------------------------------------------------------------------

    /// Route a heartbeat: directly to the detector (paper path), or into the
    /// chaos link, to be delivered by a later [`RunHarness::chaos_deliver_beats`].
    fn chaos_beat(&mut self, t: Nanos) {
        match self.chaos.as_mut() {
            Some(ch) => ch.hb.send(t, t),
            None => self.detector.on_beat(t),
        }
    }

    /// Deliver every chaos-link heartbeat due by `now` (no-op without chaos).
    fn chaos_deliver_beats(&mut self, now: Nanos) {
        if let Some(ch) = self.chaos.as_mut() {
            for (at, _sent) in ch.hb.poll(now) {
                ch.last_beat_delivered = ch.last_beat_delivered.max(at);
                self.detector.on_beat(at);
            }
        }
    }

    /// Emit `PartitionStart`/`PartitionHeal`/`LeaseExpire` markers on
    /// schedule and lease edges.
    fn chaos_edges(&mut self, now: Nanos) {
        let Some(ch) = self.chaos.as_mut() else {
            return;
        };
        let part = ch.cfg.schedule.partitioned(now);
        if part && !ch.in_partition {
            ch.in_partition = true;
            ch.partition_started_at = Some(now);
            ch.stats.partitions += 1;
            self.tracer.event_at(TraceEvent::PartitionStart, now);
        } else if !part && ch.in_partition {
            ch.in_partition = false;
            self.tracer.event_at(TraceEvent::PartitionHeal, now);
        }
        if ch.holder_was_valid && !ch.holder.valid_at(now) {
            ch.holder_was_valid = false;
            ch.stats.lease_expiries += 1;
            self.tracer.event_at(
                TraceEvent::LeaseExpire {
                    at: ch.holder.expires_at(),
                },
                ch.holder.expires_at(),
            );
        }
    }

    /// Flush the deferred output release, if any. If the primary's lease is
    /// still valid at the logical release time, release and deliver;
    /// otherwise *fence*: the packets stay plugged (they ride the next valid
    /// release, or die with the primary) and only the event is emitted.
    fn chaos_flush_pending(&mut self, _now: Nanos) -> SimResult<()> {
        let Some(pr) = self.pending_release.take() else {
            return Ok(());
        };
        let valid = self
            .chaos
            .as_ref()
            .expect("pending release without chaos state")
            .holder
            .valid_at(pr.release_time);
        if !valid {
            self.tracer.event_at(
                TraceEvent::FencedOutput {
                    packets: pr.receipts.len() as u64,
                },
                pr.release_time,
            );
            self.chaos.as_mut().expect("chaos").stats.fenced_releases += 1;
            self.held.extend(pr.receipts);
            return Ok(());
        }
        let ns = self.container.ns.net;
        let released = self
            .cluster
            .host_mut(self.primary)
            .stack_mut(ns)?
            .release_output();
        self.tracer.event_at(
            TraceEvent::OutputRelease {
                packets: released as u64,
            },
            pr.release_time,
        );
        self.cluster.pump();
        let cl = self
            .cluster
            .host_mut(self.primary)
            .costs
            .client_link_latency;
        let held = std::mem::take(&mut self.held);
        for (remote, t_done) in held.into_iter().chain(pr.receipts) {
            let receipt = t_done.max(pr.release_time) + cl;
            self.receipts.entry(remote).or_default().push_back(receipt);
        }
        self.client_collect(pr.release_time)?;
        Ok(())
    }

    /// Chaos-mode epoch prologue: flush the deferred release, trace schedule
    /// edges, deliver in-flight heartbeats, then resolve any standing
    /// suspicion — rescind it if a later beat arrived (false positive), or
    /// promote the backup once the *granted* lease has expired. Returns true
    /// if a promotion consumed this epoch slot.
    fn chaos_prologue(&mut self) -> SimResult<bool> {
        let now = self.cluster.clock.now();
        self.chaos_flush_pending(now)?;
        self.chaos_edges(now);
        self.chaos_deliver_beats(now);
        if !matches!(self.mode, RunMode::Replicated(_)) {
            return Ok(false);
        }
        if self.detector.check(now) {
            let det = self.detector.detected_at().expect("check returned true");
            let (late_beat, grant_expiry) = {
                let ch = self.chaos.as_ref().expect("chaos prologue");
                (ch.last_beat_delivered, ch.grant.expires_at())
            };
            if late_beat > det {
                // A beat arrived after the suspicion began: false positive.
                // The lease gate bought the time to notice — rescind.
                self.tracer.event_at(
                    TraceEvent::FalseSuspicion {
                        suspected_for: late_beat - det,
                    },
                    late_beat,
                );
                self.detector.rescind(late_beat);
                self.chaos.as_mut().expect("chaos").stats.false_suspicions += 1;
            } else if now >= grant_expiry {
                self.chaos_promote(now)?;
                return Ok(true);
            }
            // Suspicion stands but the grant is still live: the backup
            // waits — exactly the delay that prevents split-brain.
        }
        Ok(false)
    }

    /// Promote the backup on granted-lease expiry (the primary may be alive
    /// but unreachable — a partition, not a fault). Safe because the
    /// primary's own lease expired strictly earlier, so it is already
    /// fenced: its plugged output can never be released. Checked, not
    /// assumed — a violation is reported as split-brain and fails the run.
    fn chaos_promote(&mut self, now: Nanos) -> SimResult<()> {
        {
            let ch = self.chaos.as_mut().expect("chaos promote");
            if ch.holder.valid_at(now) {
                ch.stats.split_brain = true;
                return Err(SimError::Invalid(format!(
                    "split-brain: promoting at {now}ns while the primary's output lease is \
                     valid until {}ns",
                    ch.holder.expires_at()
                )));
            }
        }
        // The fenced primary withdraws (fail-stop its traffic); whatever it
        // still held plugged is discarded exactly as at a real fault.
        self.cluster.partition(self.primary);
        let voided: Vec<(Endpoint, Nanos)> = self
            .pending_release
            .take()
            .map(|p| p.receipts)
            .unwrap_or_default();
        // "Detection latency" for a partition is measured from its start.
        let since = self
            .chaos
            .as_ref()
            .expect("chaos")
            .partition_started_at
            .unwrap_or(now);
        let latency = now.saturating_sub(since);
        self.detection_latency = Some(latency);
        self.promote_backup(latency, voided)
    }

    // ------------------------------------------------------------------
    // The epoch loop
    // ------------------------------------------------------------------

    /// Run up to `n` epochs (stops early if a batch workload completes or
    /// the service dies to an unprotected fault).
    pub fn run_epochs(&mut self, n: u64) -> SimResult<()> {
        for _ in 0..n {
            if self.batch_done || self.dead {
                break;
            }
            let now = self.cluster.clock.now();
            // Chaos: a release that logically precedes the next fault
            // flushes first; a fault landing inside the release gap leaves
            // it pending — the fault handler voids it
            // (fault-during-output-release) or flushes it (backup faults:
            // the ack had already committed).
            if let Some(release_time) = self.pending_release.as_ref().map(|p| p.release_time) {
                let next_fault = match (self.faults.front(), self.backup_faults.front()) {
                    (Some(&p), Some(&b)) => Some(p.min(b)),
                    (Some(&p), None) => Some(p),
                    (None, Some(&b)) => Some(b),
                    (None, None) => None,
                };
                if next_fault.is_none_or(|f| release_time <= f) {
                    self.chaos_flush_pending(now)?;
                }
            }
            let horizon = now + self.cfg.epoch_exec;
            let bf_due = self.backup_faults.front().is_some_and(|&t| t <= horizon);
            let pf_due = self.faults.front().is_some_and(|&t| t <= horizon);
            if bf_due && (!pf_due || self.backup_faults[0] <= self.faults[0]) {
                let t = self.backup_faults.pop_front().expect("front checked");
                self.handle_backup_fault(t.max(now))?;
                continue;
            }
            if pf_due {
                let t = self.faults.pop_front().expect("front checked");
                if self.replay_on() {
                    // Hybrid replay: execution up to the fault instant is
                    // recoverable via the log, so serve the partial epoch
                    // before failing over instead of rounding down to the
                    // previous checkpoint.
                    self.run_truncated_epoch(t.max(now))?;
                    continue;
                }
                self.handle_primary_fault(t.max(now))?;
                continue;
            }
            self.rearm_tick()?;
            self.repair_tick()?;
            self.run_one_epoch()?;
        }
        self.metrics.elapsed = self.cluster.clock.now();
        Ok(())
    }

    /// Run epochs until the batch workload completes (bounded by
    /// `max_epochs`). Errors if the bound is hit first.
    pub fn run_batch_to_completion(&mut self, max_epochs: u64) -> SimResult<()> {
        let mut left = max_epochs;
        while !self.batch_done {
            if left == 0 {
                return Err(SimError::Invalid(
                    "batch did not complete within bound".into(),
                ));
            }
            let chunk = left.min(64);
            self.run_epochs(chunk)?;
            left -= chunk;
        }
        self.metrics.elapsed = self.cluster.clock.now();
        Ok(())
    }

    fn run_one_epoch(&mut self) -> SimResult<()> {
        if self.chaos.is_some() && self.chaos_prologue()? {
            // A lease-expiry promotion consumed this epoch slot.
            return Ok(());
        }
        let exec_start = self.cluster.clock.now();
        let host = self.active_host();
        self.tracer.begin_epoch(self.epoch, exec_start);

        // --- Client requests arrive -------------------------------------
        self.client_turnaround(exec_start)?;

        // --- Execution phase --------------------------------------------
        let budget = (self.cfg.epoch_exec as f64 * self.parallelism) as Nanos;
        let epoch_end = exec_start + self.cfg.epoch_exec;
        let mut used: Nanos = KEEPALIVE_COST + self.cpu_debt;
        let mut requests_done = 0u64;
        let mut steps_done = 0u64;
        let mut completions: Vec<(Endpoint, Nanos)> = Vec::new();
        // Hybrid-replay accounting: per-epoch log traffic, shipped as the
        // execution phase produces it (HyCoR-style continuous streaming).
        let replay_on = self.replay_on();
        let cl_lat = self.cluster.host_mut(host).costs.client_link_latency;
        let mut log_events = 0u64;
        let mut log_bytes = 0u64;
        let mut log_time: Nanos = 0;
        let mut log_commit_max: Nanos = 0;
        let mut log_backup_cpu: Nanos = 0;
        let mut step_events: Vec<ReplayEvent> = Vec::new();

        {
            let k = self.cluster.host_mut(host);
            k.meter.take();
            k.fault_meter.take();
        }

        if self.app.is_server() {
            while used < budget {
                let Some(pos) = self
                    .pending
                    .iter()
                    .position(|(_, _, arrival)| *arrival <= epoch_end)
                else {
                    break;
                };
                let (remote, req, arrival) = self.pending.remove(pos).expect("pos valid");
                let pid = self.pick_worker();
                let response = {
                    let k = self.cluster.host_mut(host);
                    let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                    self.app.handle_request(&mut ctx, &req)?
                };
                let cost = self.cluster.host_mut(host).meter.take();
                used += cost.max(100);
                // Wall time to completion: queueing + service, stretched by
                // the epoch duty cycle (the container is frozen for
                // `last_stop` out of every `epoch_exec + last_stop`).
                let stretch_num = self.cfg.epoch_exec + self.last_stop;
                let wall_used = used.saturating_mul(stretch_num) / self.cfg.epoch_exec;
                let t_done = arrival.max(exec_start) + wall_used;
                self.send_response(remote, &response.response)?;
                requests_done += 1;
                if replay_on {
                    // Ship this completion's log chunk immediately; once the
                    // backup acks the chunk the response is externalizable —
                    // it does not wait for the epoch checkpoint.
                    let t_chunk = exec_start + used;
                    let blocked = self
                        .chaos
                        .as_ref()
                        .is_some_and(|ch| ch.cfg.schedule.blocked(t_chunk, LinkDir::AtoB));
                    if blocked {
                        // The log link is cut: the chunk cannot commit, so
                        // this completion falls back to the epoch-ack path.
                        completions.push((remote, t_done));
                    } else {
                        let ev = ReplayEvent::Request {
                            pid,
                            at: arrival,
                            payload: req,
                            response_hash: content_hash(&response.response),
                            response_len: response.response.len() as u32,
                        };
                        let ship = {
                            let RunMode::Replicated(engine) = &mut self.mode else {
                                unreachable!()
                            };
                            let (pk, _bk) =
                                self.cluster.two_hosts_mut(self.primary, self.backup);
                            engine.ship_log(pk, self.epoch, &[ev])?
                        };
                        log_events += 1;
                        log_bytes += ship.bytes;
                        log_time += ship.commit_latency;
                        log_commit_max = log_commit_max.max(ship.commit_latency);
                        log_backup_cpu += ship.backup_cpu;
                        self.metrics.release_waits.push(ship.commit_latency);
                        self.receipts
                            .entry(remote)
                            .or_default()
                            .push_back(t_done + ship.commit_latency + cl_lat);
                    }
                } else {
                    completions.push((remote, t_done));
                }
            }
        } else {
            while used < budget && !self.batch_done {
                let pid = self.container.workers[0];
                let outcome = {
                    let k = self.cluster.host_mut(host);
                    let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                    self.app.step(&mut ctx)?
                };
                let cost = self.cluster.host_mut(host).meter.take();
                used += cost.max(100);
                steps_done += 1;
                if replay_on {
                    step_events.push(ReplayEvent::Step {
                        pid,
                        at: exec_start + used,
                        done: outcome.done,
                    });
                }
                if outcome.done {
                    self.batch_done = true;
                }
            }
        }

        // Batch workloads have no per-request output to release early, so
        // their step log ships as one aggregate chunk at the epoch boundary.
        if replay_on && !step_events.is_empty() {
            let blocked = self
                .chaos
                .as_ref()
                .is_some_and(|ch| ch.cfg.schedule.blocked(epoch_end, LinkDir::AtoB));
            if !blocked {
                let n = step_events.len() as u64;
                let ship = {
                    let RunMode::Replicated(engine) = &mut self.mode else {
                        unreachable!()
                    };
                    let (pk, _bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                    engine.ship_log(pk, self.epoch, &step_events)?
                };
                log_events += n;
                log_bytes += ship.bytes;
                log_time += ship.commit_latency;
                log_commit_max = log_commit_max.max(ship.commit_latency);
                log_backup_cpu += ship.backup_cpu;
            }
        }

        self.cpu_debt = used.saturating_sub(budget);
        let consumed = used.min(budget);
        let tracking_overhead = self.cluster.host_mut(host).fault_meter.take();
        let cg = self.container.cgroup;
        self.cluster.host_mut(host).cgroups.charge_cpu(cg, consumed);
        self.cluster.clock.advance_to(epoch_end);
        self.tracer.span(
            TraceEvent::Exec {
                requests: requests_done,
                steps: steps_done,
            },
            self.cfg.epoch_exec,
        );

        // --- Heartbeat ---------------------------------------------------
        let cpuacct = self.cluster.host_mut(host).cgroups.cpuacct_usage(cg);
        if self.sender.tick(cpuacct) && !self.cluster.is_partitioned(host) {
            self.chaos_beat(epoch_end);
        }

        // --- Stop phase / release ----------------------------------------
        let epoch = self.epoch;
        if matches!(self.mode, RunMode::Unreplicated) {
            self.cluster.pump();
            if matches!(self.rearm, RearmState::Bootstrapping { .. }) {
                // Responses stay in the plugged qdisc: the bootstrap image
                // predates them, so they are only releasable once the first
                // post-re-arm incremental checkpoint commits.
                self.held.extend(completions);
                self.metrics.push(EpochRecord {
                    epoch,
                    exec_cpu: consumed,
                    tracking_overhead,
                    requests_done,
                    steps_done,
                    ..Default::default()
                });
                self.bootstrap_step_epoch()?;
            } else {
                let cl = self.cluster.host_mut(host).costs.client_link_latency;
                for (remote, t_done) in completions {
                    self.receipts
                        .entry(remote)
                        .or_default()
                        .push_back(t_done + cl);
                }
                self.client_collect(epoch_end)?;
                self.metrics.push(EpochRecord {
                    epoch,
                    exec_cpu: consumed,
                    tracking_overhead,
                    requests_done,
                    steps_done,
                    ..Default::default()
                });
            }
        } else if self
            .chaos
            .as_ref()
            .is_some_and(|ch| ch.cfg.schedule.blocked(epoch_end, LinkDir::AtoB))
        {
            // Chaos: the transfer direction is cut at the epoch boundary —
            // the checkpoint cannot reach the backup, so the epoch *stalls*:
            // no stop phase, output stays plugged, and the dirty state
            // accumulates into the first post-heal checkpoint (soft-dirty
            // tracking is cumulative until cleared by a dump). The backup
            // sees silence and starts suspecting.
            self.held.extend(completions);
            self.chaos.as_mut().expect("chaos").stats.stalled_epochs += 1;
            self.metrics.push(EpochRecord {
                epoch,
                exec_cpu: consumed,
                tracking_overhead,
                requests_done,
                steps_done,
                ..Default::default()
            });
        } else {
            let outcome = {
                let RunMode::Replicated(engine) = &mut self.mode else {
                    unreachable!()
                };
                // The execution phase that just ended is overlap time for the
                // engine's background pipeline stages (staged-pipeline
                // extension; a no-op for synchronous engines). Whatever
                // backlog remains surfaces as backpressure in the checkpoint.
                engine.pipeline_advance(self.cfg.epoch_exec);
                while self
                    .stage_fails
                    .front()
                    .is_some_and(|&(t, _)| t <= self.cluster.clock.now())
                {
                    let (_, chunk) = self.stage_fails.pop_front().expect("front checked");
                    engine.inject_stage_fail(chunk);
                }
                let (pk, bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                engine.checkpoint(pk, bk, &self.container, epoch)?
            };
            self.cluster.clock.advance(outcome.stop_time);
            self.last_stop = outcome.stop_time;
            if replay_on {
                // The seal rides the checkpoint transfer: it marks the
                // epoch's log complete so a failover can replay it whole.
                let RunMode::Replicated(engine) = &mut self.mode else {
                    unreachable!()
                };
                engine.seal_log(epoch)?;
            }
            // Chaos delay spikes stretch the ack round-trip (transfer out
            // plus ack back). With a staging engine the stretch is an
            // explicit ack-phase span so the reconciliation identity still
            // tiles; inline engines (ack_delay == 0) get a zero-duration
            // marker instead, since their ack spans are already folded into
            // the stop time.
            let chaos_extra = self
                .chaos
                .as_ref()
                .map_or(0, |ch| 2 * ch.cfg.schedule.delay_extra(epoch_end));
            if chaos_extra > 0 {
                if outcome.ack_delay > 0 {
                    self.tracer
                        .span(TraceEvent::ChaosDelay { extra: chaos_extra }, chaos_extra);
                } else {
                    self.tracer.mark(TraceEvent::ChaosDelay { extra: chaos_extra });
                }
            }
            let traced_ack = if outcome.ack_delay > 0 {
                outcome.ack_delay + chaos_extra
            } else {
                outcome.ack_delay
            };
            // The engine's phase spans must tile exactly the stop time and
            // ack delay it reported (the OBSERVABILITY.md invariant).
            if replay_on {
                if log_events > 0 {
                    self.tracer.span(
                        TraceEvent::LogShip {
                            events: log_events,
                            bytes: log_bytes,
                        },
                        log_time,
                    );
                    self.tracer.mark(TraceEvent::LogCommit {
                        events: log_events,
                        commit_latency: log_commit_max,
                    });
                }
                self.tracer
                    .reconcile_with_log(epoch, outcome.stop_time, traced_ack, log_time)
                    .map_err(SimError::Invalid)?;
            } else {
                self.tracer
                    .reconcile(epoch, outcome.stop_time, traced_ack)
                    .map_err(SimError::Invalid)?;
            }
            let release_time = self.cluster.clock.now() + outcome.ack_delay + chaos_extra;

            if let Some(ch) = self.chaos.as_mut() {
                // Chaos: the backup commits regardless (the transfer went
                // through); only the ack's return leg can differ.
                let ack_lost = if ch.cfg.schedule.blocked(release_time, LinkDir::BtoA) {
                    true
                } else if let Some(n) =
                    ch.cfg.schedule.loss_period(release_time, LinkDir::BtoA)
                {
                    ch.acks_attempted += 1;
                    ch.acks_attempted.is_multiple_of(n)
                } else {
                    false
                };
                let commit_cpu = {
                    let RunMode::Replicated(engine) = &mut self.mode else {
                        unreachable!()
                    };
                    let (_pk, bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                    engine.commit(bk, epoch)?
                };
                if ack_lost {
                    // The primary never learns: no release, no lease
                    // renewal. The completions ride the next acked epoch.
                    ch.stats.withheld_acks += 1;
                    self.held.extend(completions);
                } else {
                    // The ack doubles as a lease grant: the primary anchors
                    // at its own checkpoint start (epoch end), the backup at
                    // the ack's completion — holder expiry ≤ granted expiry,
                    // the exactly-one-owner ordering. The release itself is
                    // deferred to the epoch boundary so a fault inside the
                    // gap can void it.
                    ch.holder.grant(epoch_end);
                    ch.grant.grant(release_time);
                    ch.holder_was_valid = true;
                    let until = ch.holder.expires_at();
                    self.tracer
                        .event_at(TraceEvent::LeaseAcquire { until }, release_time);
                    self.pending_release = Some(PendingRelease {
                        release_time,
                        receipts: completions,
                    });
                }
                self.metrics.push(EpochRecord {
                    epoch,
                    stop_time: outcome.stop_time,
                    dirty_pages: outcome.dirty_pages,
                    state_bytes: outcome.state_bytes,
                    ack_delay: outcome.ack_delay + chaos_extra,
                    exec_cpu: consumed,
                    tracking_overhead,
                    backup_cpu: outcome.backup_cpu + commit_cpu + log_backup_cpu,
                    requests_done,
                    steps_done,
                });
            } else {
                // Paper path: mechanically release now; logically at
                // release_time.
                let ns = self.container.ns.net;
                let released = self
                    .cluster
                    .host_mut(self.primary)
                    .stack_mut(ns)?
                    .release_output();
                self.tracer.event_at(
                    TraceEvent::OutputRelease {
                        packets: released as u64,
                    },
                    release_time,
                );
                self.cluster.pump();
                let commit_cpu = {
                    let RunMode::Replicated(engine) = &mut self.mode else {
                        unreachable!()
                    };
                    let (_pk, bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                    engine.commit(bk, epoch)?
                };

                let cl = self
                    .cluster
                    .host_mut(self.primary)
                    .costs
                    .client_link_latency;
                // Bootstrap-era completions (if any) ride this epoch's
                // release: this is the first commit whose image covers them.
                let held = std::mem::take(&mut self.held);
                for (remote, t_done) in held.into_iter().chain(completions) {
                    let receipt = t_done.max(release_time) + cl;
                    if !replay_on {
                        self.metrics
                            .release_waits
                            .push(release_time.saturating_sub(t_done));
                    }
                    self.receipts.entry(remote).or_default().push_back(receipt);
                }
                self.client_collect(release_time)?;
                self.metrics.push(EpochRecord {
                    epoch,
                    stop_time: outcome.stop_time,
                    dirty_pages: outcome.dirty_pages,
                    state_bytes: outcome.state_bytes,
                    ack_delay: outcome.ack_delay,
                    exec_cpu: consumed,
                    tracking_overhead,
                    backup_cpu: outcome.backup_cpu + commit_cpu + log_backup_cpu,
                    requests_done,
                    steps_done,
                });
            }
            // A coded repair streams its bounded chunk after the epoch's
            // checkpoint acked (the stream rides the inter-replica links,
            // never the primary's stop phase).
            self.repair_step_epoch()?;
        }

        // The epoch (including its stop phase) completed healthy: the agent
        // heart-beats again. (The agent process is not frozen during its own
        // checkpoint; gating on cpuacct exists to catch *container* hangs.)
        let now = self.cluster.clock.now();
        if !self.cluster.is_partitioned(host) {
            self.chaos_beat(now);
        }
        self.epoch += 1;
        Ok(())
    }

    fn pick_worker(&mut self) -> Pid {
        // Requests are handled in the leader's context: application fds are
        // opened there, and concentrating guest state in one address space
        // is checkpoint-equivalent (the dump walks every process either
        // way). Multi-process CPU capacity is modeled by `parallelism`.
        self.rr += 1;
        self.container.workers[0]
    }

    /// Hybrid replay: a primary fault lands inside the coming epoch. The
    /// primary executes right up to the fault instant, shipping log chunks
    /// as it goes; the epoch's checkpoint never runs. If every chunk
    /// committed, the truncated log seals and failover replay recovers the
    /// partial epoch byte-identically; a chunk lost to a cut link leaves the
    /// log unsealed, nothing from the epoch is released, and recovery falls
    /// back to the last checkpoint (clients retransmit).
    fn run_truncated_epoch(&mut self, fault_time: Nanos) -> SimResult<()> {
        let exec_start = self.cluster.clock.now();
        let host = self.active_host();
        self.tracer.begin_epoch(self.epoch, exec_start);
        self.client_turnaround(exec_start)?;

        let exec_window = fault_time
            .saturating_sub(exec_start)
            .min(self.cfg.epoch_exec);
        let budget = (exec_window as f64 * self.parallelism) as Nanos;
        let cl_lat = self.cluster.host_mut(host).costs.client_link_latency;
        let mut used: Nanos = KEEPALIVE_COST + self.cpu_debt;
        let mut requests_done = 0u64;
        let mut steps_done = 0u64;
        // (receipt time, release wait) per committed chunk — deliverable
        // only if the *whole* truncated log commits.
        let mut released: Vec<(Endpoint, Nanos, Nanos)> = Vec::new();
        let mut blocked_any = false;
        let mut log_events = 0u64;
        let mut log_bytes = 0u64;
        let mut log_time: Nanos = 0;
        let mut log_commit_max: Nanos = 0;

        {
            let k = self.cluster.host_mut(host);
            k.meter.take();
            k.fault_meter.take();
        }

        if self.app.is_server() {
            while used < budget {
                let Some(pos) = self
                    .pending
                    .iter()
                    .position(|(_, _, arrival)| *arrival <= fault_time)
                else {
                    break;
                };
                let (remote, req, arrival) = self.pending.remove(pos).expect("pos valid");
                let pid = self.pick_worker();
                let response = {
                    let k = self.cluster.host_mut(host);
                    let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                    self.app.handle_request(&mut ctx, &req)?
                };
                let cost = self.cluster.host_mut(host).meter.take();
                used += cost.max(100);
                let stretch_num = self.cfg.epoch_exec + self.last_stop;
                let wall_used = used.saturating_mul(stretch_num) / self.cfg.epoch_exec;
                let t_done = arrival.max(exec_start) + wall_used;
                self.send_response(remote, &response.response)?;
                requests_done += 1;
                let t_chunk = exec_start + used;
                let blocked = self
                    .chaos
                    .as_ref()
                    .is_some_and(|ch| ch.cfg.schedule.blocked(t_chunk, LinkDir::AtoB));
                if blocked {
                    blocked_any = true;
                    continue;
                }
                let ev = ReplayEvent::Request {
                    pid,
                    at: arrival,
                    payload: req,
                    response_hash: content_hash(&response.response),
                    response_len: response.response.len() as u32,
                };
                let ship = {
                    let RunMode::Replicated(engine) = &mut self.mode else {
                        unreachable!()
                    };
                    let (pk, _bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                    engine.ship_log(pk, self.epoch, &[ev])?
                };
                log_events += 1;
                log_bytes += ship.bytes;
                log_time += ship.commit_latency;
                log_commit_max = log_commit_max.max(ship.commit_latency);
                released.push((
                    remote,
                    t_done + ship.commit_latency + cl_lat,
                    ship.commit_latency,
                ));
            }
        } else {
            let mut step_events: Vec<ReplayEvent> = Vec::new();
            while used < budget && !self.batch_done {
                let pid = self.container.workers[0];
                let outcome = {
                    let k = self.cluster.host_mut(host);
                    let mut ctx = GuestCtx::new(k, pid, exec_start + used);
                    self.app.step(&mut ctx)?
                };
                let cost = self.cluster.host_mut(host).meter.take();
                used += cost.max(100);
                steps_done += 1;
                step_events.push(ReplayEvent::Step {
                    pid,
                    at: exec_start + used,
                    done: outcome.done,
                });
                if outcome.done {
                    self.batch_done = true;
                }
            }
            if !step_events.is_empty() {
                let blocked = self
                    .chaos
                    .as_ref()
                    .is_some_and(|ch| ch.cfg.schedule.blocked(fault_time, LinkDir::AtoB));
                if blocked {
                    blocked_any = true;
                } else {
                    let n = step_events.len() as u64;
                    let ship = {
                        let RunMode::Replicated(engine) = &mut self.mode else {
                            unreachable!()
                        };
                        let (pk, _bk) = self.cluster.two_hosts_mut(self.primary, self.backup);
                        engine.ship_log(pk, self.epoch, &step_events)?
                    };
                    log_events += n;
                    log_bytes += ship.bytes;
                    log_time += ship.commit_latency;
                    log_commit_max = log_commit_max.max(ship.commit_latency);
                }
            }
        }

        // Work interrupted by the fault dies with the primary.
        self.cpu_debt = 0;
        let consumed = used.min(budget);
        let tracking_overhead = self.cluster.host_mut(host).fault_meter.take();
        let cg = self.container.cgroup;
        self.cluster.host_mut(host).cgroups.charge_cpu(cg, consumed);
        self.tracer.span(
            TraceEvent::Exec {
                requests: requests_done,
                steps: steps_done,
            },
            exec_window,
        );
        if log_events > 0 {
            self.tracer.span(
                TraceEvent::LogShip {
                    events: log_events,
                    bytes: log_bytes,
                },
                log_time,
            );
            self.tracer.mark(TraceEvent::LogCommit {
                events: log_events,
                commit_latency: log_commit_max,
            });
        }

        if blocked_any {
            // Part of the log never committed: the epoch's log stays
            // unsealed and *nothing* from it is released — a blocked
            // response escaping would expose state the fallback image does
            // not contain. The partial tail forces fallback replay; clients
            // retransmit and the recovered container re-serves them.
        } else {
            // The whole truncated log committed: seal it so failover replay
            // covers this partial epoch, and deliver the outputs that were
            // granted release at log commit.
            {
                let RunMode::Replicated(engine) = &mut self.mode else {
                    unreachable!()
                };
                engine.seal_log(self.epoch)?;
            }
            let ns = self.container.ns.net;
            let released_pkts = self.cluster.host_mut(host).stack_mut(ns)?.release_output();
            self.tracer.event_at(
                TraceEvent::OutputRelease {
                    packets: released_pkts as u64,
                },
                fault_time,
            );
            self.cluster.pump();
            for (remote, receipt, wait) in released.drain(..) {
                self.metrics.release_waits.push(wait);
                self.receipts.entry(remote).or_default().push_back(receipt);
            }
            self.client_collect(fault_time)?;
        }
        self.metrics.push(EpochRecord {
            epoch: self.epoch,
            exec_cpu: consumed,
            tracking_overhead,
            requests_done,
            steps_done,
            ..Default::default()
        });
        self.epoch += 1;
        self.do_failover(fault_time)
    }

    // ------------------------------------------------------------------
    // Failover
    // ------------------------------------------------------------------

    /// A primary-host fault fired. Replicated: fail over. Unreplicated
    /// after a failover (the paper path, or mid-bootstrap): the service is
    /// lost. Unreplicated from the start: a harness-usage error.
    fn handle_primary_fault(&mut self, fault_time: Nanos) -> SimResult<()> {
        if matches!(self.mode, RunMode::Replicated(_)) {
            return self.do_failover(fault_time);
        }
        if !self.replicated_run {
            return Err(SimError::Invalid(
                "fault injected into an unreplicated run".into(),
            ));
        }
        // No live backup (fault tolerance exhausted, or mid-bootstrap):
        // everything still plugged or queued dies with the host.
        self.cluster.clock.advance_to(fault_time);
        self.cluster.partition(self.active_host());
        let discarded = (self.pending.len() + self.held.len()) as u64;
        self.tracer.event_at(
            TraceEvent::OutputDiscard { packets: discarded },
            fault_time,
        );
        self.pending.clear();
        self.held.clear();
        self.unrecovered_faults += 1;
        self.dead = true;
        Ok(())
    }

    fn do_failover(&mut self, fault_time: Nanos) -> SimResult<()> {
        if matches!(self.mode, RunMode::Unreplicated) {
            return Err(SimError::Invalid(
                "fault injected into an unreplicated run".into(),
            ));
        }
        // Fail-stop: block all primary traffic (§VII-A).
        self.cluster.clock.advance_to(fault_time);
        self.cluster.partition(self.primary);
        // Chaos: a release deferred past the fault dies with the primary.
        // The plugged packets were never unplugged, so they are discarded
        // with the rest of the uncommitted output, never duplicated.
        let voided = self
            .pending_release
            .take()
            .map_or_else(Vec::new, |pr| pr.receipts);

        // Detection: the detector only changes state on its own heartbeat
        // grid, so poll along the beat boundaries. Under chaos, beats still
        // in flight (delayed or heal-flushed) keep landing while we wait.
        let mut t = self.detector.next_boundary(fault_time);
        loop {
            self.chaos_deliver_beats(t);
            if self.detector.check(t) {
                break;
            }
            t += self.cfg.heartbeat_interval;
        }
        let detected = self.detector.detected_at().expect("check returned true");
        let mut act = detected.max(fault_time);
        if let Some(ch) = &self.chaos {
            // Fencing: promotion additionally waits out the granted lease,
            // so even a falsely-suspected primary can no longer release.
            act = act.max(ch.grant.expires_at());
        }
        self.cluster.clock.advance_to(act);
        let latency = if self.chaos.is_some() {
            // A standing suspicion (from a partition, say) may predate the
            // injected fault; the silence simply continues.
            detected.saturating_sub(fault_time)
        } else {
            self.detector
                .detection_latency(fault_time)?
                .expect("check returned true")
        };
        self.detection_latency = Some(latency);
        if let Some(ch) = &mut self.chaos {
            let now = self.cluster.clock.now();
            if ch.holder.valid_at(now) {
                ch.stats.split_brain = true;
                return Err(SimError::Invalid(format!(
                    "split-brain: promoting at {now}ns while the primary's \
                     output lease is valid until {}ns",
                    ch.holder.expires_at()
                )));
            }
        }
        self.promote_backup(latency, voided)
    }

    /// The failover tail: restore on the backup, move the address, discard
    /// uncommitted output, retransmit, and either re-arm or degrade. Shared
    /// by the injected-fault path ([`Self::do_failover`]) and the
    /// chaos-detected path ([`Self::chaos_promote`]); `voided` are receipts
    /// from a deferred release that died with the primary.
    fn promote_backup(&mut self, latency: Nanos, voided: Vec<(Endpoint, Nanos)>) -> SimResult<()> {
        // Failover on the backup.
        let (restored, report) = {
            let RunMode::Replicated(engine) = &mut self.mode else {
                unreachable!()
            };
            let bk = &mut *self.cluster.host_mut(self.backup);
            engine.failover(bk)?
        };
        self.cluster.clock.advance(report.total());

        // Gratuitous ARP: the address moves to the backup.
        self.cluster.bind_addr(
            restored.container.spec.addr,
            self.backup,
            restored.container.ns.net,
        );
        restored.finish(self.cluster.host_mut(self.backup))?;

        // Rebuild the application's working state from restored guest memory.
        {
            let now = self.cluster.clock.now();
            let k = self.cluster.host_mut(self.backup);
            let mut ctx = GuestCtx::new(k, restored.container.workers[0], now);
            self.app.recover(&mut ctx)?;
            k.meter.take();
            k.fault_meter.take();
        }

        // Hybrid replay: re-execute the sealed log tail on top of the
        // restored checkpoint, recovering the post-checkpoint execution
        // whose outputs were already released at log commit. A divergence
        // (gap, partial tail, hash mismatch) falls back to the plain
        // last-checkpoint state just restored.
        let tail = {
            let RunMode::Replicated(engine) = &mut self.mode else {
                unreachable!()
            };
            if engine.supports_replay() {
                Some(engine.take_replay_tail()?)
            } else {
                None
            }
        };
        if let Some(tail) = tail {
            if !tail.logs.is_empty() || tail.dropped_partial {
                let now = self.cluster.clock.now();
                self.tracer.event_at(
                    TraceEvent::ReplayStart {
                        epochs: tail.logs.len() as u64,
                        events: tail.events(),
                    },
                    now,
                );
                let out = replay_tail(
                    &mut *self.cluster.host_mut(self.backup),
                    &restored.container,
                    self.app.as_mut(),
                    &tail,
                )?;
                self.cluster.clock.advance(out.replay_cpu);
                let done = self.cluster.clock.now();
                match out.diverged {
                    Some(reason) => {
                        self.tracer
                            .event_at(TraceEvent::ReplayDiverge { reason }, done);
                        // The executor rolled guest memory back; re-derive
                        // the app's working state from the checkpoint too.
                        let k = self.cluster.host_mut(self.backup);
                        let mut ctx = GuestCtx::new(k, restored.container.workers[0], done);
                        self.app.recover(&mut ctx)?;
                        k.meter.take();
                        k.fault_meter.take();
                    }
                    None => {
                        self.tracer.event_at(
                            TraceEvent::ReplayComplete {
                                events: out.events,
                                replay_time: out.replay_cpu,
                            },
                            done,
                        );
                    }
                }
            }
        }

        // Uncommitted driver-side buffers are garbage now: the clients will
        // retransmit anything the committed state has not consumed. Held
        // bootstrap-era completions were never released — discarded too, as
        // is any deferred release voided by the fault.
        let discarded = (self.pending.len() + self.held.len() + voided.len()) as u64;
        self.tracer.event_at(
            TraceEvent::OutputDiscard { packets: discarded },
            self.cluster.clock.now(),
        );
        self.pending.clear();
        self.held.clear();

        self.tracer.event_at(
            TraceEvent::Failover {
                detection_latency: latency,
                restore: report.restore,
                arp: report.arp,
                tcp: report.tcp,
                others: report.others,
            },
            self.cluster.clock.now(),
        );

        self.container = restored.container;
        self.failover_report = Some(report);
        self.failovers += 1;
        // A repair in flight at failover time is moot: the rearm bootstrap
        // (if any) rebuilds the whole placement from the promoted primary.
        self.repair = RepairState::Idle;
        // The promoted host's cgroup accounting starts from zero: without a
        // fresh sender, `tick` would never see progress and the re-armed
        // detector would starve.
        self.sender = HeartbeatSender::new();

        // Retransmissions: restored server sockets re-send unacked
        // responses (§V-E); clients re-send unacked requests.
        let ns = self.container.ns.net;
        self.cluster
            .host_mut(self.backup)
            .stack_mut(ns)?
            .retransmit_all();
        if let Some(pool) = self.pool.as_mut() {
            pool.retransmit(&mut self.cluster)?;
        }
        self.cluster.pump();
        // Retransmitted responses reach clients now.
        let now = self.cluster.clock.now();
        self.client_collect(now)?;

        let supports_rearm = match &self.mode {
            RunMode::Replicated(engine) => engine.supports_rearm(),
            RunMode::Unreplicated => false,
        };
        if supports_rearm {
            // Rearm extension: the promoted host becomes the new primary
            // (role swap keeps `active_host` and any later failover on the
            // unmodified code path); the engine parks until a replacement
            // backup is bootstrapped.
            let RunMode::Replicated(engine) =
                std::mem::replace(&mut self.mode, RunMode::Unreplicated)
            else {
                unreachable!()
            };
            self.parked = Some(engine);
            std::mem::swap(&mut self.primary, &mut self.backup);
            self.rearm = RearmState::Scheduled {
                at: now + self.cfg.rearm_delay,
                attempt: 0,
            };
        } else {
            // Continue unreplicated on the backup (the paper does not
            // re-arm replication after failover).
            self.mode = RunMode::Unreplicated;
            self.on_backup = true;
        }
        self.epoch += 1;
        Ok(())
    }

    /// A backup-host fault fired: with a k-of-n placement and the quorum
    /// intact, degrade and start a coded repair; abort an in-flight
    /// bootstrap or repair (and retry with exponential backoff); otherwise
    /// degrade a healthy replicated pair to unreplicated service.
    fn handle_backup_fault(&mut self, t: Nanos) -> SimResult<()> {
        self.cluster.clock.advance_to(t);
        // A deferred release whose ack already committed is legitimate: the
        // backup acknowledged the covering epoch before it died, so flush it
        // (lease validity holds by construction — the ack renewed it).
        self.chaos_flush_pending(t)?;
        let has_placement = match &self.mode {
            RunMode::Replicated(engine) => engine.supports_placement(),
            RunMode::Unreplicated => false,
        };
        if has_placement {
            let RunMode::Replicated(engine) = &mut self.mode else {
                unreachable!()
            };
            let (k, _n) = engine.placement();
            self.cluster.partition(self.backup);
            if let RepairState::Repairing { attempt, .. } = self.repair {
                // The replacement host died mid-repair: discard its
                // half-regenerated fragment store, provision another fresh
                // host, and retry with exponential backoff. Epochs keep
                // committing on the surviving quorum throughout.
                engine.repair_abort()?;
                self.backup = self.cluster.add_host(Kernel::default());
                let backoff = self
                    .cfg
                    .rearm_backoff
                    .saturating_mul(1u64 << attempt.min(16));
                self.repair = RepairState::Scheduled {
                    at: t + backoff,
                    attempt: attempt + 1,
                };
                return Ok(());
            }
            let attempt = match self.repair {
                RepairState::Scheduled { attempt, .. } => attempt + 1,
                _ => 0,
            };
            let alive = engine.replica_fault()?;
            if alive >= k {
                // Quorum holds: the epoch pipeline never pauses and output
                // stays plugged/released on the normal ack path. Provision
                // the replacement immediately; the repair starts after the
                // same settling delay a rearm bootstrap uses.
                self.backup = self.cluster.add_host(Kernel::default());
                self.tracer
                    .event_at(TraceEvent::DegradedMode { alive, need: k }, t);
                self.repair = RepairState::Scheduled {
                    at: t + self.cfg.rearm_delay,
                    attempt,
                };
                return Ok(());
            }
            // Below quorum: no further epoch can ack. Fall through to the
            // single-backup degrade path (release everything and, with the
            // rearm extension, bootstrap a whole new placement).
            self.repair = RepairState::Idle;
            let RunMode::Replicated(engine) =
                std::mem::replace(&mut self.mode, RunMode::Unreplicated)
            else {
                unreachable!()
            };
            self.release_plugged_output(t)?;
            if engine.supports_rearm() {
                self.parked = Some(engine);
                self.rearm = RearmState::Scheduled {
                    at: t + self.cfg.rearm_delay,
                    attempt: 0,
                };
            }
            return Ok(());
        }
        if let RearmState::Bootstrapping { attempt, .. } = self.rearm {
            // The replacement died mid-bootstrap: unwind the COW set, drop
            // the half-assembled image, keep serving, retry later.
            self.cluster.partition(self.backup);
            {
                let engine = self.parked.as_mut().expect("bootstrapping without an engine");
                engine.bootstrap_abort(self.cluster.host_mut(self.primary), &self.container)?;
            }
            self.release_plugged_output(t)?;
            let backoff = self
                .cfg
                .rearm_backoff
                .saturating_mul(1u64 << attempt.min(16));
            self.rearm = RearmState::Scheduled {
                at: t + backoff,
                attempt: attempt + 1,
            };
            return Ok(());
        }
        if matches!(self.mode, RunMode::Replicated(_)) {
            self.cluster.partition(self.backup);
            let RunMode::Replicated(engine) =
                std::mem::replace(&mut self.mode, RunMode::Unreplicated)
            else {
                unreachable!()
            };
            self.release_plugged_output(t)?;
            if engine.supports_rearm() {
                self.parked = Some(engine);
                self.rearm = RearmState::Scheduled {
                    at: t + self.cfg.rearm_delay,
                    attempt: 0,
                };
            }
            return Ok(());
        }
        Err(SimError::Invalid(
            "backup fault injected with no live backup".into(),
        ))
    }

    /// Replication is gone (backup lost): output commit is moot, so unplug
    /// the qdisc, release everything held, and deliver to clients.
    fn release_plugged_output(&mut self, t: Nanos) -> SimResult<()> {
        let ns = self.container.ns.net;
        let host = self.active_host();
        let stack = self.cluster.host_mut(host).stack_mut(ns)?;
        let released = stack.release_output();
        stack.plugged = false;
        self.tracer.event_at(
            TraceEvent::OutputRelease {
                packets: released as u64,
            },
            t,
        );
        self.cluster.pump();
        let cl = self.cluster.host_mut(host).costs.client_link_latency;
        let held = std::mem::take(&mut self.held);
        for (remote, t_done) in held {
            self.receipts
                .entry(remote)
                .or_default()
                .push_back(t_done.max(t) + cl);
        }
        self.client_collect(t)?;
        Ok(())
    }

    /// Start a scheduled bootstrap once its time arrives.
    fn rearm_tick(&mut self) -> SimResult<()> {
        if let RearmState::Scheduled { at, attempt } = self.rearm {
            if at <= self.cluster.clock.now() {
                self.begin_bootstrap(attempt)?;
            }
        }
        Ok(())
    }

    /// Start a scheduled coded repair once its time arrives (the placement
    /// analog of [`Self::rearm_tick`]).
    fn repair_tick(&mut self) -> SimResult<()> {
        if let RepairState::Scheduled { at, attempt } = self.repair {
            if at <= self.cluster.clock.now() {
                let now = self.cluster.clock.now();
                let RunMode::Replicated(engine) = &mut self.mode else {
                    // The placement degraded below quorum (or failed over)
                    // after the repair was scheduled.
                    self.repair = RepairState::Idle;
                    return Ok(());
                };
                self.tracer.event_at(
                    TraceEvent::RepairStart {
                        kind: "repair".into(),
                        attempt,
                    },
                    now,
                );
                engine.repair_begin(self.epoch)?;
                self.repair = RepairState::Repairing {
                    attempt,
                    streamed_pages: 0,
                    streamed_bytes: 0,
                };
            }
        }
        Ok(())
    }

    /// One bounded chunk of the coded-repair stream (runs at the end of each
    /// replicated epoch while a repair is active). When the last fragment
    /// regenerates, the repaired replica seals (mid-repair commits included,
    /// disk resynced) and rejoins the placement at full redundancy.
    fn repair_step_epoch(&mut self) -> SimResult<()> {
        let RepairState::Repairing {
            attempt,
            streamed_pages,
            streamed_bytes,
        } = self.repair
        else {
            return Ok(());
        };
        let step = {
            let RunMode::Replicated(engine) = &mut self.mode else {
                return Ok(());
            };
            engine.repair_step(self.epoch, self.cfg.rearm_chunk_pages)?
        };
        let now = self.cluster.clock.now();
        if step.pages > 0 {
            self.tracer.event_at(
                TraceEvent::RepairChunk {
                    pages: step.pages,
                    bytes: step.bytes,
                },
                now,
            );
        }
        let pages = streamed_pages + step.pages;
        let bytes = streamed_bytes + step.bytes;
        if step.remaining == 0 {
            {
                let RunMode::Replicated(engine) = &mut self.mode else {
                    unreachable!()
                };
                engine.repair_finish(self.cluster.host_mut(self.backup), self.epoch)?;
            }
            self.repair = RepairState::Idle;
            self.tracer
                .event_at(TraceEvent::RepairComplete { pages, bytes }, now);
        } else {
            self.repair = RepairState::Repairing {
                attempt,
                streamed_pages: pages,
                streamed_bytes: bytes,
            };
        }
        Ok(())
    }

    /// Provision a fresh replacement host and take the full COW-deferred
    /// bootstrap checkpoint (one stop of roughly an incremental epoch's
    /// length); the page payload then streams in bounded per-epoch chunks.
    fn begin_bootstrap(&mut self, attempt: u32) -> SimResult<()> {
        let now = self.cluster.clock.now();
        self.backup = self.cluster.add_host(Kernel::default());
        let mut engine = self
            .parked
            .take()
            .expect("rearm scheduled with no parked engine");
        engine.set_tracer(self.tracer.clone());
        engine.rearm_prepare(self.cluster.host_mut(self.primary), &self.container)?;
        self.cluster.host_mut(self.primary).meter.take();
        self.tracer
            .event_at(TraceEvent::RearmStart { attempt }, now);
        let begin = engine.bootstrap_begin(
            self.cluster.host_mut(self.primary),
            &self.container,
            self.epoch,
        )?;
        self.cluster.clock.advance(begin.stop_time);
        self.last_stop = begin.stop_time;
        self.rearm = RearmState::Bootstrapping {
            attempt,
            epoch: self.epoch,
            streamed_pages: 0,
            streamed_bytes: 0,
        };
        self.parked = Some(engine);
        Ok(())
    }

    /// One bounded chunk of the bootstrap stream (runs at the end of each
    /// epoch while a bootstrap is active). When the last deferred page
    /// lands, the image commits on the replacement and incremental epochs
    /// resume with a fresh failure detector.
    fn bootstrap_step_epoch(&mut self) -> SimResult<()> {
        let RearmState::Bootstrapping {
            attempt,
            epoch,
            streamed_pages,
            streamed_bytes,
        } = self.rearm
        else {
            return Ok(());
        };
        let step = {
            let engine = self.parked.as_mut().expect("bootstrapping without an engine");
            engine.bootstrap_step(
                self.cluster.host_mut(self.primary),
                epoch,
                self.cfg.rearm_chunk_pages,
            )?
        };
        let now = self.cluster.clock.now();
        if step.pages > 0 {
            self.tracer.event_at(
                TraceEvent::BootstrapChunk {
                    pages: step.pages,
                    bytes: step.bytes,
                },
                now,
            );
        }
        let pages = streamed_pages + step.pages;
        let bytes = streamed_bytes + step.bytes;
        if step.remaining == 0 {
            {
                let engine = self.parked.as_mut().expect("bootstrapping without an engine");
                engine.bootstrap_finish(self.cluster.host_mut(self.backup), epoch)?;
            }
            let engine = self.parked.take().expect("just used");
            if engine.supports_replay() {
                // The promoted host resumes recording for the new pair.
                self.cluster.host_mut(self.primary).replay.enable();
            }
            self.mode = RunMode::Replicated(engine);
            self.rearm = RearmState::Armed;
            self.detector = FailureDetector::new(
                self.cfg.heartbeat_interval,
                self.cfg.heartbeat_misses,
                now,
            );
            self.detector.set_tracer(self.tracer.clone());
            if let Some(ch) = self.chaos.as_mut() {
                // Fresh pair, fresh fences: re-anchor both leases at `now`
                // so a grant left over from before the fault cannot
                // green-light an instant promotion.
                ch.holder.grant(now);
                ch.grant.grant(now);
                ch.holder_was_valid = true;
            }
            self.tracer
                .event_at(TraceEvent::RearmComplete { pages, bytes }, now);
        } else {
            self.rearm = RearmState::Bootstrapping {
                attempt,
                epoch,
                streamed_pages: pages,
                streamed_bytes: bytes,
            };
        }
        Ok(())
    }

    /// Finish the run: validate and hand back the results.
    pub fn finish(mut self) -> RunResult {
        // Flush a deferred release still sitting at the end of the run (its
        // ack committed; only the epoch boundary never came).
        if self.pending_release.is_some() {
            let now = self.cluster.clock.now();
            let _ = self.chaos_flush_pending(now);
        }
        let _ = self.tracer.flush();
        self.metrics.elapsed = self.cluster.clock.now();
        // A failed client-stack lookup must fail the run, not count as zero
        // broken connections — fold the error into `verify` so the §VII-A
        // gate can't pass vacuously.
        let (broken, broken_err) = match self.pool.as_mut() {
            Some(p) => match p.broken_connections(&mut self.cluster) {
                Ok(n) => (n, None),
                Err(e) => (u64::MAX, Some(format!("broken_connections: {e}"))),
            },
            None => (0, None),
        };
        let verify = match broken_err {
            Some(e) => Err(e),
            None => match &self.behavior {
                Some(b) => b.verify(),
                None => Ok(()),
            },
        };
        // A scheduled fault that never fired is unproven survival: the old
        // `recovered` semantics (fault pending + still on the primary =
        // not recovered) are preserved by counting it against the run.
        let unrecovered = self.unrecovered_faults + self.faults.len() as u64;
        RunResult {
            metrics: self.metrics,
            failover: self.failover_report,
            detection_latency: self.detection_latency,
            recovered: unrecovered == 0,
            failovers: self.failovers,
            unrecovered_faults: unrecovered,
            broken_connections: broken,
            verify,
        }
    }

    /// Read-only metrics access mid-run.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }
}
