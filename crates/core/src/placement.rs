//! k-of-n erasure-coded multi-backup replication — the `placement` engine.
//!
//! NiLiCon's single warm backup gives exactly one fault-tolerance level at
//! 2× memory: lose the backup and the pair is one fault from data loss until
//! rearm completes. This engine generalizes the backup side to a *placement*
//! of `n` replicas with quorum `k`:
//!
//! * each committed epoch's dirty pages are erasure-coded into `n` fragments
//!   ([`nilicon_criu::ShardCodec`] — systematic Reed–Solomon over GF(2⁸));
//!   replica `i` stores fragment `i` of every page behind the same
//!   `begin_assembly` / `ingest_chunk` / `finish_assembly` barrier the COW
//!   path uses;
//! * the epoch acks when the fragment sets are durable on the replicas
//!   (links fan out in parallel; with uniform replicas the k-th ack and the
//!   n-th coincide in virtual time);
//! * failover reconstructs a byte-identical committed image from any `k`
//!   survivors ([`PlacementEngine::reconstruct_committed`]);
//! * losing a replica leaves the placement in *degraded mode* (epochs keep
//!   committing on the `alive ≥ k` survivors) and triggers **coded repair**:
//!   the missing fragment store is regenerated onto a fresh host from `k`
//!   peers — decode + re-encode, `k × frag_len` wire bytes per page — while
//!   the primary keeps serving.
//!
//! Repair, rearm (PR 5's bootstrap streaming), and planned live migration
//! are three instantiations of the same stream-while-serving flow:
//!
//! | flow      | source              | target            | trigger          |
//! |-----------|---------------------|-------------------|------------------|
//! | repair    | k surviving replicas| fresh replica     | replica loss     |
//! | rearm     | promoted primary    | n fresh replicas  | primary failover |
//! | migration | serving primary     | destination host  | operator         |
//!
//! All three stream a bounded chunk per epoch, keep the served container
//! running between chunks, and seal with the same assembly barrier. Rearm
//! reuses the [`Checkpointer`] bootstrap methods; repair adds the
//! `repair_*` methods (no stop phase at all — it reads *committed* state);
//! migration is the degenerate `k = 1, n = 1` placement driven to a
//! deliberate failover (see `examples/live_migration.rs`).
//!
//! Memory overhead is `n × ceil(4 KiB/k) / 4 KiB` per committed page:
//! `(1,2)` is exactly the paper's 2× mirroring, `(2,3)` stores 1.5×, `(3,5)`
//! ≈ 1.67× — coded placements beat mirroring while tolerating more faults.
//!
//! Modeling notes: the engine requires the staged transfer path
//! (`staging_buffer`) and composes with neither `delta_transfer` nor
//! `cow_checkpoint` (fragments are coded from full page bodies after the
//! container resumes). Replica receive CPU is modeled on the padded 4 KiB
//! page boxes the agents store, not the `frag_len` payload — wire bytes and
//! stored-fragment accounting use the true fragment size.

use crate::backup::BackupAgent;
use crate::config::OptimizationConfig;
use crate::engine::{
    BootstrapBegin, BootstrapStep, CheckpointOutcome, Checkpointer, FailoverReport, LogShipOutcome,
    RepairBegin, ReplayTail,
};
use crate::trace::{TraceEvent, Tracer};
use nilicon_container::Container;
use nilicon_criu::{
    bootstrap_dump, dump_container, CheckpointImage, InfrequentCache, RestoreConfig,
    RestoredContainer, ShardCodec,
};
use nilicon_drbd::{DrbdMsg, DrbdPrimary};
use nilicon_sim::block::BlockDevice;
use nilicon_sim::ids::Pid;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::TrackingMode;
use nilicon_sim::net::InputMode;
use nilicon_sim::replay::{ReplayEvent, ReplayLog};
use nilicon_sim::time::Nanos;
use nilicon_sim::{PageBuf, SimError, SimResult, PAGE_SIZE};
use std::collections::{BTreeMap, HashSet};

/// One replica's per-epoch fragment batch, in `BackupAgent::ingest_chunk`
/// page form: each entry carries a zero-padded `PAGE_SIZE` box holding that
/// replica's fragment of the page.
type FragmentBatch = Vec<(Pid, u64, PageBuf)>;

/// One backup replica: a buffered agent plus its replicated block device.
/// The replica at index 0 is backed by the harness's real backup kernel —
/// its committed disk writes go to that kernel's device (passed into
/// [`Checkpointer::commit`]), and `disk` here stays unused. Replicas `1..n`
/// are modeled hosts that commit into their own `disk`.
struct Replica {
    agent: BackupAgent,
    disk: BlockDevice,
    alive: bool,
}

/// An in-flight coded repair (one at a time).
struct ActiveRepair {
    /// Replica index being regenerated.
    target: usize,
    /// Full committed pages decoded from k survivors at repair begin,
    /// streamed to the target in bounded chunks.
    base_pages: Vec<(Pid, u64, PageBuf)>,
    /// Next page to stream.
    cursor: usize,
    /// Committed epoch the base image corresponds to.
    base_epoch: u64,
    /// Agent CPU charged at begin (metadata receive), carried into the
    /// first step's accounting.
    cpu_carry: Nanos,
}

/// The k-of-n placement engine (see the module docs).
pub struct PlacementEngine {
    opts: OptimizationConfig,
    cache: InfrequentCache,
    codec: ShardCodec,
    replicas: Vec<Replica>,
    drbd: DrbdPrimary,
    prepared: bool,
    tracer: Tracer,
    costs: nilicon_sim::CostModel,
    /// Page keys of each not-yet-committed epoch (drained at commit). While
    /// a repair is active, committed keys accumulate in `redirty` so the
    /// repaired replica can be topped up to the current committed state.
    epoch_keys: BTreeMap<u64, Vec<(Pid, u64)>>,
    /// Keys committed while the active repair streamed its base image.
    redirty: HashSet<(Pid, u64)>,
    repair: Option<ActiveRepair>,
    /// Address spaces still holding COW-deferred bootstrap pages (rearm).
    bootstrap_pids: Vec<Pid>,
    /// Replica CPU charged by `bootstrap_begin`, carried into the first
    /// `bootstrap_step`.
    bootstrap_cpu_carry: Nanos,
    /// Replay logs by epoch. Each chunk is erasure-coded into n fragments
    /// of `ceil(bytes/k)` and fanned out like epoch pages; a chunk counts
    /// as committed at the k-th ack. The store holds the logical
    /// (reconstructible) log — checkpoint already refuses below quorum, so
    /// a stored chunk is always decodable from the survivors.
    log_store: BTreeMap<u64, ReplayLog>,
    /// Test hook mirroring `NiLiConEngine::log_fail_after_chunks`: once the
    /// counter reaches the threshold, later chunks and the seal vanish in
    /// flight.
    pub log_fail_after_chunks: Option<u64>,
    log_chunks_shipped: u64,
    /// Staged-pipeline extension: ack-path work of the previous epoch's
    /// fan-out not yet overlapped by execution time (see
    /// `NiLiConEngine::pipe_backlog`).
    pipe_backlog: Nanos,
    /// Test hook mirroring `NiLiConEngine::stage_fail_at_chunk`: the
    /// designated replica's ingest stage crashes once at this chunk index
    /// and replays it from the upstream queue (received twice, applied
    /// once).
    pub stage_fail_at_chunk: Option<u64>,
}

impl std::fmt::Debug for PlacementEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementEngine")
            .field("codec", &self.codec)
            .field("alive", &self.alive_replicas())
            .finish()
    }
}

impl PlacementEngine {
    /// New engine for `opts.backups` replicas with quorum `opts.quorum`.
    /// Requires the staged transfer path and composes with neither the
    /// delta nor the COW extension.
    pub fn new(opts: OptimizationConfig, costs: nilicon_sim::CostModel) -> SimResult<Self> {
        if !opts.staging_buffer {
            return Err(SimError::Invalid(
                "placement requires the staging buffer (staged ack path)".into(),
            ));
        }
        if opts.delta_transfer || opts.cow_checkpoint {
            return Err(SimError::Invalid(
                "placement composes with neither delta_transfer nor cow_checkpoint".into(),
            ));
        }
        let codec = ShardCodec::new(opts.quorum, opts.backups)?;
        let replicas = (0..opts.backups)
            .map(|_| Replica {
                agent: BackupAgent::new(costs.clone(), opts.optimize_criu),
                disk: BlockDevice::default(),
                alive: true,
            })
            .collect();
        Ok(PlacementEngine {
            opts,
            cache: InfrequentCache::new(),
            codec,
            replicas,
            drbd: DrbdPrimary::new(),
            prepared: false,
            tracer: Tracer::disabled(),
            costs,
            epoch_keys: BTreeMap::new(),
            redirty: HashSet::new(),
            repair: None,
            bootstrap_pids: Vec::new(),
            bootstrap_cpu_carry: 0,
            log_store: BTreeMap::new(),
            log_fail_after_chunks: None,
            log_chunks_shipped: 0,
            pipe_backlog: 0,
            stage_fail_at_chunk: None,
        })
    }

    fn log_link_down(&self) -> bool {
        self.log_fail_after_chunks
            .is_some_and(|k| self.log_chunks_shipped >= k)
    }

    /// Active optimization set.
    pub fn opts(&self) -> OptimizationConfig {
        self.opts
    }

    /// Bytes of one page fragment as stored per replica.
    pub fn frag_len(&self) -> usize {
        self.codec.frag_len()
    }

    /// Replicas currently alive.
    pub fn alive_replicas(&self) -> u32 {
        self.replicas.iter().filter(|r| r.alive).count() as u32
    }

    /// Mark replica `i` dead (test hook; the harness designates replica 0
    /// via [`Checkpointer::replica_fault`]).
    pub fn fail_replica(&mut self, i: usize) -> SimResult<()> {
        let r = self
            .replicas
            .get_mut(i)
            .ok_or_else(|| SimError::Invalid(format!("no replica {i}")))?;
        r.alive = false;
        Ok(())
    }

    /// Total fragment payload bytes currently stored across alive replicas
    /// (`stored pages × frag_len`, summed) — the memory-overhead metric of
    /// the (k, n) sweep.
    pub fn stored_fragment_bytes(&self) -> u64 {
        self.replicas
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.agent.stored_pages() as u64 * self.codec.frag_len() as u64)
            .sum()
    }

    fn transfer_cost(&self, primary: &Kernel, bytes: u64, msgs: u64) -> Nanos {
        let c = &primary.costs;
        c.repl_link_latency + c.repl_wire(bytes) + msgs * c.repl_msg_overhead
    }

    fn alive_indices(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Zero-padded fragment `idx` of `page`, as a fresh refcounted buffer
    /// for the agent's page store (which holds 4 KiB units).
    fn frag_boxed(&mut self, page: &[u8; PAGE_SIZE], idx: usize) -> PageBuf {
        let frags = self.codec.encode(page);
        let mut b = [0u8; PAGE_SIZE];
        b[..frags[idx].len()].copy_from_slice(&frags[idx]);
        std::rc::Rc::new(b)
    }

    /// Reconstruct the committed image byte-identically from the fragment
    /// stores of exactly `k` distinct replicas. This is the failover path's
    /// core and directly testable: any k-subset must produce the same image.
    pub fn reconstruct_committed(&mut self, replicas: &[usize]) -> SimResult<CheckpointImage> {
        let k = self.codec.k() as usize;
        if replicas.len() != k {
            return Err(SimError::Invalid(format!(
                "reconstruction needs exactly k={k} replicas, got {}",
                replicas.len()
            )));
        }
        let mut imgs = Vec::with_capacity(k);
        for &i in replicas {
            let r = self
                .replicas
                .get(i)
                .ok_or_else(|| SimError::Invalid(format!("no replica {i}")))?;
            imgs.push(r.agent.materialize()?);
        }
        // Metadata, sockets, and fs state replicate in full on every
        // replica; adopt the first one's and decode only the pages.
        let mut out = imgs[0].clone();
        if k == 1 {
            return Ok(out);
        }
        let n_pages = imgs[0].pages.len();
        for img in &imgs[1..] {
            if img.pages.len() != n_pages {
                return Err(SimError::Invalid(format!(
                    "replica fragment stores diverge: {} vs {n_pages} pages",
                    img.pages.len()
                )));
            }
        }
        let frag_len = self.codec.frag_len();
        let mut pages = Vec::with_capacity(n_pages);
        for p in 0..n_pages {
            let (pid, vpn, _) = imgs[0].pages[p];
            let mut frags = Vec::with_capacity(k);
            for (j, img) in imgs.iter().enumerate() {
                let (fpid, fvpn, ref data) = img.pages[p];
                if (fpid, fvpn) != (pid, vpn) {
                    return Err(SimError::Invalid(format!(
                        "replica fragment stores diverge at page {p}"
                    )));
                }
                frags.push((replicas[j], &data[..frag_len]));
            }
            let mut full = [0u8; PAGE_SIZE];
            self.codec.decode(&frags, &mut full)?;
            pages.push((pid, vpn, std::rc::Rc::new(full)));
        }
        out.pages = pages;
        Ok(out)
    }

    /// First `count` alive replica indices, erroring below the quorum.
    fn survivors(&self, count: usize) -> SimResult<Vec<usize>> {
        let alive = self.alive_indices();
        if alive.len() < count {
            return Err(SimError::Invalid(format!(
                "placement below quorum: {} alive, need {count}",
                alive.len()
            )));
        }
        Ok(alive[..count].to_vec())
    }
}

impl Checkpointer for PlacementEngine {
    fn name(&self) -> &'static str {
        "Placement"
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn inject_stage_fail(&mut self, chunk: u64) {
        self.stage_fail_at_chunk = Some(chunk);
    }

    fn prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()> {
        let mode = if self.opts.pml_tracking {
            TrackingMode::HardwareLog
        } else {
            TrackingMode::SoftDirty
        };
        for pid in container.all_pids() {
            primary.mm_mut(pid)?.set_tracking(mode);
        }
        let mode = if self.opts.plug_input_blocking {
            InputMode::Buffer
        } else {
            InputMode::Drop
        };
        primary
            .stack_mut(container.ns.net)?
            .input_gate
            .set_mode(mode);
        primary.stack_mut(container.ns.net)?.plugged = true;
        self.prepared = true;
        Ok(())
    }

    fn checkpoint(
        &mut self,
        primary: &mut Kernel,
        _backup: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<CheckpointOutcome> {
        if !self.prepared {
            return Err(SimError::Invalid("engine not prepared".into()));
        }
        let k = self.codec.k() as usize;
        let alive = self.alive_indices();
        if alive.len() < k {
            return Err(SimError::Invalid(format!(
                "cannot checkpoint below quorum: {} alive, need {k}",
                alive.len()
            )));
        }
        let cfg = self.opts.dump_config();
        primary.meter.take();

        // --- Stop phase (identical to the NiLiCon staged path) -----------
        let m_start = primary.meter.lifetime_total();
        primary.freeze_cgroup(container.cgroup, cfg.freeze)?;
        let block_cost = if self.opts.plug_input_blocking {
            primary.costs.plug_block_cycle
        } else {
            primary.costs.firewall_block_cycle
        };
        primary.meter.charge(block_cost);
        primary.stack_mut(container.ns.net)?.block_input();
        let m_frozen = primary.meter.lifetime_total();

        let cache = if self.opts.cache_infrequent {
            Some(&mut self.cache)
        } else {
            None
        };
        let mut img = dump_container(primary, container, &cfg, cache, epoch)?;
        let dirty_pages = img.stats.dirty_pages;
        let dump_phases = img.stats.phases;
        let m_dumped = primary.meter.lifetime_total();

        let chunks = img.transfer_chunks();
        let mut msgs = self.drbd.ship(&mut primary.vfs.disk);
        msgs.push(self.drbd.barrier(epoch));
        let wire = nilicon_drbd::wire_stats(&msgs);
        let drbd_msgs = msgs.len() as u64;

        primary.stack_mut(container.ns.net)?.unblock_input();
        primary.thaw_cgroup(container.cgroup)?;
        let m_resumed = primary.meter.lifetime_total();
        let mut stop_time = primary.meter.take();

        self.tracer.span(TraceEvent::Freeze, m_frozen - m_start);
        self.tracer
            .span(TraceEvent::Dump { dirty_pages }, m_dumped - m_frozen);
        if self.tracer.enabled() {
            self.tracer.mark(TraceEvent::DumpDetail {
                processes: dump_phases.processes,
                pages: dump_phases.pages,
                sockets: dump_phases.sockets,
                fs_cache: dump_phases.fs_cache,
                infrequent: dump_phases.infrequent,
            });
        }
        self.tracer.span(TraceEvent::LocalCopy, m_resumed - m_dumped);
        self.tracer.mark(TraceEvent::DrbdShip {
            writes: wire.writes,
            bytes: wire.bytes,
        });

        // Staged pipeline: a previous epoch's undrained fan-out stalls this
        // stop phase (backpressure) instead of queueing unboundedly.
        if self.opts.pipeline && self.pipe_backlog > 0 {
            let stalled = std::mem::take(&mut self.pipe_backlog);
            stop_time += stalled;
            self.tracer.span(TraceEvent::Backpressure { stalled }, stalled);
        }

        // --- Shard encode + parallel fan-out (ack path) ------------------
        // The container is already running. Erasure-code each dirty page
        // into n fragments and ship fragment i to replica i behind the
        // assembly barrier. All replica links run in parallel.
        let pages = std::mem::take(&mut img.pages);
        let n_pages = pages.len() as u64;
        let meta_bytes = img.state_bytes();
        let frag_len = self.codec.frag_len() as u64;
        let frag_bytes = n_pages * frag_len;

        self.epoch_keys.insert(
            epoch,
            pages.iter().map(|&(pid, vpn, _)| (pid, vpn)).collect(),
        );

        let link = primary.costs.repl_link_latency;
        let (ack_delay, total_cpu) = if self.opts.pipeline {
            // --- Staged pipeline: chunked stripe fan-out -----------------
            // Each 64-page chunk is erasure-coded and striped to all alive
            // replicas as soon as it is encoded, with the shard-encode stage
            // at most PIPE_BOUND chunks ahead of the (parallel) links. The
            // per-replica assembly barrier still gates the ack, so the
            // committed fragment stores are byte-identical to the
            // whole-epoch fan-out.
            const PIPE_CHUNK: usize = 64;
            const PIPE_BOUND: usize = 4;
            let alive_idx = self.alive_indices();
            let first_alive = alive_idx[0];
            let meta_ser = self
                .transfer_cost(primary, meta_bytes + wire.bytes, chunks + drbd_msgs)
                - link;
            let mut per_cpu: Vec<Nanos> = vec![0; self.replicas.len()];
            for &i in &alive_idx {
                per_cpu[i] = self.replicas[i].agent.begin_assembly(img.clone(), n_pages);
            }
            let mut t_enc: Nanos = 0;
            let mut t_send: Nanos = meta_ser;
            let mut sent_at: Vec<Nanos> = Vec::new();
            for (ci, chunk) in pages.chunks(PIPE_CHUNK).enumerate() {
                if self.tracer.enabled() {
                    self.tracer.mark(TraceEvent::StageEnqueue {
                        stage: "encode".into(),
                        chunk: ci as u64,
                    });
                }
                let gate = if ci >= PIPE_BOUND { sent_at[ci - PIPE_BOUND] } else { 0 };
                let mut chunk_batches: Vec<FragmentBatch> =
                    self.replicas.iter().map(|_| Vec::new()).collect();
                for (pid, vpn, data) in chunk {
                    let frags = self.codec.encode(data);
                    for (i, frag) in frags.iter().enumerate() {
                        if !self.replicas[i].alive {
                            continue;
                        }
                        let mut b = [0u8; PAGE_SIZE];
                        b[..frag.len()].copy_from_slice(frag);
                        chunk_batches[i].push((*pid, *vpn, std::rc::Rc::new(b)));
                    }
                }
                let n = chunk.len() as u64;
                t_enc = t_enc.max(gate) + n * primary.costs.shard_encode_per_page;
                let wait = t_send.saturating_sub(t_enc);
                // Replica links run in parallel: one chunk's wire time is a
                // single fragment batch.
                t_send = t_send.max(t_enc)
                    + primary.costs.repl_wire(n * frag_len)
                    + primary.costs.repl_msg_overhead;
                sent_at.push(t_send);
                for (i, batch) in chunk_batches.into_iter().enumerate() {
                    if !self.replicas[i].alive {
                        continue;
                    }
                    let cpu = self.replicas[i].agent.ingest_chunk(epoch, batch, Vec::new())?;
                    per_cpu[i] += cpu;
                    if i == first_alive
                        && self.stage_fail_at_chunk.is_some_and(|k| k == ci as u64)
                    {
                        // Ingest-stage crash on the designated replica: the
                        // chunk replays from the upstream queue — received
                        // twice, applied once.
                        self.stage_fail_at_chunk = None;
                        per_cpu[i] += cpu;
                        self.tracer.mark(TraceEvent::StageRestart {
                            stage: "ingest".into(),
                            chunk: ci as u64,
                        });
                    }
                }
                if self.tracer.enabled() {
                    self.tracer.mark(TraceEvent::StageDequeue {
                        stage: "transfer".into(),
                        chunk: ci as u64,
                        wait,
                    });
                }
            }
            for &i in &alive_idx {
                let agent = &mut self.replicas[i].agent;
                agent.finish_assembly(epoch)?;
                per_cpu[i] += agent.ingest_drbd(msgs.clone());
            }
            let ingest_one = per_cpu[first_alive];
            // Shard encode moved to a background stage: the marker keeps the
            // fan-out observable while Transfer + BackupIngest + Ack tile
            // the ack delay.
            self.tracer.mark(TraceEvent::ShardCommit {
                shards: self.codec.n(),
                pages: n_pages,
                frag_bytes,
            });
            self.tracer.span(
                TraceEvent::Transfer {
                    bytes: meta_bytes + frag_bytes + wire.bytes,
                },
                t_send + link,
            );
            self.tracer
                .span(TraceEvent::BackupIngest { probes: 0 }, ingest_one);
            self.tracer.span(TraceEvent::Ack, link);
            (
                t_send + link + ingest_one + link,
                per_cpu.iter().sum::<Nanos>(),
            )
        } else {
            let mut batches: Vec<FragmentBatch> = self
                .replicas
                .iter()
                .map(|r| {
                    if r.alive {
                        Vec::with_capacity(pages.len())
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            for (pid, vpn, data) in &pages {
                let frags = self.codec.encode(data);
                for (i, frag) in frags.iter().enumerate() {
                    if !self.replicas[i].alive {
                        continue;
                    }
                    let mut b = [0u8; PAGE_SIZE];
                    b[..frag.len()].copy_from_slice(frag);
                    batches[i].push((*pid, *vpn, std::rc::Rc::new(b)));
                }
            }
            let shard_cpu = n_pages * primary.costs.shard_encode_per_page;

            let mut total_cpu: Nanos = 0;
            let mut ingest_one: Nanos = 0;
            for (i, batch) in batches.into_iter().enumerate() {
                if !self.replicas[i].alive {
                    continue;
                }
                let agent = &mut self.replicas[i].agent;
                let mut cpu = agent.begin_assembly(img.clone(), n_pages);
                cpu += agent.ingest_chunk(epoch, batch, Vec::new())?;
                agent.finish_assembly(epoch)?;
                cpu += agent.ingest_drbd(msgs.clone());
                total_cpu += cpu;
                if ingest_one == 0 {
                    ingest_one = cpu;
                }
            }

            let transfer = self.transfer_cost(
                primary,
                meta_bytes + frag_bytes + wire.bytes,
                chunks + drbd_msgs,
            );
            self.tracer.span(
                TraceEvent::ShardCommit {
                    shards: self.codec.n(),
                    pages: n_pages,
                    frag_bytes,
                },
                shard_cpu,
            );
            self.tracer.span(
                TraceEvent::Transfer {
                    bytes: meta_bytes + frag_bytes + wire.bytes,
                },
                transfer,
            );
            self.tracer
                .span(TraceEvent::BackupIngest { probes: 0 }, ingest_one);
            self.tracer.span(TraceEvent::Ack, link);
            (shard_cpu + transfer + ingest_one + link, total_cpu)
        };
        if self.opts.pipeline {
            self.pipe_backlog = ack_delay;
        }

        Ok(CheckpointOutcome {
            stop_time,
            state_bytes: meta_bytes + frag_bytes + wire.bytes,
            dirty_pages,
            ack_delay,
            backup_cpu: total_cpu,
        })
    }

    fn pipeline_advance(&mut self, elapsed: Nanos) {
        self.pipe_backlog = self.pipe_backlog.saturating_sub(elapsed);
    }

    fn commit(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos> {
        self.log_store.retain(|&e, _| e > epoch);
        let mut cpu: Nanos = 0;
        let mut marked = false;
        for i in 0..self.replicas.len() {
            if !self.replicas[i].alive {
                continue;
            }
            let c = if i == 0 {
                self.replicas[i].agent.commit(epoch, &mut backup.vfs.disk)?
            } else {
                let (agent, disk) = {
                    let r = &mut self.replicas[i];
                    (&mut r.agent, &mut r.disk)
                };
                agent.commit(epoch, disk)?
            };
            cpu += c;
            if !marked && self.tracer.enabled() {
                let (probes, disk_pages) = self.replicas[i].agent.last_commit_stats();
                self.tracer
                    .mark(TraceEvent::BackupCommit { probes, disk_pages });
                marked = true;
            }
        }
        // Track what the active repair's base image now misses.
        let committed: Vec<u64> = self
            .epoch_keys
            .range(..=epoch)
            .map(|(&e, _)| e)
            .collect();
        for e in committed {
            if let Some(keys) = self.epoch_keys.remove(&e) {
                if self.repair.is_some() {
                    self.redirty.extend(keys);
                }
            }
        }
        Ok(cpu)
    }

    fn failover(&mut self, backup: &mut Kernel) -> SimResult<(RestoredContainer, FailoverReport)> {
        let k = self.codec.k() as usize;
        for r in self.replicas.iter_mut().filter(|r| r.alive) {
            r.agent.discard_uncommitted();
        }
        let survivors = self.survivors(k)?;
        let img = self.reconstruct_committed(&survivors)?;
        let decode_cpu = if k > 1 {
            img.pages.len() as u64 * backup.costs.shard_decode_per_page
        } else {
            0
        };
        let restore_cfg = RestoreConfig {
            optimized_rto: self.opts.optimized_rto,
            block_input: true,
        };
        backup.meter.take();
        let restored = nilicon_criu::restore_container(backup, &img, &restore_cfg)?;
        backup.meter.take();

        // If the designated replica (whose disk IS the backup kernel's) is
        // dead, resync the kernel disk from a surviving replica's device.
        let mut disk_pages = 0u64;
        let mut disk_cost: Nanos = 0;
        if !self.replicas[0].alive {
            let src = survivors
                .iter()
                .copied()
                .find(|&i| i != 0)
                .or_else(|| self.alive_indices().into_iter().find(|&i| i != 0))
                .ok_or_else(|| {
                    SimError::Invalid("no surviving replica disk to resync from".into())
                })?;
            for w in self.replicas[src].disk.full_sync_writes() {
                backup.vfs.disk.apply_replicated(&w);
                disk_pages += 1;
            }
            disk_cost = disk_pages * backup.costs.restore_disk_per_page;
        }

        let c = &backup.costs;
        let rto = if self.opts.optimized_rto {
            c.tcp_rto_repair_min
        } else {
            c.tcp_rto_default
        };
        let tcp = rto.saturating_sub(restored.restore_time / 2 + c.gratuitous_arp);
        let report = FailoverReport {
            restore: restored.restore_time,
            arp: c.gratuitous_arp,
            tcp,
            others: c.recovery_misc + decode_cpu + disk_cost,
            disk_pages_committed: disk_pages,
        };
        Ok((restored, report))
    }

    fn committed_epoch(&self) -> Option<u64> {
        self.replicas
            .iter()
            .filter(|r| r.alive)
            .filter_map(|r| r.agent.committed_epoch())
            .max()
    }

    fn supports_rearm(&self) -> bool {
        self.opts.rearm
    }

    fn rearm_prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()> {
        // Every replica-side structure restarts empty on fresh hosts.
        self.cache = InfrequentCache::new();
        for r in &mut self.replicas {
            r.agent = BackupAgent::new(self.costs.clone(), self.opts.optimize_criu);
            r.disk = BlockDevice::default();
            r.alive = true;
        }
        self.pipe_backlog = 0;
        self.drbd = DrbdPrimary::new();
        self.epoch_keys.clear();
        self.redirty.clear();
        self.repair = None;
        self.bootstrap_pids.clear();
        self.bootstrap_cpu_carry = 0;
        self.log_store.clear();
        self.log_chunks_shipped = 0;
        self.prepared = false;
        self.prepare(primary, container)
    }

    fn bootstrap_begin(
        &mut self,
        primary: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<BootstrapBegin> {
        if !self.prepared {
            return Err(SimError::Invalid("engine not prepared for bootstrap".into()));
        }
        let cfg = self.opts.dump_config();
        primary.meter.take();

        primary.freeze_cgroup(container.cgroup, cfg.freeze)?;
        let block_cost = if self.opts.plug_input_blocking {
            primary.costs.plug_block_cycle
        } else {
            primary.costs.firewall_block_cycle
        };
        primary.meter.charge(block_cost);
        primary.stack_mut(container.ns.net)?.block_input();

        let cache = if self.opts.cache_infrequent {
            Some(&mut self.cache)
        } else {
            None
        };
        let mut img = bootstrap_dump(primary, container, &cfg, cache, epoch)?;

        let _ = primary.vfs.disk.take_writes();
        let mut msgs: Vec<DrbdMsg> = primary
            .vfs
            .disk
            .full_sync_writes()
            .into_iter()
            .map(DrbdMsg::Write)
            .collect();
        msgs.push(self.drbd.barrier(epoch));

        primary.stack_mut(container.ns.net)?.unblock_input();
        primary.thaw_cgroup(container.cgroup)?;
        let stop_time = primary.meter.take();

        let deferred = std::mem::take(&mut img.deferred_vpns);
        let total_pages = deferred.len() as u64;
        let state_bytes = img.state_bytes();
        self.bootstrap_pids.clear();
        for &(pid, _) in &deferred {
            if !self.bootstrap_pids.contains(&pid) {
                self.bootstrap_pids.push(pid);
            }
        }
        self.bootstrap_cpu_carry = 0;
        for r in self.replicas.iter_mut().filter(|r| r.alive) {
            self.bootstrap_cpu_carry += r.agent.begin_assembly(img.clone(), total_pages);
            self.bootstrap_cpu_carry += r.agent.ingest_drbd(msgs.clone());
        }
        Ok(BootstrapBegin {
            stop_time,
            total_pages,
            state_bytes,
        })
    }

    fn bootstrap_step(
        &mut self,
        primary: &mut Kernel,
        epoch: u64,
        max_pages: u64,
    ) -> SimResult<BootstrapStep> {
        /// Pages per streamed message (matches the COW drain batch size).
        const COW_CHUNK: usize = 64;
        let mut pages = 0u64;
        let mut bytes = 0u64;
        let mut backup_cpu = std::mem::take(&mut self.bootstrap_cpu_carry);
        let pids = self.bootstrap_pids.clone();
        let frag_len = self.codec.frag_len() as u64;
        let alive = self.alive_indices();
        'drain: for &pid in &pids {
            loop {
                if pages >= max_pages {
                    break 'drain;
                }
                let want = ((max_pages - pages) as usize).min(COW_CHUNK);
                let chunk = primary.cow_drain_pages(pid, want)?;
                if chunk.is_empty() {
                    break;
                }
                let n = chunk.len() as u64;
                let mut batches: Vec<FragmentBatch> =
                    vec![Vec::with_capacity(chunk.len()); self.replicas.len()];
                for (vpn, data) in chunk {
                    for &i in &alive {
                        batches[i].push((pid, vpn, self.frag_boxed(&data, i)));
                    }
                }
                for (i, batch) in batches.into_iter().enumerate() {
                    if self.replicas[i].alive {
                        backup_cpu += self.replicas[i].agent.ingest_chunk(epoch, batch, Vec::new())?;
                    }
                }
                backup_cpu += n * primary.costs.shard_encode_per_page;
                pages += n;
                bytes += n * frag_len * alive.len() as u64;
            }
        }
        let mut remaining = 0u64;
        for &pid in &pids {
            primary.take_cow_faults(pid)?;
            remaining += primary.cow_pending(pid)? as u64;
        }
        primary.meter.take();
        Ok(BootstrapStep {
            pages,
            bytes,
            backup_cpu,
            remaining,
        })
    }

    fn bootstrap_finish(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos> {
        let mut cpu: Nanos = 0;
        for i in 0..self.replicas.len() {
            if !self.replicas[i].alive {
                continue;
            }
            self.replicas[i].agent.finish_assembly(epoch)?;
            if !self.replicas[i].agent.epoch_complete(epoch) {
                return Err(SimError::Invalid(format!(
                    "bootstrap epoch {epoch} sealed without its disk barrier on replica {i}"
                )));
            }
            cpu += if i == 0 {
                self.replicas[i].agent.commit(epoch, &mut backup.vfs.disk)?
            } else {
                let r = &mut self.replicas[i];
                r.agent.commit(epoch, &mut r.disk)?
            };
        }
        self.bootstrap_pids.clear();
        Ok(cpu)
    }

    fn bootstrap_abort(&mut self, primary: &mut Kernel, _container: &Container) -> SimResult<()> {
        let pids = std::mem::take(&mut self.bootstrap_pids);
        for &pid in &pids {
            while !primary.cow_drain_pages(pid, 64)?.is_empty() {}
            primary.take_cow_faults(pid)?;
        }
        primary.meter.take();
        self.bootstrap_cpu_carry = 0;
        for r in self.replicas.iter_mut().filter(|r| r.alive) {
            let _ = r.agent.discard_uncommitted();
        }
        Ok(())
    }

    fn supports_placement(&self) -> bool {
        self.opts.backups > 1
    }

    fn placement(&self) -> (u32, u32) {
        (self.codec.k(), self.codec.n())
    }

    fn replica_fault(&mut self) -> SimResult<u32> {
        self.replicas[0].alive = false;
        Ok(self.alive_replicas())
    }

    fn repair_begin(&mut self, _epoch: u64) -> SimResult<RepairBegin> {
        if self.repair.is_some() {
            return Err(SimError::Invalid("a repair is already active".into()));
        }
        let target = self
            .replicas
            .iter()
            .position(|r| !r.alive)
            .ok_or_else(|| SimError::Invalid("repair_begin with no dead replica".into()))?;
        let k = self.codec.k() as usize;
        let survivors = self.survivors(k)?;
        let base = self.reconstruct_committed(&survivors)?;
        let base_epoch = base.epoch;
        let mut meta = base.clone();
        let base_pages = std::mem::take(&mut meta.pages);
        let total_pages = base_pages.len() as u64;
        let state_bytes = meta.state_bytes();

        // Fresh agent on the replacement host; the base image's metadata
        // opens its assembly (sealed by `repair_finish`). Epochs committed
        // while the base streams accumulate in `redirty` and are topped up
        // at finish — the target is excluded from epoch traffic until then.
        self.replicas[target].agent = BackupAgent::new(self.costs.clone(), self.opts.optimize_criu);
        self.replicas[target].disk = BlockDevice::default();
        let cpu_carry = self.replicas[target]
            .agent
            .begin_assembly(meta, total_pages);
        self.redirty.clear();
        self.repair = Some(ActiveRepair {
            target,
            base_pages,
            cursor: 0,
            base_epoch,
            cpu_carry,
        });
        Ok(RepairBegin {
            total_pages,
            state_bytes,
        })
    }

    fn repair_step(&mut self, _epoch: u64, max_pages: u64) -> SimResult<BootstrapStep> {
        let Some(mut rep) = self.repair.take() else {
            return Err(SimError::Invalid("repair_step with no active repair".into()));
        };
        let take = ((rep.base_pages.len() - rep.cursor) as u64).min(max_pages) as usize;
        let mut batch = Vec::with_capacity(take);
        for p in rep.cursor..rep.cursor + take {
            let (pid, vpn, ref data) = rep.base_pages[p];
            let frag = self.frag_boxed(data, rep.target);
            batch.push((pid, vpn, frag));
        }
        rep.cursor += take;
        let k = self.codec.k() as u64;
        let frag_len = self.codec.frag_len() as u64;
        let pages = take as u64;
        // The replacement host reads k committed fragments per page from
        // the surviving peers (the RS repair read amplification), decodes,
        // and re-encodes its own fragment.
        let bytes = pages * frag_len * k;
        let mut backup_cpu = std::mem::take(&mut rep.cpu_carry)
            + pages * (self.costs.shard_decode_per_page + self.costs.shard_encode_per_page);
        backup_cpu += self.replicas[rep.target]
            .agent
            .ingest_chunk(rep.base_epoch, batch, Vec::new())?;
        let remaining = (rep.base_pages.len() - rep.cursor) as u64;
        self.repair = Some(rep);
        Ok(BootstrapStep {
            pages,
            bytes,
            backup_cpu,
            remaining,
        })
    }

    fn repair_finish(&mut self, backup: &mut Kernel, _epoch: u64) -> SimResult<Nanos> {
        let Some(rep) = self.repair.take() else {
            return Err(SimError::Invalid("repair_finish with no active repair".into()));
        };
        if rep.cursor < rep.base_pages.len() {
            self.repair = Some(rep);
            return Err(SimError::Invalid("repair base image not fully streamed".into()));
        }
        let target = rep.target;
        let k = self.codec.k() as usize;

        // Disk resync: one full-device snapshot from a surviving replica,
        // current as of the latest committed epoch, rides the target's DRBD
        // stream behind the base epoch's barrier.
        let src = self
            .alive_indices()
            .into_iter()
            .find(|&i| i != target && i != 0)
            .map(|i| self.replicas[i].disk.full_sync_writes())
            .unwrap_or_else(|| backup.vfs.disk.full_sync_writes());
        let mut msgs: Vec<DrbdMsg> = src.into_iter().map(DrbdMsg::Write).collect();
        msgs.push(DrbdMsg::Barrier(rep.base_epoch));

        let mut cpu: Nanos = 0;
        {
            let agent = &mut self.replicas[target].agent;
            cpu += agent.ingest_drbd(msgs);
            agent.finish_assembly(rep.base_epoch)?;
        }
        cpu += if target == 0 {
            self.replicas[target]
                .agent
                .commit(rep.base_epoch, &mut backup.vfs.disk)?
        } else {
            let r = &mut self.replicas[target];
            r.agent.commit(rep.base_epoch, &mut r.disk)?
        };

        // Top-up: pages committed while the base streamed, at their current
        // committed values, plus the current metadata image.
        if !self.redirty.is_empty() {
            let survivors = self.survivors(k)?;
            let current = self.reconstruct_committed(&survivors)?;
            let cur_epoch = current.epoch;
            if cur_epoch <= rep.base_epoch {
                return Err(SimError::Invalid(format!(
                    "redirty pages with no later committed epoch ({cur_epoch} <= {})",
                    rep.base_epoch
                )));
            }
            let mut meta = current.clone();
            let all_pages = std::mem::take(&mut meta.pages);
            let mut batch = Vec::new();
            for (pid, vpn, data) in &all_pages {
                if self.redirty.contains(&(*pid, *vpn)) {
                    batch.push((*pid, *vpn, self.frag_boxed(data, target)));
                }
            }
            let n = batch.len() as u64;
            cpu += n * (self.costs.shard_decode_per_page + self.costs.shard_encode_per_page);
            {
                let agent = &mut self.replicas[target].agent;
                cpu += agent.begin_assembly(meta, n);
                cpu += agent.ingest_chunk(cur_epoch, batch, Vec::new())?;
                cpu += agent.ingest_drbd(vec![DrbdMsg::Barrier(cur_epoch)]);
                agent.finish_assembly(cur_epoch)?;
            }
            cpu += if target == 0 {
                self.replicas[target]
                    .agent
                    .commit(cur_epoch, &mut backup.vfs.disk)?
            } else {
                let r = &mut self.replicas[target];
                r.agent.commit(cur_epoch, &mut r.disk)?
            };
        }
        self.redirty.clear();
        self.replicas[target].alive = true;
        Ok(cpu)
    }

    fn repair_abort(&mut self) -> SimResult<()> {
        let Some(rep) = self.repair.take() else {
            return Err(SimError::Invalid("repair_abort with no active repair".into()));
        };
        // The replacement host died with its half-regenerated store; the
        // target stays dead until a later attempt rebuilds it from scratch.
        let _ = self.replicas[rep.target].agent.discard_uncommitted();
        self.redirty.clear();
        Ok(())
    }

    fn supports_replay(&self) -> bool {
        self.opts.hybrid_replay
    }

    fn ship_log(
        &mut self,
        primary: &mut Kernel,
        epoch: u64,
        events: &[ReplayEvent],
    ) -> SimResult<LogShipOutcome> {
        if !self.opts.hybrid_replay {
            return Err(SimError::Invalid("hybrid_replay is off".into()));
        }
        if events.is_empty() {
            return Ok(LogShipOutcome::default());
        }
        let k = self.codec.k() as u64;
        let alive = self.alive_indices();
        if (alive.len() as u64) < k {
            return Err(SimError::Invalid(format!(
                "cannot ship log below quorum: {} alive, need {k}",
                alive.len()
            )));
        }
        let c = &primary.costs;
        let bytes: u64 = events.iter().map(ReplayEvent::byte_len).sum();
        // Each replica receives one fragment of ceil(bytes/k); the links
        // fan out in parallel, so the quorum (k-th) ack and the slowest
        // coincide with uniform replicas — exactly the page path's model.
        let frag_bytes = bytes.div_ceil(k);
        let per_replica_cpu = c.backup_recv(frag_bytes, 1);
        let commit_latency = c.repl_link_latency
            + c.repl_wire(frag_bytes)
            + c.repl_msg_overhead
            + per_replica_cpu
            + c.repl_link_latency;
        let link_down = self.log_link_down();
        self.log_chunks_shipped += 1;
        if link_down {
            return Ok(LogShipOutcome {
                bytes: frag_bytes * alive.len() as u64,
                chunks: 1,
                commit_latency,
                backup_cpu: 0,
            });
        }
        let log = self
            .log_store
            .entry(epoch)
            .or_insert_with(|| ReplayLog::new(epoch));
        log.events.extend_from_slice(events);
        Ok(LogShipOutcome {
            bytes: frag_bytes * alive.len() as u64,
            chunks: 1,
            commit_latency,
            backup_cpu: per_replica_cpu * alive.len() as u64,
        })
    }

    fn seal_log(&mut self, epoch: u64) -> SimResult<()> {
        if !self.opts.hybrid_replay {
            return Err(SimError::Invalid("hybrid_replay is off".into()));
        }
        if self.log_link_down() {
            return Ok(()); // the seal vanishes with the link
        }
        self.log_store
            .entry(epoch)
            .or_insert_with(|| ReplayLog::new(epoch))
            .sealed = true;
        Ok(())
    }

    fn take_replay_tail(&mut self) -> SimResult<ReplayTail> {
        if !self.opts.hybrid_replay {
            return Err(SimError::Invalid("hybrid_replay is off".into()));
        }
        let committed = self.committed_epoch();
        let store = std::mem::take(&mut self.log_store);
        let mut tail = ReplayTail::default();
        let mut expect = committed.map(|e| e + 1).unwrap_or(1);
        for (epoch, log) in store {
            if committed.is_some_and(|c| epoch <= c) {
                continue;
            }
            if epoch != expect {
                tail.dropped_partial = true;
                break;
            }
            if !log.sealed {
                tail.dropped_partial = true;
                break;
            }
            expect += 1;
            tail.logs.push(log);
        }
        Ok(tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nilicon_engine::NiLiConEngine;
    use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};

    fn placement_opts(k: u32, n: u32) -> OptimizationConfig {
        let mut opts = OptimizationConfig::nilicon();
        opts.backups = n;
        opts.quorum = k;
        opts
    }

    fn setup(k: u32, n: u32) -> (Kernel, Kernel, Container, PlacementEngine) {
        let mut primary = Kernel::default();
        let backup = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut primary, &spec).unwrap();
        let engine = PlacementEngine::new(placement_opts(k, n), primary.costs.clone()).unwrap();
        (primary, backup, c, engine)
    }

    fn writes(epoch: u64) -> Vec<(u64, u8)> {
        vec![
            (epoch % 5, epoch as u8),
            (20 + epoch, 0xB0 | epoch as u8),
            (7, epoch.wrapping_mul(13) as u8),
        ]
    }

    fn apply(p: &mut Kernel, c: &Container, epoch: u64) {
        for (page, val) in writes(epoch) {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val])
                .unwrap();
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let costs = nilicon_sim::CostModel::default();
        let mut opts = placement_opts(2, 3);
        opts.staging_buffer = false;
        assert!(PlacementEngine::new(opts, costs.clone()).is_err());
        let mut opts = placement_opts(2, 3);
        opts.delta_transfer = true;
        assert!(PlacementEngine::new(opts, costs.clone()).is_err());
        assert!(PlacementEngine::new(placement_opts(4, 3), costs.clone()).is_err());
        assert!(PlacementEngine::new(placement_opts(0, 2), costs).is_err());
    }

    #[test]
    fn epochs_commit_and_reconcile_across_placements() {
        for (k, n) in [(1u32, 2u32), (2, 3), (3, 5)] {
            let (mut p, mut b, c, mut e) = setup(k, n);
            let (tracer, ring) = Tracer::in_memory(256);
            e.set_tracer(tracer.clone());
            e.prepare(&mut p, &c).unwrap();
            for epoch in 1..=3u64 {
                apply(&mut p, &c, epoch);
                tracer.begin_epoch(epoch, 0);
                let o = e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
                tracer.reconcile(epoch, o.stop_time, o.ack_delay).unwrap();
                assert!(o.ack_delay > 0, "staged ack path");
                e.commit(&mut b, epoch).unwrap();
            }
            assert_eq!(e.committed_epoch(), Some(3), "(k={k},n={n})");
            let shard_spans = ring
                .snapshot()
                .iter()
                .filter(|r| matches!(r.kind, TraceEvent::ShardCommit { .. }))
                .count();
            assert_eq!(shard_spans, 3, "one ShardCommit span per epoch");
        }
    }

    #[test]
    fn any_k_subset_reconstructs_identical_image() {
        let (mut p, mut b, c, mut e) = setup(2, 3);
        e.prepare(&mut p, &c).unwrap();
        for epoch in 1..=4u64 {
            apply(&mut p, &c, epoch);
            e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
            e.commit(&mut b, epoch).unwrap();
        }
        let ref_img = e.reconstruct_committed(&[0, 1]).unwrap();
        assert!(!ref_img.pages.is_empty());
        for subset in [[0usize, 2], [1, 2]] {
            let img = e.reconstruct_committed(&subset).unwrap();
            assert_eq!(img.pages.len(), ref_img.pages.len());
            for (a, r) in img.pages.iter().zip(ref_img.pages.iter()) {
                assert_eq!((a.0, a.1), (r.0, r.1));
                assert_eq!(a.2, r.2, "page {:?}/{:#x} from {subset:?}", a.0, a.1);
            }
        }
    }

    #[test]
    fn placement_image_matches_single_backup_nilicon() {
        // The committed image reconstructed from shards must be
        // byte-identical to the image a plain NiLiCon warm backup holds
        // after the same writes.
        let mut opts = OptimizationConfig::nilicon();
        let mut pa = Kernel::default();
        let mut ba = Kernel::default();
        let ca =
            ContainerRuntime::create(&mut pa, &ContainerSpec::server("redis", 10, 6379)).unwrap();
        let mut ea = NiLiConEngine::new(opts, pa.costs.clone());
        ea.prepare(&mut pa, &ca).unwrap();
        for epoch in 1..=5u64 {
            apply(&mut pa, &ca, epoch);
            ea.checkpoint(&mut pa, &mut ba, &ca, epoch).unwrap();
            ea.commit(&mut ba, epoch).unwrap();
        }
        let img_a = ea.agent.materialize().unwrap();

        opts.backups = 3;
        opts.quorum = 2;
        let mut pb = Kernel::default();
        let mut bb = Kernel::default();
        let cb =
            ContainerRuntime::create(&mut pb, &ContainerSpec::server("redis", 10, 6379)).unwrap();
        let mut eb = PlacementEngine::new(opts, pb.costs.clone()).unwrap();
        eb.prepare(&mut pb, &cb).unwrap();
        for epoch in 1..=5u64 {
            apply(&mut pb, &cb, epoch);
            eb.checkpoint(&mut pb, &mut bb, &cb, epoch).unwrap();
            eb.commit(&mut bb, epoch).unwrap();
        }
        let img_b = eb.reconstruct_committed(&[1, 2]).unwrap();

        assert_eq!(img_a.pages.len(), img_b.pages.len());
        for (x, y) in img_a.pages.iter().zip(img_b.pages.iter()) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert_eq!(x.2, y.2, "page {:?}/{:#x} diverged", x.0, x.1);
        }
        assert_eq!(pa.vfs.disk.digest(), pb.vfs.disk.digest());
        assert_eq!(ba.vfs.disk.digest(), bb.vfs.disk.digest());
    }

    #[test]
    fn coded_storage_beats_mirroring() {
        let run = |k: u32, n: u32| {
            let (mut p, mut b, c, mut e) = setup(k, n);
            e.prepare(&mut p, &c).unwrap();
            for epoch in 1..=3u64 {
                apply(&mut p, &c, epoch);
                e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
                e.commit(&mut b, epoch).unwrap();
            }
            let stored = e.stored_fragment_bytes();
            let unreplicated = e.reconstruct_committed(&(0..k as usize).collect::<Vec<_>>())
                .unwrap()
                .pages
                .len() as u64
                * PAGE_SIZE as u64;
            (stored, unreplicated)
        };
        let (mirr, base) = run(1, 2);
        assert_eq!(mirr, 2 * base, "(1,2) is exactly 2x mirroring");
        let (coded, base23) = run(2, 3);
        assert_eq!(base23, base);
        assert!(
            coded * 2 == 3 * base,
            "(2,3) stores exactly 1.5x: {coded} vs base {base}"
        );
        assert!(coded < mirr, "coded placement beats mirroring");
    }

    #[test]
    fn degraded_commit_and_failover_from_k_survivors() {
        let (mut p, mut b, c, mut e) = setup(2, 3);
        e.prepare(&mut p, &c).unwrap();
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"committed")
            .unwrap();
        for epoch in 1..=2u64 {
            apply(&mut p, &c, epoch);
            e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
            e.commit(&mut b, epoch).unwrap();
        }
        // The designated replica dies; the quorum (2 of 3) holds.
        assert_eq!(e.replica_fault().unwrap(), 2);
        // Epochs keep committing on the survivors.
        apply(&mut p, &c, 3);
        let mut dead_backup = Kernel::default(); // fresh replacement host
        e.checkpoint(&mut p, &mut dead_backup, &c, 3).unwrap();
        e.commit(&mut dead_backup, 3).unwrap();
        assert_eq!(e.committed_epoch(), Some(3));

        // Primary fault in degraded mode: failover onto the fresh host,
        // reconstructed from the two survivors, disk resynced.
        let (restored, report) = e.failover(&mut dead_backup).unwrap();
        restored.finish(&mut dead_backup).unwrap();
        let mut buf = [0u8; 9];
        dead_backup
            .mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"committed");
        assert_eq!(
            dead_backup.vfs.disk.digest(),
            p.vfs.disk.digest(),
            "disk resynced from a surviving replica"
        );
        assert!(report.others > 0);
    }

    #[test]
    fn below_quorum_checkpoint_fails() {
        let (mut p, mut b, c, mut e) = setup(2, 3);
        e.prepare(&mut p, &c).unwrap();
        apply(&mut p, &c, 1);
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        e.replica_fault().unwrap();
        e.fail_replica(1).unwrap();
        apply(&mut p, &c, 2);
        assert!(
            e.checkpoint(&mut p, &mut b, &c, 2).is_err(),
            "1 alive < k=2: epochs cannot ack"
        );
    }

    #[test]
    fn coded_repair_restores_full_redundancy() {
        let (mut p, mut b, c, mut e) = setup(2, 3);
        e.prepare(&mut p, &c).unwrap();
        for epoch in 1..=3u64 {
            apply(&mut p, &c, epoch);
            e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
            e.commit(&mut b, epoch).unwrap();
        }
        let before = e.reconstruct_committed(&[1, 2]).unwrap();
        assert_eq!(e.replica_fault().unwrap(), 2);

        // Repair streams the base in bounded chunks while epochs keep
        // committing (re-dirtying pages mid-repair).
        let mut fresh = Kernel::default();
        let begin = e.repair_begin(3).unwrap();
        assert!(begin.total_pages > 0);
        let mut streamed = 0u64;
        let mut steps = 0;
        loop {
            apply(&mut p, &c, 4 + steps);
            e.checkpoint(&mut p, &mut fresh, &c, 4 + steps).unwrap();
            e.commit(&mut fresh, 4 + steps).unwrap();
            let s = e.repair_step(4 + steps, 2).unwrap();
            streamed += s.pages;
            steps += 1;
            if s.remaining == 0 {
                break;
            }
            assert!(steps < 10_000, "repair must terminate");
        }
        assert!(steps > 1, "base streamed across multiple bounded steps");
        assert_eq!(streamed, begin.total_pages);
        e.repair_finish(&mut fresh, 4 + steps).unwrap();
        assert_eq!(e.alive_replicas(), 3, "full redundancy restored");

        // The repaired replica participates in reconstruction: any pair
        // including replica 0 yields the same image as the survivors.
        let via_repaired = e.reconstruct_committed(&[0, 2]).unwrap();
        let via_survivors = e.reconstruct_committed(&[1, 2]).unwrap();
        assert_eq!(via_repaired.pages.len(), via_survivors.pages.len());
        for (x, y) in via_repaired.pages.iter().zip(via_survivors.pages.iter()) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert_eq!(x.2, y.2, "repaired fragment diverged at {:?}/{:#x}", x.0, x.1);
        }
        assert!(
            via_repaired.pages.len() >= before.pages.len(),
            "mid-repair commits are included"
        );
        // And the repaired host's disk matches the primary's.
        assert_eq!(fresh.vfs.disk.digest(), p.vfs.disk.digest());

        // Incremental epochs now fan out to all three replicas again.
        apply(&mut p, &c, 100);
        e.checkpoint(&mut p, &mut fresh, &c, 100).unwrap();
        e.commit(&mut fresh, 100).unwrap();
        assert_eq!(e.committed_epoch(), Some(100));
    }

    #[test]
    fn repair_abort_leaves_survivors_serving() {
        let (mut p, mut b, c, mut e) = setup(2, 3);
        e.prepare(&mut p, &c).unwrap();
        for epoch in 1..=2u64 {
            apply(&mut p, &c, epoch);
            e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
            e.commit(&mut b, epoch).unwrap();
        }
        e.replica_fault().unwrap();
        let mut fresh = Kernel::default();
        e.repair_begin(2).unwrap();
        e.repair_step(2, 4).unwrap();
        // The replacement dies mid-repair.
        e.repair_abort().unwrap();
        assert_eq!(e.alive_replicas(), 2);
        // Epochs continue on the survivors; a second attempt succeeds.
        apply(&mut p, &c, 3);
        e.checkpoint(&mut p, &mut fresh, &c, 3).unwrap();
        e.commit(&mut fresh, 3).unwrap();
        e.repair_begin(3).unwrap();
        loop {
            if e.repair_step(3, 64).unwrap().remaining == 0 {
                break;
            }
        }
        e.repair_finish(&mut fresh, 3).unwrap();
        assert_eq!(e.alive_replicas(), 3);
    }

    #[test]
    fn migration_degenerate_k1_n1_streams_and_fails_over() {
        // Planned live migration = the (1,1) placement driven through the
        // bootstrap flow to a deliberate failover on the destination.
        let mut opts = placement_opts(1, 1);
        opts.rearm = true;
        let mut source = Kernel::default();
        let mut dest = Kernel::default();
        let c =
            ContainerRuntime::create(&mut source, &ContainerSpec::server("web", 10, 80)).unwrap();
        let mut e = PlacementEngine::new(opts, source.costs.clone()).unwrap();
        e.prepare(&mut source, &c).unwrap();
        source
            .mem_write(c.init_pid(), MemLayout::heap(0), b"precious")
            .unwrap();
        for page in 1..120u64 {
            source
                .mem_write(c.init_pid(), MemLayout::heap_page(page), &[page as u8 | 1])
                .unwrap();
        }
        let begin = e.bootstrap_begin(&mut source, &c, 1).unwrap();
        assert!(begin.total_pages > 0);
        // The source keeps serving (and writing) while the image streams.
        source
            .mem_write(c.init_pid(), MemLayout::heap_page(3), &[0xEE])
            .unwrap();
        let mut steps = 0;
        loop {
            if e.bootstrap_step(&mut source, 1, 64).unwrap().remaining == 0 {
                break;
            }
            steps += 1;
            assert!(steps < 1000);
        }
        e.bootstrap_finish(&mut dest, 1).unwrap();
        let (restored, _) = e.failover(&mut dest).unwrap();
        restored.finish(&mut dest).unwrap();
        let mut buf = [0u8; 8];
        dest.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"precious");
        // COW preserved the pre-write content of the page mutated
        // mid-stream: the migrated image is the checkpoint-time state.
        let mut pg = [0u8; 1];
        dest.mem_read(
            restored.container.init_pid(),
            MemLayout::heap_page(3),
            &mut pg,
        )
        .unwrap();
        assert_eq!(pg[0], 3 | 1, "pre-migration content, not the late write");
    }

    #[test]
    fn log_chunks_ride_the_coded_fanout() {
        let mut opts = placement_opts(2, 3);
        opts.hybrid_replay = true;
        let mut p = Kernel::default();
        let mut b = Kernel::default();
        let c =
            ContainerRuntime::create(&mut p, &ContainerSpec::server("redis", 10, 6379)).unwrap();
        let mut e = PlacementEngine::new(opts, p.costs.clone()).unwrap();
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();

        let ev = ReplayEvent::Request {
            pid: c.init_pid(),
            at: 5,
            payload: vec![0xAA; 300],
            response_hash: 7,
            response_len: 4,
        };
        let o = e.ship_log(&mut p, 2, std::slice::from_ref(&ev)).unwrap();
        // n fragments of ceil(bytes/k): wire total is 1.5x the raw chunk,
        // but the parallel quorum commit still lands at link scale.
        let raw = ev.byte_len();
        assert_eq!(o.bytes, raw.div_ceil(2) * 3);
        assert!(o.commit_latency < nilicon_sim::time::MILLISECOND);
        e.seal_log(2).unwrap();
        let tail = e.take_replay_tail().unwrap();
        assert!(!tail.dropped_partial);
        assert_eq!(tail.logs.len(), 1);
        assert_eq!(tail.events(), 1);
    }

    #[test]
    fn placement_log_loss_yields_partial_tail() {
        let mut opts = placement_opts(2, 3);
        opts.hybrid_replay = true;
        let mut p = Kernel::default();
        let mut b = Kernel::default();
        let c =
            ContainerRuntime::create(&mut p, &ContainerSpec::server("redis", 10, 6379)).unwrap();
        let mut e = PlacementEngine::new(opts, p.costs.clone()).unwrap();
        e.prepare(&mut p, &c).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        e.log_fail_after_chunks = Some(1); // first chunk lands, rest lost
        let ev = ReplayEvent::Step {
            pid: c.init_pid(),
            at: 1,
            done: true,
        };
        e.ship_log(&mut p, 2, std::slice::from_ref(&ev)).unwrap();
        e.ship_log(&mut p, 2, &[ev]).unwrap(); // lost in flight
        e.seal_log(2).unwrap(); // seal lost too
        let tail = e.take_replay_tail().unwrap();
        assert!(tail.dropped_partial, "unsealed epoch-2 log is unusable");
        assert!(tail.logs.is_empty());
    }
}
