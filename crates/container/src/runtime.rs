//! Container creation and lifecycle (the runC-equivalent).

use crate::layout::MemLayout;
use crate::spec::ContainerSpec;
use nilicon_sim::fs::InodeKind;
use nilicon_sim::ids::{CgroupId, Ino, MountId, Pid, SockId};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::Perms;
use nilicon_sim::net::InputMode;
use nilicon_sim::ns::NsSet;
use nilicon_sim::proc::ThreadRunState;
use nilicon_sim::{SimResult, PAGE_SIZE};

/// A running container.
#[derive(Debug, Clone)]
pub struct Container {
    /// The spec it was created from.
    pub spec: ContainerSpec,
    /// Its cgroup (freezer + cpuacct).
    pub cgroup: CgroupId,
    /// Its namespace set.
    pub ns: NsSet,
    /// Worker process pids (process 0 is the leader/init).
    pub workers: Vec<Pid>,
    /// The keep-alive process (§IV: wakes every 30 ms, executes ~1000
    /// instructions so `cpuacct` advances even when the app is idle).
    pub keepalive: Pid,
    /// Listening socket, if the spec requested one.
    pub listener: Option<SockId>,
    /// Mount ids created for the rootfs.
    pub mounts: Vec<MountId>,
    /// Inos of the mapped "shared libraries".
    pub lib_inos: Vec<Ino>,
}

impl Container {
    /// The leader (init) process.
    pub fn init_pid(&self) -> Pid {
        self.workers[0]
    }

    /// All pids including the keep-alive.
    pub fn all_pids(&self) -> Vec<Pid> {
        let mut v = self.workers.clone();
        v.push(self.keepalive);
        v
    }
}

/// Creates containers on a kernel.
#[derive(Debug, Default)]
pub struct ContainerRuntime;

impl ContainerRuntime {
    /// Create a container per `spec`: namespaces, cgroup, rootfs mounts,
    /// device files, network stack, worker processes with full VMA layouts,
    /// keep-alive process, and (for servers) a listening socket.
    ///
    /// The returned container is *not yet routed* — callers register
    /// `spec.addr → (host, ns.net)` with their [`nilicon_sim::cluster::Cluster`].
    pub fn create(kernel: &mut Kernel, spec: &ContainerSpec) -> SimResult<Container> {
        let cgroup = kernel.cgroups.create(&format!("/docker/{}", spec.name));
        let ns = kernel.namespaces.create_set(&spec.hostname);
        kernel.create_stack(ns.net, spec.addr, InputMode::Buffer);

        // Rootfs mounts (the usual Docker set).
        let mounts = vec![
            kernel.mount("overlay", "/", "overlay"),
            kernel.mount("proc", "/proc", "proc"),
            kernel.mount("sysfs", "/sys", "sysfs"),
            kernel.mount("tmpfs", "/dev", "tmpfs"),
            kernel.mount("tmpfs", "/tmp", "tmpfs"),
        ];
        // Device files.
        for dev in ["null", "zero", "urandom", "tty"] {
            let path = format!("/containers/{}/dev/{dev}", spec.name);
            kernel.mknod(&path, 0)?;
        }
        // The executable and shared libraries live in the image.
        let exe_path = format!("/containers/{}{}", spec.name, spec.exe);
        let exe_ino = kernel.vfs.create(&exe_path, InodeKind::Regular, 0)?;
        let mut lib_inos = Vec::with_capacity(spec.mapped_files);
        for i in 0..spec.mapped_files {
            let path = format!("/containers/{}/lib/lib{i}.so", spec.name);
            lib_inos.push(kernel.vfs.create(&path, InodeKind::Regular, 0)?);
        }

        // Worker processes.
        let mut workers = Vec::with_capacity(spec.processes);
        for p in 0..spec.processes {
            let ppid = workers.first().copied().unwrap_or(Pid(1));
            let pid = kernel.spawn_process(ppid, cgroup, ns.net, &spec.exe);
            Self::build_address_space(kernel, pid, spec, exe_ino, &lib_inos)?;
            // Threads beyond the leader.
            for _ in 1..spec.threads_per_process {
                kernel.spawn_thread(pid)?;
            }
            // Mark the configured number of threads as blocked in syscalls.
            let proc = kernel.proc_mut(pid)?;
            for t in proc.threads.iter_mut().take(spec.threads_in_syscall) {
                t.run_state = ThreadRunState::Syscall;
            }
            let _ = p;
            workers.push(pid);
        }

        // Keep-alive process (§IV): trivial address space.
        let keepalive = kernel.spawn_process(workers[0], cgroup, ns.net, "/bin/keepalive");
        kernel.mmap_anon(keepalive, MemLayout::HEAP_BASE, PAGE_SIZE as u64, true)?;

        // Listener.
        let listener = match spec.listen_port {
            Some(port) => {
                let sid = kernel.stack_mut(ns.net)?.socket();
                kernel.stack_mut(ns.net)?.bind(sid, port)?;
                kernel.stack_mut(ns.net)?.listen(sid)?;
                // The listener fd belongs to the leader.
                kernel
                    .proc_mut(workers[0])?
                    .install_fd(nilicon_sim::proc::FdEntry::Socket(sid));
                Some(sid)
            }
            None => None,
        };

        Ok(Container {
            spec: spec.clone(),
            cgroup,
            ns,
            workers,
            keepalive,
            listener,
            mounts,
            lib_inos,
        })
    }

    fn build_address_space(
        kernel: &mut Kernel,
        pid: Pid,
        spec: &ContainerSpec,
        exe_ino: Ino,
        lib_inos: &[Ino],
    ) -> SimResult<()> {
        let ps = PAGE_SIZE as u64;
        // Text.
        kernel.mmap_file(
            pid,
            MemLayout::TEXT_BASE,
            MemLayout::TEXT_PAGES * ps,
            exe_ino,
            Perms::RX,
        )?;
        // Libraries.
        for (i, &ino) in lib_inos.iter().enumerate() {
            kernel.mmap_file(
                pid,
                MemLayout::lib(i as u64),
                MemLayout::LIB_PAGES * ps,
                ino,
                Perms::RX,
            )?;
        }
        // Heap.
        kernel.mmap_anon(pid, MemLayout::HEAP_BASE, spec.heap_pages * ps, true)?;
        // Stacks, one per thread.
        for t in 0..spec.threads_per_process as u64 {
            kernel.mmap_anon(pid, MemLayout::stack(t), MemLayout::STACK_PAGES * ps, false)?;
        }
        Ok(())
    }

    /// Tear a container down: kill processes, drop the stack, unmount.
    pub fn destroy(kernel: &mut Kernel, container: &Container) -> SimResult<()> {
        for pid in container.all_pids() {
            let _ = kernel.kill_process(pid);
        }
        kernel.drop_stack(container.ns.net);
        for &m in &container.mounts {
            let _ = kernel.umount(m);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::ftrace::StateComponent;

    #[test]
    fn create_server_container() {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();

        assert_eq!(c.workers.len(), 1);
        assert!(c.listener.is_some());
        assert_eq!(k.pids_in_cgroup(c.cgroup).len(), 2, "worker + keepalive");
        let mm = k.mm(c.init_pid()).unwrap();
        // text + libs + heap + stacks
        assert_eq!(
            mm.vma_count(),
            1 + spec.mapped_files + 1 + spec.threads_per_process
        );
        assert_eq!(mm.mapped_file_count(), 1 + spec.mapped_files);
        assert_eq!(k.proc(c.init_pid()).unwrap().thread_count(), 4);
        // The listener answers SYNs.
        let stats = k.stack(c.ns.net).unwrap().queue_stats();
        assert_eq!(stats.listeners, 1);
    }

    #[test]
    fn create_multiprocess_container() {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("lighttpd", 10, 80);
        spec.processes = 4;
        spec.threads_per_process = 1;
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        assert_eq!(c.workers.len(), 4);
        // Each worker has its own address space.
        let mms: std::collections::HashSet<_> =
            c.workers.iter().map(|&p| k.proc(p).unwrap().mm).collect();
        assert_eq!(mms.len(), 4);
    }

    #[test]
    fn threads_in_syscall_marked() {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("node", 10, 3000); // 2 in syscall
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        let p = k.proc(c.init_pid()).unwrap();
        let n = p
            .threads
            .iter()
            .filter(|t| t.run_state == ThreadRunState::Syscall)
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn creation_fires_ftrace_hooks() {
        let mut k = Kernel::default();
        k.ftrace.drain_signals();
        let spec = ContainerSpec::batch("swaptions", 11);
        ContainerRuntime::create(&mut k, &spec).unwrap();
        let sigs = k.ftrace.drain_signals();
        assert!(sigs.contains(&StateComponent::Mounts));
        assert!(sigs.contains(&StateComponent::DeviceFiles));
        assert!(sigs.contains(&StateComponent::MappedFiles));
    }

    #[test]
    fn destroy_cleans_up() {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("djcms", 10, 8000);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        ContainerRuntime::destroy(&mut k, &c).unwrap();
        assert!(k.pids_in_cgroup(c.cgroup).is_empty());
        assert!(k.stack(c.ns.net).is_err());
    }

    #[test]
    fn keepalive_has_minimal_footprint() {
        let mut k = Kernel::default();
        let spec = ContainerSpec::batch("streamcluster", 11);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        assert_eq!(k.mm(c.keepalive).unwrap().vma_count(), 1);
    }
}
