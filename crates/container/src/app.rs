//! The [`Application`] trait: what runs inside a container.
//!
//! Workloads implement this trait; the replication runtimes (`nilicon`,
//! `nilicon-mc`) and the unreplicated baseline driver host it. Applications
//! interact with the world only through [`GuestCtx`] — reads and writes go to
//! *simulated* memory, files, and sockets, so everything an application does
//! is visible to (and recoverable by) the checkpointing machinery. An
//! application that cheats and keeps durable state solely in Rust structs
//! will fail the §VII-A validation tests after a failover.

use crate::layout::MemLayout;
use nilicon_sim::ids::{Fd, Pid};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimResult, PAGE_SIZE};

/// Outcome of handling one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Response payload to send back to the client.
    pub response: Vec<u8>,
}

/// Outcome of one batch step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// True when the batch workload has completed.
    pub done: bool,
}

/// Guest execution context: the syscall surface scoped to one process.
pub struct GuestCtx<'k> {
    /// The kernel this container runs on.
    pub kernel: &'k mut Kernel,
    /// The process whose context the application code runs in.
    pub pid: Pid,
    /// Virtual time at dispatch.
    pub now: Nanos,
}

impl<'k> GuestCtx<'k> {
    /// Construct a context.
    pub fn new(kernel: &'k mut Kernel, pid: Pid, now: Nanos) -> Self {
        GuestCtx { kernel, pid, now }
    }

    /// Charge pure computation time (the application's own CPU work, e.g.
    /// the PHP watermarking loop in the Lighttpd benchmark).
    pub fn cpu(&mut self, ns: Nanos) {
        self.kernel.meter.charge(ns);
    }

    /// Write to the process heap at byte offset `off`.
    pub fn heap_write(&mut self, off: u64, data: &[u8]) -> SimResult<()> {
        self.kernel
            .mem_write(self.pid, MemLayout::heap(off), data)?;
        Ok(())
    }

    /// Read from the process heap at byte offset `off`.
    pub fn heap_read(&mut self, off: u64, buf: &mut [u8]) -> SimResult<()> {
        self.kernel.mem_read(self.pid, MemLayout::heap(off), buf)
    }

    /// Dirty a whole heap page (scratch writes whose content is irrelevant —
    /// one canary byte is written so restores remain verifiable).
    pub fn heap_touch_page(&mut self, page: u64, canary: u8) -> SimResult<()> {
        self.kernel
            .mem_write(self.pid, MemLayout::heap_page(page), &[canary])?;
        Ok(())
    }

    /// Write to a thread stack (stack index `i`, byte offset `off`).
    pub fn stack_write(&mut self, i: u64, off: u64, data: &[u8]) -> SimResult<()> {
        self.kernel
            .mem_write(self.pid, MemLayout::stack(i) + off, data)?;
        Ok(())
    }

    /// Read from a thread stack.
    pub fn stack_read(&mut self, i: u64, off: u64, buf: &mut [u8]) -> SimResult<()> {
        self.kernel
            .mem_read(self.pid, MemLayout::stack(i) + off, buf)
    }

    /// Open (or create) a file by path.
    pub fn open_or_create(&mut self, path: &str) -> SimResult<Fd> {
        match self.kernel.open(self.pid, path) {
            Ok(fd) => Ok(fd),
            Err(_) => self.kernel.create_file(self.pid, path, self.now),
        }
    }

    /// Positional file write.
    pub fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> SimResult<usize> {
        self.kernel.pwrite(self.pid, fd, off, data, self.now)
    }

    /// Positional file read.
    pub fn pread(&mut self, fd: Fd, off: u64, buf: &mut [u8]) -> SimResult<usize> {
        self.kernel.pread(self.pid, fd, off, buf)
    }

    /// fsync a file (reaches the replicated block device).
    pub fn fsync(&mut self, fd: Fd) -> SimResult<usize> {
        self.kernel.fsync(self.pid, fd)
    }

    /// Number of whole pages needed for `bytes`.
    pub fn pages_for(bytes: usize) -> u64 {
        (bytes as u64).div_ceil(PAGE_SIZE as u64)
    }
}

/// An application hosted in a container.
///
/// Server applications implement [`Application::handle_request`]; batch
/// applications implement [`Application::step`]. Both kinds implement
/// [`Application::recover`], which rebuilds any in-struct working state from
/// guest memory/files after a restore — the analogue of a real process whose
/// memory came back verbatim but whose host-side harness object is new.
pub trait Application {
    /// Application name (for reports).
    fn name(&self) -> &str;

    /// One-time setup: create files, seed data, arrange memory.
    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()>;

    /// Serve one request (server applications).
    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        let _ = (ctx, req);
        Ok(RequestOutcome {
            response: Vec::new(),
        })
    }

    /// Perform one unit of batch work (non-interactive applications).
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        let _ = ctx;
        Ok(StepOutcome { done: true })
    }

    /// Rebuild Rust-side working state from guest memory after a restore.
    fn recover(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        let _ = ctx;
        Ok(())
    }

    /// Whether this is a server (has a listener) or a batch application.
    fn is_server(&self) -> bool {
        true
    }
}

// ----------------------------------------------------------------------
// Request framing: 4-byte little-endian length prefix over the TCP stream.
// ----------------------------------------------------------------------

/// Frame a message for the wire.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + payload.len());
    v.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    v.extend_from_slice(payload);
    v
}

/// Try to decode one frame from `buf`; returns `(payload, bytes_consumed)`.
pub fn try_decode_frame(buf: &[u8]) -> Option<(Vec<u8>, usize)> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < 4 + len {
        return None;
    }
    Some((buf[4..4 + len].to_vec(), 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = encode_frame(b"hello");
        assert_eq!(f.len(), 9);
        let (payload, consumed) = try_decode_frame(&f).unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, 9);
    }

    #[test]
    fn partial_frames_return_none() {
        let f = encode_frame(b"abcdef");
        assert!(try_decode_frame(&f[..3]).is_none(), "short header");
        assert!(try_decode_frame(&f[..7]).is_none(), "short payload");
        assert!(try_decode_frame(&f).is_some());
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = encode_frame(b"one");
        buf.extend_from_slice(&encode_frame(b"two"));
        let (p1, c1) = try_decode_frame(&buf).unwrap();
        assert_eq!(p1, b"one");
        let (p2, c2) = try_decode_frame(&buf[c1..]).unwrap();
        assert_eq!(p2, b"two");
        assert_eq!(c1 + c2, buf.len());
    }

    #[test]
    fn empty_frame() {
        let f = encode_frame(b"");
        let (p, c) = try_decode_frame(&f).unwrap();
        assert!(p.is_empty());
        assert_eq!(c, 4);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(GuestCtx::pages_for(0), 0);
        assert_eq!(GuestCtx::pages_for(1), 1);
        assert_eq!(GuestCtx::pages_for(4096), 1);
        assert_eq!(GuestCtx::pages_for(4097), 2);
    }
}
