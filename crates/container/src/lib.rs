//! # nilicon-container — a runC-like container runtime over `nilicon-sim`
//!
//! Builds containers the way the paper's testbed does (§VI: runC 1.0.1 under
//! Docker): a full namespace set, a cgroup with `cpuacct` and freezer, rootfs
//! mounts, device files, a network namespace attached to the virtual bridge,
//! worker processes with realistic VMA layouts (executable + shared-library
//! file mappings + heap + stacks), and the keep-alive process NiLiCon's
//! failure detector requires (§IV).
//!
//! It also defines the [`Application`] trait that workloads implement and the
//! replication runtimes drive — the seam between "what runs in the container"
//! and "how the container is replicated".

#![warn(missing_docs)]

mod app;
mod layout;
mod runtime;
mod spec;

pub use app::{encode_frame, try_decode_frame, Application, GuestCtx, RequestOutcome, StepOutcome};
pub use layout::MemLayout;
pub use runtime::{Container, ContainerRuntime};
pub use spec::ContainerSpec;
