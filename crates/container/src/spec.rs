//! Container specifications.

use serde::{Deserialize, Serialize};

/// Everything needed to create a container (an OCI-spec-flavored subset).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// Container name (cgroup path component).
    pub name: String,
    /// UTS hostname.
    pub hostname: String,
    /// Network address on the virtual bridge.
    pub addr: u32,
    /// Executable path inside the rootfs.
    pub exe: String,
    /// Number of worker processes (e.g. lighttpd: 1-8, §VII-C).
    pub processes: usize,
    /// Threads per worker process (e.g. streamcluster: 1-32, §VII-C).
    pub threads_per_process: usize,
    /// Shared-library file mappings per process (drives §V cause (1):
    /// per-mapped-file `stat` costs).
    pub mapped_files: usize,
    /// Heap VMA capacity in pages per process.
    pub heap_pages: u64,
    /// TCP port the application listens on, if it is a server.
    pub listen_port: Option<u16>,
    /// Of each process's threads, how many are typically blocked in a
    /// system call when the freezer hits (affects freeze latency, §V-A).
    pub threads_in_syscall: usize,
}

impl ContainerSpec {
    /// A small default server container.
    pub fn server(name: &str, addr: u32, port: u16) -> Self {
        ContainerSpec {
            name: name.to_string(),
            hostname: name.to_string(),
            addr,
            exe: format!("/usr/bin/{name}"),
            processes: 1,
            threads_per_process: 4,
            mapped_files: 24,
            heap_pages: 4096,
            listen_port: Some(port),
            threads_in_syscall: 2,
        }
    }

    /// A batch (non-interactive) container.
    pub fn batch(name: &str, addr: u32) -> Self {
        ContainerSpec {
            name: name.to_string(),
            hostname: name.to_string(),
            addr,
            exe: format!("/usr/bin/{name}"),
            processes: 1,
            threads_per_process: 4,
            mapped_files: 12,
            heap_pages: 16384,
            listen_port: None,
            threads_in_syscall: 0,
        }
    }

    /// Total thread count across all worker processes.
    pub fn total_threads(&self) -> usize {
        self.processes * self.threads_per_process
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let s = ContainerSpec::server("redis", 10, 6379);
        assert_eq!(s.listen_port, Some(6379));
        assert_eq!(s.total_threads(), 4);
        let b = ContainerSpec::batch("streamcluster", 11);
        assert!(b.listen_port.is_none());
        assert_eq!(b.exe, "/usr/bin/streamcluster");
    }

    #[test]
    fn spec_roundtrips_serde() {
        let s = ContainerSpec::server("ssdb", 10, 8888);
        let j = serde_json::to_string(&s).unwrap();
        let back: ContainerSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(back.name, "ssdb");
        assert_eq!(back.heap_pages, s.heap_pages);
    }
}
