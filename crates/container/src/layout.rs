//! Canonical guest address-space layout.
//!
//! Every worker process gets the same deterministic layout, which keeps
//! checkpoint images comparable across runs and lets applications compute
//! their data addresses without a guest-side allocator.

use nilicon_sim::PAGE_SIZE;

/// Address-space layout constants for container processes.
#[derive(Debug, Clone, Copy)]
pub struct MemLayout;

impl MemLayout {
    /// Executable text mapping base (`r-x`, file backed).
    pub const TEXT_BASE: u64 = 0x0040_0000;
    /// Executable text size in pages.
    pub const TEXT_PAGES: u64 = 256;
    /// First shared-library mapping base (`r-x`, file backed).
    pub const LIB_BASE: u64 = 0x7f00_0000_0000;
    /// Pages per shared-library mapping.
    pub const LIB_PAGES: u64 = 64;
    /// Gap between consecutive library mappings.
    pub const LIB_STRIDE: u64 = 0x20_0000;
    /// Heap base (`rw-`, anonymous, grows via brk).
    pub const HEAP_BASE: u64 = 0x1000_0000;
    /// Stack area base; stack `i` sits at `STACK_BASE + i * STACK_STRIDE`.
    pub const STACK_BASE: u64 = 0x7ffd_0000_0000;
    /// Pages per thread stack.
    pub const STACK_PAGES: u64 = 32;
    /// Gap between consecutive stacks.
    pub const STACK_STRIDE: u64 = 0x10_0000;

    /// Address of heap byte `off`.
    #[inline]
    pub fn heap(off: u64) -> u64 {
        Self::HEAP_BASE + off
    }

    /// Address of the start of heap page `n`.
    #[inline]
    pub fn heap_page(n: u64) -> u64 {
        Self::HEAP_BASE + n * PAGE_SIZE as u64
    }

    /// Base address of library mapping `i`.
    #[inline]
    pub fn lib(i: u64) -> u64 {
        Self::LIB_BASE + i * Self::LIB_STRIDE
    }

    /// Base address of thread stack `i`.
    #[inline]
    pub fn stack(i: u64) -> u64 {
        Self::STACK_BASE + i * Self::STACK_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Text ends far below heap; heap region far below libs; libs below stacks.
        let text_end = MemLayout::TEXT_BASE + MemLayout::TEXT_PAGES * PAGE_SIZE as u64;
        assert!(text_end < MemLayout::HEAP_BASE);
        assert!(MemLayout::heap_page(1 << 20) < MemLayout::LIB_BASE);
        let last_lib_end = MemLayout::lib(255) + MemLayout::LIB_PAGES * PAGE_SIZE as u64;
        assert!(last_lib_end < MemLayout::STACK_BASE);
    }

    #[test]
    fn lib_and_stack_strides_exceed_sizes() {
        assert!(MemLayout::LIB_STRIDE > MemLayout::LIB_PAGES * PAGE_SIZE as u64);
        assert!(MemLayout::STACK_STRIDE > MemLayout::STACK_PAGES * PAGE_SIZE as u64);
    }

    #[test]
    fn helpers() {
        assert_eq!(MemLayout::heap(0), MemLayout::HEAP_BASE);
        assert_eq!(MemLayout::heap_page(2), MemLayout::HEAP_BASE + 8192);
        assert_eq!(MemLayout::lib(1) - MemLayout::lib(0), MemLayout::LIB_STRIDE);
    }
}
