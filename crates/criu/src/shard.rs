//! Systematic Reed–Solomon page sharding for k-of-n multi-backup
//! replication (the `placement` extension).
//!
//! Each 4 KiB page is striped into `k` data fragments of
//! `ceil(PAGE_SIZE / k)` bytes plus `n - k` parity fragments computed over
//! GF(2⁸), so replica `i` stores exactly fragment `i` of every page:
//!
//! * any `k` of the `n` fragments reconstruct the page byte-identically
//!   (the generator matrix is a Vandermonde matrix brought to systematic
//!   form, so every `k × k` row submatrix is invertible),
//! * per-replica storage is `ceil(PAGE_SIZE / k)` bytes per page — total
//!   memory overhead `n/k`× instead of mirroring's `n`×,
//! * `k = 1` degenerates to whole-page mirroring (`n = 2` is exactly the
//!   paper's primary + warm backup pair),
//! * because striping is *within* a page, each replica's incremental
//!   per-epoch merge stays sound: committing fragment `i` of a re-dirtied
//!   page supersedes the old fragment `i`, and parity fragments are always
//!   current (they are recomputed from the page contents at encode time,
//!   never patched incrementally).
//!
//! All scratch buffers are pooled in the codec (allocated once at
//! construction): the per-page encode/decode hot path performs no heap
//! allocation, so it cannot inherit the allocation-churn p99 outliers the
//! delta-encode path used to show (see `ShadowStore::encode`).

use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

/// GF(2⁸) log/antilog tables over the 0x11D primitive polynomial
/// (generator 2), built once per process.
fn gf_tables() -> &'static ([u8; 256], [u8; 512]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([u8; 256], [u8; 512])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11D;
            }
        }
        // Double-length antilog table: exp[a + b] is valid for any two log
        // values without a modular reduction on the hot path.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        (log, exp)
    })
}

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (log, exp) = gf_tables();
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse");
    let (log, exp) = gf_tables();
    exp[255 - log[a as usize] as usize]
}

/// `base^pow` in GF(2⁸).
fn gf_pow(base: u8, pow: u32) -> u8 {
    let mut r = 1u8;
    for _ in 0..pow {
        r = gf_mul(r, base);
    }
    r
}

/// Invert a `k × k` matrix over GF(2⁸) by Gauss–Jordan elimination.
/// Errors if the matrix is singular (cannot happen for the row subsets of a
/// systematic Vandermonde generator, but decode inputs are validated anyway).
fn gf_invert(m: &[Vec<u8>]) -> SimResult<Vec<Vec<u8>>> {
    let k = m.len();
    let mut a: Vec<Vec<u8>> = m.to_vec();
    let mut inv: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..k).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..k {
        // Pivot: any row at/below `col` with a nonzero entry.
        let pivot = (col..k)
            .find(|&r| a[r][col] != 0)
            .ok_or_else(|| SimError::Invalid("singular shard matrix".into()))?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = gf_inv(a[col][col]);
        for j in 0..k {
            a[col][j] = gf_mul(a[col][j], p);
            inv[col][j] = gf_mul(inv[col][j], p);
        }
        for row in 0..k {
            if row == col || a[row][col] == 0 {
                continue;
            }
            let f = a[row][col];
            for j in 0..k {
                let ac = gf_mul(f, a[col][j]);
                a[row][j] ^= ac;
                let ic = gf_mul(f, inv[col][j]);
                inv[row][j] ^= ic;
            }
        }
    }
    Ok(inv)
}

/// A systematic Reed–Solomon page codec for one `(k, n)` placement, with
/// pooled per-page scratch buffers (no allocation on the encode/decode hot
/// path).
pub struct ShardCodec {
    k: usize,
    n: usize,
    frag_len: usize,
    /// The systematic `n × k` generator matrix: rows `0..k` are the
    /// identity, rows `k..n` are the parity coefficients. Every `k × k`
    /// row submatrix is invertible.
    gen: Vec<Vec<u8>>,
    /// Pooled encode output: `n` fragment buffers of `frag_len` bytes.
    enc: Vec<Vec<u8>>,
    /// Pooled decode workspace: `k` data-fragment buffers.
    dec: Vec<Vec<u8>>,
}

impl std::fmt::Debug for ShardCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCodec")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("frag_len", &self.frag_len)
            .finish()
    }
}

impl ShardCodec {
    /// Build the codec for quorum `k` of `n` replicas.
    /// Requires `1 ≤ k ≤ n ≤ 128`.
    pub fn new(k: u32, n: u32) -> SimResult<Self> {
        if k == 0 || k > n || n > 128 {
            return Err(SimError::Invalid(format!(
                "invalid placement (k={k}, n={n}): need 1 <= k <= n <= 128"
            )));
        }
        let (k, n) = (k as usize, n as usize);
        let frag_len = PAGE_SIZE.div_ceil(k);
        // Vandermonde rows over distinct nonzero points x_i = 2^i, brought
        // to systematic form: G = V · (V_top)⁻¹. Row-subset invertibility
        // is inherited from the Vandermonde property.
        let vand: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let x = gf_pow(2, i as u32);
                (0..k).map(|j| gf_pow(x, j as u32)).collect()
            })
            .collect();
        let top_inv = gf_invert(&vand[..k])?;
        let gen: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        let mut acc = 0u8;
                        for (c, row) in top_inv.iter().enumerate() {
                            acc ^= gf_mul(vand[i][c], row[j]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        debug_assert!((0..k).all(|i| (0..k).all(|j| gen[i][j] == u8::from(i == j))));
        Ok(ShardCodec {
            k,
            n,
            frag_len,
            gen,
            enc: vec![vec![0u8; frag_len]; n],
            dec: vec![vec![0u8; frag_len]; k],
        })
    }

    /// Quorum size (fragments needed to reconstruct a page).
    pub fn k(&self) -> u32 {
        self.k as u32
    }

    /// Replica count (fragments produced per page).
    pub fn n(&self) -> u32 {
        self.n as u32
    }

    /// Bytes stored per replica per page: `ceil(PAGE_SIZE / k)`.
    pub fn frag_len(&self) -> usize {
        self.frag_len
    }

    /// Storage overhead factor relative to the unreplicated page:
    /// `n · frag_len / PAGE_SIZE` (≈ `n/k`; exactly `n` when `k = 1`).
    pub fn overhead(&self) -> f64 {
        (self.n * self.frag_len) as f64 / PAGE_SIZE as f64
    }

    /// Encode one page into `n` fragments (returned slice lives in the
    /// codec's pooled scratch — consume it before the next encode).
    /// Fragment `i < k` is the raw byte stripe `i` (systematic); fragments
    /// `k..n` are parity.
    pub fn encode(&mut self, page: &[u8; PAGE_SIZE]) -> &[Vec<u8>] {
        // Data stripes: stripe j covers page[j*frag_len ..], zero-padded.
        for j in 0..self.k {
            let start = j * self.frag_len;
            let end = (start + self.frag_len).min(PAGE_SIZE);
            let frag = &mut self.enc[j];
            frag[..end - start].copy_from_slice(&page[start..end]);
            frag[end - start..].fill(0);
        }
        // Parity rows.
        for i in self.k..self.n {
            let (data, parity) = self.enc.split_at_mut(self.k);
            let out = &mut parity[i - self.k];
            out.fill(0);
            for (j, stripe) in data.iter().enumerate() {
                let c = self.gen[i][j];
                if c == 0 {
                    continue;
                }
                let (log, exp) = gf_tables();
                let lc = log[c as usize] as usize;
                for (o, &s) in out.iter_mut().zip(stripe.iter()) {
                    if s != 0 {
                        *o ^= exp[lc + log[s as usize] as usize];
                    }
                }
            }
        }
        &self.enc
    }

    /// Reconstruct a page from any `k` distinct `(replica index, fragment)`
    /// pairs. Fragment lengths must equal [`ShardCodec::frag_len`].
    pub fn decode(
        &mut self,
        frags: &[(usize, &[u8])],
        out: &mut [u8; PAGE_SIZE],
    ) -> SimResult<()> {
        if frags.len() != self.k {
            return Err(SimError::Invalid(format!(
                "decode needs exactly k={} fragments, got {}",
                self.k,
                frags.len()
            )));
        }
        for &(idx, frag) in frags {
            if idx >= self.n {
                return Err(SimError::Invalid(format!(
                    "fragment index {idx} out of range (n={})",
                    self.n
                )));
            }
            if frag.len() != self.frag_len {
                return Err(SimError::Invalid(format!(
                    "fragment length {} != frag_len {}",
                    frag.len(),
                    self.frag_len
                )));
            }
        }
        let mut seen = [false; 128];
        for &(idx, _) in frags {
            if seen[idx] {
                return Err(SimError::Invalid(format!("duplicate fragment index {idx}")));
            }
            seen[idx] = true;
        }

        if frags.iter().all(|&(idx, _)| idx < self.k) {
            // All-systematic fast path: the stripes are the data.
            for &(idx, frag) in frags {
                self.dec[idx][..].copy_from_slice(frag);
            }
        } else {
            let rows: Vec<Vec<u8>> = frags.iter().map(|&(idx, _)| self.gen[idx].clone()).collect();
            let inv = gf_invert(&rows)?;
            let (log, exp) = gf_tables();
            for (inv_row, dec_row) in inv.iter().zip(self.dec.iter_mut()) {
                dec_row.fill(0);
                for (i, &(_, frag)) in frags.iter().enumerate() {
                    let c = inv_row[i];
                    if c == 0 {
                        continue;
                    }
                    let lc = log[c as usize] as usize;
                    for (o, &s) in dec_row.iter_mut().zip(frag.iter()) {
                        if s != 0 {
                            *o ^= exp[lc + log[s as usize] as usize];
                        }
                    }
                }
            }
        }
        for j in 0..self.k {
            let start = j * self.frag_len;
            let end = (start + self.frag_len).min(PAGE_SIZE);
            out[start..end].copy_from_slice(&self.dec[j][..end - start]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(seed: u8) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Box::new([0u8; PAGE_SIZE]);
        let mut x = seed as u32 | 1;
        for (i, b) in p.iter_mut().enumerate() {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *b = (x >> 16) as u8 ^ (i as u8);
        }
        p
    }

    /// Every k-subset of n fragment indices.
    fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            out.push(idx.clone());
            // Next combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] != i + n - k {
                    break;
                }
                if i == 0 {
                    return out;
                }
            }
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    #[test]
    fn gf_field_sanity() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // Commutativity + distributivity spot checks.
        assert_eq!(gf_mul(7, 9), gf_mul(9, 7));
        assert_eq!(gf_mul(3, 5 ^ 6), gf_mul(3, 5) ^ gf_mul(3, 6));
    }

    #[test]
    fn frag_len_and_overhead() {
        let c12 = ShardCodec::new(1, 2).unwrap();
        assert_eq!(c12.frag_len(), PAGE_SIZE);
        assert_eq!(c12.overhead(), 2.0, "k=1,n=2 is exactly mirroring");
        let c23 = ShardCodec::new(2, 3).unwrap();
        assert_eq!(c23.frag_len(), PAGE_SIZE / 2);
        assert_eq!(c23.overhead(), 1.5);
        let c35 = ShardCodec::new(3, 5).unwrap();
        assert_eq!(c35.frag_len(), PAGE_SIZE.div_ceil(3));
        assert!(c35.overhead() < 2.0, "coded (3,5) beats mirroring");
    }

    #[test]
    fn rejects_invalid_placements() {
        assert!(ShardCodec::new(0, 2).is_err());
        assert!(ShardCodec::new(3, 2).is_err());
        assert!(ShardCodec::new(4, 200).is_err());
        assert!(ShardCodec::new(1, 1).is_ok(), "degenerate single replica");
    }

    #[test]
    fn any_k_subset_reconstructs_byte_identically() {
        for (k, n) in [(1u32, 2u32), (2, 3), (3, 5), (1, 1), (4, 6)] {
            let mut c = ShardCodec::new(k, n).unwrap();
            for seed in [0u8, 1, 77, 255] {
                let p = page(seed);
                let frags: Vec<Vec<u8>> = c.encode(&p).to_vec();
                assert_eq!(frags.len(), n as usize);
                for subset in subsets(n as usize, k as usize) {
                    let picked: Vec<(usize, &[u8])> =
                        subset.iter().map(|&i| (i, frags[i].as_slice())).collect();
                    let mut out = Box::new([0u8; PAGE_SIZE]);
                    c.decode(&picked, &mut out).unwrap();
                    assert_eq!(
                        &*out, &*p,
                        "(k={k},n={n}) subset {subset:?} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_page_encodes_to_zero_parity() {
        let mut c = ShardCodec::new(2, 4).unwrap();
        let frags = c.encode(&[0u8; PAGE_SIZE]);
        for f in frags {
            assert!(f.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn k1_fragments_are_full_page_copies() {
        let mut c = ShardCodec::new(1, 3).unwrap();
        let p = page(42);
        let frags = c.encode(&p);
        for f in frags {
            assert_eq!(f.as_slice(), &p[..], "k=1: every replica holds the page");
        }
    }

    #[test]
    fn decode_input_validation() {
        let mut c = ShardCodec::new(2, 3).unwrap();
        let p = page(9);
        let frags: Vec<Vec<u8>> = c.encode(&p).to_vec();
        let mut out = Box::new([0u8; PAGE_SIZE]);
        // Too few fragments.
        assert!(c.decode(&[(0, frags[0].as_slice())], &mut out).is_err());
        // Duplicate index.
        assert!(c
            .decode(&[(1, frags[1].as_slice()), (1, frags[1].as_slice())], &mut out)
            .is_err());
        // Out-of-range index.
        assert!(c
            .decode(&[(0, frags[0].as_slice()), (3, frags[1].as_slice())], &mut out)
            .is_err());
        // Wrong length.
        assert!(c
            .decode(&[(0, &frags[0][1..]), (1, frags[1].as_slice())], &mut out)
            .is_err());
    }

    #[test]
    fn encode_is_deterministic_across_codecs() {
        let mut a = ShardCodec::new(3, 5).unwrap();
        let mut b = ShardCodec::new(3, 5).unwrap();
        let p = page(13);
        assert_eq!(a.encode(&p).to_vec(), b.encode(&p).to_vec());
    }

    #[test]
    fn repair_reencode_matches_original_fragment() {
        // Losing replica 1 and regenerating its fragment from k peers must
        // produce the exact original fragment — the coded-repair invariant.
        let mut c = ShardCodec::new(2, 3).unwrap();
        let p = page(200);
        let frags: Vec<Vec<u8>> = c.encode(&p).to_vec();
        // Reconstruct the page from replicas {0, 2}, then re-encode.
        let mut out = Box::new([0u8; PAGE_SIZE]);
        c.decode(&[(0, frags[0].as_slice()), (2, frags[2].as_slice())], &mut out)
            .unwrap();
        let again = c.encode(&out);
        assert_eq!(again[1], frags[1], "regenerated shard is byte-identical");
    }
}
