//! The restore pipeline: [`CheckpointImage`] → a running container.
//!
//! At failover the backup agent materializes a *merged* image (latest
//! metadata + the full accumulated page set + latest socket state) and calls
//! [`restore_container`]. Network input must be blocked for the whole window
//! between network-namespace creation and socket restoration, or the kernel
//! will answer mid-restore packets with RSTs and break client connections
//! (§III) — the restore does this itself and leaves the gate blocked until
//! [`RestoredContainer::finish`].

use crate::image::CheckpointImage;
use nilicon_container::{Container, ContainerSpec};
use nilicon_sim::ids::{Pid, SockId};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::InputMode;
use nilicon_sim::proc::Process;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};

/// Restore options.
#[derive(Debug, Clone, Copy)]
pub struct RestoreConfig {
    /// Apply the §V-E repair-mode minimum RTO (200 ms) instead of the stock
    /// ≥1 s default — the recovery-latency optimization.
    pub optimized_rto: bool,
    /// Block network input during the restore window (§III). Disabling this
    /// reproduces the broken-connection failure mode in ablation tests.
    pub block_input: bool,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        RestoreConfig {
            optimized_rto: true,
            block_input: true,
        }
    }
}

/// A container rebuilt from a checkpoint, plus restoration bookkeeping.
#[derive(Debug)]
pub struct RestoredContainer {
    /// The rebuilt container handle (usable by the same driver code that
    /// drove the original).
    pub container: Container,
    /// New socket ids, parallel to the image's `sockets` vector.
    pub restored_sockets: Vec<SockId>,
    /// Virtual time the restore itself took (Table II "Restore" component).
    pub restore_time: Nanos,
}

impl RestoredContainer {
    /// Unblock network input — call after the address has been re-bound via
    /// gratuitous ARP (the driver reconnects the namespace to the bridge,
    /// §IV). Replays anything buffered during the window.
    pub fn finish(&self, kernel: &mut Kernel) -> SimResult<()> {
        kernel.stack_mut(self.container.ns.net)?.unblock_input();
        Ok(())
    }
}

/// Restore a container from `img` onto `kernel`.
pub fn restore_container(
    kernel: &mut Kernel,
    img: &CheckpointImage,
    cfg: &RestoreConfig,
) -> SimResult<RestoredContainer> {
    let t0 = kernel.meter.lifetime_total();
    let ns = img
        .ns
        .ok_or_else(|| SimError::ImageCorrupt("image missing namespace set".into()))?;

    // Base cost: fork CRIU, parse images, rebuild the container skeleton.
    kernel.meter.charge(kernel.costs.restore_base);

    // Kernel-side container state.
    kernel.namespaces.install(&img.namespaces);
    kernel.cgroups.install(&img.cgroups);
    for m in &img.mounts {
        kernel.vfs.mount(&m.source, &m.target, &m.fstype);
    }
    kernel.vfs.install_fs_state(&img.fs_pages, &img.fs_inodes);
    for inode in &img.devfiles {
        let mut i = inode.clone();
        i.dnc = false;
        kernel.vfs.install_fs_state(&Default::default(), &[i]);
    }
    for (path, ino) in &img.paths {
        kernel.vfs.install_path(path, *ino);
    }

    // Network namespace first, with input blocked (§III).
    kernel.create_stack(ns.net, img.addr, InputMode::Buffer);
    if cfg.block_input {
        kernel.stack_mut(ns.net)?.block_input();
    }

    // Processes: recreate with original pids, VMAs, page contents, fds.
    let mut workers = Vec::new();
    let mut keepalive = Pid(0);
    for pimg in &img.processes {
        let cgroup = img.cgroups.first().map(|g| g.id).unwrap_or_default();
        let mut proc = Process::new(pimg.pid, pimg.ppid, pimg.mm, cgroup, ns.net, &pimg.exe);
        proc.threads = pimg.threads.clone();
        for (fd, entry) in &pimg.fds {
            proc.install_fd_at(*fd, entry.clone());
        }
        kernel.restore_process(proc)?;
        kernel.meter.charge(
            kernel.costs.restore_per_process
                + pimg.threads.len() as Nanos * kernel.costs.restore_per_thread
                + pimg.fds.len() as Nanos * kernel.costs.restore_per_fd,
        );
        let mm_exists = kernel.mm(pimg.pid)?.vma_count() > 0;
        if !mm_exists {
            for vma in &pimg.vmas {
                kernel.mm_mut(pimg.pid)?.mmap(vma.clone())?;
            }
        }
        if pimg.exe.ends_with("keepalive") {
            keepalive = pimg.pid;
        } else {
            workers.push(pimg.pid);
        }
    }
    if workers.is_empty() {
        return Err(SimError::ImageCorrupt(
            "no worker processes in image".into(),
        ));
    }

    // Pages (grouped per pid to amortize lookups).
    {
        type PageList = Vec<(u64, nilicon_sim::PageBuf)>;
        let mut by_pid: std::collections::BTreeMap<Pid, PageList> =
            std::collections::BTreeMap::new();
        for (pid, vpn, data) in &img.pages {
            by_pid.entry(*pid).or_default().push((*vpn, data.clone()));
        }
        for (pid, pages) in by_pid {
            kernel.install_pages(pid, &pages)?;
        }
    }

    // Sockets last, via repair mode (still under input blocking).
    let restored_sockets =
        kernel.restore_sockets(ns.net, &img.listeners, &img.sockets, cfg.optimized_rto)?;
    let listener = img.listeners.first().and_then(|_| {
        // The first restored listener id: restore_sockets creates listeners
        // before established sockets, so it is the lowest allocated id.
        kernel
            .stack_mut(ns.net)
            .ok()
            .map(|s| SockId(s.socket_count() as u32 - img.sockets.len() as u32))
    });

    let restore_time = kernel.meter.lifetime_total() - t0;
    let spec = ContainerSpec {
        name: img.name.clone(),
        hostname: img.name.clone(),
        addr: img.addr,
        exe: img.processes[0].exe.clone(),
        processes: workers.len(),
        threads_per_process: img.processes[0].threads.len(),
        mapped_files: img.processes[0]
            .vmas
            .iter()
            .filter(|v| matches!(v.kind, nilicon_sim::mem::VmaKind::File(_)))
            .count()
            .saturating_sub(1),
        heap_pages: img.processes[0]
            .vmas
            .iter()
            .find(|v| v.is_heap)
            .map(|v| v.pages())
            .unwrap_or(0),
        listen_port: img.listeners.first().copied(),
        threads_in_syscall: 0,
    };
    let cgroup = img.cgroups.first().map(|g| g.id).unwrap_or_default();

    Ok(RestoredContainer {
        container: Container {
            spec,
            cgroup,
            ns,
            workers,
            keepalive,
            listener,
            mounts: Vec::new(),
            lib_inos: Vec::new(),
        },
        restored_sockets,
        restore_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{full_dump, DumpConfig};
    use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
    use nilicon_sim::time::MILLISECOND;

    fn primary_with_state() -> (Kernel, Container) {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        let pid = c.init_pid();
        k.mem_write(pid, MemLayout::heap(0), b"key=value").unwrap();
        k.mem_write(pid, MemLayout::heap_page(7), b"seven").unwrap();
        let fd = k.create_file(pid, "/data/aof", 0).unwrap();
        k.pwrite(pid, fd, 0, b"appendonly", 1).unwrap();
        (k, c)
    }

    #[test]
    fn dump_restore_preserves_memory_and_files() {
        let (mut primary, c) = primary_with_state();
        let img = full_dump(&mut primary, &c, &DumpConfig::nilicon()).unwrap();

        let mut backup = Kernel::default();
        let r = restore_container(&mut backup, &img, &RestoreConfig::default()).unwrap();
        r.finish(&mut backup).unwrap();

        let pid = r.container.init_pid();
        let mut buf = [0u8; 9];
        backup.mem_read(pid, MemLayout::heap(0), &mut buf).unwrap();
        assert_eq!(&buf, b"key=value");
        let mut buf7 = [0u8; 5];
        backup
            .mem_read(pid, MemLayout::heap_page(7), &mut buf7)
            .unwrap();
        assert_eq!(&buf7, b"seven");

        // File data restored through the fs-cache checkpoint.
        let fd = backup.open(pid, "/data/aof").unwrap();
        let mut fbuf = [0u8; 10];
        assert_eq!(backup.pread(pid, fd, 0, &mut fbuf).unwrap(), 10);
        assert_eq!(&fbuf, b"appendonly");
    }

    #[test]
    fn restore_preserves_pids_threads_and_fds() {
        let (mut primary, c) = primary_with_state();
        let img = full_dump(&mut primary, &c, &DumpConfig::nilicon()).unwrap();
        let mut backup = Kernel::default();
        let r = restore_container(&mut backup, &img, &RestoreConfig::default()).unwrap();

        assert_eq!(r.container.workers, c.workers, "pids restored verbatim");
        assert_eq!(r.container.keepalive, c.keepalive);
        let orig = primary.proc(c.init_pid()).unwrap();
        let rest = backup.proc(c.init_pid()).unwrap();
        assert_eq!(rest.thread_count(), orig.thread_count());
        assert_eq!(rest.fd_count(), orig.fd_count());
        assert_eq!(rest.threads[0].regs, orig.threads[0].regs);
    }

    #[test]
    fn restore_time_shape_matches_table2() {
        // Net-like (tiny memory): restore dominated by the base cost, ~218ms
        // in Table II. Redis-like (100MB): proportionally longer.
        let (mut primary, c) = primary_with_state();
        let small_img = full_dump(&mut primary, &c, &DumpConfig::nilicon()).unwrap();
        let mut b1 = Kernel::default();
        let small = restore_container(&mut b1, &small_img, &RestoreConfig::default()).unwrap();
        assert!(
            (100 * MILLISECOND..350 * MILLISECOND).contains(&small.restore_time),
            "small restore ≈ Table II Net (218ms), got {}ms",
            small.restore_time / MILLISECOND
        );

        // Bulk memory: +25k pages (~100MB).
        let (mut p2, c2) = primary_with_state();
        let pid = c2.init_pid();
        p2.mm_mut(pid)
            .unwrap()
            .brk(MemLayout::HEAP_BASE + 30_000 * 4096)
            .unwrap();
        for page in 0..25_000u64 {
            p2.mem_write(pid, MemLayout::heap_page(page), &[1]).unwrap();
        }
        let big_img = full_dump(&mut p2, &c2, &DumpConfig::nilicon()).unwrap();
        let mut b2 = Kernel::default();
        let big = restore_container(&mut b2, &big_img, &RestoreConfig::default()).unwrap();
        assert!(
            big.restore_time > small.restore_time + 40 * MILLISECOND,
            "Redis-like restore is visibly longer (Table II: 314 vs 218ms): {}ms vs {}ms",
            big.restore_time / MILLISECOND,
            small.restore_time / MILLISECOND
        );
    }

    #[test]
    fn input_blocked_until_finish() {
        let (mut primary, c) = primary_with_state();
        let img = full_dump(&mut primary, &c, &DumpConfig::nilicon()).unwrap();
        let mut backup = Kernel::default();
        let r = restore_container(&mut backup, &img, &RestoreConfig::default()).unwrap();
        assert!(backup
            .stack(r.container.ns.net)
            .unwrap()
            .input_gate
            .is_blocked());
        r.finish(&mut backup).unwrap();
        assert!(!backup
            .stack(r.container.ns.net)
            .unwrap()
            .input_gate
            .is_blocked());
    }

    #[test]
    fn optimized_rto_applied_to_restored_sockets() {
        let (mut primary, c) = primary_with_state();
        // Fabricate an established socket.
        let stack = primary.stack_mut(c.ns.net).unwrap();
        let sid = stack.socket();
        let s = stack.sock_mut(sid).unwrap();
        s.state = nilicon_sim::net::TcpState::Established;
        s.local = nilicon_sim::ids::Endpoint::new(10, 6379);
        s.remote = Some(nilicon_sim::ids::Endpoint::new(5, 50000));
        let img = full_dump(&mut primary, &c, &DumpConfig::nilicon()).unwrap();

        let mut b1 = Kernel::default();
        let r1 = restore_container(&mut b1, &img, &RestoreConfig::default()).unwrap();
        let rto1 = b1
            .stack(r1.container.ns.net)
            .unwrap()
            .sock(r1.restored_sockets[0])
            .unwrap()
            .rto;
        assert_eq!(rto1, 200 * MILLISECOND, "§V-E optimization");

        let mut b2 = Kernel::default();
        let cfg = RestoreConfig {
            optimized_rto: false,
            block_input: true,
        };
        let r2 = restore_container(&mut b2, &img, &cfg).unwrap();
        let rto2 = b2
            .stack(r2.container.ns.net)
            .unwrap()
            .sock(r2.restored_sockets[0])
            .unwrap()
            .rto;
        assert_eq!(rto2, 1_000 * MILLISECOND, "stock kernel: ≥1s");
    }

    #[test]
    fn image_without_ns_is_rejected() {
        let img = CheckpointImage::default();
        let mut k = Kernel::default();
        assert!(matches!(
            restore_container(&mut k, &img, &RestoreConfig::default()),
            Err(SimError::ImageCorrupt(_))
        ));
    }
}
