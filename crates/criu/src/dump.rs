//! The dump pipeline: container state → [`CheckpointImage`].

use crate::cache::InfrequentCache;
use crate::image::{CheckpointImage, ProcessImage};
use nilicon_container::Container;
use nilicon_sim::kernel::{Kernel, PageTransferVia, VmaCollectVia};
use nilicon_sim::proc::FreezeStrategy;
use nilicon_sim::SimResult;

/// How dirty pages are identified at dump time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtySource {
    /// Linux soft-dirty PTEs via `clear_refs`/`pagemap` (the paper's
    /// mechanism, §II-B): scan cost proportional to the mapped footprint.
    SoftDirty,
    /// Hardware page-modification log (PML extension, §VIII/Phantasy):
    /// drain cost proportional to the *dirty* set only, and no per-write
    /// runtime faults.
    Pml,
}

/// How file-system cache state is checkpointed (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsCacheMode {
    /// NiLiCon: collect DNC entries with the new `fgetfc` syscall.
    Fgetfc,
    /// Stock CRIU: flush the cache to (network-attached) storage after the
    /// checkpoint — prohibitive at 30 ms epochs for disk-heavy apps.
    FlushAll,
}

/// Dump configuration: each field is one of the paper's §V toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpConfig {
    /// Freeze waiting strategy (§V-A).
    pub freeze: FreezeStrategy,
    /// VMA collection interface (§V-D (1)).
    pub vma_via: VmaCollectVia,
    /// Parasite page-transfer mechanism (§V-D (3)).
    pub page_via: PageTransferVia,
    /// Route the state transfer through the stock proxy processes (§V-A).
    /// Consumed by the transfer layer in the `nilicon` crate; carried here so
    /// one config object describes a full Table-I row.
    pub via_proxy: bool,
    /// Incremental dump (soft-dirty) vs full dump of resident pages.
    pub incremental: bool,
    /// Dirty-page identification mechanism.
    pub dirty_source: DirtySource,
    /// File-system cache handling (§III).
    pub fs_cache: FsCacheMode,
    /// Dump shards: the per-process loop is split round-robin across this
    /// many worker threads and stop time charged as the *max* of per-shard
    /// costs instead of their sum (the concurrency opportunity §VIII points
    /// at — processes dump independently). `1` = serial stock behavior.
    pub workers: u32,
    /// Copy-on-write dump: write-protect dirty pages instead of copying them
    /// while frozen, recording them in `CheckpointImage::deferred_vpns` for
    /// the engine's background copier. Off in every paper-faithful row.
    pub cow: bool,
}

impl DumpConfig {
    /// Stock CRIU as the paper found it (the "Basic implementation" row of
    /// Table I, minus replication-level choices).
    pub fn stock() -> Self {
        DumpConfig {
            freeze: FreezeStrategy::Stock,
            vma_via: VmaCollectVia::Smaps,
            page_via: PageTransferVia::Pipe,
            via_proxy: true,
            incremental: true,
            dirty_source: DirtySource::SoftDirty,
            fs_cache: FsCacheMode::FlushAll,
            workers: 1,
            cow: false,
        }
    }

    /// NiLiCon with every optimization enabled (the final Table I row).
    pub fn nilicon() -> Self {
        DumpConfig {
            freeze: FreezeStrategy::BusyPoll,
            vma_via: VmaCollectVia::Netlink,
            page_via: PageTransferVia::SharedMem,
            via_proxy: false,
            incremental: true,
            dirty_source: DirtySource::SoftDirty,
            fs_cache: FsCacheMode::Fgetfc,
            workers: 1,
            cow: false,
        }
    }
}

impl Default for DumpConfig {
    fn default() -> Self {
        Self::nilicon()
    }
}

/// Dump a (frozen) container into a checkpoint image.
///
/// The caller is responsible for freezing the container and blocking network
/// input first — the replication agent orchestrates that (§IV); `criu dump`
/// for one-shot migration does it via [`full_dump`].
///
/// With `cache = Some(..)`, infrequently-modified state is served from the
/// §V-B cache; with `None`, every component is re-collected (stock behavior).
pub fn dump_container(
    kernel: &mut Kernel,
    container: &Container,
    cfg: &DumpConfig,
    cache: Option<&mut InfrequentCache>,
    epoch: u64,
) -> SimResult<CheckpointImage> {
    let t0 = kernel.meter.lifetime_total();
    let mut img = CheckpointImage {
        epoch,
        name: container.spec.name.clone(),
        addr: container.spec.addr,
        ns: Some(container.ns),
        ..Default::default()
    };

    // ------------------------------------------------------------------
    // Per-process state: VMAs, pages, threads, fds.
    // ------------------------------------------------------------------
    // Per-pid (processes-stage, pages-stage) costs, for shard accounting.
    let mut per_pid_costs: Vec<(u64, u64)> = Vec::new();
    for &pid in &container.all_pids() {
        let s_proc = kernel.meter.lifetime_total();
        let vmas = kernel.collect_vmas(pid, cfg.vma_via)?;
        let proc = kernel.proc(pid)?;
        let threads = proc.threads.clone();
        let fds: Vec<_> = proc.fds.iter().map(|(fd, e)| (*fd, e.clone())).collect();
        let (ppid, mm, exe) = (proc.ppid, proc.mm, proc.exe.clone());

        kernel.charge_thread_state(threads.len() as u64);
        kernel.charge_process_state(fds.len() as u64);
        let s_pages = kernel.meter.lifetime_total();
        img.stats.phases.processes += s_pages - s_proc;

        // Dirty (or all resident) pages.
        let vpns = if cfg.incremental {
            let dirty = match cfg.dirty_source {
                DirtySource::SoftDirty => kernel.pagemap_dirty(pid)?,
                DirtySource::Pml => kernel.pml_drain(pid)?,
            };
            kernel.clear_refs(pid)?; // re-arm tracking for the next epoch
            dirty
        } else {
            kernel.mm(pid)?.resident_vpns()
        };
        if cfg.cow {
            // Defer the dominant copy: write-protect the dirty set and hand
            // it to the engine's background copier via the image.
            kernel.cow_protect_pages(pid, &vpns)?;
            img.stats.dirty_pages += vpns.len() as u64;
            img.deferred_vpns.extend(vpns.iter().map(|&vpn| (pid, vpn)));
        } else {
            let pages = kernel.read_pages(pid, &vpns, cfg.page_via)?;
            img.stats.dirty_pages += pages.len() as u64;
            for (vpn, data) in pages {
                img.pages.push((pid, vpn, data));
            }
        }
        let e_pages = kernel.meter.lifetime_total();
        img.stats.phases.pages += e_pages - s_pages;
        per_pid_costs.push((s_pages - s_proc, e_pages - s_pages));

        img.processes.push(ProcessImage {
            pid,
            ppid,
            mm,
            exe,
            threads,
            fds,
            vmas,
        });
    }

    // ------------------------------------------------------------------
    // Sharded dump: model `cfg.workers` dump threads walking the process
    // list round-robin. The kernel metered the loop serially; wall-clock
    // stop time is the *critical* (max-cost) shard, so the cost of every
    // other shard is refunded, and the phase breakdown is re-attributed to
    // the critical shard so the stage deltas still telescope to stop_time.
    // ------------------------------------------------------------------
    let workers = cfg.workers.max(1) as usize;
    if workers > 1 && per_pid_costs.len() > 1 {
        let mut shard_proc = vec![0u64; workers];
        let mut shard_pages = vec![0u64; workers];
        for (i, &(p, g)) in per_pid_costs.iter().enumerate() {
            shard_proc[i % workers] += p;
            shard_pages[i % workers] += g;
        }
        let critical = (0..workers)
            .max_by_key(|&i| shard_proc[i] + shard_pages[i])
            .expect("workers > 1");
        let serial: u64 = per_pid_costs.iter().map(|&(p, g)| p + g).sum();
        let parallel = shard_proc[critical] + shard_pages[critical];
        kernel.meter.refund(serial - parallel);
        img.stats.phases.processes = shard_proc[critical];
        img.stats.phases.pages = shard_pages[critical];
    }

    // ------------------------------------------------------------------
    // Sockets (repair mode).
    // ------------------------------------------------------------------
    let s_sock = kernel.meter.lifetime_total();
    let (listeners, sockets) = kernel.checkpoint_sockets(container.ns.net)?;
    img.stats.phases.sockets += kernel.meter.lifetime_total() - s_sock;
    img.stats.sockets = sockets.len() as u64;
    img.stats.socket_queue_bytes = sockets
        .iter()
        .map(|s| (s.write_queue.len() + s.read_queue.len()) as u64)
        .sum();
    img.listeners = listeners;
    img.sockets = sockets;

    // ------------------------------------------------------------------
    // File-system cache (§III).
    // ------------------------------------------------------------------
    let s_fs = kernel.meter.lifetime_total();
    match cfg.fs_cache {
        FsCacheMode::Fgetfc => {
            let (pages, inodes) = kernel.fgetfc();
            img.stats.fs_cache_pages = pages.pages.len() as u64;
            img.fs_pages = pages;
            img.fs_inodes = inodes;
        }
        FsCacheMode::FlushAll => {
            // Committed to (shared) storage instead of the image.
            img.stats.fs_cache_pages = kernel.flush_fs_cache() as u64;
        }
    }
    img.paths = kernel.vfs.paths().map(|(p, &i)| (p.clone(), i)).collect();
    let s_inf = kernel.meter.lifetime_total();
    img.stats.phases.fs_cache += s_inf - s_fs;

    // ------------------------------------------------------------------
    // Infrequently-modified state (§V-B).
    // ------------------------------------------------------------------
    match cache {
        Some(c) => c.collect_into(kernel, container, &mut img)?,
        None => {
            img.namespaces = kernel.collect_namespaces(&container.ns);
            img.cgroups = kernel.collect_cgroups();
            img.mounts = kernel.collect_mounts();
            img.devfiles = kernel.collect_devfiles();
            for &pid in &container.workers {
                kernel.stat_mapped_files(pid)?;
            }
            img.stats.infrequent_recollections += 4 + container.workers.len() as u32;
        }
    }

    let end = kernel.meter.lifetime_total();
    img.stats.phases.infrequent += end - s_inf;
    img.stats.stop_time = end - t0;
    Ok(img)
}

/// Full-image *copy-on-write* dump for online re-replication: capture the
/// container's complete resident set, but defer every page copy through the
/// COW machinery (`CheckpointImage::deferred_vpns`) so the stop time stays at
/// the protect cost — roughly one incremental epoch — instead of growing with
/// the footprint. The caller freezes/thaws and streams the deferred pages.
///
/// Unlike the incremental path, a non-incremental [`dump_container`] does not
/// clear the soft-dirty bits; this helper does, while the container is still
/// frozen, so every write after the resume is dirty again and lands in the
/// first incremental epoch toward the new backup.
pub fn bootstrap_dump(
    kernel: &mut Kernel,
    container: &Container,
    cfg: &DumpConfig,
    cache: Option<&mut InfrequentCache>,
    epoch: u64,
) -> SimResult<CheckpointImage> {
    let mut full_cfg = *cfg;
    full_cfg.incremental = false;
    full_cfg.cow = true;
    let img = dump_container(kernel, container, &full_cfg, cache, epoch)?;
    for &pid in &container.all_pids() {
        kernel.clear_refs(pid)?;
    }
    Ok(img)
}

/// One-shot migration-style dump: freeze → dump → thaw.
pub fn full_dump(
    kernel: &mut Kernel,
    container: &Container,
    cfg: &DumpConfig,
) -> SimResult<CheckpointImage> {
    kernel.freeze_cgroup(container.cgroup, cfg.freeze)?;
    let mut full_cfg = *cfg;
    full_cfg.incremental = false;
    full_cfg.cow = false; // one-shot migration needs the pages in the image
    let img = dump_container(kernel, container, &full_cfg, None, 0)?;
    kernel.thaw_cgroup(container.cgroup)?;
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::mem::TrackingMode;
    use nilicon_sim::time::MILLISECOND;

    fn setup() -> (Kernel, Container) {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        for &pid in &c.workers {
            k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
        }
        (k, c)
    }

    #[test]
    fn incremental_dump_captures_only_dirty_pages() {
        let (mut k, c) = setup();
        let pid = c.init_pid();
        k.mem_write(pid, nilicon_container::MemLayout::heap(0), b"v1")
            .unwrap();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let img1 = dump_container(&mut k, &c, &DumpConfig::nilicon(), None, 1).unwrap();
        assert_eq!(img1.stats.dirty_pages, 1);
        k.thaw_cgroup(c.cgroup).unwrap();

        // Nothing written: next incremental dump has zero pages.
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let img2 = dump_container(&mut k, &c, &DumpConfig::nilicon(), None, 2).unwrap();
        assert_eq!(img2.stats.dirty_pages, 0);
        k.thaw_cgroup(c.cgroup).unwrap();

        // Two pages written -> two pages dumped, with real contents.
        k.mem_write(pid, nilicon_container::MemLayout::heap_page(5), b"five")
            .unwrap();
        k.mem_write(pid, nilicon_container::MemLayout::heap_page(9), b"nine")
            .unwrap();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let img3 = dump_container(&mut k, &c, &DumpConfig::nilicon(), None, 3).unwrap();
        assert_eq!(img3.stats.dirty_pages, 2);
        let five = img3
            .pages
            .iter()
            .find(|(_, vpn, _)| *vpn == 0x10005)
            .unwrap();
        assert_eq!(&five.2[..4], b"five");
    }

    #[test]
    fn full_dump_captures_resident_set() {
        let (mut k, c) = setup();
        let pid = c.init_pid();
        k.mem_write(pid, nilicon_container::MemLayout::heap(0), b"a")
            .unwrap();
        k.mem_write(pid, nilicon_container::MemLayout::heap_page(3), b"b")
            .unwrap();
        let img = full_dump(&mut k, &c, &DumpConfig::nilicon()).unwrap();
        assert_eq!(img.stats.dirty_pages, 2);
        assert_eq!(img.processes.len(), 2, "worker + keepalive");
        assert!(
            !k.cgroups.get(c.cgroup).unwrap().frozen,
            "thawed after full_dump"
        );
    }

    #[test]
    fn stock_vs_nilicon_dump_cost_gap() {
        let (mut k, c) = setup();
        k.mem_write(c.init_pid(), nilicon_container::MemLayout::heap(0), b"x")
            .unwrap();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();

        k.meter.take();
        let _ = dump_container(&mut k, &c, &DumpConfig::stock(), None, 1).unwrap();
        let stock_cost = k.meter.take();

        let mut cache = InfrequentCache::new();
        // Warm the cache (first fill is the expensive one).
        let _ = dump_container(&mut k, &c, &DumpConfig::nilicon(), Some(&mut cache), 2).unwrap();
        k.meter.take();
        k.mem_write(c.init_pid(), nilicon_container::MemLayout::heap(0), b"y")
            .unwrap();
        k.meter.take();
        let _ = dump_container(&mut k, &c, &DumpConfig::nilicon(), Some(&mut cache), 3).unwrap();
        let nilicon_cost = k.meter.take();

        assert!(
            stock_cost > 10 * nilicon_cost,
            "stock {}ms vs optimized {}ms — the Table I gap",
            stock_cost / MILLISECOND,
            nilicon_cost / MILLISECOND
        );
    }

    #[test]
    fn socket_state_rides_in_the_image() {
        let (mut k, c) = setup();
        // Fabricate an established connection with queued bytes.
        let ns = c.ns.net;
        let stack = k.stack_mut(ns).unwrap();
        let sid = stack.socket();
        let s = stack.sock_mut(sid).unwrap();
        s.state = nilicon_sim::net::TcpState::Established;
        s.local = nilicon_sim::ids::Endpoint::new(10, 6379);
        s.remote = Some(nilicon_sim::ids::Endpoint::new(77, 40000));
        s.read_queue.extend(b"pending request");
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let img = dump_container(&mut k, &c, &DumpConfig::nilicon(), None, 1).unwrap();
        assert_eq!(img.stats.sockets, 1);
        assert_eq!(img.stats.socket_queue_bytes, 15);
        assert_eq!(img.listeners, vec![6379]);
        assert_eq!(img.sockets[0].read_queue, b"pending request");
    }

    #[test]
    fn fgetfc_vs_flush_modes() {
        let (mut k, c) = setup();
        let pid = c.init_pid();
        let fd = k.create_file(pid, "/data/db", 0).unwrap();
        k.pwrite(pid, fd, 0, &vec![1u8; 8192], 1).unwrap();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();

        let img = dump_container(&mut k, &c, &DumpConfig::nilicon(), None, 1).unwrap();
        assert_eq!(img.stats.fs_cache_pages, 2);
        assert_eq!(
            img.fs_pages.pages.len(),
            2,
            "fgetfc puts pages in the image"
        );
        assert_eq!(k.vfs.disk.pending_writes(), 0, "nothing flushed");

        k.pwrite(pid, fd, 0, &vec![2u8; 8192], 2).unwrap();
        let mut cfg = DumpConfig::nilicon();
        cfg.fs_cache = FsCacheMode::FlushAll;
        let img2 = dump_container(&mut k, &c, &cfg, None, 2).unwrap();
        assert!(
            img2.fs_pages.pages.is_empty(),
            "flush mode commits to storage instead"
        );
        assert_eq!(k.vfs.disk.pending_writes(), 2);
    }

    #[test]
    fn dump_phase_breakdown_sums_to_stop_time() {
        let (mut k, c) = setup();
        k.mem_write(c.init_pid(), nilicon_container::MemLayout::heap(0), b"x")
            .unwrap();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        for (cfg, label) in [
            (DumpConfig::nilicon(), "nilicon"),
            (DumpConfig::stock(), "stock"),
        ] {
            k.mem_write(c.init_pid(), nilicon_container::MemLayout::heap(0), b"y")
                .unwrap();
            let img = dump_container(&mut k, &c, &cfg, None, 1).unwrap();
            let ph = img.stats.phases;
            assert_eq!(
                ph.total(),
                img.stats.stop_time,
                "{label}: stage deltas must telescope to the dump total"
            );
            assert!(ph.processes > 0, "{label}: processes stage metered");
            assert!(ph.infrequent > 0, "{label}: infrequent stage metered");
        }
    }

    #[test]
    fn sharded_dump_cuts_stop_time_and_phases_still_telescope() {
        let mut spec = ContainerSpec::server("httpd", 64, 80);
        spec.processes = 4; // multi-process container: shardable work
        let run = |workers: u32| {
            let mut k = Kernel::default();
            let c = ContainerRuntime::create(&mut k, &spec).unwrap();
            for &pid in &c.workers {
                k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
                k.mem_write(pid, nilicon_container::MemLayout::heap(0), b"w")
                    .unwrap();
            }
            k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
            let mut cfg = DumpConfig::nilicon();
            cfg.workers = workers;
            k.meter.take();
            let img = dump_container(&mut k, &c, &cfg, None, 1).unwrap();
            let metered = k.meter.take();
            assert_eq!(
                img.stats.phases.total(),
                img.stats.stop_time,
                "workers={workers}: stage deltas telescope to stop_time"
            );
            assert_eq!(
                metered, img.stats.stop_time,
                "workers={workers}: meter agrees with stop_time"
            );
            img.stats.stop_time
        };
        let serial = run(1);
        let sharded = run(4);
        assert!(
            sharded < serial,
            "workers=4 ({sharded}ns) must beat workers=1 ({serial}ns)"
        );
    }

    #[test]
    fn sharding_is_a_noop_for_single_process() {
        let (mut k, c) = setup();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let mut cfg = DumpConfig::nilicon();
        cfg.workers = 8;
        let img = dump_container(&mut k, &c, &cfg, None, 1).unwrap();
        // server() spec = worker + keepalive: 2 pids, so sharding engages,
        // but phases must still telescope and stop_time stay positive.
        assert_eq!(img.stats.phases.total(), img.stats.stop_time);
        assert!(img.stats.stop_time > 0);
    }

    #[test]
    fn cow_dump_defers_pages_and_shrinks_stop_time() {
        let run = |cow: bool| {
            let (mut k, c) = setup();
            let pid = c.init_pid();
            for p in 0..200u64 {
                k.mem_write(pid, nilicon_container::MemLayout::heap_page(p), b"d")
                    .unwrap();
            }
            k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
            let mut cfg = DumpConfig::nilicon();
            cfg.cow = cow;
            k.meter.take();
            let img = dump_container(&mut k, &c, &cfg, None, 1).unwrap();
            let metered = k.meter.take();
            assert_eq!(
                img.stats.phases.total(),
                img.stats.stop_time,
                "cow={cow}: stage deltas telescope to stop_time"
            );
            assert_eq!(metered, img.stats.stop_time);
            (img, k, c)
        };
        let (eager, _, _) = run(false);
        let (cow, mut k, c) = run(true);
        assert_eq!(cow.stats.dirty_pages, eager.stats.dirty_pages);
        assert!(cow.pages.is_empty(), "no pages copied while frozen");
        assert_eq!(cow.deferred_vpns.len() as u64, cow.stats.dirty_pages);
        assert!(
            cow.stats.stop_time < eager.stats.stop_time,
            "cow stop {} must beat eager stop {}",
            cow.stats.stop_time,
            eager.stats.stop_time
        );
        // The deferred set is drainable with the real contents.
        let pid = c.init_pid();
        assert_eq!(k.cow_pending(pid).unwrap(), 200);
        let batch = k.cow_drain_pages(pid, 1000).unwrap();
        assert_eq!(batch.len(), 200);
        assert_eq!(&batch[0].1[..1], b"d");
    }

    #[test]
    fn bootstrap_dump_defers_full_resident_set_and_rearms_tracking() {
        let (mut k, c) = setup();
        let pid = c.init_pid();
        k.mem_write(pid, nilicon_container::MemLayout::heap(0), b"a")
            .unwrap();
        k.mem_write(pid, nilicon_container::MemLayout::heap_page(3), b"b")
            .unwrap();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let img = bootstrap_dump(&mut k, &c, &DumpConfig::nilicon(), None, 7).unwrap();
        k.thaw_cgroup(c.cgroup).unwrap();
        // Full resident set deferred, nothing copied while frozen.
        assert!(img.pages.is_empty());
        let full = full_dump(&mut k, &c, &DumpConfig::nilicon()).unwrap();
        assert_eq!(img.deferred_vpns.len() as u64, full.stats.dirty_pages);
        // Deferred pages drain with real contents.
        let drained = k.cow_drain_pages(pid, 1000).unwrap();
        assert!(drained.iter().any(|(_, d)| &d[..1] == b"a"));
        // Soft-dirty was re-armed: a post-resume write is dirty again.
        k.mem_write(pid, nilicon_container::MemLayout::heap_page(9), b"c")
            .unwrap();
        let dirty = k.pagemap_dirty(pid).unwrap();
        let vpn = nilicon_container::MemLayout::heap_page(9) / nilicon_sim::PAGE_SIZE as u64;
        assert!(dirty.contains(&vpn));
    }

    #[test]
    fn stats_stop_time_is_positive_and_bounded() {
        let (mut k, c) = setup();
        k.freeze_cgroup(c.cgroup, FreezeStrategy::BusyPoll).unwrap();
        let mut cache = InfrequentCache::new();
        let _ = dump_container(&mut k, &c, &DumpConfig::nilicon(), Some(&mut cache), 1).unwrap();
        // Warm dump:
        let img = dump_container(&mut k, &c, &DumpConfig::nilicon(), Some(&mut cache), 2).unwrap();
        assert!(img.stats.stop_time > 0);
        assert!(
            img.stats.stop_time < 30 * MILLISECOND,
            "warm optimized dump fits well inside an epoch, got {}ms",
            img.stats.stop_time / MILLISECOND
        );
    }
}
