//! Checkpoint images: the in-memory equivalent of CRIU's image files.

use crate::delta::{DeltaStats, PageEncoding, ShadowStore};
use crate::pagestore::PageKey;
use nilicon_sim::cgroup::Cgroup;
use nilicon_sim::fs::{FsCacheCheckpoint, Inode, Mount};
use nilicon_sim::ids::{AsId, Fd, Ino, Pid};
use nilicon_sim::mem::{PageBuf, Vma};
use nilicon_sim::net::RepairState;
use nilicon_sim::ns::{Namespace, NsSet};
use nilicon_sim::proc::{FdEntry, Thread};
use nilicon_sim::time::Nanos;
use nilicon_sim::PAGE_SIZE;

/// Image of one process.
#[derive(Debug, Clone)]
pub struct ProcessImage {
    /// Original pid (restored verbatim — namespaces make this safe, which is
    /// exactly the Zap/namespace argument of §VIII).
    pub pid: Pid,
    /// Parent pid.
    pub ppid: Pid,
    /// Address-space id (processes sharing an mm share it in the image too).
    pub mm: AsId,
    /// Executable path.
    pub exe: String,
    /// Threads with registers, sigmasks, timers, sched policies.
    pub threads: Vec<Thread>,
    /// Fd table.
    pub fds: Vec<(Fd, FdEntry)>,
    /// VMA list.
    pub vmas: Vec<Vma>,
}

/// Per-stage cost breakdown of one dump, sampled off the kernel's lifetime
/// meter. The five fields sum to [`DumpStats::stop_time`] — code outside the
/// sampled stages charges nothing, so the telescoped stage deltas cover the
/// whole dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DumpPhases {
    /// VMA, thread, and fd-table collection.
    pub processes: Nanos,
    /// Dirty-page identification, `clear_refs` re-arm, and page copy.
    pub pages: Nanos,
    /// TCP repair-mode socket checkpointing.
    pub sockets: Nanos,
    /// File-system cache capture (fgetfc or flush) and the path table.
    pub fs_cache: Nanos,
    /// Infrequently-modified state (§V-B cache hit or full re-collect).
    pub infrequent: Nanos,
}

impl DumpPhases {
    /// Sum of all stages (equals [`DumpStats::stop_time`]).
    pub fn total(&self) -> Nanos {
        self.processes + self.pages + self.sockets + self.fs_cache + self.infrequent
    }
}

/// Dump statistics (drives Tables III & IV).
#[derive(Debug, Clone, Copy, Default)]
pub struct DumpStats {
    /// Dirty pages captured in this (incremental) dump.
    pub dirty_pages: u64,
    /// Bytes of socket read/write queues captured.
    pub socket_queue_bytes: u64,
    /// Established sockets dumped.
    pub sockets: u64,
    /// Virtual time the dump spent while the container was stopped.
    pub stop_time: Nanos,
    /// Components re-collected because the cache was invalid (or absent).
    pub infrequent_recollections: u32,
    /// File-cache pages captured via fgetfc (or flushed, in stock mode).
    pub fs_cache_pages: u64,
    /// Per-stage cost breakdown (feeds the `DumpDetail` trace event).
    pub phases: DumpPhases,
    /// Delta-encoding classification and byte accounting, present when
    /// [`CheckpointImage::encode_pages`] ran (feeds the `DeltaEncode` span).
    pub delta: Option<DeltaStats>,
}

/// A complete (possibly incremental) checkpoint of a container.
#[derive(Debug, Clone, Default)]
pub struct CheckpointImage {
    /// Epoch number this image corresponds to.
    pub epoch: u64,
    /// Container name.
    pub name: String,
    /// Network address of the container's netns (for failover re-binding).
    pub addr: u32,
    /// Namespace ids (restored verbatim).
    pub ns: Option<NsSet>,
    /// Process images.
    pub processes: Vec<ProcessImage>,
    /// Incremental page dump: `(pid, vpn, contents)`. Only pages dirtied
    /// since the previous checkpoint appear here.
    pub pages: Vec<(Pid, u64, PageBuf)>,
    /// Delta-encoded page dump: `(pid, vpn, encoding)`. Populated by
    /// [`CheckpointImage::encode_pages`] (which drains [`pages`] into it) on
    /// the wire path when delta transfer is enabled; the backup reconstructs
    /// full pages via `PageStore::apply_delta`. Transient wire form — never
    /// serialized by `imgfile` (a materialized failover image always carries
    /// full pages).
    ///
    /// [`pages`]: CheckpointImage::pages
    pub page_deltas: Vec<(Pid, u64, PageEncoding)>,
    /// Copy-on-write dump: dirty pages that were *write-protected* instead
    /// of copied while the container was frozen. The engine's background
    /// copier drains their contents into [`pages`]/[`page_deltas`] (clearing
    /// this list) during the next execution phase; the epoch may only be
    /// acked once every deferred page has reached the backup.
    ///
    /// [`pages`]: CheckpointImage::pages
    /// [`page_deltas`]: CheckpointImage::page_deltas
    pub deferred_vpns: Vec<(Pid, u64)>,
    /// Listening ports.
    pub listeners: Vec<u16>,
    /// Established-socket repair dumps.
    pub sockets: Vec<RepairState>,
    /// Namespace state (None when served from cache upstream).
    pub namespaces: Vec<Namespace>,
    /// Cgroup state.
    pub cgroups: Vec<Cgroup>,
    /// Mount table.
    pub mounts: Vec<Mount>,
    /// Device-file inodes.
    pub devfiles: Vec<Inode>,
    /// DNC page-cache entries (§III).
    pub fs_pages: FsCacheCheckpoint,
    /// DNC inode entries (§III).
    pub fs_inodes: Vec<Inode>,
    /// Path map entries for restored inodes.
    pub paths: Vec<(String, Ino)>,
    /// Statistics.
    pub stats: DumpStats,
}

impl CheckpointImage {
    /// Total bytes this image contributes to the epoch state transfer
    /// (Table IV's "State" rows). Dirty pages plus socket queues dominate
    /// (the paper: pages are 85-95%); metadata is counted at a flat estimate
    /// per record.
    pub fn state_bytes(&self) -> u64 {
        let page_bytes = self.pages.len() as u64 * PAGE_SIZE as u64;
        let delta_bytes: u64 = self
            .page_deltas
            .iter()
            .map(|(_, _, e)| e.encoded_bytes())
            .sum();
        let sock_bytes: u64 = self.sockets.iter().map(RepairState::state_bytes).sum();
        let fs_bytes = self.fs_pages.bytes();
        let meta = self.metadata_records() * 96;
        page_bytes + delta_bytes + sock_bytes + fs_bytes + meta
    }

    /// Number of metadata records (processes, threads, fds, VMAs, ns,
    /// cgroups, mounts, devfiles, inodes, listeners).
    pub fn metadata_records(&self) -> u64 {
        let proc_recs: u64 = self
            .processes
            .iter()
            .map(|p| 1 + p.threads.len() as u64 + p.fds.len() as u64 + p.vmas.len() as u64)
            .sum();
        proc_recs
            + self.listeners.len() as u64
            + self.namespaces.len() as u64
            + self.cgroups.len() as u64
            + self.mounts.len() as u64
            + self.devfiles.len() as u64
            + self.fs_inodes.len() as u64
            + self.paths.len() as u64
    }

    /// Number of distinct messages/chunks this image arrives in at the
    /// backup (Table V: finer-grained arrival → more read syscalls →
    /// higher backup CPU). Pages arrive in batches; each socket's queues
    /// arrive as their own small chunks; metadata arrives in one chunk per
    /// category.
    pub fn transfer_chunks(&self) -> u64 {
        let n_pages = (self.pages.len() + self.page_deltas.len()) as u64;
        let page_chunks = n_pages.div_ceil(64).max(1);
        let sock_chunks = self.sockets.len() as u64 * 2;
        page_chunks + sock_chunks + 8
    }

    /// Delta-encode the dirty-page payload for the wire (HyCoR-style):
    /// drain [`CheckpointImage::pages`] into
    /// [`CheckpointImage::page_deltas`], classifying each page against
    /// `shadow` (the contents as of the last shipped epoch). After this,
    /// [`CheckpointImage::state_bytes`] counts *encoded* bytes for the page
    /// payload. Returns the per-epoch classification stats (also recorded in
    /// `stats.delta`).
    pub fn encode_pages(&mut self, shadow: &mut ShadowStore) -> DeltaStats {
        let mut stats = DeltaStats::default();
        for (pid, vpn, data) in self.pages.drain(..) {
            let enc = shadow.encode(PageKey { pid, vpn }, &data, &mut stats);
            self.page_deltas.push((pid, vpn, enc));
        }
        self.stats.delta = Some(stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::ids::Endpoint;

    fn repair(wq: usize, rq: usize) -> RepairState {
        RepairState {
            local: Endpoint::new(1, 80),
            remote: Endpoint::new(2, 999),
            snd_nxt: 0,
            snd_una: 0,
            rcv_nxt: 0,
            write_queue: vec![0; wq],
            read_queue: vec![0; rq],
        }
    }

    #[test]
    fn state_bytes_dominated_by_pages() {
        let mut img = CheckpointImage::default();
        for vpn in 0..100u64 {
            img.pages.push((Pid(1), vpn, nilicon_sim::zero_page()));
        }
        img.sockets.push(repair(1000, 500));
        let total = img.state_bytes();
        let pages = 100 * PAGE_SIZE as u64;
        assert!(total > pages);
        assert!(
            pages as f64 / total as f64 > 0.85,
            "pages are 85%+ of state (§VII-C), got {:.2}",
            pages as f64 / total as f64
        );
    }

    #[test]
    fn transfer_chunks_scale_with_sockets() {
        let mut few = CheckpointImage::default();
        few.pages.push((Pid(1), 0, nilicon_sim::zero_page()));
        let mut many = few.clone();
        for _ in 0..128 {
            many.sockets.push(repair(10, 10));
        }
        assert!(
            many.transfer_chunks() > 20 * few.transfer_chunks(),
            "socket-heavy state arrives in many more chunks (Table V, Node)"
        );
    }

    #[test]
    fn encode_pages_shrinks_wire_bytes_for_sparse_epochs() {
        let mut shadow = ShadowStore::new();
        // Epoch 1: first touch — everything ships full (plus zero elision).
        let mut img1 = CheckpointImage::default();
        let mut raw = [0u8; PAGE_SIZE];
        raw[0] = 1;
        img1.pages.push((Pid(1), 0x10, std::rc::Rc::new(raw)));
        img1.pages.push((Pid(1), 0x11, nilicon_sim::zero_page()));
        let raw1 = img1.state_bytes();
        let stats1 = img1.encode_pages(&mut shadow);
        assert!(img1.pages.is_empty(), "pages drained into deltas");
        assert_eq!(img1.page_deltas.len(), 2);
        assert_eq!((stats1.full_pages, stats1.zero_pages), (1, 1));
        assert!(img1.state_bytes() < raw1, "zero elision already pays");

        // Epoch 2: one word changed — ships as a tiny delta.
        let mut img2 = CheckpointImage::default();
        raw[0] = 2;
        img2.pages.push((Pid(1), 0x10, std::rc::Rc::new(raw)));
        let raw2 = img2.state_bytes();
        let stats2 = img2.encode_pages(&mut shadow);
        assert_eq!(stats2.delta_pages, 1);
        assert!(
            img2.state_bytes() < raw2 / 10,
            "sparse epoch: encoded ({}) ≪ raw ({raw2})",
            img2.state_bytes()
        );
        assert_eq!(img2.stats.delta, Some(stats2));
        assert_eq!(img2.transfer_chunks(), 1 + 8, "deltas still count as pages");
    }

    #[test]
    fn metadata_record_count() {
        let mut img = CheckpointImage::default();
        img.processes.push(ProcessImage {
            pid: Pid(1),
            ppid: Pid(0),
            mm: AsId(1),
            exe: "/bin/x".into(),
            threads: vec![Thread::new(nilicon_sim::ids::Tid(1))],
            fds: vec![],
            vmas: vec![],
        });
        img.listeners.push(80);
        assert_eq!(img.metadata_records(), 3);
    }
}
