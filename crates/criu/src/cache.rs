//! The infrequently-modified in-kernel state cache (§V-B) — NiLiCon's single
//! most effective optimization (Table I: 619% → 84%).
//!
//! Control groups, namespaces, mount points, device files, and memory-mapped
//! files rarely change between 30 ms checkpoints, yet stock CRIU re-collects
//! them every time (~160 ms for streamcluster). NiLiCon caches the collected
//! values and re-collects a component only when an ftrace hook reports that a
//! kernel function which can mutate it actually ran.

use crate::image::CheckpointImage;
use nilicon_container::Container;
use nilicon_sim::ftrace::{StateComponent, ALL_COMPONENTS};
use nilicon_sim::ids::Pid;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::SimResult;
use std::collections::HashSet;

/// Cached values of the five infrequently-modified components.
#[derive(Debug, Default)]
pub struct InfrequentCache {
    namespaces: Option<Vec<nilicon_sim::ns::Namespace>>,
    cgroups: Option<Vec<nilicon_sim::cgroup::Cgroup>>,
    mounts: Option<Vec<nilicon_sim::fs::Mount>>,
    devfiles: Option<Vec<nilicon_sim::fs::Inode>>,
    /// Mapped-file stat results are valid (the VMAs themselves are collected
    /// each epoch; the expensive part is the per-file `stat` calls).
    mapped_files_valid: HashSet<Pid>,
    recollections: u64,
    hits: u64,
}

impl InfrequentCache {
    /// Empty (cold) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply pending ftrace change signals: invalidate exactly the signalled
    /// components (§V-B's "signal is sent to the primary agent").
    pub fn apply_signals(&mut self, signals: &[StateComponent]) {
        for s in signals {
            match s {
                StateComponent::Namespaces => self.namespaces = None,
                StateComponent::Cgroups => self.cgroups = None,
                StateComponent::Mounts => self.mounts = None,
                StateComponent::DeviceFiles => self.devfiles = None,
                StateComponent::MappedFiles => self.mapped_files_valid.clear(),
            }
        }
    }

    /// Invalidate everything (used by ablations and at attach time).
    pub fn invalidate_all(&mut self) {
        self.apply_signals(&ALL_COMPONENTS);
    }

    /// Fill `img`'s infrequently-modified fields, re-collecting (and paying
    /// the kernel's collection costs) only for invalid components.
    pub fn collect_into(
        &mut self,
        kernel: &mut Kernel,
        container: &Container,
        img: &mut CheckpointImage,
    ) -> SimResult<()> {
        // Drain kernel-side signals first.
        let signals = kernel.ftrace.drain_signals();
        self.apply_signals(&signals);

        if self.namespaces.is_none() {
            self.namespaces = Some(kernel.collect_namespaces(&container.ns));
            self.recollections += 1;
            img.stats.infrequent_recollections += 1;
        } else {
            self.hits += 1;
        }
        if self.cgroups.is_none() {
            self.cgroups = Some(kernel.collect_cgroups());
            self.recollections += 1;
            img.stats.infrequent_recollections += 1;
        } else {
            self.hits += 1;
        }
        if self.mounts.is_none() {
            self.mounts = Some(kernel.collect_mounts());
            self.recollections += 1;
            img.stats.infrequent_recollections += 1;
        } else {
            self.hits += 1;
        }
        if self.devfiles.is_none() {
            self.devfiles = Some(kernel.collect_devfiles());
            self.recollections += 1;
            img.stats.infrequent_recollections += 1;
        } else {
            self.hits += 1;
        }
        // Mapped-file stats, per process.
        for &pid in &container.workers {
            if !self.mapped_files_valid.contains(&pid) {
                kernel.stat_mapped_files(pid)?;
                self.mapped_files_valid.insert(pid);
                self.recollections += 1;
                img.stats.infrequent_recollections += 1;
            } else {
                self.hits += 1;
            }
        }

        img.namespaces = self.namespaces.clone().expect("filled above");
        img.cgroups = self.cgroups.clone().expect("filled above");
        img.mounts = self.mounts.clone().expect("filled above");
        img.devfiles = self.devfiles.clone().expect("filled above");
        Ok(())
    }

    /// Lifetime counters `(recollections, cache_hits)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.recollections, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::time::MILLISECOND;

    fn setup() -> (Kernel, Container) {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c)
    }

    #[test]
    fn first_collection_is_expensive_then_cached() {
        let (mut k, c) = setup();
        let mut cache = InfrequentCache::new();
        k.meter.take();

        let mut img = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img).unwrap();
        let cold = k.meter.take();
        assert!(
            cold >= 150 * MILLISECOND,
            "cold collection ≈160ms (§V-B), got {}ms",
            cold / MILLISECOND
        );
        assert!(!img.namespaces.is_empty());
        assert!(!img.mounts.is_empty());

        // No state changes: second collection is nearly free.
        let mut img2 = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img2).unwrap();
        let warm = k.meter.take();
        assert!(
            warm < MILLISECOND,
            "warm collection must be cheap, got {warm}ns"
        );
        assert_eq!(img2.stats.infrequent_recollections, 0);
        assert_eq!(img2.namespaces.len(), img.namespaces.len());
    }

    #[test]
    fn mount_change_invalidates_only_mounts() {
        let (mut k, c) = setup();
        let mut cache = InfrequentCache::new();
        let mut img = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img).unwrap();
        k.meter.take();

        k.mount("tmpfs", "/scratch", "tmpfs"); // fires the hook
        let mut img2 = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img2).unwrap();
        let cost = k.meter.take();
        assert_eq!(
            img2.stats.infrequent_recollections, 1,
            "only mounts re-collected"
        );
        assert!(cost >= k.costs.mounts_collect);
        assert!(cost < k.costs.mounts_collect + 5 * MILLISECOND);
        assert_eq!(
            img2.mounts.len(),
            img.mounts.len() + 1,
            "fresh value served"
        );
    }

    #[test]
    fn uninstrumented_path_serves_stale_state() {
        // The paper's prototype caveat (§V-B): a mutation through a path the
        // kernel module does not hook is NOT detected — the cache serves the
        // stale value. This test documents that behavior.
        let (mut k, c) = setup();
        let mut cache = InfrequentCache::new();
        let mut img = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img).unwrap();

        // Mutate the mount table *without* going through Kernel::mount.
        k.vfs.mount("sneaky", "/sneaky", "bind");
        let mut img2 = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img2).unwrap();
        assert_eq!(
            img2.mounts.len(),
            img.mounts.len(),
            "stale cache: the sneaky mount is missing (documented prototype gap)"
        );

        // With an explicit invalidation it is picked up.
        cache.invalidate_all();
        let mut img3 = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img3).unwrap();
        assert_eq!(img3.mounts.len(), img.mounts.len() + 1);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let (mut k, c) = setup();
        let mut cache = InfrequentCache::new();
        let mut img = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img).unwrap();
        let (re1, _h1) = cache.counters();
        assert_eq!(re1, 5, "4 components + 1 process worth of mapped files");
        let mut img2 = CheckpointImage::default();
        cache.collect_into(&mut k, &c, &mut img2).unwrap();
        let (re2, h2) = cache.counters();
        assert_eq!(re2, 5);
        assert_eq!(h2, 5);
    }
}
