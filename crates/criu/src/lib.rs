//! # nilicon-criu — CRIU-style checkpoint/restore over `nilicon-sim`
//!
//! Models CRIU 3.11 as used by NiLiCon (§II-B), including the stock
//! implementation's deficiencies and the paper's fixes as toggleable
//! configuration (§V):
//!
//! | Deficiency (stock)                               | Fix (NiLiCon)                   | Toggle |
//! |--------------------------------------------------|---------------------------------|--------|
//! | 100 ms sleep while freezing                      | busy-poll thread states         | [`DumpConfig::freeze`] |
//! | incremental pages in a linked list of directories| 4-level radix tree              | [`pagestore`] impls |
//! | proxy processes relay state transfer             | direct agent-to-agent transfer  | `DumpConfig::via_proxy` |
//! | VMAs via `/proc/pid/smaps` text                  | task-diag netlink               | [`DumpConfig::vma_via`] |
//! | parasite pages through a pipe                    | shared-memory region            | [`DumpConfig::page_via`] |
//! | re-collect all in-kernel state every epoch       | ftrace-invalidated cache (§V-B) | [`cache::InfrequentCache`] |
//! | flush fs cache to a NAS                          | DNC tracking + `fgetfc` (§III)  | [`DumpConfig::fs_cache`] |
//!
//! The dump produces a [`image::CheckpointImage`] holding *real state* (page
//! bytes, socket queues, inode metadata); restore rebuilds a working
//! container from it on any kernel. Restore correctness is exercised
//! end-to-end by the workspace integration tests.

//! ## Example: checkpoint + restore across kernels
//!
//! ```
//! use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
//! use nilicon_criu::{full_dump, restore_container, DumpConfig, RestoreConfig};
//! use nilicon_sim::kernel::Kernel;
//!
//! let mut source = Kernel::default();
//! let spec = ContainerSpec::server("svc", 10, 80);
//! let cont = ContainerRuntime::create(&mut source, &spec).unwrap();
//! source.mem_write(cont.init_pid(), MemLayout::heap(0), b"precious").unwrap();
//!
//! let image = full_dump(&mut source, &cont, &DumpConfig::nilicon()).unwrap();
//!
//! let mut dest = Kernel::default();
//! let restored = restore_container(&mut dest, &image, &RestoreConfig::default()).unwrap();
//! restored.finish(&mut dest).unwrap();
//! let mut buf = [0u8; 8];
//! dest.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf).unwrap();
//! assert_eq!(&buf, b"precious");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod dump;
pub mod image;
pub mod imgfile;
pub mod pagestore;
pub mod restore;
pub mod shard;

pub use cache::InfrequentCache;
pub use delta::{DeltaStats, PageEncoding, ShadowStore};
pub use dump::{bootstrap_dump, dump_container, full_dump, DirtySource, DumpConfig, FsCacheMode};
pub use image::{CheckpointImage, DumpPhases, DumpStats, ProcessImage};
pub use imgfile::{decode as decode_image, encode as encode_image};
pub use pagestore::{LinkedListStore, PageKey, PageStore, RadixTreeStore};
pub use restore::{restore_container, RestoreConfig, RestoredContainer};
pub use shard::ShardCodec;
