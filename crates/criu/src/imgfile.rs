//! Binary serialization of checkpoint images — the equivalent of CRIU's
//! on-disk image files (§IV: at failover the backup agent "uses the
//! committed state to create image files in a format that CRIU expects").
//!
//! The format is a simple length-prefixed TLV container:
//!
//! ```text
//! magic "NLCN" | version u32 | section*           (little endian throughout)
//! section := tag u8 | len u64 | payload[len]
//! ```
//!
//! Sections: metadata (name/addr/epoch/ns), processes, pages, sockets,
//! fs-cache, kernel state (namespaces/cgroups/mounts/devfiles/paths). Page
//! payloads are raw 4 KiB frames preceded by (pid, vpn) keys. Decoding is
//! strict: unknown tags, truncated sections, or trailing bytes are errors —
//! a corrupt image must fail loudly at failover, not restore garbage.

use crate::image::{CheckpointImage, ProcessImage};
use nilicon_sim::ids::{Endpoint, Fd, Ino, Pid, SockId};
use nilicon_sim::mem::{MappedFile, Perms, Vma, VmaKind};
use nilicon_sim::net::RepairState;
use nilicon_sim::proc::{FdEntry, RegisterFile, SchedPolicy, Thread, ThreadRunState, Timer};
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

const MAGIC: &[u8; 4] = b"NLCN";
const VERSION: u32 = 1;

const TAG_META: u8 = 1;
const TAG_PROCESSES: u8 = 2;
const TAG_PAGES: u8 = 3;
const TAG_SOCKETS: u8 = 4;
const TAG_FS: u8 = 5;
const TAG_KERNEL: u8 = 6;

// ----------------------------------------------------------------------
// Little-endian writer/reader helpers
// ----------------------------------------------------------------------

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn new(buf: &'a [u8]) -> Self {
        R { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> SimResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(SimError::ImageCorrupt(format!(
                "truncated at {} (+{n} of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> SimResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> SimResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> SimResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> SimResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> SimResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> SimResult<Vec<u8>> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> SimResult<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| SimError::ImageCorrupt("non-utf8 string".into()))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ----------------------------------------------------------------------
// Encode
// ----------------------------------------------------------------------

/// Serialize an image to the NLCN binary format.
pub fn encode(img: &CheckpointImage) -> Vec<u8> {
    let mut out = W(Vec::with_capacity(64 + img.pages.len() * (PAGE_SIZE + 16)));
    out.0.extend_from_slice(MAGIC);
    out.u32(VERSION);

    // -------- meta --------
    let mut meta = W(Vec::new());
    meta.u64(img.epoch);
    meta.str(&img.name);
    meta.u32(img.addr);
    match img.ns {
        Some(ns) => {
            meta.u8(1);
            for id in [ns.pid, ns.net, ns.mnt, ns.uts, ns.ipc, ns.user] {
                meta.u32(id.0);
            }
        }
        None => meta.u8(0),
    }
    section(&mut out, TAG_META, meta.0);

    // -------- processes --------
    let mut ps = W(Vec::new());
    ps.u32(img.processes.len() as u32);
    for p in &img.processes {
        ps.u32(p.pid.0);
        ps.u32(p.ppid.0);
        ps.u32(p.mm.0);
        ps.str(&p.exe);
        ps.u32(p.threads.len() as u32);
        for t in &p.threads {
            ps.u32(t.tid.0);
            ps.u64(t.regs.rip);
            ps.u64(t.regs.rsp);
            for g in t.regs.gpr {
                ps.u64(g);
            }
            ps.u64(t.sigmask);
            ps.u32(t.timers.len() as u32);
            for timer in &t.timers {
                ps.u64(timer.expires_at);
                ps.u64(timer.interval);
            }
            match t.sched {
                SchedPolicy::Normal => ps.u8(0),
                SchedPolicy::Batch => ps.u8(1),
                SchedPolicy::Fifo(p) => {
                    ps.u8(2);
                    ps.u8(p);
                }
            }
        }
        ps.u32(p.fds.len() as u32);
        for (fd, entry) in &p.fds {
            ps.u32(fd.0 as u32);
            match entry {
                FdEntry::File { ino, offset, flags } => {
                    ps.u8(0);
                    ps.u64(ino.0);
                    ps.u64(*offset);
                    ps.u32(*flags);
                }
                FdEntry::Socket(sid) => {
                    ps.u8(1);
                    ps.u32(sid.0);
                }
            }
        }
        ps.u32(p.vmas.len() as u32);
        for v in &p.vmas {
            ps.u64(v.start);
            ps.u64(v.len);
            ps.u8(v.perms.r as u8 | (v.perms.w as u8) << 1 | (v.perms.x as u8) << 2);
            match v.kind {
                VmaKind::Anon => ps.u8(0),
                VmaKind::File(mf) => {
                    ps.u8(1);
                    ps.u64(mf.ino.0);
                    ps.u64(mf.file_off);
                }
            }
            ps.u8(v.is_heap as u8 | (v.is_stack as u8) << 1);
        }
    }
    section(&mut out, TAG_PROCESSES, ps.0);

    // -------- pages --------
    let mut pg = W(Vec::new());
    pg.u64(img.pages.len() as u64);
    for (pid, vpn, data) in &img.pages {
        pg.u32(pid.0);
        pg.u64(*vpn);
        pg.0.extend_from_slice(&data[..]);
    }
    section(&mut out, TAG_PAGES, pg.0);

    // -------- sockets --------
    let mut sk = W(Vec::new());
    sk.u32(img.listeners.len() as u32);
    for &port in &img.listeners {
        sk.u16(port);
    }
    sk.u32(img.sockets.len() as u32);
    for s in &img.sockets {
        sk.u32(s.local.addr);
        sk.u16(s.local.port);
        sk.u32(s.remote.addr);
        sk.u16(s.remote.port);
        sk.u32(s.snd_nxt);
        sk.u32(s.snd_una);
        sk.u32(s.rcv_nxt);
        sk.bytes(&s.write_queue);
        sk.bytes(&s.read_queue);
    }
    section(&mut out, TAG_SOCKETS, sk.0);

    // -------- fs cache --------
    let mut fs = W(Vec::new());
    fs.u64(img.fs_pages.pages.len() as u64);
    for (ino, idx, data, dirty) in &img.fs_pages.pages {
        fs.u64(ino.0);
        fs.u64(*idx);
        fs.u8(*dirty as u8);
        fs.0.extend_from_slice(&data[..]);
    }
    fs.u32(img.fs_inodes.len() as u32);
    for i in &img.fs_inodes {
        encode_inode(&mut fs, i);
    }
    section(&mut out, TAG_FS, fs.0);

    // -------- kernel state --------
    let mut ks = W(Vec::new());
    ks.u32(img.namespaces.len() as u32);
    for ns in &img.namespaces {
        ks.u32(ns.id.0);
        ks.u8(match ns.kind {
            nilicon_sim::ns::NsKind::Pid => 0,
            nilicon_sim::ns::NsKind::Net => 1,
            nilicon_sim::ns::NsKind::Mnt => 2,
            nilicon_sim::ns::NsKind::Uts => 3,
            nilicon_sim::ns::NsKind::Ipc => 4,
            nilicon_sim::ns::NsKind::User => 5,
        });
        ks.bytes(&ns.config);
    }
    ks.u32(img.cgroups.len() as u32);
    for g in &img.cgroups {
        ks.u32(g.id.0);
        ks.str(&g.path);
        ks.u64(g.cpuacct_usage);
        ks.u8(g.frozen as u8);
        ks.u32(g.cpu_shares);
        ks.u64(g.memory_limit);
    }
    ks.u32(img.mounts.len() as u32);
    for m in &img.mounts {
        ks.u32(m.id.0);
        ks.str(&m.source);
        ks.str(&m.target);
        ks.str(&m.fstype);
    }
    ks.u32(img.devfiles.len() as u32);
    for d in &img.devfiles {
        encode_inode(&mut ks, d);
    }
    ks.u32(img.paths.len() as u32);
    for (path, ino) in &img.paths {
        ks.str(path);
        ks.u64(ino.0);
    }
    // Dump stats (for provenance).
    ks.u64(img.stats.dirty_pages);
    ks.u64(img.stats.socket_queue_bytes);
    ks.u64(img.stats.sockets);
    ks.u64(img.stats.stop_time);
    ks.f64(img.stats.infrequent_recollections as f64);
    ks.u64(img.stats.fs_cache_pages);
    section(&mut out, TAG_KERNEL, ks.0);

    out.0
}

fn section(out: &mut W, tag: u8, payload: Vec<u8>) {
    out.u8(tag);
    out.u64(payload.len() as u64);
    out.0.extend_from_slice(&payload);
}

fn encode_inode(w: &mut W, i: &nilicon_sim::fs::Inode) {
    w.u64(i.ino.0);
    w.u8(match i.kind {
        nilicon_sim::fs::InodeKind::Regular => 0,
        nilicon_sim::fs::InodeKind::Directory => 1,
        nilicon_sim::fs::InodeKind::Device => 2,
    });
    w.u64(i.size);
    w.u32(i.mode);
    w.u32(i.uid);
    w.u32(i.gid);
    w.u64(i.mtime);
    w.u8(i.dnc as u8);
}

// ----------------------------------------------------------------------
// Decode
// ----------------------------------------------------------------------

/// Parse an NLCN image. Strict: corrupt input errors, never panics.
pub fn decode(buf: &[u8]) -> SimResult<CheckpointImage> {
    let mut r = R::new(buf);
    if r.take(4)? != MAGIC {
        return Err(SimError::ImageCorrupt("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SimError::ImageCorrupt(format!(
            "unsupported version {version}"
        )));
    }
    let mut img = CheckpointImage::default();
    let mut seen = [false; 7];
    while !r.done() {
        let tag = r.u8()?;
        let len = r.u64()? as usize;
        let payload = r.take(len)?;
        if (tag as usize) < seen.len() {
            if seen[tag as usize] {
                return Err(SimError::ImageCorrupt(format!("duplicate section {tag}")));
            }
            seen[tag as usize] = true;
        }
        let mut pr = R::new(payload);
        match tag {
            TAG_META => decode_meta(&mut pr, &mut img)?,
            TAG_PROCESSES => decode_processes(&mut pr, &mut img)?,
            TAG_PAGES => decode_pages(&mut pr, &mut img)?,
            TAG_SOCKETS => decode_sockets(&mut pr, &mut img)?,
            TAG_FS => decode_fs(&mut pr, &mut img)?,
            TAG_KERNEL => decode_kernel(&mut pr, &mut img)?,
            other => return Err(SimError::ImageCorrupt(format!("unknown section {other}"))),
        }
        if !pr.done() {
            return Err(SimError::ImageCorrupt(format!(
                "trailing bytes in section {tag}"
            )));
        }
    }
    Ok(img)
}

fn decode_meta(r: &mut R<'_>, img: &mut CheckpointImage) -> SimResult<()> {
    img.epoch = r.u64()?;
    img.name = r.str()?;
    img.addr = r.u32()?;
    if r.u8()? == 1 {
        use nilicon_sim::ids::NsId;
        img.ns = Some(nilicon_sim::ns::NsSet {
            pid: NsId(r.u32()?),
            net: NsId(r.u32()?),
            mnt: NsId(r.u32()?),
            uts: NsId(r.u32()?),
            ipc: NsId(r.u32()?),
            user: NsId(r.u32()?),
        });
    }
    Ok(())
}

fn decode_processes(r: &mut R<'_>, img: &mut CheckpointImage) -> SimResult<()> {
    let n = r.u32()? as usize;
    for _ in 0..n {
        let pid = Pid(r.u32()?);
        let ppid = Pid(r.u32()?);
        let mm = nilicon_sim::ids::AsId(r.u32()?);
        let exe = r.str()?;
        let nthreads = r.u32()? as usize;
        let mut threads = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let tid = nilicon_sim::ids::Tid(r.u32()?);
            let rip = r.u64()?;
            let rsp = r.u64()?;
            let mut gpr = [0u64; 14];
            for g in &mut gpr {
                *g = r.u64()?;
            }
            let sigmask = r.u64()?;
            let ntimers = r.u32()? as usize;
            let mut timers = Vec::with_capacity(ntimers);
            for _ in 0..ntimers {
                timers.push(Timer {
                    expires_at: r.u64()?,
                    interval: r.u64()?,
                });
            }
            let sched = match r.u8()? {
                0 => SchedPolicy::Normal,
                1 => SchedPolicy::Batch,
                2 => SchedPolicy::Fifo(r.u8()?),
                x => return Err(SimError::ImageCorrupt(format!("bad sched {x}"))),
            };
            threads.push(Thread {
                tid,
                regs: RegisterFile { rip, rsp, gpr },
                sigmask,
                timers,
                sched,
                run_state: ThreadRunState::User,
                // Recording aid, not guest state: replay re-derives the
                // scheduling sequence from the log, so restores start at 0.
                sched_seq: 0,
            });
        }
        let nfds = r.u32()? as usize;
        let mut fds = Vec::with_capacity(nfds);
        for _ in 0..nfds {
            let fd = Fd(r.u32()? as i32);
            let entry = match r.u8()? {
                0 => FdEntry::File {
                    ino: Ino(r.u64()?),
                    offset: r.u64()?,
                    flags: r.u32()?,
                },
                1 => FdEntry::Socket(SockId(r.u32()?)),
                x => return Err(SimError::ImageCorrupt(format!("bad fd kind {x}"))),
            };
            fds.push((fd, entry));
        }
        let nvmas = r.u32()? as usize;
        let mut vmas = Vec::with_capacity(nvmas);
        for _ in 0..nvmas {
            let start = r.u64()?;
            let len = r.u64()?;
            let pbits = r.u8()?;
            let perms = Perms {
                r: pbits & 1 != 0,
                w: pbits & 2 != 0,
                x: pbits & 4 != 0,
            };
            let kind = match r.u8()? {
                0 => VmaKind::Anon,
                1 => VmaKind::File(MappedFile {
                    ino: Ino(r.u64()?),
                    file_off: r.u64()?,
                }),
                x => return Err(SimError::ImageCorrupt(format!("bad vma kind {x}"))),
            };
            let flags = r.u8()?;
            vmas.push(Vma {
                start,
                len,
                perms,
                kind,
                is_heap: flags & 1 != 0,
                is_stack: flags & 2 != 0,
            });
        }
        img.processes.push(ProcessImage {
            pid,
            ppid,
            mm,
            exe,
            threads,
            fds,
            vmas,
        });
    }
    Ok(())
}

fn decode_pages(r: &mut R<'_>, img: &mut CheckpointImage) -> SimResult<()> {
    let n = r.u64()? as usize;
    img.pages.reserve(n);
    for _ in 0..n {
        let pid = Pid(r.u32()?);
        let vpn = r.u64()?;
        let data = r.take(PAGE_SIZE)?;
        let mut page = [0u8; PAGE_SIZE];
        page.copy_from_slice(data);
        img.pages.push((pid, vpn, std::rc::Rc::new(page)));
    }
    Ok(())
}

fn decode_sockets(r: &mut R<'_>, img: &mut CheckpointImage) -> SimResult<()> {
    let nl = r.u32()? as usize;
    for _ in 0..nl {
        img.listeners.push(r.u16()?);
    }
    let ns = r.u32()? as usize;
    for _ in 0..ns {
        img.sockets.push(RepairState {
            local: Endpoint::new(r.u32()?, r.u16()?),
            remote: Endpoint::new(r.u32()?, r.u16()?),
            snd_nxt: r.u32()?,
            snd_una: r.u32()?,
            rcv_nxt: r.u32()?,
            write_queue: r.bytes()?,
            read_queue: r.bytes()?,
        });
    }
    Ok(())
}

fn decode_fs(r: &mut R<'_>, img: &mut CheckpointImage) -> SimResult<()> {
    let n = r.u64()? as usize;
    for _ in 0..n {
        let ino = Ino(r.u64()?);
        let idx = r.u64()?;
        let dirty = r.u8()? != 0;
        let data = r.take(PAGE_SIZE)?;
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page.copy_from_slice(data);
        img.fs_pages.pages.push((ino, idx, page, dirty));
    }
    let ni = r.u32()? as usize;
    for _ in 0..ni {
        img.fs_inodes.push(decode_inode(r)?);
    }
    Ok(())
}

fn decode_inode(r: &mut R<'_>) -> SimResult<nilicon_sim::fs::Inode> {
    Ok(nilicon_sim::fs::Inode {
        ino: Ino(r.u64()?),
        kind: match r.u8()? {
            0 => nilicon_sim::fs::InodeKind::Regular,
            1 => nilicon_sim::fs::InodeKind::Directory,
            2 => nilicon_sim::fs::InodeKind::Device,
            x => return Err(SimError::ImageCorrupt(format!("bad inode kind {x}"))),
        },
        size: r.u64()?,
        mode: r.u32()?,
        uid: r.u32()?,
        gid: r.u32()?,
        mtime: r.u64()?,
        dnc: r.u8()? != 0,
    })
}

fn decode_kernel(r: &mut R<'_>, img: &mut CheckpointImage) -> SimResult<()> {
    use nilicon_sim::ns::{Namespace, NsKind};
    let n = r.u32()? as usize;
    for _ in 0..n {
        let id = nilicon_sim::ids::NsId(r.u32()?);
        let kind = match r.u8()? {
            0 => NsKind::Pid,
            1 => NsKind::Net,
            2 => NsKind::Mnt,
            3 => NsKind::Uts,
            4 => NsKind::Ipc,
            5 => NsKind::User,
            x => return Err(SimError::ImageCorrupt(format!("bad ns kind {x}"))),
        };
        img.namespaces.push(Namespace {
            id,
            kind,
            config: r.bytes()?,
        });
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        img.cgroups.push(nilicon_sim::cgroup::Cgroup {
            id: nilicon_sim::ids::CgroupId(r.u32()?),
            path: r.str()?,
            cpuacct_usage: r.u64()?,
            frozen: r.u8()? != 0,
            cpu_shares: r.u32()?,
            memory_limit: r.u64()?,
        });
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        img.mounts.push(nilicon_sim::fs::Mount {
            id: nilicon_sim::ids::MountId(r.u32()?),
            source: r.str()?,
            target: r.str()?,
            fstype: r.str()?,
        });
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        img.devfiles.push(decode_inode(r)?);
    }
    let n = r.u32()? as usize;
    for _ in 0..n {
        img.paths.push((r.str()?, Ino(r.u64()?)));
    }
    img.stats.dirty_pages = r.u64()?;
    img.stats.socket_queue_bytes = r.u64()?;
    img.stats.sockets = r.u64()?;
    img.stats.stop_time = r.u64()?;
    img.stats.infrequent_recollections = r.f64()? as u32;
    img.stats.fs_cache_pages = r.u64()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{full_dump, DumpConfig};
    use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
    use nilicon_sim::kernel::Kernel;

    fn sample_image() -> CheckpointImage {
        let mut k = Kernel::default();
        let spec = ContainerSpec::server("imgtest", 10, 80);
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        k.mem_write(c.init_pid(), MemLayout::heap(0), b"serialize me")
            .unwrap();
        let pid = c.init_pid();
        let fd = k.create_file(pid, "/data/f", 0).unwrap();
        k.pwrite(pid, fd, 0, b"cache", 1).unwrap();
        full_dump(&mut k, &c, &DumpConfig::nilicon()).unwrap()
    }

    fn images_equal(a: &CheckpointImage, b: &CheckpointImage) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.name, b.name);
        assert_eq!(a.addr, b.addr);
        assert_eq!(a.ns, b.ns);
        assert_eq!(a.processes.len(), b.processes.len());
        for (p, q) in a.processes.iter().zip(&b.processes) {
            assert_eq!(p.pid, q.pid);
            assert_eq!(p.exe, q.exe);
            assert_eq!(p.fds, q.fds);
            assert_eq!(p.vmas, q.vmas);
            assert_eq!(p.threads.len(), q.threads.len());
            for (t, u) in p.threads.iter().zip(&q.threads) {
                assert_eq!(t.tid, u.tid);
                assert_eq!(t.regs, u.regs);
                assert_eq!(t.sigmask, u.sigmask);
                assert_eq!(t.timers, u.timers);
                assert_eq!(t.sched, u.sched);
            }
        }
        assert_eq!(a.pages.len(), b.pages.len());
        for ((p1, v1, d1), (p2, v2, d2)) in a.pages.iter().zip(&b.pages) {
            assert_eq!((p1, v1), (p2, v2));
            assert_eq!(d1[..], d2[..]);
        }
        assert_eq!(a.listeners, b.listeners);
        assert_eq!(a.sockets, b.sockets);
        assert_eq!(a.fs_pages.pages.len(), b.fs_pages.pages.len());
        assert_eq!(a.fs_inodes, b.fs_inodes);
        assert_eq!(a.namespaces, b.namespaces);
        assert_eq!(a.mounts, b.mounts);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.stats.dirty_pages, b.stats.dirty_pages);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let img = sample_image();
        let bytes = encode(&img);
        assert_eq!(&bytes[..4], b"NLCN");
        let back = decode(&bytes).unwrap();
        images_equal(&img, &back);
    }

    #[test]
    fn restore_from_decoded_image_works() {
        let img = sample_image();
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        let mut dest = Kernel::default();
        let restored =
            crate::restore::restore_container(&mut dest, &back, &Default::default()).unwrap();
        let mut buf = [0u8; 12];
        dest.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"serialize me");
    }

    #[test]
    fn corrupt_inputs_error_cleanly() {
        let img = sample_image();
        let good = encode(&img);

        assert!(decode(b"XXXX").is_err(), "bad magic");
        let mut wrong_ver = good.clone();
        wrong_ver[4] = 99;
        assert!(decode(&wrong_ver).is_err(), "bad version");

        // Truncations at every section boundary-ish offset.
        for cut in [5usize, 13, 40, good.len() / 2, good.len() - 1] {
            assert!(decode(&good[..cut]).is_err(), "truncated at {cut}");
        }

        // Unknown trailing section.
        let mut trailing = good.clone();
        trailing.push(42);
        assert!(decode(&trailing).is_err());
    }

    #[test]
    fn size_is_dominated_by_pages() {
        let img = sample_image();
        let bytes = encode(&img);
        let page_bytes = img.pages.len() * PAGE_SIZE;
        assert!(bytes.len() > page_bytes);
        assert!(
            bytes.len() < page_bytes + 64 * 1024,
            "metadata overhead is modest"
        );
    }
}
