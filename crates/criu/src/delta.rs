//! Page-delta encoding for the epoch state transfer.
//!
//! NiLiCon's per-epoch wire volume is dominated by dirty pages, and every
//! dirty page ships its full 4 KiB body even when only a few cache lines
//! changed (§V, Table I). HyCoR (Zhou & Tamir, arXiv:2101.09584) attacks
//! exactly this: shrink what must cross the replication link per epoch. This
//! module implements the primary-side half of that pipeline:
//!
//! * a [`ShadowStore`] holding the page contents as of the last epoch the
//!   primary shipped (the backup applies epochs in order, so this is the base
//!   the backup will hold when the delta arrives);
//! * [`ShadowStore::encode`], which classifies each dirty page as a **zero
//!   page** (elided — a one-word marker), an **XOR delta** (sparse word-level
//!   diff against the shadow copy, run-length encoded), or a **full page**
//!   (first touch, or churn so dense the delta would not pay);
//! * [`PageEncoding::apply`], the backup-side inverse, which reconstructs the
//!   exact page bytes from the base page — the committed image is
//!   byte-identical to the full-page path.
//!
//! Pages enter and leave as [`PageBuf`]s (refcounted immutable buffers), so
//! shadow updates and full-page encodings are `Rc` clones, not 4 KiB copies.
//! The diff scan itself works a 64-byte block at a time: equal blocks are
//! dismissed with a single slice comparison (a vectorized `memcmp`), and only
//! unequal blocks fall into the word-at-a-time `u64` loop — SIMD-friendly on
//! the common sparsely-edited page.
//!
//! Per-epoch classification and byte accounting accumulate in [`DeltaStats`]
//! (the `DeltaEncode` trace span and `trace-report`'s encoded-vs-raw column).

use crate::pagestore::PageKey;
use nilicon_sim::{zero_page, PageBuf, PAGE_SIZE};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// Multiply-rotate hasher for [`PageKey`]s (FxHash-style). The shadow lookup
/// sits on the per-page encode path; SipHash's keyed rounds cost more than
/// the whole diff scan of an unchanged page, and HashDoS resistance buys
/// nothing against our own page keys.
#[derive(Default)]
pub struct PageKeyHasher(u64);

impl PageKeyHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for PageKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
}

type PageKeyBuild = BuildHasherDefault<PageKeyHasher>;

/// 64-bit words per page (the XOR diff granularity).
pub const WORDS_PER_PAGE: usize = PAGE_SIZE / 8;

/// Bytes per comparison block (one cache line): the granularity at which the
/// encode scan skips unchanged data with a single vectorized compare.
const BLOCK_BYTES: usize = 64;

/// Wire-size model: every encoded page carries one 8-byte header word
/// (class tag + vpn-relative addressing).
const HEADER_BYTES: u64 = 8;
/// Wire-size model: each run costs one offset/length word plus its payload.
const RUN_HEADER_BYTES: u64 = 8;

/// One run of consecutive changed 64-bit words within a page.
///
/// A run is a descriptor only — its XOR payload lives in the owning
/// [`DeltaPage`]'s flat `xor_words` vector. Per-run payload storage would
/// cost one heap allocation per run, which dominates encode time for the
/// common case of scattered single-word edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRun {
    /// Word offset of the run within the page (`0..WORDS_PER_PAGE`).
    pub word_off: u16,
    /// Number of consecutive changed words in the run.
    pub len: u16,
}

/// Sparse XOR diff of one page: run descriptors over a single flat payload
/// (two allocations total, regardless of how scattered the edits are).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaPage {
    /// Maximal runs of consecutive changed words, ascending by `word_off`.
    pub runs: Vec<DeltaRun>,
    /// Concatenated XOR payloads of all runs, in run order (applying the
    /// delta XORs these back into the base page).
    pub xor_words: Vec<u64>,
}

impl DeltaPage {
    /// Total changed words across all runs.
    pub fn words(&self) -> usize {
        self.xor_words.len()
    }

    /// Iterate `(word_off, xor_words)` per run.
    pub fn iter_runs(&self) -> impl Iterator<Item = (u16, &[u64])> {
        let mut cursor = 0usize;
        self.runs.iter().map(move |r| {
            let words = &self.xor_words[cursor..cursor + r.len as usize];
            cursor += r.len as usize;
            (r.word_off, words)
        })
    }
}

/// How one dirty page crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageEncoding {
    /// The page is entirely zero: send a one-word marker, no body.
    Zero,
    /// Sparse change: run-length-encoded XOR against the previous epoch's
    /// contents of the same page.
    Delta(DeltaPage),
    /// Full 4 KiB body (first touch of the page, or dense churn where the
    /// delta encoding would not be smaller). Shares the captured buffer —
    /// encoding a full page allocates nothing.
    Full(PageBuf),
}

impl PageEncoding {
    /// Classification name (stats and reports).
    pub fn class(&self) -> &'static str {
        match self {
            PageEncoding::Zero => "zero",
            PageEncoding::Delta(_) => "delta",
            PageEncoding::Full(_) => "full",
        }
    }

    /// Modeled wire bytes of this encoding (what `transfer_cost` charges).
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            PageEncoding::Zero => HEADER_BYTES,
            PageEncoding::Delta(dp) => {
                HEADER_BYTES
                    + RUN_HEADER_BYTES * dp.runs.len() as u64
                    + 8 * dp.xor_words.len() as u64
            }
            PageEncoding::Full(_) => HEADER_BYTES + PAGE_SIZE as u64,
        }
    }

    /// Reconstruct the exact page bytes this encoding represents, given the
    /// receiver's current copy of the page (`None` if the page was never seen
    /// — only `Zero` and `Full` are self-contained; applying a `Delta`
    /// without a base is an image-corruption error upstream, here it applies
    /// against an all-zero base to stay total).
    pub fn apply(&self, base: Option<&[u8; PAGE_SIZE]>) -> PageBuf {
        match self {
            PageEncoding::Zero => zero_page(),
            PageEncoding::Full(data) => data.clone(),
            PageEncoding::Delta(dp) => {
                let mut page: [u8; PAGE_SIZE] = match base {
                    Some(b) => *b,
                    None => [0u8; PAGE_SIZE],
                };
                for (word_off, words) in dp.iter_runs() {
                    let mut off = word_off as usize * 8;
                    for xw in words {
                        let w = u64::from_le_bytes(page[off..off + 8].try_into().unwrap()) ^ xw;
                        page[off..off + 8].copy_from_slice(&w.to_le_bytes());
                        off += 8;
                    }
                }
                Rc::new(page)
            }
        }
    }
}

/// Per-epoch delta-pipeline accounting (feeds the `DeltaEncode` trace span).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Pages elided as all-zero.
    pub zero_pages: u64,
    /// Pages shipped as sparse XOR deltas.
    pub delta_pages: u64,
    /// Pages shipped in full (first touch / dense churn).
    pub full_pages: u64,
    /// Raw bytes the full-page path would have shipped (`pages × 4 KiB`).
    pub raw_bytes: u64,
    /// Bytes actually put on the wire after encoding.
    pub encoded_bytes: u64,
}

impl DeltaStats {
    /// Total pages classified this epoch.
    pub fn pages(&self) -> u64 {
        self.zero_pages + self.delta_pages + self.full_pages
    }

    /// Accumulate another epoch's stats (run totals in reports).
    pub fn merge(&mut self, other: &DeltaStats) {
        self.zero_pages += other.zero_pages;
        self.delta_pages += other.delta_pages;
        self.full_pages += other.full_pages;
        self.raw_bytes += other.raw_bytes;
        self.encoded_bytes += other.encoded_bytes;
    }
}

/// Primary-side shadow of the page contents most recently shipped to the
/// backup, keyed like the backup's page store. Encoding a page both
/// classifies it against the shadow copy and updates the shadow, so the next
/// epoch's delta is always relative to what the backup will hold once it
/// applies this epoch (the backup applies epochs strictly in order, §IV).
#[derive(Debug, Default)]
pub struct ShadowStore {
    pages: HashMap<PageKey, PageBuf, PageKeyBuild>,
}

impl ShadowStore {
    /// Empty shadow (before the initial sync).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pages currently shadowed.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True before any page was encoded.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Classify and encode one dirty page against the shadow copy, updating
    /// the shadow and `stats`.
    pub fn encode(&mut self, key: PageKey, data: &PageBuf, stats: &mut DeltaStats) -> PageEncoding {
        stats.raw_bytes += PAGE_SIZE as u64;
        // One shadow lookup covers classification and update; the shadow
        // takes an `Rc` clone, so the shadow, the in-flight encoding, and
        // the caller's staging buffer all share one immutable allocation (a
        // zero page shadows its literal zero contents, so later deltas
        // against it are correct).
        let enc = match self.pages.entry(key) {
            Entry::Vacant(e) => {
                let enc = if is_zero_page(data) {
                    stats.zero_pages += 1;
                    PageEncoding::Zero
                } else {
                    stats.full_pages += 1;
                    PageEncoding::Full(data.clone())
                };
                e.insert(data.clone());
                enc
            }
            Entry::Occupied(mut e) => {
                let enc = if is_zero_page(data) {
                    stats.zero_pages += 1;
                    PageEncoding::Zero
                } else {
                    let delta = PageEncoding::Delta(xor_runs(e.get(), data));
                    if delta.encoded_bytes() < PAGE_SIZE as u64 {
                        stats.delta_pages += 1;
                        delta
                    } else {
                        // Dense churn: the diff would not beat the raw page.
                        stats.full_pages += 1;
                        PageEncoding::Full(data.clone())
                    }
                };
                e.insert(data.clone());
                enc
            }
        };
        stats.encoded_bytes += enc.encoded_bytes();
        enc
    }
}

/// All-zero check, one 64-byte block compare at a time (vectorized memcmp).
fn is_zero_page(data: &[u8; PAGE_SIZE]) -> bool {
    const ZERO_BLOCK: [u8; BLOCK_BYTES] = [0u8; BLOCK_BYTES];
    data.chunks_exact(BLOCK_BYTES).all(|b| b == ZERO_BLOCK)
}

/// Per-word diff bitmap of a page: bit `w` of `result[w / 64]` is set iff
/// 64-bit word `w` differs between `old` and `new`. Dispatches to the widest
/// vector kernel the CPU supports; `is_x86_feature_detected!` caches its
/// CPUID probe, so the per-call dispatch cost is a predicted branch.
#[inline]
fn diff_word_bitmap(old: &[u8; PAGE_SIZE], new: &[u8; PAGE_SIZE]) -> [u64; WORDS_PER_PAGE / 64] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f support was just verified at runtime.
            return unsafe { diff_word_bitmap_avx512(old, new) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 support was just verified at runtime.
            return unsafe { diff_word_bitmap_avx2(old, new) };
        }
    }
    diff_word_bitmap_scalar(old, new)
}

/// AVX-512 word diff: `vpcmpq` yields one inequality bit per 64-bit lane
/// directly in a mask register — two memory operations plus one compare per
/// 64-byte block, and the per-word bitmap falls out for free (no second
/// pass over changed blocks is ever needed).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn diff_word_bitmap_avx512(
    old: &[u8; PAGE_SIZE],
    new: &[u8; PAGE_SIZE],
) -> [u64; WORDS_PER_PAGE / 64] {
    use std::arch::x86_64::*;
    let mut bm = [0u64; WORDS_PER_PAGE / 64];
    for (chunk, out) in bm.iter_mut().enumerate() {
        let mut acc = 0u64;
        // 8 blocks of 64 bytes = the 64 words covered by one bitmap entry.
        for block in 0..8 {
            let off = chunk * 512 + block * BLOCK_BYTES;
            // SAFETY: `off + 64 <= PAGE_SIZE`; unaligned loads are explicit.
            let o = unsafe { _mm512_loadu_si512(old.as_ptr().add(off) as *const _) };
            let n = unsafe { _mm512_loadu_si512(new.as_ptr().add(off) as *const _) };
            let k = _mm512_cmpneq_epi64_mask(o, n) as u64;
            acc |= k << (block * 8);
        }
        *out = acc;
    }
    bm
}

/// AVX2 word diff: `vpcmpeqq` per 32-byte half, sign bits extracted with
/// `vmovmskpd` (one bit per 64-bit lane), then inverted into inequality.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn diff_word_bitmap_avx2(
    old: &[u8; PAGE_SIZE],
    new: &[u8; PAGE_SIZE],
) -> [u64; WORDS_PER_PAGE / 64] {
    use std::arch::x86_64::*;
    let mut bm = [0u64; WORDS_PER_PAGE / 64];
    for (chunk, out) in bm.iter_mut().enumerate() {
        let mut acc = 0u64;
        for block in 0..8 {
            let off = chunk * 512 + block * BLOCK_BYTES;
            // SAFETY: `off + 64 <= PAGE_SIZE`; unaligned loads are explicit.
            let eq = unsafe {
                let o0 = _mm256_loadu_si256(old.as_ptr().add(off) as *const _);
                let o1 = _mm256_loadu_si256(old.as_ptr().add(off + 32) as *const _);
                let n0 = _mm256_loadu_si256(new.as_ptr().add(off) as *const _);
                let n1 = _mm256_loadu_si256(new.as_ptr().add(off + 32) as *const _);
                let e0 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(o0, n0)));
                let e1 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(o1, n1)));
                (e0 as u64 & 0xf) | ((e1 as u64 & 0xf) << 4)
            };
            acc |= (!eq & 0xff) << (block * 8);
        }
        *out = acc;
    }
    bm
}

/// Portable word diff (and the reference the vector kernels are tested
/// against): one branch-free XOR pass, one bitmap bit per word.
fn diff_word_bitmap_scalar(
    old: &[u8; PAGE_SIZE],
    new: &[u8; PAGE_SIZE],
) -> [u64; WORDS_PER_PAGE / 64] {
    let mut bm = [0u64; WORDS_PER_PAGE / 64];
    for (chunk, out) in bm.iter_mut().enumerate() {
        let mut acc = 0u64;
        for w in 0..64 {
            let off = (chunk * 64 + w) * 8;
            let ow = u64::from_le_bytes(old[off..off + 8].try_into().unwrap());
            let nw = u64::from_le_bytes(new[off..off + 8].try_into().unwrap());
            acc |= u64::from(ow != nw) << w;
        }
        *out = acc;
    }
    bm
}

/// Word-level XOR diff of two pages, as maximal runs of changed words over a
/// flat payload.
///
/// A vectorized pass ([`diff_word_bitmap`]) finds exactly which 64-bit words
/// changed; the run builder then touches only those words — no rescan of
/// unchanged data. Runs of consecutive set bits become [`DeltaRun`]s, so the
/// output is byte-identical to a plain full-page word scan.
fn xor_runs(old: &[u8; PAGE_SIZE], new: &[u8; PAGE_SIZE]) -> DeltaPage {
    let bm = diff_word_bitmap(old, new);
    let total: usize = bm.iter().map(|b| b.count_ones() as usize).sum();
    let mut dp = DeltaPage::default();
    if total == 0 {
        return dp;
    }
    // The exact word count is known up front: one allocation each, no
    // regrowth (runs can never outnumber changed words).
    dp.xor_words.reserve_exact(total);
    dp.runs.reserve_exact(total);
    let mut prev_word = usize::MAX - 1;
    for (chunk, &chunk_bits) in bm.iter().enumerate() {
        let mut bits = chunk_bits;
        while bits != 0 {
            let w = chunk * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let off = w * 8;
            let ow = u64::from_le_bytes(old[off..off + 8].try_into().unwrap());
            let nw = u64::from_le_bytes(new[off..off + 8].try_into().unwrap());
            if w == prev_word + 1 {
                dp.runs.last_mut().expect("adjacent word extends a run").len += 1;
            } else {
                dp.runs.push(DeltaRun {
                    word_off: w as u16,
                    len: 1,
                });
            }
            dp.xor_words.push(ow ^ nw);
            prev_word = w;
        }
    }
    dp
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::ids::Pid;

    fn key(vpn: u64) -> PageKey {
        PageKey { pid: Pid(1), vpn }
    }

    fn page_with(edits: &[(usize, u8)]) -> PageBuf {
        let mut p = [0u8; PAGE_SIZE];
        for &(i, v) in edits {
            p[i] = v;
        }
        Rc::new(p)
    }

    #[test]
    fn zero_page_elides_to_one_word() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let enc = s.encode(key(1), &zero_page(), &mut st);
        assert_eq!(enc, PageEncoding::Zero);
        assert_eq!(enc.encoded_bytes(), 8);
        assert_eq!(st.zero_pages, 1);
        assert_eq!(*enc.apply(None), [0u8; PAGE_SIZE]);
    }

    #[test]
    fn first_touch_ships_full_page() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let p = page_with(&[(0, 7)]);
        let enc = s.encode(key(1), &p, &mut st);
        assert!(matches!(enc, PageEncoding::Full(_)));
        assert_eq!(enc.encoded_bytes(), 8 + PAGE_SIZE as u64);
        assert_eq!(enc.apply(None), p);
    }

    #[test]
    fn full_encoding_shares_the_input_buffer() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let p = page_with(&[(0, 7)]);
        let enc = s.encode(key(1), &p, &mut st);
        match enc {
            PageEncoding::Full(buf) => {
                assert!(Rc::ptr_eq(&buf, &p), "zero-copy: same allocation");
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn sparse_rewrite_becomes_small_delta() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let v1 = page_with(&[(16, 1), (17, 2)]);
        s.encode(key(1), &v1, &mut st);
        // Touch one word: delta is header + one run (one word).
        let v2 = page_with(&[(16, 1), (17, 99)]);
        let enc = s.encode(key(1), &v2, &mut st);
        assert!(matches!(enc, PageEncoding::Delta(_)));
        assert_eq!(enc.encoded_bytes(), 8 + 8 + 8);
        assert_eq!(enc.apply(Some(&v1)), v2, "delta reconstructs exactly");
        assert_eq!(st.delta_pages, 1);
        assert_eq!(st.raw_bytes, 2 * PAGE_SIZE as u64);
        assert!(st.encoded_bytes < st.raw_bytes);
    }

    #[test]
    fn adjacent_changed_words_coalesce_into_one_run() {
        let old = page_with(&[]);
        let new = page_with(&[(8, 1), (16, 2), (24, 3)]); // words 1,2,3
        let dp = xor_runs(&old, &new);
        assert_eq!(dp.runs.len(), 1);
        assert_eq!(dp.runs[0].word_off, 1);
        assert_eq!(dp.runs[0].len, 3);
        assert_eq!(dp.words(), 3);
    }

    #[test]
    fn run_straddling_a_block_boundary_stays_one_run() {
        // Words 6..10 span the first/second 64-byte blocks; the block-skip
        // scan must still produce one maximal run, like the plain word scan.
        let old = page_with(&[]);
        let new = page_with(&[(48, 1), (56, 2), (64, 3), (72, 4)]); // words 6..=9
        let dp = xor_runs(&old, &new);
        assert_eq!(dp.runs.len(), 1);
        assert_eq!(dp.runs[0].word_off, 6);
        assert_eq!(dp.runs[0].len, 4);
    }

    #[test]
    fn flat_runs_iterate_with_correct_payload_slices() {
        // Two separated runs: words 0..2 and word 100.
        let old = page_with(&[]);
        let new = page_with(&[(0, 1), (8, 2), (800, 3)]);
        let dp = xor_runs(&old, &new);
        let collected: Vec<(u16, Vec<u64>)> =
            dp.iter_runs().map(|(off, ws)| (off, ws.to_vec())).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].0, 0);
        assert_eq!(collected[0].1, vec![1, 2]);
        assert_eq!(collected[1].0, 100);
        assert_eq!(collected[1].1, vec![3]);
    }

    #[test]
    fn vector_block_diff_matches_scalar_reference() {
        // Adversarial placements: block edges, word edges, dense stretches.
        let mut old = [0u8; PAGE_SIZE];
        let mut new = [0u8; PAGE_SIZE];
        for i in 0..PAGE_SIZE {
            old[i] = (i * 7 + 3) as u8;
            new[i] = old[i];
        }
        for &i in &[0usize, 63, 64, 127, 511, 512, 2048, 4095] {
            new[i] ^= 0x80;
        }
        for b in new.iter_mut().skip(1024).take(256) {
            *b = b.wrapping_add(1); // a dense 4-block stretch
        }
        assert_eq!(
            diff_word_bitmap(&old, &new),
            diff_word_bitmap_scalar(&old, &new),
            "dispatched kernel must agree with the scalar reference"
        );
        // And the zero-diff case.
        assert_eq!(diff_word_bitmap(&old, &old), [0u64; WORDS_PER_PAGE / 64]);
    }

    #[test]
    fn dense_churn_falls_back_to_full() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let v1 = page_with(&[(0, 1)]);
        s.encode(key(1), &v1, &mut st);
        // Rewrite every word: the delta would exceed a raw page.
        let mut raw = [0u8; PAGE_SIZE];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = (i % 251) as u8 + 1;
        }
        let v2 = Rc::new(raw);
        let enc = s.encode(key(1), &v2, &mut st);
        assert!(matches!(enc, PageEncoding::Full(_)), "dense diff not taken");
        assert_eq!(enc.apply(Some(&v1)), v2);
    }

    #[test]
    fn page_returning_to_zero_is_elided_and_shadowed_as_zero() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let v1 = page_with(&[(100, 5)]);
        s.encode(key(1), &v1, &mut st);
        let enc = s.encode(key(1), &zero_page(), &mut st);
        assert_eq!(enc, PageEncoding::Zero);
        // A later sparse write deltas against the *zero* shadow, not v1.
        let v3 = page_with(&[(100, 9)]);
        let enc3 = s.encode(key(1), &v3, &mut st);
        let base = [0u8; PAGE_SIZE];
        assert_eq!(enc3.apply(Some(&base)), v3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = DeltaStats {
            zero_pages: 1,
            delta_pages: 2,
            full_pages: 3,
            raw_bytes: 100,
            encoded_bytes: 50,
        };
        a.merge(&a.clone());
        assert_eq!(a.pages(), 12);
        assert_eq!(a.raw_bytes, 200);
        assert_eq!(a.encoded_bytes, 100);
    }
}
