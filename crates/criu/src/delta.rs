//! Page-delta encoding for the epoch state transfer.
//!
//! NiLiCon's per-epoch wire volume is dominated by dirty pages, and every
//! dirty page ships its full 4 KiB body even when only a few cache lines
//! changed (§V, Table I). HyCoR (Zhou & Tamir, arXiv:2101.09584) attacks
//! exactly this: shrink what must cross the replication link per epoch. This
//! module implements the primary-side half of that pipeline:
//!
//! * a [`ShadowStore`] holding the page contents as of the last epoch the
//!   primary shipped (the backup applies epochs in order, so this is the base
//!   the backup will hold when the delta arrives);
//! * [`ShadowStore::encode`], which classifies each dirty page as a **zero
//!   page** (elided — a one-word marker), an **XOR delta** (sparse word-level
//!   diff against the shadow copy, run-length encoded), or a **full page**
//!   (first touch, or churn so dense the delta would not pay);
//! * [`PageEncoding::apply`], the backup-side inverse, which reconstructs the
//!   exact page bytes from the base page — the committed image is
//!   byte-identical to the full-page path.
//!
//! Per-epoch classification and byte accounting accumulate in [`DeltaStats`]
//! (the `DeltaEncode` trace span and `trace-report`'s encoded-vs-raw column).

use crate::pagestore::PageKey;
use nilicon_sim::PAGE_SIZE;
use std::collections::HashMap;

/// 64-bit words per page (the XOR diff granularity).
pub const WORDS_PER_PAGE: usize = PAGE_SIZE / 8;

/// Wire-size model: every encoded page carries one 8-byte header word
/// (class tag + vpn-relative addressing).
const HEADER_BYTES: u64 = 8;
/// Wire-size model: each run costs one offset/length word plus its payload.
const RUN_HEADER_BYTES: u64 = 8;

/// One run of consecutive changed 64-bit words within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRun {
    /// Word offset of the run within the page (`0..WORDS_PER_PAGE`).
    pub word_off: u16,
    /// XOR of old and new contents for each word in the run (applying the
    /// delta XORs these back in).
    pub xor_words: Vec<u64>,
}

/// How one dirty page crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageEncoding {
    /// The page is entirely zero: send a one-word marker, no body.
    Zero,
    /// Sparse change: run-length-encoded XOR against the previous epoch's
    /// contents of the same page.
    Delta(Vec<DeltaRun>),
    /// Full 4 KiB body (first touch of the page, or dense churn where the
    /// delta encoding would not be smaller).
    Full(Box<[u8; PAGE_SIZE]>),
}

impl PageEncoding {
    /// Classification name (stats and reports).
    pub fn class(&self) -> &'static str {
        match self {
            PageEncoding::Zero => "zero",
            PageEncoding::Delta(_) => "delta",
            PageEncoding::Full(_) => "full",
        }
    }

    /// Modeled wire bytes of this encoding (what `transfer_cost` charges).
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            PageEncoding::Zero => HEADER_BYTES,
            PageEncoding::Delta(runs) => {
                HEADER_BYTES
                    + runs
                        .iter()
                        .map(|r| RUN_HEADER_BYTES + 8 * r.xor_words.len() as u64)
                        .sum::<u64>()
            }
            PageEncoding::Full(_) => HEADER_BYTES + PAGE_SIZE as u64,
        }
    }

    /// Reconstruct the exact page bytes this encoding represents, given the
    /// receiver's current copy of the page (`None` if the page was never seen
    /// — only `Zero` and `Full` are self-contained; applying a `Delta`
    /// without a base is an image-corruption error upstream, here it applies
    /// against an all-zero base to stay total).
    pub fn apply(&self, base: Option<&[u8; PAGE_SIZE]>) -> Box<[u8; PAGE_SIZE]> {
        match self {
            PageEncoding::Zero => Box::new([0u8; PAGE_SIZE]),
            PageEncoding::Full(data) => data.clone(),
            PageEncoding::Delta(runs) => {
                let mut page = match base {
                    Some(b) => Box::new(*b),
                    None => Box::new([0u8; PAGE_SIZE]),
                };
                for run in runs {
                    let mut off = run.word_off as usize * 8;
                    for xw in &run.xor_words {
                        let mut w = u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                        w ^= xw;
                        page[off..off + 8].copy_from_slice(&w.to_le_bytes());
                        off += 8;
                    }
                }
                page
            }
        }
    }
}

/// Per-epoch delta-pipeline accounting (feeds the `DeltaEncode` trace span).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Pages elided as all-zero.
    pub zero_pages: u64,
    /// Pages shipped as sparse XOR deltas.
    pub delta_pages: u64,
    /// Pages shipped in full (first touch / dense churn).
    pub full_pages: u64,
    /// Raw bytes the full-page path would have shipped (`pages × 4 KiB`).
    pub raw_bytes: u64,
    /// Bytes actually put on the wire after encoding.
    pub encoded_bytes: u64,
}

impl DeltaStats {
    /// Total pages classified this epoch.
    pub fn pages(&self) -> u64 {
        self.zero_pages + self.delta_pages + self.full_pages
    }

    /// Accumulate another epoch's stats (run totals in reports).
    pub fn merge(&mut self, other: &DeltaStats) {
        self.zero_pages += other.zero_pages;
        self.delta_pages += other.delta_pages;
        self.full_pages += other.full_pages;
        self.raw_bytes += other.raw_bytes;
        self.encoded_bytes += other.encoded_bytes;
    }
}

/// Primary-side shadow of the page contents most recently shipped to the
/// backup, keyed like the backup's page store. Encoding a page both
/// classifies it against the shadow copy and updates the shadow, so the next
/// epoch's delta is always relative to what the backup will hold once it
/// applies this epoch (the backup applies epochs strictly in order, §IV).
#[derive(Debug, Default)]
pub struct ShadowStore {
    pages: HashMap<PageKey, Box<[u8; PAGE_SIZE]>>,
}

impl ShadowStore {
    /// Empty shadow (before the initial sync).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pages currently shadowed.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True before any page was encoded.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Classify and encode one dirty page against the shadow copy, updating
    /// the shadow and `stats`.
    pub fn encode(&mut self, key: PageKey, data: &[u8; PAGE_SIZE], stats: &mut DeltaStats) -> PageEncoding {
        stats.raw_bytes += PAGE_SIZE as u64;
        let enc = if data.iter().all(|&b| b == 0) {
            stats.zero_pages += 1;
            PageEncoding::Zero
        } else {
            match self.pages.get(&key) {
                None => {
                    stats.full_pages += 1;
                    PageEncoding::Full(Box::new(*data))
                }
                Some(prev) => {
                    let delta = xor_runs(prev, data);
                    let enc = PageEncoding::Delta(delta);
                    if enc.encoded_bytes() < PAGE_SIZE as u64 {
                        stats.delta_pages += 1;
                        enc
                    } else {
                        // Dense churn: the diff would not beat the raw page.
                        stats.full_pages += 1;
                        PageEncoding::Full(Box::new(*data))
                    }
                }
            }
        };
        stats.encoded_bytes += enc.encoded_bytes();
        // Update the shadow in place: a page seen before reuses its existing
        // 4 KiB box instead of allocating a fresh one per call. Zero pages
        // shadow as explicit zeros so later deltas against them are correct.
        let zero = matches!(enc, PageEncoding::Zero);
        match self.pages.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let buf = e.get_mut();
                if zero {
                    buf.fill(0);
                } else {
                    buf.copy_from_slice(data);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(if zero {
                    Box::new([0u8; PAGE_SIZE])
                } else {
                    Box::new(*data)
                });
            }
        }
        enc
    }
}

/// Word-level XOR diff of two pages, as maximal runs of changed words.
fn xor_runs(old: &[u8; PAGE_SIZE], new: &[u8; PAGE_SIZE]) -> Vec<DeltaRun> {
    let mut runs: Vec<DeltaRun> = Vec::new();
    let mut current: Option<DeltaRun> = None;
    for w in 0..WORDS_PER_PAGE {
        let off = w * 8;
        let ow = u64::from_le_bytes(old[off..off + 8].try_into().unwrap());
        let nw = u64::from_le_bytes(new[off..off + 8].try_into().unwrap());
        let x = ow ^ nw;
        if x != 0 {
            match current.as_mut() {
                Some(run) => run.xor_words.push(x),
                None => {
                    current = Some(DeltaRun {
                        word_off: w as u16,
                        xor_words: vec![x],
                    })
                }
            }
        } else if let Some(run) = current.take() {
            runs.push(run);
        }
    }
    if let Some(run) = current.take() {
        runs.push(run);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::ids::Pid;

    fn key(vpn: u64) -> PageKey {
        PageKey { pid: Pid(1), vpn }
    }

    fn page_with(edits: &[(usize, u8)]) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Box::new([0u8; PAGE_SIZE]);
        for &(i, v) in edits {
            p[i] = v;
        }
        p
    }

    #[test]
    fn zero_page_elides_to_one_word() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let enc = s.encode(key(1), &[0u8; PAGE_SIZE], &mut st);
        assert_eq!(enc, PageEncoding::Zero);
        assert_eq!(enc.encoded_bytes(), 8);
        assert_eq!(st.zero_pages, 1);
        assert_eq!(*enc.apply(None), [0u8; PAGE_SIZE]);
    }

    #[test]
    fn first_touch_ships_full_page() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let p = page_with(&[(0, 7)]);
        let enc = s.encode(key(1), &p, &mut st);
        assert!(matches!(enc, PageEncoding::Full(_)));
        assert_eq!(enc.encoded_bytes(), 8 + PAGE_SIZE as u64);
        assert_eq!(enc.apply(None), p);
    }

    #[test]
    fn sparse_rewrite_becomes_small_delta() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let v1 = page_with(&[(16, 1), (17, 2)]);
        s.encode(key(1), &v1, &mut st);
        // Touch one word: delta is header + one run (one word).
        let v2 = page_with(&[(16, 1), (17, 99)]);
        let enc = s.encode(key(1), &v2, &mut st);
        assert!(matches!(enc, PageEncoding::Delta(_)));
        assert_eq!(enc.encoded_bytes(), 8 + 8 + 8);
        assert_eq!(enc.apply(Some(&v1)), v2, "delta reconstructs exactly");
        assert_eq!(st.delta_pages, 1);
        assert_eq!(st.raw_bytes, 2 * PAGE_SIZE as u64);
        assert!(st.encoded_bytes < st.raw_bytes);
    }

    #[test]
    fn adjacent_changed_words_coalesce_into_one_run() {
        let old = page_with(&[]);
        let new = page_with(&[(8, 1), (16, 2), (24, 3)]); // words 1,2,3
        let runs = xor_runs(&old, &new);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].word_off, 1);
        assert_eq!(runs[0].xor_words.len(), 3);
    }

    #[test]
    fn dense_churn_falls_back_to_full() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let v1 = page_with(&[(0, 1)]);
        s.encode(key(1), &v1, &mut st);
        // Rewrite every word: the delta would exceed a raw page.
        let mut v2 = Box::new([0u8; PAGE_SIZE]);
        for (i, b) in v2.iter_mut().enumerate() {
            *b = (i % 251) as u8 + 1;
        }
        let enc = s.encode(key(1), &v2, &mut st);
        assert!(matches!(enc, PageEncoding::Full(_)), "dense diff not taken");
        assert_eq!(enc.apply(Some(&v1)), v2);
    }

    #[test]
    fn page_returning_to_zero_is_elided_and_shadowed_as_zero() {
        let mut s = ShadowStore::new();
        let mut st = DeltaStats::default();
        let v1 = page_with(&[(100, 5)]);
        s.encode(key(1), &v1, &mut st);
        let enc = s.encode(key(1), &[0u8; PAGE_SIZE], &mut st);
        assert_eq!(enc, PageEncoding::Zero);
        // A later sparse write deltas against the *zero* shadow, not v1.
        let v3 = page_with(&[(100, 9)]);
        let enc3 = s.encode(key(1), &v3, &mut st);
        let base = [0u8; PAGE_SIZE];
        assert_eq!(enc3.apply(Some(&base)), v3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = DeltaStats {
            zero_pages: 1,
            delta_pages: 2,
            full_pages: 3,
            raw_bytes: 100,
            encoded_bytes: 50,
        };
        a.merge(&a.clone());
        assert_eq!(a.pages(), 12);
        assert_eq!(a.raw_bytes, 200);
        assert_eq!(a.encoded_bytes, 100);
    }
}
