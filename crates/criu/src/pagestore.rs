//! Backup-side incremental page stores.
//!
//! The backup receives an incremental page set every epoch and must merge it
//! into the accumulated container memory image. Stock CRIU keeps a *linked
//! list of directories*, one per incremental checkpoint; for each received
//! page it walks the list to find and remove a previous copy, so per-page
//! cost grows with the number of checkpoints — at 33 checkpoints/second this
//! is catastrophic. NiLiCon replaces it with a four-level radix tree
//! "mimicking the implementation of the hardware page tables", making the
//! per-page cost short and independent of history (§V-A, the first and
//! largest component of Table I's first optimization).
//!
//! Both stores here are *real data structures* holding real page bytes. The
//! Criterion benches in `nilicon-bench` measure them in wall-clock time; the
//! replication runtime charges virtual time from the probe counts they
//! report.

use crate::delta::PageEncoding;
use nilicon_sim::ids::Pid;
use nilicon_sim::PageBuf;
use std::collections::HashMap;

/// Largest virtual page number either store can address: the radix tree
/// walks 4 levels × 9 bits, exactly like the x86-64 page-table walk over
/// 4 KiB pages (48-bit virtual addresses → 36-bit vpns). Keys above this
/// would silently alias in the tree, so both stores reject them.
pub const MAX_VPN: u64 = (1 << 36) - 1;

/// Key of a stored page: (process, virtual page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning process.
    pub pid: Pid,
    /// Virtual page number.
    pub vpn: u64,
}

/// A backup-side store of committed container pages.
pub trait PageStore {
    /// Insert (or replace) a page. Returns the number of *probe operations*
    /// performed — the unit the replication runtime converts into backup CPU
    /// time. The store shares the refcounted buffer; nothing is copied.
    fn insert(&mut self, key: PageKey, page: PageBuf) -> u64;

    /// Fetch a page.
    fn get(&self, key: PageKey) -> Option<&PageBuf>;

    /// Number of distinct pages stored.
    fn len(&self) -> usize;

    /// True if empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(key, page)` pairs, sorted by key (image materialization).
    fn iter_sorted(&self) -> Vec<(PageKey, &PageBuf)>;

    /// Mark the beginning of a new incremental checkpoint.
    fn begin_checkpoint(&mut self);

    /// Number of incremental checkpoints seen.
    fn checkpoints(&self) -> u64;

    /// Apply a delta-encoded page against the store's current copy and
    /// commit the reconstructed page. Returns probe operations, like
    /// [`PageStore::insert`]; a [`PageEncoding::Delta`] costs one extra walk
    /// to fetch the base page first.
    fn apply_delta(&mut self, key: PageKey, enc: &PageEncoding) -> u64 {
        let base = match enc {
            PageEncoding::Delta(_) => self.get(key).cloned(),
            _ => None,
        };
        let page = enc.apply(base.as_deref());
        let insert_probes = self.insert(key, page);
        if matches!(enc, PageEncoding::Delta(_)) {
            insert_probes * 2
        } else {
            insert_probes
        }
    }
}

// ----------------------------------------------------------------------
// Stock CRIU: linked list of checkpoint directories
// ----------------------------------------------------------------------

/// Stock CRIU's store: one "directory" (map) per incremental checkpoint,
/// newest first. Insert probes every older directory to remove a previous
/// copy of the page.
#[derive(Debug, Default)]
pub struct LinkedListStore {
    /// Directories, index 0 = current checkpoint.
    dirs: Vec<HashMap<PageKey, PageBuf>>,
    count: usize,
    checkpoints: u64,
}

impl LinkedListStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of directories in the chain (grows with every checkpoint).
    pub fn chain_len(&self) -> usize {
        self.dirs.len()
    }
}

impl PageStore for LinkedListStore {
    fn insert(&mut self, key: PageKey, page: PageBuf) -> u64 {
        if self.dirs.is_empty() {
            self.dirs.push(HashMap::new());
        }
        // Walk every older directory looking for a stale copy — this walk is
        // the cost CRIU's developers flagged (§V-A).
        let mut probes = 0u64;
        for dir in self.dirs.iter_mut().skip(1) {
            probes += 1;
            if dir.remove(&key).is_some() {
                self.count -= 1;
            }
        }
        probes += 1; // the insert itself
        if self.dirs[0].insert(key, page).is_none() {
            self.count += 1;
        }
        probes
    }

    fn get(&self, key: PageKey) -> Option<&PageBuf> {
        for dir in &self.dirs {
            if let Some(p) = dir.get(&key) {
                return Some(p);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.count
    }

    fn iter_sorted(&self) -> Vec<(PageKey, &PageBuf)> {
        let mut v: Vec<(PageKey, &PageBuf)> = Vec::with_capacity(self.count);
        for dir in &self.dirs {
            for (k, p) in dir {
                v.push((*k, p));
            }
        }
        v.sort_by_key(|(k, _)| *k);
        v
    }

    fn begin_checkpoint(&mut self) {
        self.checkpoints += 1;
        self.dirs.insert(0, HashMap::new());
    }

    fn checkpoints(&self) -> u64 {
        self.checkpoints
    }
}

// ----------------------------------------------------------------------
// NiLiCon: four-level radix tree
// ----------------------------------------------------------------------

const FANOUT_BITS: u32 = 9;
const FANOUT: usize = 1 << FANOUT_BITS; // 512, like x86-64 page tables

/// Interior node of the radix tree.
struct RadixNode<T> {
    slots: Vec<Option<T>>,
}

impl<T> RadixNode<T> {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(FANOUT);
        slots.resize_with(FANOUT, || None);
        RadixNode { slots }
    }
}

type Leaf = RadixNode<PageBuf>;
type L2 = RadixNode<Box<Leaf>>;
type L3 = RadixNode<Box<L2>>;
type L4 = RadixNode<Box<L3>>;

/// NiLiCon's store: a 4-level radix tree per process, indexed by vpn exactly
/// like the hardware page-table walk (9 bits per level, 36-bit vpn space).
#[derive(Default)]
pub struct RadixTreeStore {
    roots: HashMap<Pid, Box<L4>>,
    count: usize,
    checkpoints: u64,
}

impl std::fmt::Debug for RadixTreeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadixTreeStore")
            .field("pages", &self.count)
            .field("checkpoints", &self.checkpoints)
            .finish()
    }
}

impl RadixTreeStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(vpn: u64) -> (usize, usize, usize, usize) {
        debug_assert!(
            vpn <= MAX_VPN,
            "vpn {vpn:#x} exceeds the 36-bit radix address space; \
             bits above 36 would silently alias"
        );
        let l1 = (vpn & 0x1ff) as usize;
        let l2 = ((vpn >> 9) & 0x1ff) as usize;
        let l3 = ((vpn >> 18) & 0x1ff) as usize;
        let l4 = ((vpn >> 27) & 0x1ff) as usize;
        (l4, l3, l2, l1)
    }
}

impl PageStore for RadixTreeStore {
    fn insert(&mut self, key: PageKey, page: PageBuf) -> u64 {
        let (i4, i3, i2, i1) = Self::split(key.vpn);
        let root = self
            .roots
            .entry(key.pid)
            .or_insert_with(|| Box::new(L4::new()));
        let n3 = root.slots[i4].get_or_insert_with(|| Box::new(L3::new()));
        let n2 = n3.slots[i3].get_or_insert_with(|| Box::new(L2::new()));
        let leaf = n2.slots[i2].get_or_insert_with(|| Box::new(Leaf::new()));
        if leaf.slots[i1].replace(page).is_none() {
            self.count += 1;
        }
        4 // exactly four probes, independent of history (§V-A)
    }

    fn get(&self, key: PageKey) -> Option<&PageBuf> {
        let (i4, i3, i2, i1) = Self::split(key.vpn);
        self.roots.get(&key.pid)?.slots[i4].as_ref()?.slots[i3]
            .as_ref()?
            .slots[i2]
            .as_ref()?
            .slots[i1]
            .as_ref()
    }

    fn len(&self) -> usize {
        self.count
    }

    fn iter_sorted(&self) -> Vec<(PageKey, &PageBuf)> {
        let mut v = Vec::with_capacity(self.count);
        let mut pids: Vec<&Pid> = self.roots.keys().collect();
        pids.sort();
        for &pid in pids {
            let root = &self.roots[&pid];
            for (i4, s4) in root.slots.iter().enumerate() {
                let Some(n3) = s4 else { continue };
                for (i3, s3) in n3.slots.iter().enumerate() {
                    let Some(n2) = s3 else { continue };
                    for (i2, s2) in n2.slots.iter().enumerate() {
                        let Some(leaf) = s2 else { continue };
                        for (i1, slot) in leaf.slots.iter().enumerate() {
                            if let Some(p) = slot {
                                let vpn = ((i4 as u64) << 27)
                                    | ((i3 as u64) << 18)
                                    | ((i2 as u64) << 9)
                                    | i1 as u64;
                                v.push((PageKey { pid, vpn }, p));
                            }
                        }
                    }
                }
            }
        }
        v
    }

    fn begin_checkpoint(&mut self) {
        self.checkpoints += 1;
    }

    fn checkpoints(&self) -> u64 {
        self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::PAGE_SIZE;

    fn page(tag: u8) -> PageBuf {
        std::rc::Rc::new([tag; PAGE_SIZE])
    }

    fn key(pid: u32, vpn: u64) -> PageKey {
        PageKey { pid: Pid(pid), vpn }
    }

    fn exercise(store: &mut dyn PageStore) {
        // Three incremental checkpoints with overlapping page sets.
        store.begin_checkpoint();
        store.insert(key(1, 0x10), page(1));
        store.insert(key(1, 0x11), page(2));
        store.begin_checkpoint();
        store.insert(key(1, 0x10), page(3)); // overwrite
        store.insert(key(1, 0x7_fff_fff), page(4)); // far vpn
        store.begin_checkpoint();
        store.insert(key(2, 0x10), page(5)); // other pid, same vpn
    }

    #[test]
    fn both_stores_agree() {
        let mut ll = LinkedListStore::new();
        let mut rt = RadixTreeStore::new();
        exercise(&mut ll);
        exercise(&mut rt);
        assert_eq!(ll.len(), 4);
        assert_eq!(rt.len(), 4);
        assert_eq!(ll.get(key(1, 0x10)).unwrap()[0], 3, "newest copy wins");
        assert_eq!(rt.get(key(1, 0x10)).unwrap()[0], 3);
        assert_eq!(rt.get(key(2, 0x10)).unwrap()[0], 5);
        assert!(rt.get(key(3, 0x10)).is_none());
        let a: Vec<(PageKey, u8)> = ll.iter_sorted().iter().map(|(k, p)| (*k, p[0])).collect();
        let b: Vec<(PageKey, u8)> = rt.iter_sorted().iter().map(|(k, p)| (*k, p[0])).collect();
        assert_eq!(a, b, "observationally equivalent");
    }

    #[test]
    fn linked_list_probes_grow_with_history() {
        let mut ll = LinkedListStore::new();
        let mut last = 0;
        for ckpt in 0..50 {
            ll.begin_checkpoint();
            last = ll.insert(key(1, 0x10), page(ckpt as u8));
        }
        assert!(
            last >= 50,
            "probe count grows with checkpoint chain, got {last}"
        );
        assert_eq!(ll.chain_len(), 50);
        assert_eq!(ll.len(), 1, "stale copies were removed along the walk");
    }

    #[test]
    fn radix_probes_constant() {
        let mut rt = RadixTreeStore::new();
        let mut probes = Vec::new();
        for ckpt in 0..50 {
            rt.begin_checkpoint();
            probes.push(rt.insert(key(1, 0x10), page(ckpt as u8)));
        }
        assert!(
            probes.iter().all(|&p| p == 4),
            "§V-A: constant-time inserts"
        );
    }

    #[test]
    fn radix_split_roundtrip() {
        for vpn in [0u64, 1, 0x1ff, 0x200, 0x3_ffff, 0x7_fff_fff, MAX_VPN] {
            let (i4, i3, i2, i1) = RadixTreeStore::split(vpn);
            let back = ((i4 as u64) << 27) | ((i3 as u64) << 18) | ((i2 as u64) << 9) | i1 as u64;
            assert_eq!(back, vpn, "in-range vpns round-trip exactly");
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds the 36-bit"))]
    fn radix_split_rejects_out_of_range_vpn() {
        // Two keys 2^36 apart used to alias silently; now the debug build
        // rejects the out-of-range key outright.
        let (i4, i3, i2, i1) = RadixTreeStore::split(MAX_VPN + 1);
        // Release builds keep the historical masking behavior.
        assert_eq!((i4, i3, i2, i1), RadixTreeStore::split(0));
    }

    #[test]
    fn apply_delta_matches_direct_insert() {
        use crate::delta::{DeltaStats, ShadowStore};
        let mut shadow = ShadowStore::new();
        let mut stats = DeltaStats::default();
        let mut direct = RadixTreeStore::new();
        let mut via_delta = RadixTreeStore::new();
        let k = key(1, 0x42);
        let mut v1 = [0u8; PAGE_SIZE];
        v1[10] = 7;
        let mut v2 = v1;
        v2[10] = 9;
        v2[4000] = 1;
        for v in [v1, v2, [0u8; PAGE_SIZE]] {
            let v = std::rc::Rc::new(v);
            let enc = shadow.encode(k, &v, &mut stats);
            direct.insert(k, v.clone());
            let probes = via_delta.apply_delta(k, &enc);
            assert!(probes >= 4);
            assert_eq!(via_delta.get(k).unwrap(), direct.get(k).unwrap());
        }
        assert_eq!(stats.pages(), 3);
    }

    #[test]
    fn empty_stores() {
        let ll = LinkedListStore::new();
        let rt = RadixTreeStore::new();
        assert!(ll.is_empty() && rt.is_empty());
        assert!(ll.get(key(1, 1)).is_none());
        assert!(rt.get(key(1, 1)).is_none());
        assert!(ll.iter_sorted().is_empty());
        assert!(rt.iter_sorted().is_empty());
    }
}
