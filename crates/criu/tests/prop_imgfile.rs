//! Property tests for the NLCN binary image codec: decode(encode(x)) == x
//! over randomized images, and random mutation never panics the decoder.

use nilicon_criu::{decode_image, encode_image, CheckpointImage, ProcessImage};
use nilicon_sim::cgroup::Cgroup;
use nilicon_sim::fs::{Inode, Mount};
use nilicon_sim::ids::{AsId, CgroupId, Endpoint, Fd, Ino, MountId, NsId, Pid, SockId, Tid};
use nilicon_sim::mem::{MappedFile, Perms, Vma, VmaKind};
use nilicon_sim::net::RepairState;
use nilicon_sim::ns::{Namespace, NsKind, NsSet};
use nilicon_sim::proc::{FdEntry, SchedPolicy, Thread, Timer};
use nilicon_sim::PAGE_SIZE;
use proptest::prelude::*;

fn arb_vma() -> impl Strategy<Value = Vma> {
    (
        0u64..1000,
        1u64..64,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(0u64..99),
    )
        .prop_map(|(startp, pages, w, x, heap, file)| Vma {
            start: startp * PAGE_SIZE as u64,
            len: pages * PAGE_SIZE as u64,
            perms: Perms { r: true, w, x },
            kind: match file {
                Some(ino) => VmaKind::File(MappedFile {
                    ino: Ino(ino),
                    file_off: 0,
                }),
                None => VmaKind::Anon,
            },
            is_heap: heap,
            is_stack: false,
        })
}

fn arb_thread() -> impl Strategy<Value = Thread> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u8..3,
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..3),
    )
        .prop_map(|(tid, rip, rsp, sigmask, sched, timers)| {
            let mut t = Thread::new(Tid(tid));
            t.regs.rip = rip;
            t.regs.rsp = rsp;
            t.sigmask = sigmask;
            t.sched = match sched {
                0 => SchedPolicy::Normal,
                1 => SchedPolicy::Batch,
                _ => SchedPolicy::Fifo(7),
            };
            t.timers = timers
                .into_iter()
                .map(|(e, i)| Timer {
                    expires_at: e,
                    interval: i,
                })
                .collect();
            t
        })
}

fn arb_image() -> impl Strategy<Value = CheckpointImage> {
    (
        any::<u64>(),
        "[a-z]{1,12}",
        any::<u32>(),
        proptest::collection::vec(arb_thread(), 1..4),
        proptest::collection::vec(arb_vma(), 0..5),
        proptest::collection::vec((any::<u32>(), 0u64..1u64 << 30, any::<u8>()), 0..20),
        proptest::collection::vec(any::<u16>(), 0..4),
        proptest::collection::vec(
            (
                any::<u32>(),
                any::<u16>(),
                any::<u32>(),
                any::<u32>(),
                proptest::collection::vec(any::<u8>(), 0..200),
            ),
            0..4,
        ),
    )
        .prop_map(
            |(epoch, name, addr, threads, vmas, pages, listeners, socks)| {
                let mut img = CheckpointImage {
                    epoch,
                    name,
                    addr,
                    ns: Some(NsSet {
                        pid: NsId(1),
                        net: NsId(2),
                        mnt: NsId(3),
                        uts: NsId(4),
                        ipc: NsId(5),
                        user: NsId(6),
                    }),
                    ..Default::default()
                };
                img.processes.push(ProcessImage {
                    pid: Pid(100),
                    ppid: Pid(1),
                    mm: AsId(1),
                    exe: "/bin/app".into(),
                    threads,
                    fds: vec![
                        (
                            Fd(3),
                            FdEntry::File {
                                ino: Ino(9),
                                offset: 44,
                                flags: 1,
                            },
                        ),
                        (Fd(4), FdEntry::Socket(SockId(2))),
                    ],
                    vmas,
                });
                for (pid, vpn, tag) in pages {
                    img.pages.push((Pid(pid), vpn, std::rc::Rc::new([tag; PAGE_SIZE])));
                }
                img.listeners = listeners;
                for (a, p, snd, rcv, q) in socks {
                    img.sockets.push(RepairState {
                        local: Endpoint::new(a, p),
                        remote: Endpoint::new(a ^ 1, p ^ 1),
                        snd_nxt: snd,
                        snd_una: snd.wrapping_sub(q.len() as u32),
                        rcv_nxt: rcv,
                        write_queue: q.clone(),
                        read_queue: q,
                    });
                }
                img.namespaces.push(Namespace {
                    id: NsId(4),
                    kind: NsKind::Uts,
                    config: b"h".to_vec(),
                });
                img.cgroups.push(Cgroup::new(CgroupId(1), "/docker/x"));
                img.mounts.push(Mount {
                    id: MountId(1),
                    source: "overlay".into(),
                    target: "/".into(),
                    fstype: "overlay".into(),
                });
                img.fs_inodes.push(Inode::regular(Ino(9)));
                img.paths.push(("/data/f".into(), Ino(9)));
                img.stats.dirty_pages = img.pages.len() as u64;
                img
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip(img in arb_image()) {
        let bytes = encode_image(&img);
        let back = decode_image(&bytes).expect("decodes");
        prop_assert_eq!(back.epoch, img.epoch);
        prop_assert_eq!(&back.name, &img.name);
        prop_assert_eq!(back.addr, img.addr);
        prop_assert_eq!(back.ns, img.ns);
        prop_assert_eq!(back.listeners, img.listeners);
        prop_assert_eq!(back.sockets, img.sockets);
        prop_assert_eq!(back.pages.len(), img.pages.len());
        for (a, b) in back.pages.iter().zip(&img.pages) {
            prop_assert_eq!((a.0, a.1), (b.0, b.1));
            prop_assert_eq!(&a.2[..], &b.2[..]);
        }
        prop_assert_eq!(back.processes.len(), 1);
        prop_assert_eq!(&back.processes[0].fds, &img.processes[0].fds);
        prop_assert_eq!(&back.processes[0].vmas, &img.processes[0].vmas);
        prop_assert_eq!(back.processes[0].threads.len(), img.processes[0].threads.len());
        for (a, b) in back.processes[0].threads.iter().zip(&img.processes[0].threads) {
            prop_assert_eq!(a.regs, b.regs);
            prop_assert_eq!(a.sigmask, b.sigmask);
            prop_assert_eq!(&a.timers, &b.timers);
            prop_assert_eq!(a.sched, b.sched);
        }
        prop_assert_eq!(&back.namespaces, &img.namespaces);
        prop_assert_eq!(&back.mounts, &img.mounts);
        prop_assert_eq!(&back.fs_inodes, &img.fs_inodes);
        prop_assert_eq!(&back.paths, &img.paths);
    }

    #[test]
    fn decoder_never_panics_on_mutation(
        img in arb_image(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut bytes = encode_image(&img);
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        let _ = decode_image(&bytes); // must not panic
        let n = cut.index(bytes.len());
        let _ = decode_image(&bytes[..n]); // truncation must not panic
    }
}
