//! Property tests: page-store equivalence and incremental-equals-full
//! (DESIGN.md invariants 3 and 4).

use nilicon_criu::{LinkedListStore, PageKey, PageStore, RadixTreeStore};
use nilicon_sim::ids::Pid;
use nilicon_sim::PAGE_SIZE;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn page(tag: u8) -> nilicon_sim::PageBuf {
    std::rc::Rc::new([tag; PAGE_SIZE])
}

/// A random incremental-checkpoint schedule: per checkpoint, a set of
/// `(pid, vpn, tag)` page writes.
fn schedule() -> impl Strategy<Value = Vec<Vec<(u32, u64, u8)>>> {
    proptest::collection::vec(
        proptest::collection::vec((1..4u32, 0..200u64, any::<u8>()), 0..30),
        1..15,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn radix_equals_linked_list(checkpoints in schedule()) {
        let mut radix = RadixTreeStore::new();
        let mut list = LinkedListStore::new();
        for ckpt in &checkpoints {
            radix.begin_checkpoint();
            list.begin_checkpoint();
            for &(pid, vpn, tag) in ckpt {
                radix.insert(PageKey { pid: Pid(pid), vpn }, page(tag));
                list.insert(PageKey { pid: Pid(pid), vpn }, page(tag));
            }
        }
        prop_assert_eq!(radix.len(), list.len());
        let a: Vec<(PageKey, u8)> =
            radix.iter_sorted().iter().map(|(k, p)| (*k, p[0])).collect();
        let b: Vec<(PageKey, u8)> =
            list.iter_sorted().iter().map(|(k, p)| (*k, p[0])).collect();
        prop_assert_eq!(a, b, "observationally equivalent stores (§V-A)");
    }

    #[test]
    fn incremental_replay_equals_final_state(checkpoints in schedule()) {
        // Replaying every incremental checkpoint through the store must
        // reproduce exactly the last-writer-wins final state.
        let mut store = RadixTreeStore::new();
        let mut model: BTreeMap<(u32, u64), u8> = BTreeMap::new();
        for ckpt in &checkpoints {
            store.begin_checkpoint();
            for &(pid, vpn, tag) in ckpt {
                store.insert(PageKey { pid: Pid(pid), vpn }, page(tag));
                model.insert((pid, vpn), tag);
            }
        }
        prop_assert_eq!(store.len(), model.len());
        for (&(pid, vpn), &tag) in &model {
            let got = store.get(PageKey { pid: Pid(pid), vpn }).expect("page present");
            prop_assert_eq!(got[0], tag);
            prop_assert_eq!(got[PAGE_SIZE - 1], tag);
        }
        // Sorted iteration covers exactly the model's keys, in order.
        let keys: Vec<(u32, u64)> =
            store.iter_sorted().iter().map(|(k, _)| (k.pid.0, k.vpn)).collect();
        let want: Vec<(u32, u64)> = model.keys().copied().collect();
        prop_assert_eq!(keys, want);
    }

    #[test]
    fn probe_counts_bounded(checkpoints in schedule()) {
        // Radix inserts are always 4 probes; list probes equal the chain
        // length (grows by one per checkpoint) — the §V-A complexity claim.
        let mut radix = RadixTreeStore::new();
        let mut list = LinkedListStore::new();
        for (i, ckpt) in checkpoints.iter().enumerate() {
            radix.begin_checkpoint();
            list.begin_checkpoint();
            for &(pid, vpn, tag) in ckpt {
                let rp = radix.insert(PageKey { pid: Pid(pid), vpn }, page(tag));
                prop_assert_eq!(rp, 4);
                let lp = list.insert(PageKey { pid: Pid(pid), vpn }, page(tag));
                prop_assert_eq!(lp as usize, i + 1, "list probes = chain length");
            }
        }
    }
}
