//! # nilicon-mc — the MC (KVM MicroCheckpointing) comparison baseline
//!
//! The paper compares NiLiCon against MC, KVM/QEMU's implementation of
//! Remus-style whole-VM replication (§VI: QEMU 2.3.50, the last version with
//! MicroCheckpointing). This crate models MC as a [`Checkpointer`] over the
//! same simulated substrate, with the baseline's characteristic cost
//! structure:
//!
//! * **Page tracking by hypervisor write protection**: the first write to a
//!   page each epoch takes a VM exit/entry pair — much more expensive than
//!   NiLiCon's soft-dirty minor fault. This is why MC's *runtime* overhead
//!   component exceeds NiLiCon's for every benchmark (Fig. 3, §VII-C).
//! * **Cheap stop phase**: a VM's state is self-contained — there is no
//!   in-kernel container state to collect through slow proc/sys interfaces.
//!   MC pauses the VM, reads the KVM dirty log, copies dirty pages and a
//!   small device/vCPU blob, and resumes. Hence Table III's MC stop times
//!   (2.4-9.4 ms) sit well below NiLiCon's (5.1-38.2 ms).
//! * **Ready-to-go backup VM**: state changes are committed directly into a
//!   live backup VM each epoch, so failover is a resume, not a restore
//!   (§II-A, §III).
//! * **No disk replication**: the paper runs MC with a local disk because MC
//!   only supports disk I/O over networked file systems ("this does not
//!   provide correct handling of disk state", §VII-C). We model the same:
//!   primary disk writes are dropped from the replication stream, and the
//!   backup disk is stale at failover — the documented correctness caveat.
//!
//! ## Observability
//!
//! `McEngine` keeps the default no-op [`Checkpointer::set_tracer`], so a
//! traced MC run records the harness-level spans (`Exec`, `OutputRelease`,
//! detector events) but no engine phase breakdown; the per-epoch
//! reconciliation check is then vacuous by design (see `OBSERVABILITY.md`).

#![warn(missing_docs)]

use nilicon::backup::BackupAgent;
use nilicon::engine::{CheckpointOutcome, Checkpointer, FailoverReport};
use nilicon_container::Container;
use nilicon_criu::{RestoreConfig, RestoredContainer};
use nilicon_drbd::DrbdMsg;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::TrackingMode;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};

/// The MC engine: whole-VM micro-checkpointing.
pub struct McEngine {
    /// Backup-side buffered VM state. MC applies each epoch directly (the
    /// "ready-to-go backup VM"), which we model by committing at ack with a
    /// constant-time store.
    pub agent: BackupAgent,
    prepared: bool,
}

impl std::fmt::Debug for McEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McEngine")
            .field("agent", &self.agent)
            .finish()
    }
}

impl McEngine {
    /// New MC engine.
    pub fn new(costs: nilicon_sim::CostModel) -> Self {
        McEngine {
            agent: BackupAgent::new(costs, true),
            prepared: false,
        }
    }
}

impl Checkpointer for McEngine {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()> {
        // Hypervisor write protection on all guest memory.
        for pid in container.all_pids() {
            primary
                .mm_mut(pid)?
                .set_tracking(TrackingMode::WriteProtect);
        }
        // Remus output commit applies to MC as well.
        primary.stack_mut(container.ns.net)?.plugged = true;
        self.prepared = true;
        Ok(())
    }

    fn checkpoint(
        &mut self,
        primary: &mut Kernel,
        backup: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<CheckpointOutcome> {
        if !self.prepared {
            return Err(SimError::Invalid("engine not prepared".into()));
        }
        primary.meter.take();

        // --- Pause the VM -------------------------------------------------
        primary.meter.charge(primary.costs.vm_pause_resume);
        // A paused VM processes no RX traffic; the gate models the
        // host-side queueing of packets during the pause.
        primary.stack_mut(container.ns.net)?.block_input();

        // --- Collect dirty pages via the KVM dirty log --------------------
        let mut img = nilicon_criu::CheckpointImage {
            epoch,
            name: container.spec.name.clone(),
            addr: container.spec.addr,
            ns: Some(container.ns),
            ..Default::default()
        };
        for &pid in &container.all_pids() {
            let mapped = primary.mm(pid)?.mapped_pages();
            primary
                .meter
                .charge(mapped * primary.costs.hv_dirty_log_per_page);
            let dirty = primary.mm(pid)?.soft_dirty_vpns();
            primary.mm_mut(pid)?.clear_refs();
            // The hypervisor copies guest pages directly (no parasite):
            // cheaper per page than the container path (§V-D vs KVM).
            primary
                .meter
                .charge(dirty.len() as Nanos * primary.costs.hv_page_copy);
            img.stats.dirty_pages += dirty.len() as u64;
            for vpn in dirty {
                let data = primary.mm(pid)?.snapshot_page(vpn)?;
                img.pages.push((pid, vpn, data));
            }
        }
        // VM device + vCPU state (small, self-contained).
        let device_bytes = primary.costs.vm_device_state_bytes;

        // MC snapshots full VM socket state implicitly (it lives in guest
        // memory); nothing to collect through repair mode. For failover
        // mechanics we still carry the socket images (the guest kernel's
        // state, which for a VM rides in the dirtied pages for free).
        let (listeners, sockets) = {
            let stack = primary.stack_mut(container.ns.net)?;
            stack.checkpoint_sockets()
        };
        img.listeners = listeners;
        img.sockets = sockets;
        img.processes = container
            .all_pids()
            .iter()
            .map(|&pid| {
                let p = primary.proc(pid).expect("container pid");
                nilicon_criu::ProcessImage {
                    pid,
                    ppid: p.ppid,
                    mm: p.mm,
                    exe: p.exe.clone(),
                    threads: p.threads.clone(),
                    fds: p.fds.iter().map(|(fd, e)| (*fd, e.clone())).collect(),
                    vmas: primary.mm(pid).expect("mm").vmas().cloned().collect(),
                }
            })
            .collect();
        img.cgroups = primary.cgroups.snapshot();
        img.namespaces = primary.namespaces.snapshot_set(&container.ns);
        img.paths = primary.vfs.paths().map(|(p, &i)| (p.clone(), i)).collect();
        let (fs_pages, fs_inodes) = primary.vfs.fgetfc();
        img.fs_pages = fs_pages;
        img.fs_inodes = fs_inodes;

        // --- Resume -------------------------------------------------------
        primary.stack_mut(container.ns.net)?.unblock_input();
        let stop_time = primary.meter.take();

        // --- Transfer (buffered at backup, applied on ack) ----------------
        let state_bytes = img.state_bytes() + device_bytes;
        let chunks = img.transfer_chunks();
        let dirty_pages = img.stats.dirty_pages;
        let c = &primary.costs;
        let transfer =
            c.repl_link_latency + c.repl_wire(state_bytes) + chunks * c.repl_msg_overhead;
        let backup_cpu = self.agent.ingest(img);
        // MC runs without disk replication (§VII-C): drop the write log.
        primary.vfs.disk.take_writes();
        // The disk barrier condition is satisfied vacuously.
        self.agent.drbd.receive(DrbdMsg::Barrier(epoch));

        let ack_delay = transfer + backup_cpu + c.repl_link_latency;
        let _ = backup;
        Ok(CheckpointOutcome {
            stop_time,
            state_bytes,
            dirty_pages,
            ack_delay,
            backup_cpu,
        })
    }

    fn commit(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos> {
        // Ready-to-go backup: the epoch is applied to the live backup VM at
        // ack time.
        self.agent.commit(epoch, &mut backup.vfs.disk)
    }

    fn failover(&mut self, backup: &mut Kernel) -> SimResult<(RestoredContainer, FailoverReport)> {
        self.agent.discard_uncommitted();
        let img = self.agent.materialize()?;
        // Mechanically rebuild the container; latency-wise this is a VM
        // *resume*, not a restore (the backup VM is ready to go).
        backup.meter.take();
        let mut restored =
            nilicon_criu::restore_container(backup, &img, &RestoreConfig::default())?;
        backup.meter.take();
        restored.restore_time = backup.costs.vm_resume_at_failover;
        let c = &backup.costs;
        let tcp = c
            .tcp_rto_default
            .saturating_sub(restored.restore_time / 2 + c.gratuitous_arp);
        let report = FailoverReport {
            restore: restored.restore_time,
            arp: c.gratuitous_arp,
            tcp,
            others: c.recovery_misc,
            disk_pages_committed: 0,
        };
        Ok((restored, report))
    }

    fn committed_epoch(&self) -> Option<u64> {
        self.agent.committed_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
    use nilicon_sim::time::MILLISECOND;

    fn setup() -> (Kernel, Kernel, Container, McEngine) {
        let mut primary = Kernel::default();
        let backup = Kernel::default();
        let spec = ContainerSpec::server("redis", 10, 6379);
        let c = ContainerRuntime::create(&mut primary, &spec).unwrap();
        let e = McEngine::new(primary.costs.clone());
        (primary, backup, c, e)
    }

    #[test]
    fn mc_stop_time_is_low_and_dirty_driven() {
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        let o0 = e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        assert!(
            o0.stop_time >= 2 * MILLISECOND && o0.stop_time < 4 * MILLISECOND,
            "pause-dominated stop for a near-empty dirty set, got {}us",
            o0.stop_time / 1000
        );

        // Dirty 1000 pages: stop grows by ~1.15us each.
        for page in 0..1000u64 {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[1])
                .unwrap();
        }
        let o = e.checkpoint(&mut p, &mut b, &c, 2).unwrap();
        assert_eq!(o.dirty_pages, 1000);
        let delta = o.stop_time - o0.stop_time;
        assert!(
            (900_000..1_600_000).contains(&delta),
            "1000 pages ≈ 1.15ms extra, got {}us",
            delta / 1000
        );
    }

    #[test]
    fn mc_runtime_overhead_exceeds_nilicon() {
        // The vmexit fault is several times costlier than soft-dirty.
        let (mut p, _b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        p.clear_refs(c.init_pid()).unwrap();
        p.meter.take();
        p.fault_meter.take();
        p.mem_write(c.init_pid(), MemLayout::heap_page(0), &[1])
            .unwrap();
        let mc_fault = p.fault_meter.take();
        assert_eq!(mc_fault, p.costs.vmexit_fault);
        assert!(mc_fault > p.costs.soft_dirty_fault);
    }

    #[test]
    fn mc_failover_is_a_fast_resume() {
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"vmstate")
            .unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        let (restored, report) = e.failover(&mut b).unwrap();
        restored.finish(&mut b).unwrap();
        assert_eq!(report.restore, b.costs.vm_resume_at_failover);
        assert!(
            report.restore < 100 * MILLISECOND,
            "ready-to-go backup resumes fast"
        );
        let mut buf = [0u8; 7];
        b.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"vmstate");
    }

    #[test]
    fn mc_drops_disk_replication() {
        // The paper's documented MC caveat: local disk, no replication.
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        let pid = c.init_pid();
        let fd = p.create_file(pid, "/data/f", 0).unwrap();
        p.pwrite(pid, fd, 0, b"x", 1).unwrap();
        p.fsync(pid, fd).unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        e.commit(&mut b, 1).unwrap();
        assert_ne!(
            p.vfs.disk.digest(),
            b.vfs.disk.digest(),
            "backup disk is stale under MC — the §VII-C caveat"
        );
    }

    #[test]
    fn no_container_state_collection_costs() {
        // MC never pays the 100ms namespace walk: its stop must stay in the
        // single-digit milliseconds even on the first checkpoint.
        let (mut p, mut b, c, mut e) = setup();
        e.prepare(&mut p, &c).unwrap();
        let o = e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        assert!(o.stop_time < 10 * MILLISECOND);
    }
}
