//! Wall-clock Criterion benchmarks of the §V-A page stores.
//!
//! Unlike the virtual-time harness, these measure the *actual* Rust data
//! structures: stock CRIU's linked list of checkpoint directories vs
//! NiLiCon's four-level radix tree. The paper's claim — per-page insert cost
//! grows with checkpoint history for the list but is constant for the tree —
//! is directly visible in the `.../history-N` series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nilicon_criu::{LinkedListStore, PageKey, PageStore, RadixTreeStore};
use nilicon_sim::ids::Pid;
use nilicon_sim::PAGE_SIZE;
use std::hint::black_box;

fn page(tag: u8) -> nilicon_sim::PageBuf {
    std::rc::Rc::new([tag; PAGE_SIZE])
}

/// Build a store with `history` prior incremental checkpoints of `pages`
/// pages each.
fn seeded<S: PageStore + Default>(history: usize, pages: u64) -> S {
    let mut s = S::default();
    for ckpt in 0..history {
        s.begin_checkpoint();
        for vpn in 0..pages {
            s.insert(
                PageKey {
                    pid: Pid(1),
                    vpn: 0x1000 + vpn,
                },
                page(ckpt as u8),
            );
        }
    }
    s
}

fn bench_insert_vs_history(c: &mut Criterion) {
    // 512 checkpoints ≈ 15 s of 30 ms epochs: the paper's "catastrophic at
    // 33 checkpoints/second" regime, where the list probes 512 directories
    // per insert while the radix tree still probes 4.
    let mut group = c.benchmark_group("pagestore_insert_after_history");
    for history in [1usize, 8, 32, 128, 512] {
        group.bench_with_input(
            BenchmarkId::new("linked_list", history),
            &history,
            |b, &h| {
                let mut store: LinkedListStore = seeded(h, 64);
                store.begin_checkpoint();
                let mut vpn = 0u64;
                b.iter(|| {
                    vpn = (vpn + 1) % 64;
                    black_box(store.insert(
                        PageKey {
                            pid: Pid(1),
                            vpn: 0x1000 + vpn,
                        },
                        page(7),
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("radix_tree", history),
            &history,
            |b, &h| {
                let mut store: RadixTreeStore = seeded(h, 64);
                store.begin_checkpoint();
                let mut vpn = 0u64;
                b.iter(|| {
                    vpn = (vpn + 1) % 64;
                    black_box(store.insert(
                        PageKey {
                            pid: Pid(1),
                            vpn: 0x1000 + vpn,
                        },
                        page(7),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_commit_epoch(c: &mut Criterion) {
    // One full epoch commit: 300 dirty pages (the streamcluster profile)
    // merged into a store holding a 45K-page container image.
    //
    // Steady state: each store is seeded once and the measured loop
    // re-inserts the same 300-key dirty set into an open checkpoint —
    // exactly what the backup does every 30 ms after the initial full sync.
    // (The previous shape rebuilt the 45K-page store per sample via
    // `iter_batched`; the ~180 MB of setup allocations between samples left
    // the measured commit probing a cache-cold tree through a thrashed
    // allocator, inflating the radix mean ~17× over its warm cost.)
    // `begin_checkpoint` is an O(1) generation bump in both structures and
    // is excluded from the loop so iteration count cannot grow the stores.
    let mut group = c.benchmark_group("pagestore_commit_300_pages");
    group.sample_size(20);
    let mut radix: RadixTreeStore = seeded(1, 45_000);
    radix.begin_checkpoint();
    group.bench_function("radix_tree", |b| {
        b.iter(|| {
            for vpn in 0..300u64 {
                black_box(radix.insert(
                    PageKey {
                        pid: Pid(1),
                        vpn: 0x1000 + vpn * 7,
                    },
                    page(9),
                ));
            }
        });
    });
    let mut list: LinkedListStore = seeded(32, 1_500);
    list.begin_checkpoint();
    group.bench_function("linked_list_history32", |b| {
        b.iter(|| {
            for vpn in 0..300u64 {
                black_box(list.insert(
                    PageKey {
                        pid: Pid(1),
                        vpn: 0x1000 + vpn * 7,
                    },
                    page(9),
                ));
            }
        });
    });
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    // Failover-path full-image iteration (sorted).
    let mut group = c.benchmark_group("pagestore_materialize");
    group.sample_size(20);
    let radix: RadixTreeStore = seeded(1, 25_000); // ~100MB Redis-like image
    group.bench_function("radix_iter_sorted_25k", |b| {
        b.iter(|| black_box(radix.iter_sorted().len()));
    });
    let list: LinkedListStore = seeded(4, 6_000);
    group.bench_function("list_iter_sorted_6k", |b| {
        b.iter(|| black_box(list.iter_sorted().len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_vs_history,
    bench_commit_epoch,
    bench_materialize
);
criterion_main!(benches);
