//! Wall-clock microbenchmarks of the copy-on-write checkpoint hot paths:
//! write-protecting a dirty set at pause, the eager copy-before-write fault
//! taken when the container touches a protected page, and the background
//! copier's chunked drain. These are the three operations the COW mode puts
//! on (or near) the critical path in place of the stop-phase memcpy; results
//! land in `BENCH_cow.json` via the offline criterion shim.

use criterion::{criterion_group, criterion_main, Criterion};
use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::TrackingMode;
use nilicon_sim::PAGE_SIZE;
use std::hint::black_box;

fn container_kernel(heap_pages: u64) -> (Kernel, nilicon_container::Container) {
    let mut k = Kernel::default();
    let mut spec = ContainerSpec::server("cow", 10, 80);
    spec.heap_pages = heap_pages;
    let c = ContainerRuntime::create(&mut k, &spec).unwrap();
    (k, c)
}

/// Dirty `pages` heap pages and return their vpns (what the dump would
/// collect from the pagemap).
fn dirty_vpns(k: &mut Kernel, cont: &nilicon_container::Container, pages: u64) -> Vec<u64> {
    let pid = cont.init_pid();
    for p in 0..pages {
        k.mem_write(pid, MemLayout::heap_page(p), &[p as u8 | 1]).unwrap();
    }
    (0..pages)
        .map(|p| MemLayout::heap_page(p) / PAGE_SIZE as u64)
        .collect()
}

fn bench_protect(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_protect");
    for &pages in &[300u64, 3000] {
        group.bench_function(format!("protect_{pages}_pages"), |b| {
            let (mut k, cont) = container_kernel(pages + 64);
            let pid = cont.init_pid();
            k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
            let vpns = dirty_vpns(&mut k, &cont, pages);
            b.iter(|| {
                k.cow_protect_pages(pid, &vpns).unwrap();
                // Drain without metering noise so the next iteration starts
                // from an empty protected set.
                while !k.cow_drain_pages(pid, 512).unwrap().is_empty() {}
                black_box(k.meter.take())
            });
        });
    }
    group.finish();
}

fn bench_fault_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_fault");
    group.bench_function("fault_copy_64_protected_writes", |b| {
        let (mut k, cont) = container_kernel(256);
        let pid = cont.init_pid();
        k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
        b.iter(|| {
            let vpns = dirty_vpns(&mut k, &cont, 64);
            k.cow_protect_pages(pid, &vpns).unwrap();
            // Each write hits a protected page: eager copy-before-write.
            for p in 0..64u64 {
                k.mem_write(pid, MemLayout::heap_page(p), &[0xEE]).unwrap();
            }
            let faults = k.take_cow_faults(pid).unwrap();
            // Clear the staged snapshots for the next round.
            while !k.cow_drain_pages(pid, 512).unwrap().is_empty() {}
            k.meter.take();
            black_box(faults)
        });
    });
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_drain");
    group.sample_size(30);
    for &pages in &[300u64, 3000] {
        group.bench_function(format!("drain_{pages}_pages_chunks_of_64"), |b| {
            let (mut k, cont) = container_kernel(pages + 64);
            let pid = cont.init_pid();
            k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
            let vpns = dirty_vpns(&mut k, &cont, pages);
            b.iter(|| {
                k.cow_protect_pages(pid, &vpns).unwrap();
                let mut drained = 0usize;
                loop {
                    let chunk = k.cow_drain_pages(pid, 64).unwrap();
                    if chunk.is_empty() {
                        break;
                    }
                    drained += chunk.len();
                }
                k.meter.take();
                black_box(drained)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protect, bench_fault_copy, bench_drain);
criterion_main!(benches);
