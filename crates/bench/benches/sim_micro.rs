//! Wall-clock microbenchmarks of the substrate hot paths: dirty tracking,
//! guest memory writes, the plug qdisc, socket checkpointing, and dump/
//! restore of a realistic container.

use criterion::{criterion_group, criterion_main, Criterion};
use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_criu::{dump_container, full_dump, DumpConfig};
use nilicon_sim::ids::Endpoint;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::TrackingMode;
use nilicon_sim::net::{InputMode, NetStack, TcpState};
use nilicon_sim::proc::FreezeStrategy;
use std::hint::black_box;

fn container_kernel(heap_pages: u64) -> (Kernel, nilicon_container::Container) {
    let mut k = Kernel::default();
    let mut spec = ContainerSpec::server("bench", 10, 80);
    spec.heap_pages = heap_pages;
    let c = ContainerRuntime::create(&mut k, &spec).unwrap();
    (k, c)
}

fn bench_mem_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("guest_memory");
    let (mut k, cont) = container_kernel(8192);
    let pid = cont.init_pid();
    k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
    let data = vec![0xABu8; 4096];
    let mut off = 0u64;
    group.bench_function("write_4k_tracked", |b| {
        b.iter(|| {
            off = (off + 4096) % (8192 * 4096 - 4096);
            black_box(k.mem_write(pid, MemLayout::heap(off), &data).unwrap());
        });
    });
    group.bench_function("pagemap_scan_8k_pages", |b| {
        b.iter(|| black_box(k.pagemap_dirty(pid).unwrap().len()));
    });
    group.bench_function("clear_refs_8k_pages", |b| {
        b.iter(|| black_box(k.clear_refs(pid).unwrap()));
    });
    group.finish();
}

fn bench_qdisc_and_sockets(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    // Established socket pair with queued state.
    let mut server = NetStack::new(1, 1_000_000_000, InputMode::Buffer);
    let sid = server.socket();
    {
        let s = server.sock_mut(sid).unwrap();
        s.state = TcpState::Established;
        s.local = Endpoint::new(1, 80);
        s.remote = Some(Endpoint::new(2, 4000));
    }
    group.bench_function("send_recv_1k", |b| {
        let payload = vec![7u8; 1024];
        b.iter(|| {
            server.send(sid, &payload).unwrap();
            server.take_ready();
            // Self-deliver for the recv path.
            let s = server.sock_mut(sid).unwrap();
            s.read_queue.extend(payload.iter().copied());
            black_box(server.recv(sid, 1024).unwrap().len());
        });
    });
    group.bench_function("checkpoint_128_sockets", |b| {
        let mut stack = NetStack::new(1, 1_000_000_000, InputMode::Buffer);
        for i in 0..128u16 {
            let id = stack.socket();
            let s = stack.sock_mut(id).unwrap();
            s.state = TcpState::Established;
            s.local = Endpoint::new(1, 3000);
            s.remote = Some(Endpoint::new(2, 40_000 + i));
            s.read_queue.extend(std::iter::repeat_n(1u8, 256));
        }
        b.iter(|| black_box(stack.checkpoint_sockets().1.len()));
    });
    group.finish();
}

fn bench_dump_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("criu");
    group.sample_size(20);
    group.bench_function("incremental_dump_300_dirty", |b| {
        let (mut k, cont) = container_kernel(4096);
        let pid = cont.init_pid();
        k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
        k.freeze_cgroup(cont.cgroup, FreezeStrategy::BusyPoll)
            .unwrap();
        b.iter(|| {
            // Dirty 300 pages, dump them.
            for p in 0..300u64 {
                k.mem_write(pid, MemLayout::heap_page(p), &[1]).unwrap();
            }
            let img = dump_container(&mut k, &cont, &DumpConfig::nilicon(), None, 1).unwrap();
            black_box(img.pages.len())
        });
    });
    group.bench_function("full_dump_restore_16MB", |b| {
        b.iter_batched(
            || {
                let (mut k, cont) = container_kernel(8192);
                let pid = cont.init_pid();
                for p in 0..4096u64 {
                    k.mem_write(pid, MemLayout::heap_page(p), &[p as u8])
                        .unwrap();
                }
                (k, cont)
            },
            |(mut k, cont)| {
                let img = full_dump(&mut k, &cont, &DumpConfig::nilicon()).unwrap();
                let mut backup = Kernel::default();
                let r = nilicon_criu::restore_container(
                    &mut backup,
                    &img,
                    &nilicon_criu::RestoreConfig::default(),
                )
                .unwrap();
                black_box(r.restore_time)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mem_write,
    bench_qdisc_and_sockets,
    bench_dump_restore
);
criterion_main!(benches);
