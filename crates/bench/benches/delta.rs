//! Wall-clock Criterion benchmarks of the delta-encoding pipeline.
//!
//! Measures the *actual* encode and apply routines in `nilicon_criu::delta`
//! over the three page classes (zero, sparse diff, dense churn), plus a
//! full epoch-shaped batch: the CPU the primary pays per page to shrink the
//! wire, and the CPU the backup pays to reconstruct. Results land in
//! `BENCH_delta.json` via the offline criterion shim.

use criterion::{criterion_group, criterion_main, Criterion};
use nilicon_criu::delta::{DeltaStats, ShadowStore};
use nilicon_criu::{PageKey, PageStore, RadixTreeStore};
use nilicon_sim::ids::Pid;
use nilicon_sim::{PageBuf, PAGE_SIZE};
use std::hint::black_box;
use std::rc::Rc;

fn key(vpn: u64) -> PageKey {
    PageKey { pid: Pid(1), vpn }
}

/// A page with `edits` scattered single-byte writes.
fn page_edits(n: usize, seed: u8) -> PageBuf {
    let mut p = [0u8; PAGE_SIZE];
    for i in 0..n {
        p[(i * 97 + 13) % PAGE_SIZE] = seed.wrapping_add(i as u8) | 1;
    }
    Rc::new(p)
}

fn bench_encode_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_encode");
    let zero: PageBuf = Rc::new([0u8; PAGE_SIZE]);
    let sparse = page_edits(4, 3);
    let dense = page_edits(PAGE_SIZE, 7);

    group.bench_function("zero_page", |b| {
        let mut shadow = ShadowStore::new();
        let mut stats = DeltaStats::default();
        b.iter(|| black_box(shadow.encode(key(1), &zero, &mut stats)));
    });
    group.bench_function("sparse_diff", |b| {
        let mut shadow = ShadowStore::new();
        let mut stats = DeltaStats::default();
        shadow.encode(key(1), &page_edits(4, 1), &mut stats);
        b.iter(|| black_box(shadow.encode(key(1), &sparse, &mut stats)));
    });
    group.bench_function("dense_churn", |b| {
        let mut shadow = ShadowStore::new();
        let mut stats = DeltaStats::default();
        shadow.encode(key(1), &page_edits(PAGE_SIZE, 1), &mut stats);
        b.iter(|| black_box(shadow.encode(key(1), &dense, &mut stats)));
    });
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_apply");
    // Pre-encode one page of each class against a known base.
    let base = page_edits(4, 1);
    let mut shadow = ShadowStore::new();
    let mut stats = DeltaStats::default();
    shadow.encode(key(1), &base, &mut stats);
    let sparse_enc = shadow.encode(key(1), &page_edits(4, 9), &mut stats);

    group.bench_function("sparse_delta_to_page", |b| {
        b.iter(|| black_box(sparse_enc.apply(Some(base.as_ref()))));
    });
    group.bench_function("store_apply_delta", |b| {
        let mut store = RadixTreeStore::new();
        store.insert(key(1), base.clone());
        b.iter(|| black_box(store.apply_delta(key(1), &sparse_enc)));
    });
    group.finish();
}

fn bench_epoch_batch(c: &mut Criterion) {
    // An epoch-shaped batch: 300 dirty pages (the streamcluster profile),
    // mostly sparse rewrites — encode on the primary, apply on the backup.
    let mut group = c.benchmark_group("delta_epoch_300_pages");
    group.sample_size(20);
    group.bench_function("encode", |b| {
        let mut shadow = ShadowStore::new();
        let mut stats = DeltaStats::default();
        for vpn in 0..300u64 {
            shadow.encode(key(0x1000 + vpn), &page_edits(8, 1), &mut stats);
        }
        let mut round = 0u8;
        b.iter(|| {
            round = round.wrapping_add(1);
            let mut st = DeltaStats::default();
            for vpn in 0..300u64 {
                black_box(shadow.encode(key(0x1000 + vpn), &page_edits(8, round), &mut st));
            }
            st.encoded_bytes
        });
    });
    group.bench_function("apply", |b| {
        let mut shadow = ShadowStore::new();
        let mut stats = DeltaStats::default();
        let mut store = RadixTreeStore::new();
        let mut encs = Vec::new();
        for vpn in 0..300u64 {
            shadow.encode(key(0x1000 + vpn), &page_edits(8, 1), &mut stats);
            store.insert(key(0x1000 + vpn), page_edits(8, 1));
        }
        for vpn in 0..300u64 {
            encs.push((
                key(0x1000 + vpn),
                shadow.encode(key(0x1000 + vpn), &page_edits(8, 2), &mut stats),
            ));
        }
        b.iter(|| {
            let mut probes = 0u64;
            for (k, e) in &encs {
                probes += store.apply_delta(*k, e);
            }
            black_box(probes)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode_classes, bench_apply, bench_epoch_batch);
criterion_main!(benches);
