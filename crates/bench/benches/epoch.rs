//! Wall-clock cost of one full NiLiCon replication epoch (the simulator's
//! own hot loop): exec + freeze + dump + transfer + commit. This is the
//! throughput ceiling of the experiment harness itself.

use criterion::{criterion_group, criterion_main, Criterion};
use nilicon::engine::Checkpointer;
use nilicon::{NiLiConEngine, OptimizationConfig};
use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::CostModel;
use std::hint::black_box;

fn bench_epoch_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_epoch");
    group.sample_size(30);

    for &dirty in &[50u64, 300, 3000] {
        // Same cycle under both copy modes: eager (paper-faithful) and
        // copy-on-write, where the dirty-page copy is deferred past thaw and
        // streamed to the backup in chunks.
        for cow in [false, true] {
            let suffix = if cow { "_cow" } else { "" };
            group.bench_function(format!("checkpoint_commit_{dirty}_dirty{suffix}"), |b| {
                let mut primary = Kernel::default();
                let mut backup = Kernel::default();
                let mut spec = ContainerSpec::server("epoch", 10, 80);
                spec.heap_pages = dirty + 64;
                let cont = ContainerRuntime::create(&mut primary, &spec).unwrap();
                let mut opts = OptimizationConfig::nilicon();
                opts.cow_checkpoint = cow;
                let mut engine = NiLiConEngine::new(opts, CostModel::default());
                engine.prepare(&mut primary, &cont).unwrap();
                let mut epoch = 0u64;
                b.iter(|| {
                    epoch += 1;
                    let pid = cont.init_pid();
                    for p in 0..dirty {
                        primary
                            .mem_write(pid, MemLayout::heap_page(p), &[epoch as u8])
                            .unwrap();
                    }
                    let out = engine
                        .checkpoint(&mut primary, &mut backup, &cont, epoch)
                        .unwrap();
                    engine.commit(&mut backup, epoch).unwrap();
                    black_box(out.stop_time)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_cycle);
criterion_main!(benches);
