//! Runs the three-way benchmark comparison ONCE and emits Fig. 3 and
//! Tables III, IV, and V from the same data (they all derive from the same
//! runs in the paper too).

use nilicon_bench::{fmt_mib, fmt_ms, run_comparisons, Table};
use nilicon_workloads::Scale;

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 120);
    let comparisons = run_comparisons(Scale::bench(), epochs);

    // ---------------- Fig. 3 ----------------
    let paper_fig3: &[(&str, f64, f64)] = &[
        ("Swaptions", 12.54, 19.48),
        ("Streamcluster", 25.96, 31.83),
        ("Redis", 71.85, 67.32),
        ("SSDB", 32.44, 33.71),
        ("Node", 38.97, 58.32),
        ("Lighttpd", 30.18, 37.67),
        ("DJCMS", 52.66, 54.67),
    ];
    let mut fig3 = Table::new(
        format!("Fig. 3 — overhead NiLiCon vs MC ({epochs} epochs; breakdown = stop+runtime)"),
        vec![
            "benchmark",
            "paper MC",
            "MC",
            "(stop+run)",
            "paper NiLiCon",
            "NiLiCon",
            "(stop+run)",
        ],
    );
    for c in &comparisons {
        let p = paper_fig3
            .iter()
            .find(|(n, ..)| *n == c.name)
            .expect("known");
        let mc = c.overhead_pct(&c.mc);
        let (mc_s, mc_r) = c.breakdown_pct(&c.mc);
        let nl = c.overhead_pct(&c.nilicon);
        let (nl_s, nl_r) = c.breakdown_pct(&c.nilicon);
        fig3.push(
            c.name.clone(),
            vec![
                format!("{:.1}%", p.1),
                format!("{mc:.1}%"),
                format!("({mc_s:.0}+{mc_r:.0})"),
                format!("{:.1}%", p.2),
                format!("{nl:.1}%"),
                format!("({nl_s:.0}+{nl_r:.0})"),
            ],
        );
    }
    fig3.emit();

    // ---------------- Table III ----------------
    let paper_t3: &[(&str, f64, f64, f64, f64)] = &[
        ("Swaptions", 2.4, 5.1, 212.0, 46.0),
        ("Streamcluster", 3.0, 7.4, 462.0, 303.0),
        ("Redis", 9.3, 18.9, 6200.0, 6300.0),
        ("SSDB", 3.0, 10.4, 1107.0, 590.0),
        ("Node", 9.4, 38.2, 6400.0, 5400.0),
        ("Lighttpd", 4.8, 25.0, 2900.0, 1600.0),
        ("DJCMS", 4.5, 19.1, 2800.0, 3000.0),
    ];
    let mut t3 = Table::new(
        "Table III — avg stop time & dirty pages per epoch (paper / measured)",
        vec![
            "benchmark",
            "MC stop",
            "NiLiCon stop",
            "MC dpage",
            "NiLiCon dpage",
        ],
    );
    for c in &comparisons {
        let p = paper_t3.iter().find(|(n, ..)| *n == c.name).expect("known");
        t3.push(
            c.name.clone(),
            vec![
                format!("{:.1} / {}", p.1, fmt_ms(c.mc.avg_stop)),
                format!("{:.1} / {}", p.2, fmt_ms(c.nilicon.avg_stop)),
                format!("{:.0} / {:.0}", p.3, c.mc.avg_dirty),
                format!("{:.0} / {:.0}", p.4, c.nilicon.avg_dirty),
            ],
        );
    }
    t3.emit();

    // ---------------- Table IV ----------------
    let paper_t4: &[(&str, [f64; 3], [&str; 3])] = &[
        ("Swaptions", [5.1, 5.1, 5.2], ["189K", "193K", "201K"]),
        ("Streamcluster", [6.3, 6.4, 13.1], ["257K", "269K", "306K"]),
        ("Redis", [15.0, 18.0, 20.0], ["17.9M", "24.2M", "30.0M"]),
        ("SSDB", [9.0, 10.0, 11.0], ["1.43M", "2.88M", "3.41M"]),
        ("Node", [38.0, 41.0, 46.0], ["22.7M", "24.2M", "25.2M"]),
        ("Lighttpd", [20.0, 25.0, 35.0], ["2.05M", "7.17M", "14.65M"]),
        ("DJCMS", [16.0, 18.0, 21.0], ["53.1K", "9.5M", "13.3M"]),
    ];
    let mut t4 = Table::new(
        "Table IV — NiLiCon stop & state percentiles p10/p50/p90 (paper / measured)",
        vec!["benchmark", "stop p10/50/90", "state p10/50/90"],
    );
    for c in &comparisons {
        let p = paper_t4.iter().find(|(n, ..)| *n == c.name).expect("known");
        let s = &c.nilicon;
        t4.push(
            c.name.clone(),
            vec![
                format!(
                    "{:.0}/{:.0}/{:.0}ms / {}/{}/{}",
                    p.1[0],
                    p.1[1],
                    p.1[2],
                    fmt_ms(s.stop_p[0]),
                    fmt_ms(s.stop_p[1]),
                    fmt_ms(s.stop_p[2])
                ),
                format!(
                    "{}/{}/{} / {}/{}/{}",
                    p.2[0],
                    p.2[1],
                    p.2[2],
                    fmt_mib(s.state_p[0]),
                    fmt_mib(s.state_p[1]),
                    fmt_mib(s.state_p[2])
                ),
            ],
        );
    }
    t4.emit();

    // ---------------- Table V ----------------
    let paper_t5: &[(&str, f64, f64)] = &[
        ("Swaptions", 3.96, 0.07),
        ("Streamcluster", 3.91, 0.08),
        ("Redis", 0.98, 0.28),
        ("SSDB", 1.70, 0.12),
        ("Node", 1.01, 0.40),
        ("Lighttpd", 3.95, 0.18),
        ("DJCMS", 1.41, 0.26),
    ];
    let mut t5 = Table::new(
        "Table V — active vs backup core utilization (paper / measured)",
        vec!["benchmark", "active", "backup"],
    );
    for c in &comparisons {
        let p = paper_t5.iter().find(|(n, ..)| *n == c.name).expect("known");
        t5.push(
            c.name.clone(),
            vec![
                format!("{:.2} / {:.2}", p.1, c.stock.active_util),
                format!("{:.2} / {:.2}", p.2, c.nilicon.backup_util),
            ],
        );
    }
    t5.emit();
}
