//! Table VI — response latency with a single client, stock vs NiLiCon.
//!
//! A single closed-loop client per server benchmark; latency includes the
//! NiLiCon output-buffering delay (release at epoch commit) plus stop-phase
//! stretching of the service time — the §VII-C "Request Response Latency"
//! mechanism.

use nilicon::harness::RunMode;
use nilicon::OptimizationConfig;
use nilicon_bench::{fmt_ms, nilicon_mode, run_server, Table};
use nilicon_workloads::Scale;

/// Paper Table VI: (benchmark, stock ms, NiLiCon ms).
pub const PAPER_TABLE6: [(&str, f64, f64); 5] = [
    ("Redis", 3.1, 36.9),
    ("SSDB", 93.0, 143.0),
    ("Node", 2.4, 39.4),
    ("Lighttpd", 285.0, 542.0),
    ("DJCMS", 89.0, 245.0),
];

fn single_client_workloads(
    scale: Scale,
) -> Vec<(&'static str, nilicon_bench::comparison::WorkloadBuilder)> {
    vec![
        (
            "Redis",
            Box::new(move || nilicon_workloads::redis(scale, 1, None)),
        ),
        (
            "SSDB",
            Box::new(move || nilicon_workloads::ssdb(scale, 1, None)),
        ),
        (
            "Node",
            Box::new(move || nilicon_workloads::node(scale, 1, None)),
        ),
        (
            "Lighttpd",
            Box::new(|| nilicon_workloads::lighttpd(4, 1, None)),
        ),
        ("DJCMS", Box::new(|| nilicon_workloads::djcms(1, None))),
    ]
}

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 400);
    let scale = Scale::bench();

    let mut t = Table::new(
        format!("Table VI — single-client response latency ({epochs} epochs)"),
        vec![
            "benchmark",
            "stock (paper)",
            "stock",
            "NiLiCon (paper)",
            "NiLiCon",
        ],
    );
    for (name, build) in single_client_workloads(scale) {
        eprintln!("[{name}] stock...");
        let stock = run_server(build(), RunMode::Unreplicated, epochs, "stock");
        eprintln!("[{name}] NiLiCon...");
        let repl = run_server(
            build(),
            nilicon_mode(OptimizationConfig::nilicon()),
            epochs,
            "NiLiCon",
        );
        let p = PAPER_TABLE6
            .iter()
            .find(|(n, ..)| *n == name)
            .expect("known");
        t.push(
            name,
            vec![
                format!("{:.1}ms", p.1),
                fmt_ms(stock.mean_latency),
                format!("{:.1}ms", p.2),
                fmt_ms(repl.mean_latency),
            ],
        );
    }
    t.emit();
}
