//! Table V — core utilization on active and backup hosts (NiLiCon).

use nilicon_bench::{run_comparisons, Table};
use nilicon_workloads::Scale;

/// Paper Table V: (benchmark, active cores, backup cores).
pub const PAPER_TABLE5: [(&str, f64, f64); 7] = [
    ("Swaptions", 3.96, 0.07),
    ("Streamcluster", 3.91, 0.08),
    ("Redis", 0.98, 0.28),
    ("SSDB", 1.70, 0.12),
    ("Node", 1.01, 0.40),
    ("Lighttpd", 3.95, 0.18),
    ("DJCMS", 1.41, 0.26),
];

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 120);
    let comparisons = run_comparisons(Scale::bench(), epochs);

    let mut t = Table::new(
        format!("Table V — active vs backup core utilization ({epochs} epochs)"),
        vec![
            "benchmark",
            "active (paper)",
            "active",
            "backup (paper)",
            "backup",
        ],
    );
    for c in &comparisons {
        let p = PAPER_TABLE5
            .iter()
            .find(|(n, ..)| *n == c.name)
            .expect("known");
        t.push(
            c.name.clone(),
            vec![
                format!("{:.2}", p.1),
                // Paper methodology: "similar core utilization measurements
                // were done on a host executing the benchmarks without
                // replication" — the Active row is the stock run.
                format!("{:.2}", c.stock.active_util),
                format!("{:.2}", p.2),
                format!("{:.2}", c.nilicon.backup_util),
            ],
        );
    }
    t.emit();
}
