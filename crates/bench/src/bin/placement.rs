//! The (k, n) placement sweep: memory overhead vs failover latency across
//! erasure-coded placements (DESIGN.md §10).
//!
//! ```text
//! cargo run --release -p nilicon-bench --bin placement
//! ```
//!
//! For each placement in {(1,2), (2,3), (3,5)} the sweep drives the same
//! deterministic write script through a `PlacementEngine`, then measures:
//!
//! * **storage** — fragment bytes held across the alive replicas
//!   (`stored_fragment_bytes`) against the single-copy committed payload;
//!   mirroring's (1,2) ratio is the paper baseline (2×);
//! * **ack path** — mean per-epoch ack delay (the coded encode fan-out
//!   rides here, `ShardCommit`);
//! * **failover** — recovery latency with all replicas alive, and degraded
//!   (the designated replica dead: the image decodes from k survivors and
//!   the replacement's disk resyncs from a survivor).
//!
//! Results land in `PLACEMENT_sweep.json`; the process fails if the (2,3)
//! storage overhead is not strictly below mirroring's 2×.

use nilicon::{Checkpointer, OptimizationConfig, PlacementEngine};
use nilicon_bench::Table;
use nilicon_container::{Container, ContainerRuntime, ContainerSpec, MemLayout};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::PAGE_SIZE;
use serde::Serialize;

/// Epochs per sweep cell.
const EPOCHS: u64 = 40;
/// Page writes per epoch (spread over 40 heap pages).
const WRITES_PER_EPOCH: u64 = 6;

/// One sweep row, as serialized into `PLACEMENT_sweep.json`.
#[derive(Serialize)]
struct SweepRow {
    k: u32,
    n: u32,
    epochs: u64,
    /// Unique pages in the committed image.
    committed_pages: u64,
    /// Bytes of one fragment (`PAGE_SIZE / k`, rounded up).
    frag_bytes: u64,
    /// Fragment bytes held across all alive replicas.
    stored_bytes: u64,
    /// The committed payload held once (`committed_pages × PAGE_SIZE`).
    single_copy_bytes: u64,
    /// Storage overhead: `stored_bytes / single_copy_bytes`.
    overhead_x: f64,
    /// Mean per-epoch ack delay over the run, ns.
    mean_ack_delay_ns: u64,
    /// Mean per-epoch bytes shipped (all replicas).
    mean_state_bytes: u64,
    /// Failover latency with every replica alive, ns.
    healthy_failover_ns: u64,
    /// Failover latency with the designated replica dead (decode from k
    /// survivors + disk resync onto the replacement), ns.
    degraded_failover_ns: u64,
}

/// Deterministic write script (the `tests/shard_equivalence.rs` shape).
fn script(p: &mut Kernel, c: &Container, epoch: u64) {
    for i in 0..WRITES_PER_EPOCH {
        let x = 7u64
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(epoch * 131 + i * 17);
        let page = x % 40;
        let val = (x >> 8) as u8;
        p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val, val ^ 0x5A])
            .unwrap();
    }
}

/// Run the script under a (k, n) placement and return the measured row.
/// `degraded` kills the designated replica before the failover.
fn run_cell(k: u32, n: u32) -> SweepRow {
    let measure = |degrade: bool| -> (PlacementEngine, u64, u64, u64) {
        let mut p = Kernel::default();
        let mut b = Kernel::default();
        let c =
            ContainerRuntime::create(&mut p, &ContainerSpec::server("redis", 10, 6379)).unwrap();
        let mut opts = OptimizationConfig::nilicon();
        opts.backups = n;
        opts.quorum = k;
        let mut e = PlacementEngine::new(opts, p.costs.clone()).unwrap();
        e.prepare(&mut p, &c).unwrap();
        let (mut ack_sum, mut bytes_sum) = (0u64, 0u64);
        for epoch in 1..=EPOCHS {
            script(&mut p, &c, epoch);
            let out = e.checkpoint(&mut p, &mut b, &c, epoch).unwrap();
            e.commit(&mut b, epoch).unwrap();
            ack_sum += out.ack_delay;
            bytes_sum += out.state_bytes;
        }
        if degrade {
            e.fail_replica(0).unwrap();
        }
        // Degraded failover lands on a fresh replacement host (the harness
        // provisions one at the replica fault); healthy failover lands on
        // the designated backup.
        let mut target = if degrade { Kernel::default() } else { b };
        let (_restored, report) = e.failover(&mut target).unwrap();
        (e, ack_sum / EPOCHS, bytes_sum / EPOCHS, report.total())
    };

    let (mut e, mean_ack, mean_bytes, healthy) = measure(false);
    let (_, _, _, degraded) = measure(true);

    let committed_pages = {
        let survivors: Vec<usize> = (0..k as usize).collect();
        e.reconstruct_committed(&survivors).unwrap().pages.len() as u64
    };
    let stored = e.stored_fragment_bytes();
    let single = committed_pages * PAGE_SIZE as u64;
    SweepRow {
        k,
        n,
        epochs: EPOCHS,
        committed_pages,
        frag_bytes: e.frag_len() as u64,
        stored_bytes: stored,
        single_copy_bytes: single,
        overhead_x: stored as f64 / single as f64,
        mean_ack_delay_ns: mean_ack,
        mean_state_bytes: mean_bytes,
        healthy_failover_ns: healthy,
        degraded_failover_ns: degraded,
    }
}

fn main() {
    let placements = [(1u32, 2u32), (2, 3), (3, 5)];
    let rows: Vec<SweepRow> = placements.iter().map(|&(k, n)| run_cell(k, n)).collect();

    let mut t = Table::new(
        "Placement sweep — storage overhead vs failover latency",
        vec![
            "(k,n)", "pages", "frag", "stored", "overhead", "ack-delay", "fo-healthy",
            "fo-degraded",
        ],
    );
    for r in &rows {
        t.push(
            format!("({},{})", r.k, r.n),
            vec![
                format!("{}", r.committed_pages),
                format!("{} B", r.frag_bytes),
                format!("{:.1} KiB", r.stored_bytes as f64 / 1024.0),
                format!("{:.3}x", r.overhead_x),
                format!("{:.3} ms", r.mean_ack_delay_ns as f64 / 1e6),
                format!("{:.3} ms", r.healthy_failover_ns as f64 / 1e6),
                format!("{:.3} ms", r.degraded_failover_ns as f64 / 1e6),
            ],
        );
    }
    t.emit();

    let json = serde_json::to_string(&rows).expect("rows serialize");
    std::fs::write("PLACEMENT_sweep.json", &json).expect("write PLACEMENT_sweep.json");
    println!("wrote PLACEMENT_sweep.json ({} placements)", rows.len());

    // Acceptance gates: mirroring is exactly 2×; the coded (2,3) placement
    // must tolerate the same single loss strictly cheaper.
    let mirror = rows.iter().find(|r| (r.k, r.n) == (1, 2)).unwrap();
    let coded = rows.iter().find(|r| (r.k, r.n) == (2, 3)).unwrap();
    assert!(
        (mirror.overhead_x - 2.0).abs() < 1e-9,
        "mirroring must store exactly 2x: {:.3}",
        mirror.overhead_x
    );
    if coded.overhead_x >= 2.0 {
        eprintln!(
            "FATAL: (2,3) stores {:.3}x — not below mirroring's 2x",
            coded.overhead_x
        );
        std::process::exit(1);
    }
    println!(
        "placement sweep clean: (2,3) stores {:.3}x vs mirroring's 2x \
         while tolerating the same single replica loss",
        coded.overhead_x
    );
}
