//! §V/§VI anchor check: every cost the paper states numerically, next to
//! what the model produces. Run: `cargo run -p nilicon-bench --bin anchors`.

use nilicon_bench::Table;
use nilicon_sim::CostModel;

fn main() {
    let c = CostModel::default();
    let mut t = Table::new(
        "Paper-stated cost anchors (§I, §V, §VII-C) vs model",
        vec!["anchor", "paper", "model"],
    );
    t.push(
        "namespace collection (uncached)",
        vec![
            "up to 100ms".into(),
            format!("{:.0}ms", c.ns_collect as f64 / 1e6),
        ],
    );
    t.push(
        "infrequently-modified set (streamcluster)",
        vec![
            "~160ms".into(),
            format!(
                "{:.0}ms (+{:.1}ms mapped-file stats)",
                c.infrequent_state_collect() as f64 / 1e6,
                13.0 * c.stat_per_file as f64 / 1e6
            ),
        ],
    );
    t.push(
        "firewall input-block cycle",
        vec![
            "7ms".into(),
            format!("{:.0}ms", c.firewall_block_cycle as f64 / 1e6),
        ],
    );
    t.push(
        "plug input-block cycle",
        vec![
            "43µs".into(),
            format!("{:.0}µs", c.plug_block_cycle as f64 / 1e3),
        ],
    );
    t.push(
        "freeze busy-poll wait",
        vec![
            "<1ms".into(),
            format!(
                "~{:.2}ms worst-case",
                (c.freeze_syscall_interrupt + 2 * c.freeze_poll_interval) as f64 / 1e6
            ),
        ],
    );
    t.push(
        "stock freeze sleep",
        vec![
            "100ms".into(),
            format!("{:.0}ms", c.freeze_stock_sleep as f64 / 1e6),
        ],
    );
    t.push(
        "pagemap scan, 49K pages",
        vec![
            "1441µs".into(),
            format!("{:.0}µs", 49_000.0 * c.pagemap_scan_per_page as f64 / 1e3),
        ],
    );
    t.push(
        "pagemap scan, 111K pages",
        vec![
            "2887µs".into(),
            format!("{:.0}µs", 111_000.0 * c.pagemap_scan_per_page as f64 / 1e3),
        ],
    );
    t.push(
        "copy 121 pages to staging",
        vec![
            "263µs".into(),
            format!("{:.0}µs", 121.0 * c.page_copy as f64 / 1e3),
        ],
    );
    t.push(
        "copy 495 pages to staging",
        vec![
            "1099µs".into(),
            format!("{:.0}µs", 495.0 * c.page_copy as f64 / 1e3),
        ],
    );
    t.push(
        "per-thread state, 1 thread",
        vec![
            "148µs".into(),
            format!("{:.0}µs", c.thread_state as f64 / 1e3),
        ],
    );
    t.push(
        "per-thread state, 32 threads",
        vec![
            "4ms".into(),
            format!("{:.2}ms", 32.0 * c.thread_state as f64 / 1e6),
        ],
    );
    t.push(
        "socket state, 8 sockets (2 clients x 4 procs)",
        vec![
            "1.2ms".into(),
            format!("{:.2}ms", 8.0 * c.socket_repair_dump as f64 / 1e6),
        ],
    );
    t.push(
        "socket state, 128 sockets",
        vec![
            "13ms".into(),
            format!("{:.1}ms", 128.0 * c.socket_repair_dump as f64 / 1e6),
        ],
    );
    t.push(
        "gratuitous ARP (Table II)",
        vec![
            "28ms".into(),
            format!("{:.0}ms", c.gratuitous_arp as f64 / 1e6),
        ],
    );
    t.push(
        "fresh-socket RTO",
        vec![
            ">=1s".into(),
            format!("{:.0}ms", c.tcp_rto_default as f64 / 1e6),
        ],
    );
    t.push(
        "repair-mode min RTO (§V-E)",
        vec![
            "200ms".into(),
            format!("{:.0}ms", c.tcp_rto_repair_min as f64 / 1e6),
        ],
    );
    t.push(
        "recovery misc (Table II 'Others')",
        vec![
            "7ms".into(),
            format!("{:.0}ms", c.recovery_misc as f64 / 1e6),
        ],
    );
    t.emit();
}
