//! §VII-C scalability: overhead vs thread count (streamcluster), client
//! count (Lighttpd, 4 processes), and process count (Lighttpd).
//!
//! Paper anchors: streamcluster 1→32 threads: 23%→52%; Lighttpd 2→128
//! clients: ~34%→45%; Lighttpd 1→8 processes: 23%→63%.

use nilicon::harness::RunMode;
use nilicon::OptimizationConfig;
use nilicon_bench::{fmt_ms, nilicon_mode, run_server, PerfSummary, Table};
use nilicon_workloads::{Scale, StreamclusterApp, Workload};
use std::collections::HashMap;

fn sc_threads(scale: Scale, threads: usize) -> Workload {
    let mut w = nilicon_workloads::streamcluster(scale, threads);
    let mut app = StreamclusterApp::new(scale);
    app.passes = u32::MAX;
    w.app = Box::new(app);
    w
}

/// Stock (unreplicated) baselines, keyed by (workload, procs/threads,
/// clients). Identical workload configs appear in more than one table —
/// e.g. Lighttpd (4 procs, 32 clients) sits in both the client and the
/// process sweeps — so each stock baseline runs exactly once per invocation.
struct StockCache {
    runs: HashMap<(&'static str, usize, usize), PerfSummary>,
}

impl StockCache {
    fn new() -> Self {
        StockCache { runs: HashMap::new() }
    }

    fn get_or_run(
        &mut self,
        key: (&'static str, usize, usize),
        epochs: u64,
        make: impl FnOnce() -> Workload,
    ) -> PerfSummary {
        if let Some(s) = self.runs.get(&key) {
            eprintln!("  [stock {key:?}] cached");
            return s.clone();
        }
        let s = run_server(make(), RunMode::Unreplicated, epochs, "stock");
        self.runs.insert(key, s.clone());
        s
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let epochs: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    let scale = Scale::bench();
    let mut stock_cache = StockCache::new();

    if which == "threads" || which == "all" {
        let paper = [(1usize, 23.0), (4, 31.8), (8, 36.0), (16, 43.0), (32, 52.0)];
        let mut t = Table::new(
            "§VII-C — streamcluster overhead vs thread count (paper: 23% @1 → 52% @32)",
            vec!["threads", "paper", "measured", "avg stop"],
        );
        for (threads, p) in paper {
            eprintln!("[threads={threads}] stock + NiLiCon...");
            let stock = stock_cache.get_or_run(("streamcluster", threads, 0), epochs, || {
                sc_threads(scale, threads)
            });
            let repl = run_server(
                sc_threads(scale, threads),
                nilicon_mode(OptimizationConfig::nilicon()),
                epochs,
                "NiLiCon",
            );
            let overhead = repl.time_overhead_vs(stock.throughput) * 100.0;
            t.push(
                format!("{threads}"),
                vec![
                    format!(
                        "{p:.0}%{}",
                        if threads == 4 || threads == 8 || threads == 16 {
                            " (interp.)"
                        } else {
                            ""
                        }
                    ),
                    format!("{overhead:.0}%"),
                    fmt_ms(repl.avg_stop),
                ],
            );
        }
        t.emit();
    }

    if which == "clients" || which == "all" {
        let paper = [(2usize, 34.0), (8, 34.0), (32, 34.0), (128, 45.0)];
        let mut t = Table::new(
            "§VII-C — Lighttpd (4 processes) overhead vs client count (paper: ~34% ≤32 → 45% @128)",
            vec!["clients", "paper", "measured", "avg stop"],
        );
        for (clients, p) in paper {
            eprintln!("[clients={clients}] stock + NiLiCon...");
            let stock = stock_cache.get_or_run(("lighttpd", 4, clients), epochs, || {
                nilicon_workloads::lighttpd(4, clients, None)
            });
            let repl = run_server(
                nilicon_workloads::lighttpd(4, clients, None),
                nilicon_mode(OptimizationConfig::nilicon()),
                epochs,
                "NiLiCon",
            );
            let overhead = repl.overhead_vs(stock.throughput) * 100.0;
            t.push(
                format!("{clients}"),
                vec![
                    format!("{p:.0}%"),
                    format!("{overhead:.0}%"),
                    fmt_ms(repl.avg_stop),
                ],
            );
        }
        t.emit();
    }

    if which == "processes" || which == "all" {
        let paper = [(1usize, 23.0), (2, 33.0), (4, 45.0), (8, 63.0)];
        let mut t = Table::new(
            "§VII-C — Lighttpd overhead vs process count (paper: 23% @1 → 63% @8)",
            vec!["processes", "paper", "measured", "avg stop"],
        );
        for (procs, p) in paper {
            // Clients scale with processes, as in the paper (2 → 8 clients
            // needed to saturate 1 → 8 processes; we use 8× headroom).
            let clients = 8 * procs;
            eprintln!("[processes={procs}] stock + NiLiCon...");
            let stock = stock_cache.get_or_run(("lighttpd", procs, clients), epochs, || {
                nilicon_workloads::lighttpd(procs, clients, None)
            });
            let repl = run_server(
                nilicon_workloads::lighttpd(procs, clients, None),
                nilicon_mode(OptimizationConfig::nilicon()),
                epochs,
                "NiLiCon",
            );
            let overhead = repl.overhead_vs(stock.throughput) * 100.0;
            t.push(
                format!("{procs}"),
                vec![
                    format!(
                        "{p:.0}%{}",
                        if procs == 2 || procs == 4 {
                            " (interp.)"
                        } else {
                            ""
                        }
                    ),
                    format!("{overhead:.0}%"),
                    fmt_ms(repl.avg_stop),
                ],
            );
        }
        t.emit();
    }
}
