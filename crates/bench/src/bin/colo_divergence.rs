//! COLO divergence sweep — the §VIII trade-off the paper argues from:
//! active replication beats passive replication on *deterministic* workloads
//! (tiny output delay, no stop time) but becomes prohibitive as output
//! divergence rises, while burning >100% backup CPU at every point.
//!
//! `cargo run -p nilicon-bench --release --bin colo_divergence [epochs]`

use nilicon::harness::RunMode;
use nilicon::OptimizationConfig;
use nilicon_bench::{fmt_ms, nilicon_mode, run_server, Table};
use nilicon_colo::ColoEngine;
use nilicon_sim::CostModel;
use nilicon_workloads::Scale;

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 60);
    let scale = Scale::bench();
    let redis = || nilicon_workloads::redis(scale, 8, None);

    eprintln!("[stock]...");
    let stock = run_server(redis(), RunMode::Unreplicated, epochs, "stock");
    eprintln!("[NiLiCon]...");
    let nilicon = run_server(
        redis(),
        nilicon_mode(OptimizationConfig::nilicon()),
        epochs,
        "NiLiCon",
    );

    let mut t = Table::new(
        format!("COLO divergence sweep — Redis, {epochs} epochs (§VIII trade-off)"),
        vec![
            "configuration",
            "overhead",
            "avg stop/sync",
            "mean latency",
            "backup cores",
        ],
    );
    t.push(
        "NiLiCon (passive)",
        vec![
            format!("{:.1}%", nilicon.overhead_vs(stock.throughput) * 100.0),
            fmt_ms(nilicon.avg_stop),
            fmt_ms(nilicon.mean_latency),
            format!("{:.2}", nilicon.backup_util),
        ],
    );
    for divergence in [0.0, 0.05, 0.25, 0.5, 1.0] {
        eprintln!("[COLO d={divergence}]...");
        let mode = RunMode::Replicated(Box::new(ColoEngine::new(CostModel::default(), divergence)));
        let s = run_server(redis(), mode, epochs, "COLO");
        t.push(
            format!("COLO, divergence {:.0}%", divergence * 100.0),
            vec![
                format!("{:.1}%", s.overhead_vs(stock.throughput) * 100.0),
                fmt_ms(s.avg_stop),
                fmt_ms(s.mean_latency),
                format!("{:.2}", s.backup_util),
            ],
        );
    }
    t.emit();
    println!(
        "Paper §VIII: COLO's output delay is 'far less than the buffering delay with\n\
         Remus and NiLiCon' when outputs match, but 'for largely non-deterministic\n\
         workloads, mismatches are frequent, resulting in prohibitive overhead', and\n\
         active replication costs >100% backup resources at every divergence level."
    );
}
