//! Output-release latency, epoch-ack vs log-commit (DESIGN.md §11).
//!
//! ```text
//! cargo run --release -p nilicon-bench --bin replay_latency
//! ```
//!
//! Two measurements back the hybrid checkpoint + replay extension:
//!
//! * **release wait** — the Table-VI Redis row (single closed-loop client)
//!   run twice: plain NiLiCon releases each response at the covering epoch
//!   ack (~30 ms later); `--replay` releases it when its nondeterminism-log
//!   chunk commits on the backup (one link round-trip). The per-response
//!   wait distribution (`RunMetrics::release_waits`) is the component the
//!   extension attacks.
//! * **replay duration vs log length** — a sealed one-epoch log of N batch
//!   steps is replayed onto a restored checkpoint; the virtual replay time
//!   should scale linearly with N (per-event dispatch + metered guest work).
//!
//! Results land in `BENCH_replay.json`; the process fails if the log-commit
//! mean release wait exceeds 2 ms or fails to beat the epoch-ack mean.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{
    replay_tail, Checkpointer, NiLiConEngine, OptimizationConfig, ReplicationConfig, RunMetrics,
};
use nilicon_container::{
    Application, ContainerRuntime, ContainerSpec, GuestCtx, RequestOutcome, StepOutcome,
};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::replay::ReplayEvent;
use nilicon_sim::{CostModel, SimResult};
use nilicon_workloads::Scale;
use serde::Serialize;

/// Epochs per release-wait run (matches the Table-VI default scale).
const EPOCHS: u64 = 400;

#[derive(Serialize)]
struct ReleaseRow {
    /// `"epoch_ack"` (paper row) or `"log_commit"` (`--replay`).
    mode: String,
    requests: u64,
    mean_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    /// End-to-end mean response latency for the same run (Table-VI metric).
    mean_latency_ns: u64,
}

#[derive(Serialize)]
struct ReplayRow {
    events: u64,
    replay_ns: u64,
}

#[derive(Serialize)]
struct Bench {
    release: Vec<ReleaseRow>,
    replay: Vec<ReplayRow>,
}

/// The Table-VI Redis row under the given release rule.
fn redis_run(hybrid_replay: bool) -> RunMetrics {
    let w = nilicon_workloads::redis(Scale::bench(), 1, None);
    let mut opts = OptimizationConfig::nilicon();
    opts.hybrid_replay = hybrid_replay;
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    h.run_epochs(EPOCHS).expect("run");
    let r = h.finish();
    r.verify.expect("workload validated");
    assert_eq!(r.broken_connections, 0, "broken connections");
    r.metrics
}

fn release_row(mode: &str, m: &RunMetrics) -> ReleaseRow {
    ReleaseRow {
        mode: mode.to_string(),
        requests: m.release_waits.len() as u64,
        mean_ns: m.mean_release_wait(),
        p50_ns: m.release_wait_percentile(50.0),
        p99_ns: m.release_wait_percentile(99.0),
        mean_latency_ns: m.mean_latency(),
    }
}

/// Deterministic batch stepper for the replay-duration cells.
struct Stepper;
impl Application for Stepper {
    fn name(&self) -> &str {
        "stepper"
    }
    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        ctx.heap_write(0, &[0u8; 8])
    }
    fn handle_request(&mut self, _ctx: &mut GuestCtx<'_>, _req: &[u8]) -> SimResult<RequestOutcome> {
        unreachable!("batch app")
    }
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        ctx.cpu(2_000);
        let mut buf = [0u8; 8];
        ctx.heap_read(0, &mut buf)?;
        let n = u64::from_le_bytes(buf) + 1;
        ctx.heap_write(0, &n.to_le_bytes())?;
        Ok(StepOutcome { done: false })
    }
    fn is_server(&self) -> bool {
        false
    }
}

/// Replay a sealed one-epoch log of `events` steps onto a restored
/// checkpoint; returns the virtual replay duration.
fn replay_duration(events: u64) -> u64 {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let mut spec = ContainerSpec::server("stepper", 10, 7000);
    spec.heap_pages = 4;
    let c = ContainerRuntime::create(&mut p, &spec).expect("container");
    let mut app = Stepper;
    {
        let mut ctx = GuestCtx::new(&mut p, c.workers[0], 0);
        app.init(&mut ctx).expect("init");
    }

    let mut opts = OptimizationConfig::nilicon();
    opts.hybrid_replay = true;
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).expect("prepare");
    e.checkpoint(&mut p, &mut b, &c, 1).expect("checkpoint");
    e.commit(&mut b, 1).expect("commit");

    // Epoch 2 executes `events` steps on the primary, ships the log, seals
    // it — and the primary dies before epoch 2's checkpoint.
    let mut log = Vec::with_capacity(events as usize);
    for i in 0..events {
        let mut ctx = GuestCtx::new(&mut p, c.workers[0], i);
        app.step(&mut ctx).expect("step");
        log.push(ReplayEvent::Step {
            pid: c.workers[0],
            at: i,
            done: false,
        });
    }
    e.ship_log(&mut p, 2, &log).expect("ship");
    e.seal_log(2).expect("seal");

    let (restored, _report) = e.failover(&mut b).expect("failover");
    restored.finish(&mut b).expect("finish");
    {
        let mut ctx = GuestCtx::new(&mut b, restored.container.workers[0], 0);
        app.recover(&mut ctx).expect("recover");
    }
    let tail = e.take_replay_tail().expect("tail");
    assert_eq!(tail.events(), events, "whole log sealed");
    let out = replay_tail(&mut b, &restored.container, &mut app, &tail).expect("replay");
    assert!(out.diverged.is_none(), "deterministic stepper: {:?}", out.diverged);
    out.replay_cpu
}

fn main() {
    eprintln!("[release] Redis Table-VI row, epoch-ack release...");
    let baseline = redis_run(false);
    eprintln!("[release] Redis Table-VI row, log-commit release (--replay)...");
    let hybrid = redis_run(true);
    let release = vec![
        release_row("epoch_ack", &baseline),
        release_row("log_commit", &hybrid),
    ];

    let replay: Vec<ReplayRow> = [10u64, 100, 1_000, 10_000]
        .iter()
        .map(|&n| {
            eprintln!("[replay] {n}-event log...");
            ReplayRow {
                events: n,
                replay_ns: replay_duration(n),
            }
        })
        .collect();

    for r in &release {
        println!(
            "release_wait/{:<10} requests {:>6}  mean {:>10} ns  p50 {:>10} ns  p99 {:>10} ns  (mean latency {} ns)",
            r.mode, r.requests, r.mean_ns, r.p50_ns, r.p99_ns, r.mean_latency_ns
        );
    }
    for r in &replay {
        println!(
            "replay_duration/{:<6} events -> {:>10} ns",
            r.events, r.replay_ns
        );
    }

    let bench = Bench { release, replay };
    let json = serde_json::to_string(&bench).expect("serialize");
    std::fs::write("BENCH_replay.json", &json).expect("write BENCH_replay.json");
    println!("wrote BENCH_replay.json");

    // Acceptance gates (ISSUE): --replay mean release wait on the Redis
    // Table-VI row must be at most 2 ms, and must beat the epoch-ack rule.
    let ack = &bench.release[0];
    let log = &bench.release[1];
    if log.mean_ns > 2_000_000 {
        eprintln!(
            "FATAL: log-commit mean release wait {} ns exceeds 2 ms",
            log.mean_ns
        );
        std::process::exit(1);
    }
    if log.mean_ns >= ack.mean_ns {
        eprintln!(
            "FATAL: log-commit mean release wait {} ns does not beat epoch-ack {} ns",
            log.mean_ns, ack.mean_ns
        );
        std::process::exit(1);
    }
    println!(
        "replay latency clean: release wait {:.1} µs (log-commit) vs {:.1} ms (epoch-ack)",
        log.mean_ns as f64 / 1e3,
        ack.mean_ns as f64 / 1e6
    );
}
