//! Table I — impact of NiLiCon's performance optimizations on streamcluster.
//!
//! Runs streamcluster (continuous mode) under each cumulative optimization
//! row and reports the performance overhead vs the unreplicated run.
//!
//! Note on the "Basic implementation" row: its dominant cost — the
//! linked-list incremental-image store — **grows with the number of
//! checkpoints** (that is exactly the §V-A defect), so its measured overhead
//! depends on run length. The paper's multi-minute native runs let the chain
//! reach thousands of entries (1940%); this binary runs `--epochs` epochs
//! (default 300) and reports the average over that window.

use nilicon::harness::RunMode;
use nilicon::OptimizationConfig;
use nilicon_bench::{nilicon_mode, run_server, Table};
use nilicon_workloads::{Scale, StreamclusterApp, Workload};

fn continuous_streamcluster(scale: Scale) -> Workload {
    let mut w = nilicon_workloads::streamcluster(scale, 4);
    let mut app = StreamclusterApp::new(scale);
    app.passes = u32::MAX; // continuous: we measure steady-state throughput
    w.app = Box::new(app);
    w
}

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 300);
    let scale = Scale::bench();

    let paper = [1940.0, 619.0, 84.0, 65.0, 53.0, 37.0, 31.0];
    eprintln!("running stock baseline...");
    let stock = run_server(
        continuous_streamcluster(scale),
        RunMode::Unreplicated,
        epochs,
        "stock",
    );

    let mut t = Table::new(
        format!("Table I — optimization impact, streamcluster ({epochs} epochs)"),
        vec!["Optimization", "paper", "measured", "avg stop"],
    );
    for (i, (label, opts)) in OptimizationConfig::table1_rows().into_iter().enumerate() {
        eprintln!("running: {label}...");
        let s = run_server(
            continuous_streamcluster(scale),
            nilicon_mode(opts),
            epochs,
            label,
        );
        let overhead = s.time_overhead_vs(stock.throughput) * 100.0;
        t.push(
            label,
            vec![
                format!("{:.0}%", paper[i]),
                format!("{overhead:.0}%"),
                nilicon_bench::fmt_ms(s.avg_stop),
            ],
        );
    }
    t.emit();
}
