//! `trace-report` — summarize a JSONL epoch-phase trace.
//!
//! Reads a trace produced by any binary's `--trace <path>` flag (see
//! `OBSERVABILITY.md` for the event schema) and renders, per traced run:
//!
//! * per-phase duration statistics (count, p50, p99, mean), and
//! * a Table-I-style attribution of where the stop time and the ack delay
//!   go, as a share of the mean epoch overhead.
//!
//! ```sh
//! cargo run --release --bin table1 -- 40 --trace /tmp/t.jsonl
//! cargo run --release --bin trace-report -- /tmp/t.jsonl
//! ```

use nilicon::metrics::percentile;
use nilicon::trace::{TraceEvent, TraceRecord};
use nilicon_sim::time::Nanos;
use std::collections::{BTreeMap, BTreeSet};

/// Canonical phase order for the report (execution first, then the stop
/// phases, then the ack path).
const PHASES: &[&str] = &[
    "Exec",
    "Freeze",
    "Dump",
    "DeltaEncode",
    "LocalCopy",
    "Backpressure",
    "CowCopy",
    "ShardCommit",
    "Transfer",
    "BackupIngest",
    "Ack",
    "LogShip",
];

#[derive(Default)]
struct Section {
    name: String,
    mode: String,
    /// Span durations keyed by phase name.
    spans: BTreeMap<&'static str, Vec<Nanos>>,
    epochs: BTreeSet<u64>,
    dirty_pages: u64,
    transfer_bytes: u64,
    drbd_writes: u64,
    drbd_bytes: u64,
    ingest_probes: u64,
    commit_probes: u64,
    commit_disk_pages: u64,
    released_packets: u64,
    delivered_responses: u64,
    delta_raw_bytes: u64,
    delta_encoded_bytes: u64,
    delta_zero_pages: u64,
    delta_delta_pages: u64,
    delta_full_pages: u64,
    cow_pages: u64,
    cow_bytes: u64,
    cow_faults: u64,
    heartbeat_misses: u64,
    discarded_packets: u64,
    rearm_starts: u64,
    bootstrap_chunks: u64,
    bootstrap_pages: u64,
    bootstrap_bytes: u64,
    rearm_completes: u64,
    shard_fanout: u64,
    shard_pages: u64,
    shard_frag_bytes: u64,
    degraded_events: u64,
    repair_starts: u64,
    repair_kinds: BTreeSet<String>,
    repair_chunks: u64,
    repair_pages: u64,
    repair_bytes: u64,
    repair_completes: u64,
    log_events: u64,
    log_bytes: u64,
    log_commit_latencies: Vec<Nanos>,
    replay_starts: u64,
    replay_tail_epochs: u64,
    replay_events: u64,
    replay_completes: u64,
    replay_time: Nanos,
    replay_diverge_reasons: Vec<String>,
    stage_chunks: u64,
    stage_waits: Vec<Nanos>,
    stage_restarts: BTreeMap<String, u64>,
    backpressure_stalls: Vec<Nanos>,
    exec_durs: Vec<Nanos>,
    failovers: Vec<TraceEvent>,
}

impl Section {
    fn new(name: String, mode: String) -> Self {
        Section {
            name,
            mode,
            ..Default::default()
        }
    }

    fn add(&mut self, rec: TraceRecord) {
        self.epochs.insert(rec.epoch);
        let kind = rec.kind;
        if matches!(
            kind,
            TraceEvent::Exec { .. }
                | TraceEvent::Freeze
                | TraceEvent::Dump { .. }
                | TraceEvent::DeltaEncode { .. }
                | TraceEvent::LocalCopy
                | TraceEvent::CowCopy { .. }
                | TraceEvent::ShardCommit { .. }
                | TraceEvent::Transfer { .. }
                | TraceEvent::BackupIngest { .. }
                | TraceEvent::Ack
                | TraceEvent::LogShip { .. }
                | TraceEvent::Backpressure { .. }
        ) {
            self.spans.entry(kind.name()).or_default().push(rec.dur);
        }
        match kind {
            TraceEvent::Exec { .. } => self.exec_durs.push(rec.dur),
            TraceEvent::StageEnqueue { .. } => self.stage_chunks += 1,
            TraceEvent::StageDequeue { wait, .. } => self.stage_waits.push(wait),
            TraceEvent::StageRestart { stage, .. } => {
                *self.stage_restarts.entry(stage).or_default() += 1;
            }
            TraceEvent::Backpressure { stalled } => self.backpressure_stalls.push(stalled),
            TraceEvent::Dump { dirty_pages } => self.dirty_pages += dirty_pages,
            TraceEvent::DeltaEncode {
                zero_pages,
                delta_pages,
                full_pages,
                raw_bytes,
                encoded_bytes,
            } => {
                self.delta_zero_pages += zero_pages;
                self.delta_delta_pages += delta_pages;
                self.delta_full_pages += full_pages;
                self.delta_raw_bytes += raw_bytes;
                self.delta_encoded_bytes += encoded_bytes;
            }
            TraceEvent::CowCopy { pages, bytes } => {
                self.cow_pages += pages;
                self.cow_bytes += bytes;
            }
            TraceEvent::CowFault { faults } => self.cow_faults += faults,
            TraceEvent::Transfer { bytes } => self.transfer_bytes += bytes,
            TraceEvent::DrbdShip { writes, bytes } => {
                self.drbd_writes += writes;
                self.drbd_bytes += bytes;
            }
            TraceEvent::BackupIngest { probes } => self.ingest_probes += probes,
            TraceEvent::BackupCommit { probes, disk_pages } => {
                self.commit_probes += probes;
                self.commit_disk_pages += disk_pages;
            }
            TraceEvent::OutputRelease { packets } => self.released_packets += packets,
            TraceEvent::ClientDeliver { responses } => self.delivered_responses += responses,
            TraceEvent::HeartbeatMiss { .. } => self.heartbeat_misses += 1,
            TraceEvent::OutputDiscard { packets } => self.discarded_packets += packets,
            TraceEvent::RearmStart { .. } => self.rearm_starts += 1,
            TraceEvent::BootstrapChunk { pages, bytes } => {
                self.bootstrap_chunks += 1;
                self.bootstrap_pages += pages;
                self.bootstrap_bytes += bytes;
            }
            TraceEvent::RearmComplete { .. } => self.rearm_completes += 1,
            TraceEvent::ShardCommit {
                shards,
                pages,
                frag_bytes,
            } => {
                self.shard_fanout = self.shard_fanout.max(shards as u64);
                self.shard_pages += pages;
                self.shard_frag_bytes += frag_bytes;
            }
            TraceEvent::DegradedMode { .. } => self.degraded_events += 1,
            TraceEvent::RepairStart { kind, .. } => {
                self.repair_starts += 1;
                self.repair_kinds.insert(kind);
            }
            TraceEvent::RepairChunk { pages, bytes } => {
                self.repair_chunks += 1;
                self.repair_pages += pages;
                self.repair_bytes += bytes;
            }
            TraceEvent::RepairComplete { .. } => self.repair_completes += 1,
            TraceEvent::LogShip { events, bytes } => {
                self.log_events += events;
                self.log_bytes += bytes;
            }
            TraceEvent::LogCommit { commit_latency, .. } => {
                self.log_commit_latencies.push(commit_latency);
            }
            TraceEvent::ReplayStart { epochs, events } => {
                self.replay_starts += 1;
                self.replay_tail_epochs += epochs;
                self.replay_events += events;
            }
            TraceEvent::ReplayComplete { replay_time, .. } => {
                self.replay_completes += 1;
                self.replay_time += replay_time;
            }
            TraceEvent::ReplayDiverge { reason } => self.replay_diverge_reasons.push(reason),
            ev @ TraceEvent::Failover { .. } => self.failovers.push(ev),
            _ => {}
        }
    }

    fn emit(&self) {
        let n_epochs = self.epochs.len().max(1) as f64;
        println!(
            "\n== {} [{}] — {} epochs ==",
            self.name,
            self.mode,
            self.epochs.len()
        );
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>12}",
            "phase", "count", "p50", "p99", "mean"
        );
        for &phase in PHASES {
            let Some(durs) = self.spans.get(phase) else {
                continue;
            };
            let mean = durs.iter().sum::<Nanos>() as f64 / durs.len().max(1) as f64;
            println!(
                "{:<14} {:>7} {:>12} {:>12} {:>12}",
                phase,
                durs.len(),
                fmt_ns(percentile(durs.clone(), 50.0)),
                fmt_ns(percentile(durs.clone(), 99.0)),
                fmt_ns(mean as Nanos),
            );
        }

        // Table-I-style attribution: mean per-epoch cost of each overhead
        // phase (everything but Exec) as a share of their sum. LogShip is
        // excluded — it overlaps execution instead of extending the epoch
        // (its cost is the release wait, reported separately below).
        let overhead: Vec<(&str, f64)> = PHASES
            .iter()
            .skip(1)
            .filter(|&&p| p != "LogShip")
            .filter_map(|&p| {
                self.spans
                    .get(p)
                    .map(|d| (p, d.iter().sum::<Nanos>() as f64 / n_epochs))
            })
            .collect();
        let total: f64 = overhead.iter().map(|(_, v)| v).sum();
        if total > 0.0 {
            println!("overhead attribution (per epoch, Table-I style):");
            for (p, v) in &overhead {
                println!(
                    "  {:<14} {:>12} {:>6.1}%",
                    p,
                    fmt_ns(*v as Nanos),
                    100.0 * v / total
                );
            }
            let stop: f64 = overhead
                .iter()
                .filter(|(p, _)| {
                    matches!(
                        *p,
                        "Freeze" | "Dump" | "DeltaEncode" | "LocalCopy" | "Backpressure"
                    )
                })
                .map(|(_, v)| v)
                .sum();
            println!(
                "  mean stop time {} + ack path {} = {} per epoch",
                fmt_ns(stop as Nanos),
                fmt_ns((total - stop) as Nanos),
                fmt_ns(total as Nanos)
            );

            // Overlap-aware critical-path attribution (EXTENSION,
            // `--pipeline`): the ack path runs concurrently with the next
            // execution phase, so only the part the exec window cannot
            // absorb lands on the epoch's critical path — and it lands
            // there as the *next* epoch's `Backpressure` stall. Naive
            // stop+ack summation double-counts the hidden portion; this
            // section reports what actually extends wall time.
            if self.stage_chunks > 0 || !self.backpressure_stalls.is_empty() {
                let ack = total - stop;
                let exec = self.exec_durs.iter().sum::<Nanos>() as f64
                    / self.exec_durs.len().max(1) as f64;
                let hidden = ack.min(exec);
                let bp = self.backpressure_stalls.iter().sum::<Nanos>() as f64 / n_epochs;
                println!("pipeline overlap (critical path, per epoch):");
                println!(
                    "  ack path {} overlaps a {} exec window: {} hidden, {} exposed as backpressure",
                    fmt_ns(ack as Nanos),
                    fmt_ns(exec as Nanos),
                    fmt_ns(hidden as Nanos),
                    fmt_ns(bp as Nanos),
                );
                println!(
                    "  critical path = exec {} + stop {} per epoch (the exposed ack \
                     is the backpressure already folded into stop; the hidden ack \
                     adds nothing)",
                    fmt_ns(exec as Nanos),
                    fmt_ns(stop as Nanos),
                );
                if !self.stage_waits.is_empty() {
                    let mean = self.stage_waits.iter().sum::<Nanos>() as f64
                        / self.stage_waits.len() as f64;
                    println!(
                        "  stage queue: {} chunks through the bounded channel; \
                         encode-side wait-for-slot p50 {} / p99 {} / mean {}",
                        self.stage_chunks,
                        fmt_ns(percentile(self.stage_waits.clone(), 50.0)),
                        fmt_ns(percentile(self.stage_waits.clone(), 99.0)),
                        fmt_ns(mean as Nanos),
                    );
                }
                for (stage, n) in &self.stage_restarts {
                    println!(
                        "  stage restarts: {n} in `{stage}` — in-flight chunk \
                         replayed from the peek-before-commit queue"
                    );
                }
            }
        }

        println!(
            "events: {} dirty pages, {} B transferred, {} DRBD writes ({} B), \
             {} ingest + {} commit probes, {} disk pages, {} packets released, \
             {} responses delivered",
            self.dirty_pages,
            self.transfer_bytes,
            self.drbd_writes,
            self.drbd_bytes,
            self.ingest_probes,
            self.commit_probes,
            self.commit_disk_pages,
            self.released_packets,
            self.delivered_responses,
        );
        if self.delta_raw_bytes > 0 {
            let ratio = self.delta_encoded_bytes as f64 / self.delta_raw_bytes as f64;
            println!(
                "delta transfer: {} B raw -> {} B encoded ({:.1}% of raw; \
                 {} zero / {} delta / {} full pages)",
                self.delta_raw_bytes,
                self.delta_encoded_bytes,
                100.0 * ratio,
                self.delta_zero_pages,
                self.delta_delta_pages,
                self.delta_full_pages,
            );
        }
        if self.cow_pages > 0 {
            println!(
                "cow checkpoint: {} pages ({} B) copied in the background, \
                 {} write faults (eager copy-before-write)",
                self.cow_pages, self.cow_bytes, self.cow_faults,
            );
        }
        if self.heartbeat_misses > 0 {
            println!("heartbeat misses: {}", self.heartbeat_misses);
        }
        if self.discarded_packets > 0 {
            println!(
                "output discarded at failover: {} packets (never released to clients)",
                self.discarded_packets
            );
        }
        if self.shard_pages > 0 {
            println!(
                "placement: {} fragments per page fanned out, {} page-commits \
                 ({} B of fragments per replica)",
                self.shard_fanout, self.shard_pages, self.shard_frag_bytes,
            );
        }
        if self.degraded_events > 0 {
            println!("degraded-mode transitions: {}", self.degraded_events);
        }
        if self.repair_starts > 0 {
            let kinds: Vec<&str> = self.repair_kinds.iter().map(String::as_str).collect();
            println!(
                "repair ({}): {} attempt(s), {} completed; {} chunks streamed \
                 ({} pages, {} B incl. coded read amplification)",
                kinds.join("+"),
                self.repair_starts,
                self.repair_completes,
                self.repair_chunks,
                self.repair_pages,
                self.repair_bytes,
            );
        }
        if self.log_events > 0 {
            let lats = &self.log_commit_latencies;
            let mean = lats.iter().sum::<Nanos>() as f64 / lats.len().max(1) as f64;
            println!(
                "hybrid replay log: {} events shipped ({} B), {} epoch logs \
                 committed; per-chunk commit latency p50 {} / p99 {} / mean {} \
                 (the release wait replacing the epoch ack)",
                self.log_events,
                self.log_bytes,
                lats.len(),
                fmt_ns(percentile(lats.clone(), 50.0)),
                fmt_ns(percentile(lats.clone(), 99.0)),
                fmt_ns(mean as Nanos),
            );
        }
        if self.replay_starts > 0 {
            println!(
                "failover replay: {} attempt(s) over {} sealed epoch log(s) \
                 ({} events); {} completed byte-identical in {}{}",
                self.replay_starts,
                self.replay_tail_epochs,
                self.replay_events,
                self.replay_completes,
                fmt_ns(self.replay_time),
                if self.replay_diverge_reasons.is_empty() {
                    String::new()
                } else {
                    format!(
                        ", {} diverged ({}) -> last-checkpoint fallback",
                        self.replay_diverge_reasons.len(),
                        self.replay_diverge_reasons.join(", ")
                    )
                },
            );
        }
        if self.rearm_starts > 0 {
            println!(
                "re-replication: {} bootstrap attempt(s), {} completed; \
                 {} chunks streamed ({} pages, {} B)",
                self.rearm_starts,
                self.rearm_completes,
                self.bootstrap_chunks,
                self.bootstrap_pages,
                self.bootstrap_bytes,
            );
        }
        for f in &self.failovers {
            if let TraceEvent::Failover {
                detection_latency,
                restore,
                arp,
                tcp,
                others,
            } = f
            {
                println!(
                    "failover: detected in {}, recovery restore {} + arp {} + tcp {} + misc {}",
                    fmt_ns(*detection_latency),
                    fmt_ns(*restore),
                    fmt_ns(*arp),
                    fmt_ns(*tcp),
                    fmt_ns(*others)
                );
            }
        }
    }
}

/// Virtual nanoseconds, human-readable.
fn fmt_ns(ns: Nanos) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace-report <trace.jsonl>");
        std::process::exit(2);
    });
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
    let mut sections: Vec<Section> = Vec::new();
    let mut bad_lines = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("warning: line {}: unparseable record: {e:?}", lineno + 1);
                bad_lines += 1;
                continue;
            }
        };
        if let TraceEvent::RunStart { name, mode } = rec.kind {
            sections.push(Section::new(name, mode));
        } else {
            if sections.is_empty() {
                sections.push(Section::new("(trace)".into(), "?".into()));
            }
            sections.last_mut().expect("non-empty").add(rec);
        }
    }
    if sections.is_empty() {
        println!("no records in {path}");
        return;
    }
    println!("trace: {path}");
    for s in &sections {
        s.emit();
    }
    if bad_lines > 0 {
        eprintln!("warning: skipped {bad_lines} unparseable lines");
    }
}
