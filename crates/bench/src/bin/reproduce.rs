//! Reproduce every table and figure in sequence (the EXPERIMENTS.md driver).
//!
//! `cargo run -p nilicon-bench --release --bin reproduce [-- quick] [-- --trace PREFIX]`
//!
//! `quick` trims run lengths (useful for CI smoke); the default settings are
//! the ones EXPERIMENTS.md records. With `--trace PREFIX`, each child binary
//! records its epoch-phase trace to `PREFIX.<bin>.jsonl` (one file per
//! binary — see OBSERVABILITY.md), ready for `trace-report`.

use std::process::Command;

fn run(bin: &str, args: &[&str], trace_prefix: Option<&str>) {
    let mut args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    if let Some(prefix) = trace_prefix {
        args.push("--trace".into());
        args.push(format!("{prefix}.{bin}.jsonl"));
    }
    eprintln!("\n##### {bin} {} #####", args.join(" "));
    let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
        .args(&args)
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let trace_prefix = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace requires a path prefix").clone());
    let (t1, cmp, t6, val_runs, val_epochs, scal) = if quick {
        ("60", "30", "120", "3", "30", "30")
    } else {
        ("300", "120", "400", "50", "40", "60")
    };
    let tp = trace_prefix.as_deref();

    run("anchors", &[], None); // no epoch runs to trace
    run("table1", &[t1], tp);
    run("table2", &[], tp);
    // Fig. 3 + Tables III/IV/V derive from one set of comparison runs.
    run("comparison_report", &[cmp], tp);
    run("table6", &[t6], tp);
    run("validation", &[val_runs, val_epochs], tp);
    run("scalability", &["all", scal], tp);
    // Extensions: the §VIII active-replication trade-off and the epoch knee.
    run("colo_divergence", &[scal], tp);
    run("epoch_sweep", &["2"], tp);
    eprintln!("\nAll experiments completed.");
}
