//! Reproduce every table and figure in sequence (the EXPERIMENTS.md driver).
//!
//! `cargo run -p nilicon-bench --release --bin reproduce [-- quick]`
//!
//! `quick` trims run lengths (useful for CI smoke); the default settings are
//! the ones EXPERIMENTS.md records.

use std::process::Command;

fn run(bin: &str, args: &[&str]) {
    eprintln!("\n##### {bin} {} #####", args.join(" "));
    let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}

fn main() {
    let quick = std::env::args()
        .nth(1)
        .map(|a| a == "quick")
        .unwrap_or(false);
    let (t1, cmp, t6, val_runs, val_epochs, scal) = if quick {
        ("60", "30", "120", "3", "30", "30")
    } else {
        ("300", "120", "400", "50", "40", "60")
    };

    run("anchors", &[]);
    run("table1", &[t1]);
    run("table2", &[]);
    // Fig. 3 + Tables III/IV/V derive from one set of comparison runs.
    run("comparison_report", &[cmp]);
    run("table6", &[t6]);
    run("validation", &[val_runs, val_epochs]);
    run("scalability", &["all", scal]);
    // Extensions: the §VIII active-replication trade-off and the epoch knee.
    run("colo_divergence", &[scal]);
    run("epoch_sweep", &["2"]);
    eprintln!("\nAll experiments completed.");
}
