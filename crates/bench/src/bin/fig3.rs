//! Fig. 3 — performance overhead of NiLiCon vs MC across all seven
//! benchmarks, with the runtime/stopped breakdown.
//!
//! Paper values follow the DESIGN.md reconstruction of the figure's
//! OCR-garbled labels (anchored on the stated 19-67% NiLiCon range and
//! Table I's 31% streamcluster).

use nilicon_bench::{run_comparisons, Table};
use nilicon_workloads::Scale;

/// Reconstructed paper values: (benchmark, MC %, NiLiCon %).
pub const PAPER_FIG3: [(&str, f64, f64); 7] = [
    ("Swaptions", 12.54, 19.48),
    ("Streamcluster", 25.96, 31.83),
    ("Redis", 71.85, 67.32),
    ("SSDB", 32.44, 33.71),
    ("Node", 38.97, 58.32),
    ("Lighttpd", 30.18, 37.67),
    ("DJCMS", 52.66, 54.67),
];

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 120);
    let comparisons = run_comparisons(Scale::bench(), epochs);

    let mut t = Table::new(
        format!("Fig. 3 — overhead NiLiCon vs MC ({epochs} epochs; breakdown = stop+runtime)"),
        vec![
            "benchmark",
            "paper MC",
            "MC",
            "(stop+run)",
            "paper NiLiCon",
            "NiLiCon",
            "(stop+run)",
        ],
    );
    for c in &comparisons {
        let paper = PAPER_FIG3
            .iter()
            .find(|(n, _, _)| *n == c.name)
            .expect("known benchmark");
        let mc = c.overhead_pct(&c.mc);
        let (mc_s, mc_r) = c.breakdown_pct(&c.mc);
        let nl = c.overhead_pct(&c.nilicon);
        let (nl_s, nl_r) = c.breakdown_pct(&c.nilicon);
        t.push(
            c.name.clone(),
            vec![
                format!("{:.1}%", paper.1),
                format!("{mc:.1}%"),
                format!("({mc_s:.0}+{mc_r:.0})"),
                format!("{:.1}%", paper.2),
                format!("{nl:.1}%"),
                format!("({nl_s:.0}+{nl_r:.0})"),
            ],
        );
    }
    t.emit();
}
