//! `fleet_bench` — the fleet-scale extension curve (§VII-C extended;
//! DESIGN.md §13).
//!
//! ```text
//! cargo run --release -p nilicon-bench --bin fleet_bench            # full curve
//! cargo run --release -p nilicon-bench --bin fleet_bench -- quick   # CI smoke
//! ```
//!
//! Three measurements, all gated (the process exits nonzero on a miss):
//!
//! * **identity** — a `--fleet 1` fleet over a scripted write history must
//!   commit a byte-identical backup image, with equal per-epoch
//!   stop/ack/bytes/pages outcomes, vs the plain single-engine loop
//!   (paper rows cannot drift behind the fleet refactor).
//! * **convoy** — at N = 8 lanes the staggered fleet's aggregate p99 stop
//!   time must beat `--aligned` (synchronized boundaries + FIFO link), which
//!   serializes every lane's dump behind its neighbors' each epoch.
//! * **scale** — the top cell (100 lanes × 1000 clients = 100 000 simulated
//!   connections on one primary/backup pair) must verify every lane with
//!   zero broken connections and zero split-brain, even past the saturation
//!   knee where Σ stop > epoch and the dump service runs a standing queue.
//!
//! The full run lands in `BENCH_fleet.json`.

use nilicon::fleet::{FleetScheduler, LaneSpec};
use nilicon::traffic::ClientBehavior;
use nilicon::{percentile, Checkpointer, NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_container::{
    Application, ContainerRuntime, ContainerSpec, GuestCtx, MemLayout, RequestOutcome,
};
use nilicon_criu::CheckpointImage;
use nilicon_sim::kernel::Kernel;
use nilicon_sim::time::Nanos;
use nilicon_sim::SimResult;
use serde::Serialize;

const EPOCH: Nanos = 30_000_000;
/// Epoch length for the fleet cells. Multiplexing is only stable while
/// Σ per-lane stop < epoch, and even a tiny container's dump floor is
/// ~6-7 ms (freeze + scan fixed costs), so the paper's 30 ms epoch
/// saturates at 4 lanes. The fleet cells run a 120 ms epoch: N = 8 sits in
/// the stable regime (where staggering matters) and the curve's saturation
/// knee (~N = 16) is visible inside the sweep rather than at its origin.
const FLEET_EPOCH: Nanos = 120_000_000;
/// Per-lane epochs in a curve cell.
const CURVE_EPOCHS: u64 = 24;
/// Clients per lane in the 100-lane scale cell: 100 × 1000 = 100 000
/// simulated connections multiplexed on the one primary/backup pair. Each
/// established connection is dumped with the checkpoint (TCP repair state),
/// so this cell runs deep in the saturated regime — it gates correctness
/// and aggregate throughput there, not latency.
const SCALE_CLIENTS: usize = 1_000;
/// Clients per lane on the stop-time curve: light load, so the per-lane
/// stop floor (~6 ms) rather than connection-dump cost sets the knee.
const CURVE_CLIENTS: usize = 4;
/// Stop percentiles aggregate the last `TAIL` epochs of every lane. Each
/// lane's epoch 1 is the ~160 ms initial full sync; N of those serialized
/// on the one dump service leave a backlog that takes
/// `(N-1)·160ms / (epoch - N·stop)` epochs to drain, so a fixed head-side
/// warmup skip cannot reach steady state — the tail window can.
const TAIL: usize = 8;

// ---------------------------------------------------------------------------
// Identity gate: --fleet 1 == the plain engine loop
// ---------------------------------------------------------------------------

/// One epoch's scripted guest writes: (heap page, byte value).
type EpochWrites = Vec<(u64, u8)>;

struct Inert;
impl Application for Inert {
    fn name(&self) -> &str {
        "inert"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
}

/// Deterministic write history (xorshift-scrambled): `epochs` epochs of up
/// to 40 writes over a 300-page working set.
fn identity_history(epochs: u64) -> Vec<EpochWrites> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..epochs)
        .map(|_| {
            let n = next() % 40;
            (0..n).map(|_| (next() % 300, next() as u8)).collect()
        })
        .collect()
}

fn run_plain(
    opts: OptimizationConfig,
    history: &[EpochWrites],
) -> (CheckpointImage, Vec<(Nanos, Nanos, u64, u64)>) {
    let mut p = Kernel::default();
    let mut b = Kernel::default();
    let spec = ContainerSpec::server("redis", 10, 6379);
    let c = ContainerRuntime::create(&mut p, &spec).expect("container");
    let mut e = NiLiConEngine::new(opts, p.costs.clone());
    e.prepare(&mut p, &c).expect("prepare");
    let mut outcomes = Vec::new();
    for (i, writes) in history.iter().enumerate() {
        for &(page, val) in writes {
            p.mem_write(c.init_pid(), MemLayout::heap_page(page), &[val])
                .expect("write");
        }
        e.pipeline_advance(EPOCH);
        let o = e.checkpoint(&mut p, &mut b, &c, i as u64 + 1).expect("ckpt");
        e.commit(&mut b, i as u64 + 1).expect("commit");
        outcomes.push((o.stop_time, o.ack_delay, o.state_bytes, o.dirty_pages));
    }
    (e.agent.materialize().expect("image"), outcomes)
}

fn run_fleet1(
    opts: OptimizationConfig,
    history: &[EpochWrites],
) -> (CheckpointImage, Vec<(Nanos, Nanos, u64, u64)>) {
    let mut cfg = ReplicationConfig { opts, ..Default::default() };
    cfg.opts.fleet = 1;
    let mut fleet = FleetScheduler::new(
        cfg,
        vec![LaneSpec {
            spec: ContainerSpec::server("redis", 10, 6379),
            app: Box::new(Inert),
            behavior: None,
        }],
    )
    .expect("fleet");
    fleet.script_writes(0, history.to_vec());
    fleet.run_epochs(history.len() as u64).expect("run");
    let img = fleet.lane_image(0).expect("image");
    let r = fleet.finish();
    let outcomes = r.lanes[0]
        .metrics
        .epochs
        .iter()
        .map(|e| (e.stop_time, e.ack_delay, e.state_bytes, e.dirty_pages))
        .collect();
    (img, outcomes)
}

/// Byte-compare the committed images and per-epoch outcomes; `Ok(())` or a
/// description of the first divergence.
fn identity_gate(epochs: u64, with_delta: bool) -> Result<(), String> {
    let history = identity_history(epochs);
    let mut rows = vec![("nilicon", OptimizationConfig::nilicon())];
    if with_delta {
        let mut o = OptimizationConfig::nilicon();
        o.delta_transfer = true;
        rows.push(("nilicon+delta", o));
    }
    for (label, opts) in rows {
        let (img_a, out_a) = run_plain(opts, &history);
        let (img_b, out_b) = run_fleet1(opts, &history);
        if img_a.pages.len() != img_b.pages.len() {
            return Err(format!("{label}: page-set sizes diverge"));
        }
        for (x, y) in img_a.pages.iter().zip(img_b.pages.iter()) {
            if (x.0, x.1) != (y.0, y.1) || x.2 != y.2 {
                return Err(format!("{label}: page {:?}/{:#x} diverged", x.0, x.1));
            }
        }
        if out_a != out_b {
            return Err(format!("{label}: per-epoch stop/ack outcomes diverge"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fleet cells: tiny echo lanes with a tunable dirty footprint
// ---------------------------------------------------------------------------

/// Echo server whose requests rotate writes over `dirty` heap pages, so a
/// lane's per-epoch checkpoint footprint is a knob.
struct FleetEcho {
    dirty: u64,
    n: u64,
}

impl Application for FleetEcho {
    fn name(&self) -> &str {
        "fleet-echo"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        self.n += 1;
        ctx.cpu(20_000);
        let page = self.n % self.dirty;
        ctx.heap_write(page * 4096, req)?;
        let mut back = vec![0u8; req.len()];
        ctx.heap_read(page * 4096, &mut back)?;
        Ok(RequestOutcome { response: back })
    }
}

/// Closed-loop clients issuing tagged 3-byte payloads, verifying echoes.
struct CurveClients {
    n: usize,
    tag: u8,
    issued: u64,
    got: u64,
    bad: u64,
}

impl ClientBehavior for CurveClients {
    fn client_count(&self) -> usize {
        self.n
    }
    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        self.issued += 1;
        Some(vec![self.tag, idx as u8, (self.issued % 251) as u8])
    }
    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.got += 1;
        if resp.len() != 3 || resp[0] != self.tag || resp[1] != idx as u8 {
            self.bad += 1;
        }
    }
    fn verify(&self) -> Result<(), String> {
        if self.bad > 0 {
            return Err(format!("{} corrupted echoes (tag {})", self.bad, self.tag));
        }
        if self.got == 0 {
            return Err(format!("no responses completed (tag {})", self.tag));
        }
        Ok(())
    }
}

/// A tiny lane: one single-thread process, few mapped files, small heap —
/// the per-lane stop time is dominated by the dirty footprint, not the
/// container's fixed dump surface.
fn curve_lane(i: u32, clients: usize, dirty: u64) -> LaneSpec {
    let mut spec = ContainerSpec::server(&format!("f{i}"), 16 + i, 7000);
    spec.threads_per_process = 2;
    spec.threads_in_syscall = 1;
    spec.mapped_files = 4;
    spec.heap_pages = 128;
    LaneSpec {
        spec,
        app: Box::new(FleetEcho { dirty, n: 0 }),
        behavior: Some(Box::new(CurveClients {
            n: clients,
            tag: 0x40 + (i % 64) as u8,
            issued: 0,
            got: 0,
            bad: 0,
        })),
    }
}

#[derive(Serialize)]
struct CellOut {
    lanes: u32,
    aligned: bool,
    connections: usize,
    epochs: u64,
    requests_total: u64,
    requests_per_s: f64,
    stop_p50_ns: Nanos,
    stop_p99_ns: Nanos,
    mean_queue_wait_ns: Nanos,
    mean_fair_wait_ns: Nanos,
    broken_connections: u64,
    split_brains: u64,
    all_verified: bool,
}

/// Run one fleet cell and aggregate post-warmup stop percentiles across
/// every lane (stop here is `stop_eff`: the dump plus its convoy wait).
fn run_cell(n: u32, clients: usize, epochs: u64, aligned: bool, dirty: u64) -> CellOut {
    let mut cfg = ReplicationConfig {
        epoch_exec: FLEET_EPOCH,
        opts: OptimizationConfig::nilicon(),
        ..Default::default()
    };
    cfg.opts.fleet = n;
    cfg.opts.fleet_aligned = aligned;
    let lanes = (0..n).map(|i| curve_lane(i, clients, dirty)).collect();
    let mut fleet = FleetScheduler::new(cfg, lanes).expect("fleet");
    fleet.run_epochs(epochs).expect("run");
    let r = fleet.finish();

    let mut stops = Vec::new();
    let mut requests_total = 0u64;
    let mut broken = 0u64;
    let mut all_verified = true;
    for l in &r.lanes {
        stops.extend(l.metrics.epochs.iter().rev().take(TAIL).map(|e| e.stop_time));
        requests_total += l.metrics.requests_total;
        broken += l.broken_connections;
        all_verified &= l.verify.is_ok();
    }
    let mean = |v: &[Nanos]| v.iter().sum::<Nanos>() / v.len().max(1) as u64;
    CellOut {
        lanes: n,
        aligned,
        connections: n as usize * clients,
        epochs,
        requests_total,
        requests_per_s: requests_total as f64 / (epochs as f64 * FLEET_EPOCH as f64 / 1e9),
        stop_p50_ns: percentile(stops.clone(), 50.0),
        stop_p99_ns: percentile(stops, 99.0),
        mean_queue_wait_ns: mean(&r.queue_waits),
        mean_fair_wait_ns: mean(&r.fair_waits),
        broken_connections: broken,
        split_brains: r.split_brains(),
        all_verified,
    }
}

fn print_cell(c: &CellOut) {
    println!(
        "{:>4} lanes{} {:>7} conns  {:>10.0} req/s  stop p50 {:>10} ns  p99 {:>11} ns  \
         queue {:>10} ns  fair {:>8} ns  broken {}  {}",
        c.lanes,
        if c.aligned { " (aligned)" } else { "          " },
        c.connections,
        c.requests_per_s,
        c.stop_p50_ns,
        c.stop_p99_ns,
        c.mean_queue_wait_ns,
        c.mean_fair_wait_ns,
        c.broken_connections,
        if c.all_verified { "ok" } else { "VERIFY-FAIL" },
    );
}

#[derive(Serialize)]
struct Bench {
    identity_ok: bool,
    convoy: Vec<CellOut>,
    convoy_p99_ratio: f64,
    curve: Vec<CellOut>,
    scale: CellOut,
}

/// The staggered-vs-aligned pair at `n` lanes; returns (staggered, aligned).
fn convoy_pair(n: u32, epochs: u64) -> (CellOut, CellOut) {
    eprintln!("[convoy] {n} lanes, staggered...");
    let stag = run_cell(n, 4, epochs, false, 16);
    eprintln!("[convoy] {n} lanes, --aligned...");
    let alig = run_cell(n, 4, epochs, true, 16);
    (stag, alig)
}

fn gate(ok: bool, msg: &str) {
    if !ok {
        eprintln!("FATAL: {msg}");
        std::process::exit(1);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");

    eprintln!("[identity] --fleet 1 vs plain engine...");
    let identity = identity_gate(if quick { 6 } else { 10 }, !quick);
    match &identity {
        Ok(()) => println!("identity: --fleet 1 byte-identical to the plain engine"),
        Err(e) => println!("identity: DIVERGED: {e}"),
    }
    gate(identity.is_ok(), "--fleet 1 diverged from the plain engine loop");

    let (stag, alig) = convoy_pair(8, 30);
    print_cell(&stag);
    print_cell(&alig);
    let ratio = alig.stop_p99_ns as f64 / stag.stop_p99_ns.max(1) as f64;
    println!("convoy: aligned p99 / staggered p99 = {ratio:.2}x");
    for c in [&stag, &alig] {
        gate(
            c.all_verified && c.broken_connections == 0 && c.split_brains == 0,
            "convoy cell failed verification",
        );
    }
    gate(
        stag.stop_p99_ns < alig.stop_p99_ns,
        "staggered aggregate p99 stop must beat the aligned convoy at N=8",
    );

    if quick {
        println!("fleet quick PASS");
        return;
    }

    let mut curve = Vec::new();
    for n in [1u32, 2, 4, 8, 16, 32, 64, 100] {
        eprintln!("[curve] {n} lanes x {CURVE_CLIENTS} clients...");
        let c = run_cell(n, CURVE_CLIENTS, CURVE_EPOCHS, false, 8);
        print_cell(&c);
        gate(
            c.all_verified && c.broken_connections == 0 && c.split_brains == 0,
            "curve cell failed verification",
        );
        curve.push(c);
    }

    eprintln!("[scale] 100 lanes x {SCALE_CLIENTS} clients (100K connections)...");
    let scale = run_cell(100, SCALE_CLIENTS, 12, false, 8);
    print_cell(&scale);
    gate(
        scale.lanes >= 100 && scale.connections >= 100_000,
        "scale cell must multiplex 100+ lanes / 100K+ connections",
    );
    gate(
        scale.all_verified && scale.broken_connections == 0 && scale.split_brains == 0,
        "scale cell failed verification",
    );

    let bench = Bench {
        identity_ok: true,
        convoy: vec![stag, alig],
        convoy_p99_ratio: ratio,
        curve,
        scale,
    };
    let json = serde_json::to_string(&bench).expect("serialize");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
    println!(
        "fleet gates clean: identity, convoy {ratio:.2}x, \
         100-lane/100K-connection scale cell verified"
    );
}
