//! `pipeline_bench` — hard gates for the staged-pipeline extension
//! (DESIGN.md §12).
//!
//! ```text
//! cargo run --release -p nilicon-bench --bin pipeline_bench
//! ```
//!
//! Two measurements, both gated (the process exits nonzero on a miss):
//!
//! * **delta encode** — wall-clock mean of the 300-page epoch-shaped encode
//!   batch (the `delta_epoch_300_pages/encode` shape from
//!   `benches/delta.rs`), gated at ≤ 73 µs: ≥2× over the 146 461 ns
//!   scalar-loop baseline recorded in `BENCH_delta.json` before the
//!   word-at-a-time rewrite.
//! * **epoch throughput** — streamcluster (continuous, 25 epochs, 4× point
//!   set so the dirty assignment array is wire-bound) under the synchronous
//!   engine (every checkpoint phase on the stop path) vs `--pipeline
//!   --cow` (dump-drain → encode → transfer → ingest staged and overlapped
//!   with the next execution phase). Gated at ≥1.3× with byte-identical
//!   committed state.
//!
//! Results land in `BENCH_pipeline.json`.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_criu::delta::{DeltaStats, ShadowStore};
use nilicon_criu::PageKey;
use nilicon_sim::ids::Pid;
use nilicon_sim::{CostModel, PageBuf, PAGE_SIZE};
use nilicon_workloads::{Scale, StreamclusterApp, Workload};
use serde::Serialize;
use std::hint::black_box;
use std::rc::Rc;

/// The pre-SIMD `delta_epoch_300_pages/encode` mean (ns) from
/// `BENCH_delta.json` — the scalar byte-loop this PR replaced.
const ENCODE_BASELINE_NS: u64 = 146_461;

/// Gate: the rewritten encode must be at least 2× the baseline.
const ENCODE_GATE_NS: u64 = ENCODE_BASELINE_NS / 2;

/// Gate: pipelined epoch throughput vs the synchronous engine.
const THROUGHPUT_GATE: f64 = 1.3;

const EPOCHS: u64 = 25;

#[derive(Serialize)]
struct ThroughputRow {
    mode: String,
    steps_per_s: f64,
    mean_stop_ns: u64,
    mean_ack_ns: u64,
    committed_bytes: u64,
}

#[derive(Serialize)]
struct Bench {
    encode_mean_ns: u64,
    encode_baseline_ns: u64,
    encode_speedup: f64,
    throughput: Vec<ThroughputRow>,
    throughput_ratio: f64,
}

fn key(vpn: u64) -> PageKey {
    PageKey { pid: Pid(1), vpn }
}

fn page_edits(n: usize, seed: u8) -> PageBuf {
    let mut p = [0u8; PAGE_SIZE];
    for i in 0..n {
        p[(i * 97 + 13) % PAGE_SIZE] = seed.wrapping_add(i as u8) | 1;
    }
    Rc::new(p)
}

/// Wall-clock mean of one 300-page epoch encode, matching the
/// `delta_epoch_300_pages/encode` criterion bench (3 warmup + 15 samples).
fn encode_epoch_mean_ns() -> u64 {
    let mut shadow = ShadowStore::new();
    let mut stats = DeltaStats::default();
    for vpn in 0..300u64 {
        shadow.encode(key(0x1000 + vpn), &page_edits(8, 1), &mut stats);
    }
    let mut round = 1u8;
    let sample = |shadow: &mut ShadowStore, round: u8| {
        let start = std::time::Instant::now();
        let mut st = DeltaStats::default();
        for vpn in 0..300u64 {
            black_box(shadow.encode(key(0x1000 + vpn), &page_edits(8, round), &mut st));
        }
        black_box(st.encoded_bytes);
        start.elapsed().as_nanos() as u64
    };
    for _ in 0..3 {
        round = round.wrapping_add(1);
        sample(&mut shadow, round);
    }
    let mut total = 0u64;
    const SAMPLES: u64 = 15;
    for _ in 0..SAMPLES {
        round = round.wrapping_add(1);
        total += sample(&mut shadow, round);
    }
    total / SAMPLES
}

/// The bench-scale streamcluster cell, with the point set (and so the
/// per-epoch dirty assignment array, ~1250 pages) grown 4x: the pipeline's
/// win is overlap, so the gate measures the wire-bound regime where the
/// synchronous loop actually serializes transfer/ingest against execution.
/// At the paper's ~300 dirty pages/epoch the wire work is ~4 ms against a
/// 30 ms epoch and *no* overlap scheme could reach 1.3x.
fn continuous_streamcluster() -> Workload {
    let mut scale = Scale::bench();
    scale.sc_points *= 4;
    let mut w = nilicon_workloads::streamcluster(scale, 4);
    let mut app = StreamclusterApp::new(scale);
    app.passes = u32::MAX;
    w.app = Box::new(app);
    w
}

/// Run streamcluster for [`EPOCHS`] epochs and summarize: post-warmup
/// steps/s, mean stop/ack, and the total committed state bytes (the
/// equal-work check between the two rows).
fn streamcluster_row(label: &str, opts: OptimizationConfig) -> ThroughputRow {
    let w = continuous_streamcluster();
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    let tracer = nilicon_bench::cli_tracer();
    tracer.event_at(
        nilicon::TraceEvent::RunStart {
            name: w.name.to_string(),
            mode: label.to_string(),
        },
        0,
    );
    h.set_tracer(tracer);
    h.run_epochs(EPOCHS).expect("run");
    let r = h.finish();
    r.verify.expect("workload validated");
    let s = nilicon_bench::summarize(w.name, label, &r.metrics, nilicon_bench::WARMUP_EPOCHS);
    let warm = &r.metrics.epochs[nilicon_bench::WARMUP_EPOCHS..];
    ThroughputRow {
        mode: label.to_string(),
        steps_per_s: s.throughput,
        mean_stop_ns: s.avg_stop,
        mean_ack_ns: warm.iter().map(|e| e.ack_delay).sum::<u64>() / warm.len().max(1) as u64,
        committed_bytes: warm.iter().map(|e| e.state_bytes).sum(),
    }
}

fn main() {
    eprintln!("[encode] 300-page epoch batch, 15 samples...");
    let encode_mean_ns = encode_epoch_mean_ns();
    let encode_speedup = ENCODE_BASELINE_NS as f64 / encode_mean_ns as f64;
    println!(
        "delta_epoch_300_pages/encode: mean {encode_mean_ns} ns \
         ({encode_speedup:.2}x vs {ENCODE_BASELINE_NS} ns scalar baseline)"
    );

    // Both rows move the same pages: the synchronous row runs every
    // checkpoint phase on the stop path; the pipelined row stages the
    // dump-drain (COW), transfer, and ingest and overlaps them with the
    // next execution phase.
    let mut sync = OptimizationConfig::nilicon();
    sync.staging_buffer = false;
    sync.delta_transfer = false;
    let mut piped = OptimizationConfig::nilicon();
    piped.delta_transfer = false;
    piped.cow_checkpoint = true;
    piped.pipeline = true;

    eprintln!("[throughput] streamcluster x{EPOCHS} epochs, synchronous...");
    let row_sync = streamcluster_row("synchronous", sync);
    eprintln!("[throughput] streamcluster x{EPOCHS} epochs, --pipeline...");
    let row_pipe = streamcluster_row("pipeline", piped);
    let ratio = row_pipe.steps_per_s / row_sync.steps_per_s;
    for r in [&row_sync, &row_pipe] {
        println!(
            "throughput/{:<12} {:>12.0} steps/s  stop {:>10} ns  ack {:>10} ns  {} committed B",
            r.mode, r.steps_per_s, r.mean_stop_ns, r.mean_ack_ns, r.committed_bytes
        );
    }
    println!("throughput ratio: {ratio:.2}x (gate {THROUGHPUT_GATE}x)");

    let bench = Bench {
        encode_mean_ns,
        encode_baseline_ns: ENCODE_BASELINE_NS,
        encode_speedup,
        throughput: vec![row_sync, row_pipe],
        throughput_ratio: ratio,
    };
    let json = serde_json::to_string(&bench).expect("serialize");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");

    let sync_bytes = bench.throughput[0].committed_bytes;
    let pipe_bytes = bench.throughput[1].committed_bytes;
    if sync_bytes != pipe_bytes {
        eprintln!(
            "FATAL: committed bytes diverge: synchronous {sync_bytes} vs pipeline {pipe_bytes}"
        );
        std::process::exit(1);
    }
    if encode_mean_ns > ENCODE_GATE_NS {
        eprintln!(
            "FATAL: delta encode mean {encode_mean_ns} ns exceeds the \
             {ENCODE_GATE_NS} ns gate (2x over the scalar baseline)"
        );
        std::process::exit(1);
    }
    if ratio < THROUGHPUT_GATE {
        eprintln!("FATAL: throughput ratio {ratio:.2}x below the {THROUGHPUT_GATE}x gate");
        std::process::exit(1);
    }
    println!(
        "pipeline gates clean: encode {encode_speedup:.2}x (>=2x), throughput {ratio:.2}x (>={THROUGHPUT_GATE}x)"
    );
}
