//! Table III — average stop time and dirty pages per epoch, MC and NiLiCon.

use nilicon_bench::{fmt_ms, run_comparisons, Table};
use nilicon_workloads::Scale;

/// Paper Table III: (benchmark, MC stop ms, NiLiCon stop ms, MC dirty,
/// NiLiCon dirty).
pub const PAPER_TABLE3: [(&str, f64, f64, f64, f64); 7] = [
    ("Swaptions", 2.4, 5.1, 212.0, 46.0),
    ("Streamcluster", 3.0, 7.4, 462.0, 303.0),
    ("Redis", 9.3, 18.9, 6200.0, 6300.0),
    ("SSDB", 3.0, 10.4, 1107.0, 590.0),
    ("Node", 9.4, 38.2, 6400.0, 5400.0),
    ("Lighttpd", 4.8, 25.0, 2900.0, 1600.0),
    ("DJCMS", 4.5, 19.1, 2800.0, 3000.0),
];

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 120);
    let comparisons = run_comparisons(Scale::bench(), epochs);

    let mut t = Table::new(
        format!("Table III — avg stop time & dirty pages per epoch ({epochs} epochs)"),
        vec![
            "benchmark",
            "MC stop (paper)",
            "MC stop",
            "NiLiCon stop (paper)",
            "NiLiCon stop",
            "MC dpage (paper)",
            "MC dpage",
            "NiLiCon dpage (paper)",
            "NiLiCon dpage",
        ],
    );
    for c in &comparisons {
        let p = PAPER_TABLE3
            .iter()
            .find(|(n, ..)| *n == c.name)
            .expect("known");
        t.push(
            c.name.clone(),
            vec![
                format!("{:.1}ms", p.1),
                fmt_ms(c.mc.avg_stop),
                format!("{:.1}ms", p.2),
                fmt_ms(c.nilicon.avg_stop),
                format!("{:.0}", p.3),
                format!("{:.0}", c.mc.avg_dirty),
                format!("{:.0}", p.4),
                format!("{:.0}", c.nilicon.avg_dirty),
            ],
        );
    }
    t.emit();
}
