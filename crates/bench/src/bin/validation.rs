//! §VII-A validation campaign: fault injection with recovery-rate and
//! consistency checking.
//!
//! For each benchmark (the seven §VI benchmarks plus the two §VII-A
//! microbenchmarks), runs `--runs` executions (paper: 50). Each run lasts at
//! least 60 virtual seconds' worth of epochs scaled down to `--epochs`, with
//! a fail-stop fault injected at a uniformly random time inside the middle
//! 80% of the run. A run passes if the failover succeeds, no client
//! connection is broken by an RST, and the workload's own validator reports
//! no inconsistency (value mismatches, lost updates, corrupted echoes).

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_bench::Table;
use nilicon_sim::time::MILLISECOND;
use nilicon_sim::CostModel;
use nilicon_workloads::Scale;

fn builders(scale: Scale) -> Vec<(&'static str, nilicon_bench::comparison::WorkloadBuilder)> {
    vec![
        (
            "Redis",
            Box::new(move || nilicon_workloads::redis(scale, 4, None)),
        ),
        (
            "SSDB",
            Box::new(move || nilicon_workloads::ssdb(scale, 4, None)),
        ),
        (
            "Node",
            Box::new(move || nilicon_workloads::node(scale, 16, None)),
        ),
        (
            "Lighttpd",
            Box::new(|| nilicon_workloads::lighttpd(4, 8, None)),
        ),
        ("DJCMS", Box::new(|| nilicon_workloads::djcms(8, None))),
        (
            "Swaptions",
            Box::new(move || {
                let mut w = nilicon_workloads::swaptions(scale, 4);
                let mut app = nilicon_workloads::SwaptionsApp::new(scale);
                app.swaptions = u32::MAX;
                w.app = Box::new(app);
                w
            }),
        ),
        (
            "Streamcluster",
            Box::new(move || {
                let mut w = nilicon_workloads::streamcluster(scale, 4);
                let mut app = nilicon_workloads::StreamclusterApp::new(scale);
                app.passes = u32::MAX;
                w.app = Box::new(app);
                w
            }),
        ),
        (
            "StressFs (micro)",
            Box::new(|| nilicon_workloads::stress_fs(128 * 1024, None)),
        ),
        (
            "StackEcho (micro)",
            Box::new(|| nilicon_workloads::stack_echo(4, 16_000, None)),
        ),
    ]
}

fn main() {
    let runs: u64 = nilicon_bench::cli::positional_u64(1, 10);
    let epochs: u64 = nilicon_bench::cli::positional_u64(2, 40);
    // Small scale keeps 50-run campaigns tractable; consistency checking is
    // scale-independent.
    let scale = Scale::small();

    let mut t = Table::new(
        format!("§VII-A validation — {runs} fault injections per benchmark"),
        vec![
            "benchmark",
            "recovered",
            "broken conns",
            "consistency",
            "verdict",
        ],
    );
    let mut all_ok = true;
    let mut rng: u64 = 0x0123_4567_89AB_CDEF;

    for (name, build) in builders(scale) {
        eprintln!("[{name}] {runs} fault injections...");
        let mut recovered = 0u64;
        let mut broken = 0u64;
        let mut inconsistent = 0u64;
        for _ in 0..runs {
            // Fault at a uniform-random time in the middle 80% of the run.
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let span = epochs * 30 * MILLISECOND;
            let fault_at = span / 10 + (rng >> 16) % (span * 8 / 10);

            let w = build();
            let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(
                OptimizationConfig::nilicon(),
                CostModel::default(),
            )));
            let mut h = RunHarness::new(
                w.spec,
                w.app,
                w.behavior,
                mode,
                ReplicationConfig::default(),
                w.parallelism,
            )
            .expect("harness");
            h.inject_fault_at(fault_at);
            h.run_epochs(epochs).expect("run");
            let r = h.finish();
            if r.recovered {
                recovered += 1;
            }
            broken += r.broken_connections;
            if r.verify.is_err() {
                inconsistent += 1;
            }
        }
        let ok = recovered == runs && broken == 0 && inconsistent == 0;
        all_ok &= ok;
        t.push(
            name,
            vec![
                format!("{recovered}/{runs}"),
                format!("{broken}"),
                if inconsistent == 0 {
                    "OK".into()
                } else {
                    format!("{inconsistent} FAILED")
                },
                if ok { "PASS".into() } else { "FAIL".into() },
            ],
        );
    }
    t.emit();
    println!(
        "Recovery rate: {} (paper §VII-A: 100% over 50 runs/benchmark, no broken connections)",
        if all_ok {
            "100% — PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
