//! Table II — recovery latency breakdown (Net and Redis).
//!
//! Net: a 10-byte echo server (minimal state). Redis: ~100 MB of preloaded
//! data (paper scale), one stressing client plus latency-probe clients. A
//! fail-stop fault is injected mid-run; the breakdown comes from the
//! failover report (restore / ARP / TCP / others), excluding the ~90 ms
//! detection latency, exactly as the paper reports it.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_bench::{fmt_ms, Table};
use nilicon_sim::time::MILLISECOND;
use nilicon_sim::CostModel;
use nilicon_workloads::{Scale, Workload};

/// Paper Table II rows: (name, restore, arp, tcp, others, total) in ms.
pub const PAPER_TABLE2: [(&str, f64, f64, f64, f64, f64); 2] = [
    ("Net", 218.0, 28.0, 54.0, 7.0, 307.0),
    ("Redis", 314.0, 28.0, 23.0, 7.0, 372.0),
];

fn run_failover(w: Workload, parallelism: f64) -> (nilicon::FailoverReport, u64) {
    let mode = RunMode::Replicated(Box::new(NiLiConEngine::new(
        OptimizationConfig::nilicon(),
        CostModel::default(),
    )));
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        parallelism,
    )
    .expect("harness");
    h.inject_fault_at(900 * MILLISECOND);
    h.run_epochs(60).expect("run");
    let r = h.finish();
    r.verify.expect("consistent across failover");
    assert_eq!(r.broken_connections, 0, "no broken connections (§VII-A)");
    (
        r.failover.expect("failover happened"),
        r.detection_latency.unwrap() / MILLISECOND,
    )
}

fn main() {
    let mut t = Table::new(
        "Table II — recovery latency breakdown (paper / measured)",
        vec![
            "bench", "Restore", "ARP", "TCP", "Others", "Total", "detect",
        ],
    );

    eprintln!("[Net] failover...");
    let w = nilicon_workloads::net_echo(5, None);
    let par = w.parallelism;
    let (net, net_det) = run_failover(w, par);

    eprintln!("[Redis] failover (paper-scale 100MB dataset)...");
    let w = nilicon_workloads::redis(Scale::paper(), 5, None);
    let par = w.parallelism;
    let (redis, redis_det) = run_failover(w, par);

    for (paper, measured, det) in [
        (&PAPER_TABLE2[0], &net, net_det),
        (&PAPER_TABLE2[1], &redis, redis_det),
    ] {
        t.push(
            paper.0,
            vec![
                format!("{:.0} / {}", paper.1, fmt_ms(measured.restore)),
                format!("{:.0} / {}", paper.2, fmt_ms(measured.arp)),
                format!("{:.0} / {}", paper.3, fmt_ms(measured.tcp)),
                format!("{:.0} / {}", paper.4, fmt_ms(measured.others)),
                format!("{:.0} / {}", paper.5, fmt_ms(measured.total())),
                format!("{det}ms"),
            ],
        );
    }
    t.emit();
}
