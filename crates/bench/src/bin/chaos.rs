//! The chaos bench: sweep the adversarial scenario catalog (DESIGN.md §9)
//! across fault-timing shifts and print the scenario × outcome matrix.
//!
//! ```text
//! cargo run --release -p nilicon-bench --bin chaos            # full matrix
//! cargo run --release -p nilicon-bench --bin chaos -- quick   # CI smoke
//! ```
//!
//! Every `recovered` cell is backed by the byte-identical committed-state
//! replay check (see `nilicon_bench::chaos`); any `split-brain` cell fails
//! the process. The full matrix also lands in `CHAOS_matrix.json`.

use nilicon_bench::chaos::{
    fleet_scenarios, run_cell, run_fleet_cell, run_state_cell, scenarios, Cell, Outcome,
    CELL_EPOCHS,
};
use nilicon_bench::Table;
use nilicon_sim::MILLISECOND;

fn main() {
    if std::env::args().any(|a| a == "quick") {
        quick();
        return;
    }

    // The fault-timing sweep: the same schedule landing at different phases
    // of the 30 ms epoch (mid-epoch, near a boundary, near a release).
    let shifts = [0, 7 * MILLISECOND, 23 * MILLISECOND];
    let mut cells: Vec<Cell> = Vec::new();
    for &shift in &shifts {
        for sc in scenarios(shift) {
            cells.push(run_cell(&sc, shift, CELL_EPOCHS));
        }
        // Fleet cells (EXTENSION `--fleet N`): one service-style run judges
        // per-lane ownership, isolation, and echo correctness; there is no
        // separate state run, so the same run fills both slots.
        for sc in fleet_scenarios(shift) {
            let run = run_fleet_cell(&sc, CELL_EPOCHS);
            cells.push(Cell {
                scenario: sc.name,
                shift_ms: shift / MILLISECOND,
                expect: sc.expect,
                outcome: run.outcome,
                state: run.clone(),
                service: run,
            });
        }
    }

    let mut t = Table::new(
        "Chaos matrix — scenario × fault-timing",
        vec![
            "scenario", "shift", "outcome", "expect", "state", "service", "fo", "stall",
            "no-ack", "fence", "false+", "exp",
        ],
    );
    for c in &cells {
        let st = &c.state.stats;
        t.push(
            c.scenario,
            vec![
                format!("+{}ms", c.shift_ms),
                c.outcome.to_string(),
                c.expect.to_string(),
                if c.state.state_ok { "byte-id" } else { "MISMATCH" }.into(),
                if c.service.service_ok { "ok" } else { "FAIL" }.into(),
                format!("{}", c.state.failovers),
                format!("{}", st.stalled_epochs),
                format!("{}", st.withheld_acks),
                format!("{}", st.fenced_releases),
                format!("{}", st.false_suspicions),
                format!("{}", st.lease_expiries),
            ],
        );
    }
    t.emit();

    let json = serde_json::to_string(&cells).expect("cells serialize");
    std::fs::write("CHAOS_matrix.json", &json).expect("write CHAOS_matrix.json");
    println!("wrote CHAOS_matrix.json ({} cells)", cells.len());

    let split = cells
        .iter()
        .filter(|c| c.outcome == Outcome::SplitBrain)
        .count();
    let surprises: Vec<String> = cells
        .iter()
        .filter(|c| c.outcome != c.expect)
        .map(|c| format!("{} +{}ms: {} (expected {})", c.scenario, c.shift_ms, c.outcome, c.expect))
        .collect();
    println!(
        "summary: {} cells, {} split-brain, {} off-catalog",
        cells.len(),
        split,
        surprises.len()
    );
    for s in &surprises {
        println!("  off-catalog: {s}");
    }
    if split > 0 {
        eprintln!("FATAL: split-brain cell(s) present");
        std::process::exit(1);
    }
    // Belt-and-suspenders: `recovered` is only claimable with the
    // byte-identical replay check green (classify() enforces this; assert
    // it independently so a classifier regression can't slip through).
    let unbacked = cells
        .iter()
        .filter(|c| c.outcome == Outcome::Recovered && !c.state.state_ok)
        .count();
    if unbacked > 0 {
        eprintln!("FATAL: {unbacked} recovered cell(s) without byte-identical replay");
        std::process::exit(1);
    }
    if !surprises.is_empty() {
        eprintln!("FATAL: outcome(s) diverged from the failure-mode catalog");
        std::process::exit(1);
    }
    println!("chaos matrix clean: zero split-brain, all cells match the catalog");
}

/// CI smoke: one short partition + heal, asserted recovered with a
/// byte-identical committed state.
fn quick() {
    let sc = scenarios(0)
        .into_iter()
        .find(|s| s.name == "partition-brief")
        .expect("catalog has partition-brief");
    let cell = run_state_cell(&sc, 30);
    println!(
        "chaos quick: partition-brief -> {} (state {})",
        cell.outcome,
        if cell.state_ok { "byte-identical" } else { "MISMATCH" }
    );
    assert_eq!(cell.outcome, Outcome::Recovered, "smoke scenario must recover");
    assert!(cell.state_ok, "smoke scenario must be byte-identical");
    assert!(
        cell.stats.stalled_epochs > 0,
        "the partition must actually have cut the transfer link"
    );
    println!("chaos quick PASS");
}
