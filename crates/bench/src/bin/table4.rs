//! Table IV — stop-time and transferred-state-size percentiles (NiLiCon).

use nilicon_bench::{fmt_mib, fmt_ms, run_comparisons, Table};
use nilicon_workloads::Scale;

/// Paper Table IV: (benchmark, stop p10/p50/p90 in ms, state p10/p50/p90).
pub const PAPER_TABLE4: [(&str, [f64; 3], [&str; 3]); 7] = [
    ("Swaptions", [5.1, 5.1, 5.2], ["189K", "193K", "201K"]),
    ("Streamcluster", [6.3, 6.4, 13.1], ["257K", "269K", "306K"]),
    ("Redis", [15.0, 18.0, 20.0], ["17.9M", "24.2M", "30.0M"]),
    ("SSDB", [9.0, 10.0, 11.0], ["1.43M", "2.88M", "3.41M"]),
    ("Node", [38.0, 41.0, 46.0], ["22.7M", "24.2M", "25.2M"]),
    ("Lighttpd", [20.0, 25.0, 35.0], ["2.05M", "7.17M", "14.65M"]),
    ("DJCMS", [16.0, 18.0, 21.0], ["53.1K", "9.5M", "13.3M"]),
];

fn main() {
    let epochs: u64 = nilicon_bench::cli::positional_u64(1, 120);
    let comparisons = run_comparisons(Scale::bench(), epochs);

    let mut t = Table::new(
        format!("Table IV — NiLiCon stop time & state size percentiles ({epochs} epochs)"),
        vec![
            "benchmark",
            "stop p10/50/90 (paper)",
            "stop p10/50/90",
            "state p10/50/90 (paper)",
            "state p10/50/90",
        ],
    );
    for c in &comparisons {
        let p = PAPER_TABLE4
            .iter()
            .find(|(n, ..)| *n == c.name)
            .expect("known");
        let s = &c.nilicon;
        t.push(
            c.name.clone(),
            vec![
                format!("{:.1}/{:.1}/{:.1}ms", p.1[0], p.1[1], p.1[2]),
                format!(
                    "{}/{}/{}",
                    fmt_ms(s.stop_p[0]),
                    fmt_ms(s.stop_p[1]),
                    fmt_ms(s.stop_p[2])
                ),
                format!("{}/{}/{}", p.2[0], p.2[1], p.2[2]),
                format!(
                    "{}/{}/{}",
                    fmt_mib(s.state_p[0]),
                    fmt_mib(s.state_p[1]),
                    fmt_mib(s.state_p[2])
                ),
            ],
        );
    }
    t.emit();
}
