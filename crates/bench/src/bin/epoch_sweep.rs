//! Epoch-length sensitivity — why NiLiCon (like Remus) runs "tens of
//! milliseconds" epochs (§II-A): shorter epochs cut the output-buffering
//! latency but amortize the fixed per-checkpoint cost over less execution;
//! longer epochs invert the trade. The paper fixes 30 ms (§IV); this sweep
//! shows the latency/overhead frontier around that choice.
//!
//! `cargo run -p nilicon-bench --release --bin epoch_sweep [epochs]`

use nilicon::harness::{RunHarness, RunMode};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_bench::{fmt_ms, summarize, Table, WARMUP_EPOCHS};
use nilicon_sim::time::MILLISECOND;
use nilicon_sim::CostModel;
use nilicon_workloads::Scale;

fn main() {
    let virtual_secs: u64 = nilicon_bench::cli::positional_u64(1, 3);
    let scale = Scale::bench();

    // Stock throughput baseline (epoch length irrelevant unreplicated).
    let stock = {
        let w = nilicon_workloads::redis(scale, 8, None);
        let mut h = RunHarness::new(
            w.spec,
            w.app,
            w.behavior,
            RunMode::Unreplicated,
            ReplicationConfig::default(),
            w.parallelism,
        )
        .expect("harness");
        h.run_epochs(virtual_secs * 33).expect("run");
        let r = h.finish();
        r.verify.expect("valid");
        summarize("Redis", "stock", &r.metrics, WARMUP_EPOCHS)
    };

    let mut t = Table::new(
        "Epoch-length sensitivity — Redis under NiLiCon (paper fixes 30 ms, §IV)",
        vec!["epoch", "overhead", "avg stop", "mean latency", "state/epoch"],
    );
    for epoch_ms in [10u64, 20, 30, 60, 120] {
        eprintln!("[epoch={epoch_ms}ms]...");
        let w = nilicon_workloads::redis(scale, 8, None);
        let cfg = ReplicationConfig {
            epoch_exec: epoch_ms * MILLISECOND,
            ..ReplicationConfig::default()
        };
        let engine = NiLiConEngine::new(OptimizationConfig::nilicon(), CostModel::default());
        let mut h = RunHarness::new(
            w.spec,
            w.app,
            w.behavior,
            RunMode::Replicated(Box::new(engine)),
            cfg,
            w.parallelism,
        )
        .expect("harness");
        // Same virtual-time budget for every epoch length.
        h.run_epochs(virtual_secs * 1_000 / epoch_ms).expect("run");
        let r = h.finish();
        r.verify.expect("valid");
        let s = summarize("Redis", &format!("{epoch_ms}ms"), &r.metrics, WARMUP_EPOCHS);
        // Overhead vs stock must account for the different epoch length:
        // recompute wall from the records (30e6 constant in summarize is the
        // default epoch; redo by hand here).
        let epochs = &r.metrics.epochs[WARMUP_EPOCHS.min(r.metrics.epochs.len())..];
        let wall: u64 =
            epochs.iter().map(|e| epoch_ms * MILLISECOND + e.stop_time).sum();
        let work: u64 = epochs.iter().map(|e| e.requests_done).sum();
        let tput = work as f64 / (wall as f64 / 1e9);
        let overhead = (1.0 - tput / stock.throughput) * 100.0;
        t.push(
            format!("{epoch_ms}ms"),
            vec![
                format!("{overhead:.1}%"),
                fmt_ms(s.avg_stop),
                fmt_ms(s.mean_latency),
                nilicon_bench::fmt_mib(s.state_p[1]),
            ],
        );
    }
    t.emit();
    println!(
        "Short epochs: lower response latency (less buffering) but the fixed\n\
         per-checkpoint work eats a larger execution fraction. Long epochs invert\n\
         the trade — and grow the per-epoch state burst. 30 ms sits at the knee."
    );
}
