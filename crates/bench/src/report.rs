//! Table rendering + JSON experiment records.

use nilicon_sim::time::Nanos;
use serde::Serialize;

/// Format nanoseconds as milliseconds with one decimal.
pub fn fmt_ms(ns: Nanos) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

/// Format bytes as MiB/KiB like the paper's Table IV.
pub fn fmt_mib(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{:.2}M", bytes as f64 / 1_048_576.0)
    } else {
        format!("{:.1}K", bytes as f64 / 1024.0)
    }
}

/// One rendered row: label + cells.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label.
    pub label: String,
    /// Cell contents.
    pub cells: Vec<String>,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// A paper-style table with a title, column headers, and rows; renders as
/// aligned text and serializes to JSON for EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. "Table III — ...").
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push(Row::new(label, cells));
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, c) in row.cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let mut line = vec![format!("{:width$}", row.label, width = widths[0])];
            for (i, c) in row.cells.iter().enumerate() {
                line.push(format!(
                    "{:width$}",
                    c,
                    width = widths.get(i + 1).copied().unwrap_or(8)
                ));
            }
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Print the table and its JSON record.
    pub fn emit(&self) {
        println!("{}", self.render());
        println!(
            "JSON: {}\n",
            serde_json::to_string(self).expect("table serializes")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(7_400_000), "7.4ms");
        assert_eq!(fmt_mib(24_200_000), "23.08M");
        assert_eq!(fmt_mib(53_100), "51.9K");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Table X", vec!["bench", "paper", "ours"]);
        t.push("Redis", vec!["18.9ms".into(), "17.2ms".into()]);
        t.push("A-much-longer-name", vec!["5.1ms".into(), "4.9ms".into()]);
        let s = t.render();
        assert!(s.contains("== Table X =="));
        assert!(s.contains("A-much-longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn table_serializes() {
        let mut t = Table::new("T", vec!["a"]);
        t.push("r", vec!["1".into()]);
        let j = serde_json::to_string(&t).unwrap();
        assert!(j.contains("\"title\":\"T\""));
    }
}
