//! # nilicon-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§VII); each prints
//! the paper's reported values next to this reproduction's measurements and
//! emits machine-readable JSON records (consumed by EXPERIMENTS.md).
//!
//! | Binary        | Regenerates |
//! |---------------|-------------|
//! | `table1`      | Table I — optimization impact on streamcluster |
//! | `table2`      | Table II — recovery latency breakdown |
//! | `fig3`        | Fig. 3 — overhead, NiLiCon vs MC, with breakdown |
//! | `table3`      | Table III — avg stop time & dirty pages/epoch |
//! | `table4`      | Table IV — stop-time & state-size percentiles |
//! | `table5`      | Table V — active vs backup core utilization |
//! | `table6`      | Table VI — single-client response latency |
//! | `validation`  | §VII-A — fault-injection recovery-rate campaign |
//! | `scalability` | §VII-C — thread/client/process sweeps |
//! | `anchors`     | §V/§VI — paper-stated cost anchors vs the model |
//! | `reproduce`   | everything above, in sequence |
//!
//! Criterion microbenches (`cargo bench`) measure the *real* data structures
//! in wall-clock time: the §V-A radix tree vs linked-list page stores, the
//! soft-dirty scan, checkpoint image sizing, and the plug qdisc.

pub mod chaos;
pub mod cli;
pub mod comparison;
pub mod report;
pub mod runner;

pub use cli::{apply_cli_extensions, cli_tracer, positional_u64};
pub use comparison::{fig3_workloads, run_comparisons, Comparison};
pub use report::{fmt_mib, fmt_ms, Row, Table};
pub use runner::{
    mc_mode, nilicon_mode, run_batch, run_server, summarize, PerfSummary, WARMUP_EPOCHS,
};
