//! The Fig. 3 / Tables III-V comparison runs: every benchmark under stock,
//! NiLiCon, and MC, from which four of the paper's exhibits derive.

use crate::runner::{mc_mode, nilicon_mode, run_server, PerfSummary};
use nilicon::harness::RunMode;
use nilicon::OptimizationConfig;
use nilicon_workloads::{Scale, StreamclusterApp, SwaptionsApp, Workload};
use serde::Serialize;

/// One benchmark's triple of runs.
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Unreplicated run.
    pub stock: PerfSummary,
    /// NiLiCon run.
    pub nilicon: PerfSummary,
    /// MC run.
    pub mc: PerfSummary,
    /// True for the non-interactive (execution-time-metric) benchmarks.
    pub batch: bool,
}

impl Comparison {
    /// Fig. 3 overhead (%): throughput reduction for servers, execution-time
    /// increase for batch.
    pub fn overhead_pct(&self, s: &PerfSummary) -> f64 {
        if self.batch {
            s.time_overhead_vs(self.stock.throughput) * 100.0
        } else {
            s.overhead_vs(self.stock.throughput) * 100.0
        }
    }

    /// Fig. 3 breakdown: `(stopped%, runtime%)` components of the overhead.
    pub fn breakdown_pct(&self, s: &PerfSummary) -> (f64, f64) {
        let total = self.overhead_pct(s);
        // Stop time adds dead time per epoch: avg_stop/epoch_exec.
        let stopped = (s.avg_stop as f64 / 30e6 * 100.0).min(total.max(0.0));
        (stopped, (total - stopped).max(0.0))
    }
}

/// A boxed workload factory (each run needs a fresh instance).
pub type WorkloadBuilder = Box<dyn Fn() -> Workload>;

/// The Fig. 3 benchmark list (paper order) as workload builders.
pub fn fig3_workloads(scale: Scale) -> Vec<(&'static str, bool, WorkloadBuilder)> {
    vec![
        (
            "Swaptions",
            true,
            Box::new(move || {
                let mut w = nilicon_workloads::swaptions(scale, 4);
                let mut app = SwaptionsApp::new(scale);
                app.swaptions = u32::MAX; // continuous; we measure throughput
                w.app = Box::new(app);
                w
            }),
        ),
        (
            "Streamcluster",
            true,
            Box::new(move || {
                let mut w = nilicon_workloads::streamcluster(scale, 4);
                let mut app = StreamclusterApp::new(scale);
                app.passes = u32::MAX;
                w.app = Box::new(app);
                w
            }),
        ),
        (
            "Redis",
            false,
            Box::new(move || nilicon_workloads::redis(scale, 8, None)),
        ),
        (
            "SSDB",
            false,
            Box::new(move || nilicon_workloads::ssdb(scale, 8, None)),
        ),
        (
            "Node",
            false,
            Box::new(move || nilicon_workloads::node(scale, 128, None)),
        ),
        (
            "Lighttpd",
            false,
            Box::new(move || nilicon_workloads::lighttpd(4, 32, None)),
        ),
        (
            "DJCMS",
            false,
            Box::new(move || nilicon_workloads::djcms(16, None)),
        ),
    ]
}

/// Run the full three-way comparison over all seven benchmarks.
pub fn run_comparisons(scale: Scale, epochs: u64) -> Vec<Comparison> {
    fig3_workloads(scale)
        .into_iter()
        .map(|(name, batch, build)| {
            eprintln!("[{name}] stock...");
            let stock = run_server(build(), RunMode::Unreplicated, epochs, "stock");
            eprintln!("[{name}] NiLiCon...");
            let nilicon = run_server(
                build(),
                nilicon_mode(OptimizationConfig::nilicon()),
                epochs,
                "NiLiCon",
            );
            eprintln!("[{name}] MC...");
            let mc = run_server(build(), mc_mode(), epochs, "MC");
            Comparison {
                name: name.to_string(),
                stock,
                nilicon,
                mc,
                batch,
            }
        })
        .collect()
}
