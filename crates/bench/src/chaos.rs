//! The chaos matrix: adversarial scenarios on the replication/heartbeat
//! links (partition, asymmetric loss, delay spikes, reordering) crossed with
//! fault timing, classified into recovered / degraded / data-loss /
//! split-brain (see DESIGN.md §9 for the failure-mode catalog this sweeps).
//!
//! Every cell runs twice:
//!
//! * a **state** run — the [`ScriptApp`] batch workload, whose guest-heap
//!   contents are a pure function of a step counter `n`, so the final memory
//!   can be re-derived by replaying `1..=n` onto the initial snapshot and
//!   byte-compared (the `tests/cow_equivalence.rs` pattern, without needing
//!   a reference run);
//! * a **service** run — the `net_echo` workload, checking response
//!   correctness and broken connections across the same schedule.
//!
//! A cell's outcome is the worse of the two.

use nilicon::fleet::{FleetScheduler, LaneSpec};
use nilicon::harness::{RunHarness, RunMode};
use nilicon::traffic::ClientBehavior;
use nilicon::{ChaosStats, NiLiConEngine, OptimizationConfig, PlacementEngine, ReplicationConfig};
use nilicon_container::{Application, ContainerSpec, GuestCtx, RequestOutcome, StepOutcome};
use nilicon_sim::net::{ChaosConfig, ChaosSchedule, FaultKind, LinkDir};
use nilicon_sim::time::Nanos;
use nilicon_sim::{CostModel, SimResult, MILLISECOND, PAGE_SIZE};
use nilicon_workloads::net_echo;
use serde::Serialize;

const MS: Nanos = MILLISECOND;
/// Heap pages the script touches (and the snapshot covers).
pub const HEAP_PAGES: u64 = 64;
/// CPU charged per script step (~20 steps per 30 ms epoch).
const STEP_CPU: Nanos = 1_500_000;

// ----------------------------------------------------------------------
// The deterministic write script and its replay model
// ----------------------------------------------------------------------

/// The writes step `n` performs, as `(heap byte offset, bytes)` — one sparse
/// edit, one dense page rewrite, one page periodically scrubbed to zeros,
/// and one "fresh" page first touched late in the run, plus the counter
/// itself at offset 0. Pure in `n`: the whole heap after step `n` is
/// `replay(base, n)`.
fn script_writes(n: u64) -> Vec<(u64, Vec<u8>)> {
    let p = PAGE_SIZE as u64;
    let scrub = if n.is_multiple_of(5) {
        0u8
    } else {
        (n % 7) as u8 + 1
    };
    vec![
        (0, n.to_le_bytes().to_vec()),
        ((1 + n % 13) * p + (n % 256) * 8, vec![n as u8; 64]),
        (20 * p, vec![(n % 251) as u8 | 1; PAGE_SIZE]),
        (21 * p, vec![scrub; PAGE_SIZE]),
        ((24 + n % 32) * p, vec![0xC3 ^ (n as u8); 128]),
    ]
}

/// Replay steps `1..=n` of the script onto `base` (the pre-run heap
/// snapshot); the result is the only memory state a correct run can end in.
pub fn replay(base: &[u8], n: u64) -> Vec<u8> {
    let mut mem = base.to_vec();
    for i in 1..=n {
        for (off, data) in script_writes(i) {
            let off = off as usize;
            mem[off..off + data.len()].copy_from_slice(&data);
        }
    }
    mem
}

/// Batch application executing the deterministic write script once per
/// step (`script_writes`, private — see `replay` for the public half). The step
/// counter lives in guest memory (heap offset 0), so it both survives
/// failover and is readable from the final snapshot.
pub struct ScriptApp {
    n: u64,
}

impl ScriptApp {
    /// Fresh script at step 0.
    pub fn new() -> Self {
        ScriptApp { n: 0 }
    }
}

impl Default for ScriptApp {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for ScriptApp {
    fn name(&self) -> &str {
        "script"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        ctx.heap_write(0, &0u64.to_le_bytes())
    }

    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        self.n += 1;
        for (off, data) in script_writes(self.n) {
            ctx.heap_write(off, &data)?;
        }
        ctx.cpu(STEP_CPU);
        Ok(StepOutcome { done: false })
    }

    fn recover(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // Resume from whatever step the committed image last saw.
        let mut buf = [0u8; 8];
        ctx.heap_read(0, &mut buf)?;
        self.n = u64::from_le_bytes(buf);
        Ok(())
    }

    fn is_server(&self) -> bool {
        false
    }
}

// ----------------------------------------------------------------------
// Scenarios
// ----------------------------------------------------------------------

/// Cell outcome classes, ordered least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Outcome {
    /// Service and committed state intact (byte-identical check passed).
    Recovered,
    /// Service intact but redundancy lost without a failover (backup loss,
    /// no re-arm).
    Degraded,
    /// Verification, state comparison, or an injected fault's recovery
    /// failed.
    DataLoss,
    /// The exactly-one-owner invariant broke (must never appear).
    SplitBrain,
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Outcome::Recovered => "recovered",
            Outcome::Degraded => "degraded",
            Outcome::DataLoss => "data-loss",
            Outcome::SplitBrain => "split-brain",
        })
    }
}

/// One adversarial scenario: a link-fault schedule plus optional injected
/// host faults, with the catalogued expectation (DESIGN.md §9).
pub struct Scenario {
    /// Catalog name.
    pub name: &'static str,
    /// Link-fault schedule (already shifted).
    pub schedule: ChaosSchedule,
    /// Fail-stop the active host at this time.
    pub primary_fault: Option<Nanos>,
    /// Fail-stop the backup host at this time.
    pub backup_fault: Option<Nanos>,
    /// Fail-stop the (replacement) backup host a second time — lands the
    /// fault mid-repair in the placement scenarios.
    pub backup_fault2: Option<Nanos>,
    /// Run with the re-replication extension armed.
    pub rearm: bool,
    /// Run under a k-of-n placement instead of the single warm backup.
    pub placement: Option<(u32, u32)>,
    /// Override the per-epoch repair/bootstrap chunk (tiny chunks stretch a
    /// repair across many epochs so mid-repair faults land reliably).
    pub chunk_pages: Option<u64>,
    /// Run with the hybrid checkpoint + replay extension (`--replay`):
    /// output releases at log commit and a failover replays the sealed tail.
    pub replay: bool,
    /// Run with the staged pipeline (`--pipeline`): dump-drain, encode,
    /// transfer, and ingest overlap the next execution phase behind bounded
    /// peek-before-commit channels.
    pub pipeline: bool,
    /// Crash the pipeline's ingest stage at the first checkpoint at or
    /// after this time (chunk 0 of that transfer): the restarted stage
    /// replays the chunk from the channel's uncommitted slot.
    pub stage_fail: Option<Nanos>,
    /// Expected outcome per the failure-mode catalog.
    pub expect: Outcome,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "",
            schedule: ChaosSchedule::default(),
            primary_fault: None,
            backup_fault: None,
            backup_fault2: None,
            rearm: false,
            placement: None,
            chunk_pages: None,
            replay: false,
            pipeline: false,
            stage_fail: None,
            expect: Outcome::Recovered,
        }
    }
}

/// The scenario catalog, with every window and fault time shifted by
/// `shift` (the fault-timing sweep axis: the same fault lands at different
/// phases of the 30 ms epoch).
pub fn scenarios(shift: Nanos) -> Vec<Scenario> {
    let s = |t: Nanos| t + shift;
    let none = ChaosSchedule::default();
    vec![
        Scenario {
            name: "partition-brief",
            schedule: none
                .clone()
                .window(s(400 * MS), s(460 * MS), FaultKind::Partition),
            ..Default::default()
        },
        Scenario {
            name: "partition-false-positive",
            schedule: none
                .clone()
                .window(s(400 * MS), s(510 * MS), FaultKind::Partition),
            ..Default::default()
        },
        Scenario {
            name: "partition-long",
            schedule: none
                .clone()
                .window(s(400 * MS), s(2000 * MS), FaultKind::Partition),
            ..Default::default()
        },
        Scenario {
            name: "asym-loss-heartbeats",
            schedule: none.clone().window(
                s(400 * MS),
                s(700 * MS),
                FaultKind::AsymLoss {
                    dir: LinkDir::AtoB,
                    drop_nth: 2,
                },
            ),
            ..Default::default()
        },
        Scenario {
            name: "asym-loss-acks",
            schedule: none.clone().window(
                s(400 * MS),
                s(550 * MS),
                FaultKind::AsymLoss {
                    dir: LinkDir::BtoA,
                    drop_nth: 1,
                },
            ),
            ..Default::default()
        },
        Scenario {
            name: "delay-mild",
            schedule: none.clone().window(
                s(400 * MS),
                s(700 * MS),
                FaultKind::DelaySpike { extra: 20 * MS },
            ),
            ..Default::default()
        },
        Scenario {
            name: "delay-fence",
            schedule: none.clone().window(
                s(400 * MS),
                s(700 * MS),
                FaultKind::DelaySpike { extra: 80 * MS },
            ),
            ..Default::default()
        },
        Scenario {
            name: "reorder",
            schedule: none
                .clone()
                .window(s(400 * MS), s(700 * MS), FaultKind::Reorder),
            ..Default::default()
        },
        Scenario {
            name: "backup-fault-mid-epoch",
            schedule: none.clone(),
            backup_fault: Some(s(415 * MS)),
            expect: Outcome::Degraded,
            ..Default::default()
        },
        Scenario {
            name: "backup-fault-rearm",
            schedule: none.clone(),
            backup_fault: Some(s(415 * MS)),
            rearm: true,
            ..Default::default()
        },
        Scenario {
            name: "fault-during-release",
            schedule: none.clone().window(
                s(380 * MS),
                s(500 * MS),
                FaultKind::DelaySpike { extra: 10 * MS },
            ),
            primary_fault: Some(s(415 * MS)),
            ..Default::default()
        },
        // ---- k-of-n placement scenarios: backup loss under (2,3) -------
        // A replica death leaves the bare quorum serving; coded repair
        // regenerates the lost fragment store online, so the run ends
        // fully replicated with zero failovers: Recovered, not Degraded.
        Scenario {
            name: "backup-loss-mid-epoch",
            schedule: none.clone(),
            backup_fault: Some(s(415 * MS)),
            placement: Some((2, 3)),
            ..Default::default()
        },
        // The replacement host dies while the repair streams: the
        // half-built fragment store is discarded and a backoff retry
        // (small chunks stretch the stream so the second fault reliably
        // lands mid-repair) restores redundancy.
        Scenario {
            name: "backup-loss-mid-repair",
            schedule: none.clone(),
            backup_fault: Some(s(415 * MS)),
            backup_fault2: Some(s(575 * MS)),
            placement: Some((2, 3)),
            chunk_pages: Some(8),
            ..Default::default()
        },
        // The replica dies inside a sub-lease partition window: the stalled
        // epochs resume after heal, and the repair (scheduled during the
        // partition) streams once commits flow again.
        Scenario {
            name: "backup-loss-in-partition",
            schedule: none.clone().window(s(430 * MS), s(540 * MS), FaultKind::Partition),
            backup_fault: Some(s(470 * MS)),
            placement: Some((2, 3)),
            ..Default::default()
        },
        // ---- hybrid checkpoint + replay scenarios (`--replay`) ---------
        // Log-ship through a partition window: chunks blocked by the
        // partition fall back to the held/epoch-ack release path (nothing
        // releases against an uncommitted log), the stalled epochs catch up
        // at heal, and no failover happens — recovered, byte-identical.
        Scenario {
            name: "replay-logship-partition",
            schedule: none
                .clone()
                .window(s(400 * MS), s(460 * MS), FaultKind::Partition),
            replay: true,
            ..Default::default()
        },
        // Fault mid-epoch with the log mid-ship: the truncated fault
        // epoch's chunks commit up to the fault, the seal rides the
        // boundary, and the promoted backup replays the sealed tail on top
        // of the last checkpoint — recovered with the replayed state
        // byte-identical (DESIGN.md §11 divergence rule covers the rest).
        Scenario {
            name: "replay-fault-mid-replay",
            schedule: none.clone(),
            primary_fault: Some(s(415 * MS)),
            replay: true,
            ..Default::default()
        },
        // ---- staged-pipeline scenarios (`--pipeline`) ------------------
        // A pipeline ingest stage crashes mid-epoch while the link is
        // partitioned: the bounded channel's peek-before-commit slot holds
        // the in-flight chunk across the restart, so the replayed chunk
        // lands exactly once; the partition stalls commits until heal, and
        // nothing releases against an uncommitted epoch.
        Scenario {
            name: "pipeline-stage-crash-partition",
            schedule: none
                .clone()
                .window(s(400 * MS), s(460 * MS), FaultKind::Partition),
            pipeline: true,
            stage_fail: Some(s(415 * MS)),
            ..Default::default()
        },
        // The primary dies while the pipeline is backpressured (a delay
        // spike stretches the ack round-trip past one epoch of overlap
        // budget, so checkpoints carry a `Backpressure` stall): the
        // in-flight backlog dies with the primary's staging buffer, and the
        // failover falls back to the last *committed* epoch — recovered,
        // byte-identical, because output never released against the
        // uncommitted tail.
        Scenario {
            name: "pipeline-backpressure-failover",
            schedule: none.window(
                s(380 * MS),
                s(700 * MS),
                FaultKind::DelaySpike { extra: 80 * MS },
            ),
            pipeline: true,
            primary_fault: Some(s(445 * MS)),
            ..Default::default()
        },
    ]
}

// ----------------------------------------------------------------------
// Running one cell
// ----------------------------------------------------------------------

/// Everything one cell run produced, for classification and reporting.
#[derive(Debug, Clone, Serialize)]
pub struct CellRun {
    /// Outcome class for this run alone.
    pub outcome: Outcome,
    /// Byte-identical state check (state runs; `true` for service runs).
    pub state_ok: bool,
    /// Workload verification + no broken connections.
    pub service_ok: bool,
    /// Failovers completed.
    pub failovers: u64,
    /// Chaos counters at the end of the run.
    pub stats: ChaosStats,
    /// Hard error, if the run aborted (split-brain reports land here too).
    pub error: Option<String>,
}

fn chaos_mode(sc: &Scenario) -> RunMode {
    let mut opts = OptimizationConfig::nilicon();
    opts.rearm = sc.rearm;
    opts.hybrid_replay = sc.replay;
    opts.pipeline = sc.pipeline;
    match sc.placement {
        Some((k, n)) => {
            opts.quorum = k;
            opts.backups = n;
            RunMode::Replicated(Box::new(
                PlacementEngine::new(opts, CostModel::default())
                    .expect("valid catalog placement"),
            ))
        }
        None => RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default()))),
    }
}

/// The per-cell replication config: catalog chunk override applied.
fn chaos_cfg(sc: &Scenario) -> ReplicationConfig {
    let mut cfg = ReplicationConfig::default();
    if let Some(chunk) = sc.chunk_pages {
        cfg.rearm_chunk_pages = chunk;
    }
    cfg
}

/// Run the initial-sync epoch on the paper path, then arm the chaos link,
/// leases, and fault schedule. NiLiCon likewise starts failure detection
/// only after the bootstrap transfer completes: the ~160 ms initial full
/// sync is silence on the heartbeat channel, and arming earlier makes every
/// run open with one spurious suspicion/fence cycle (see DESIGN.md §9).
fn arm(h: &mut RunHarness, sc: &Scenario) -> Result<(), String> {
    h.run_epochs(1).map_err(|e| e.to_string())?;
    h.set_chaos(ChaosConfig::new(sc.schedule.clone()));
    if let Some(t) = sc.primary_fault {
        h.inject_fault_at(t);
    }
    if let Some(t) = sc.backup_fault {
        h.inject_backup_fault_at(t);
    }
    if let Some(t) = sc.backup_fault2 {
        h.inject_backup_fault_at(t);
    }
    if let Some(t) = sc.stage_fail {
        h.inject_stage_fail_at(t, 0);
    }
    Ok(())
}

fn classify(
    state_ok: bool,
    service_ok: bool,
    unrecovered: u64,
    failovers: u64,
    replication_now: bool,
    stats: &ChaosStats,
    error: Option<&str>,
) -> Outcome {
    if stats.split_brain || error.is_some_and(|e| e.contains("split-brain")) {
        return Outcome::SplitBrain;
    }
    if !state_ok || !service_ok || unrecovered > 0 || error.is_some() {
        return Outcome::DataLoss;
    }
    if failovers == 0 && !replication_now {
        // The backup died and nothing replaced it: serving, unprotected.
        return Outcome::Degraded;
    }
    Outcome::Recovered
}

/// Run the [`ScriptApp`] state cell: `epochs` epochs under the scenario,
/// then byte-compare the final heap against the replayed script.
pub fn run_state_cell(sc: &Scenario, epochs: u64) -> CellRun {
    let mut spec = ContainerSpec::batch("script", 10);
    spec.heap_pages = HEAP_PAGES;
    spec.threads_per_process = 1;
    let mut h = RunHarness::new(
        spec,
        Box::new(ScriptApp::new()),
        None,
        chaos_mode(sc),
        chaos_cfg(sc),
        1.0,
    )
    .expect("harness");
    let base = h.snapshot_heap(HEAP_PAGES);
    let error = arm(&mut h, sc)
        .err()
        .or_else(|| h.run_epochs(epochs.saturating_sub(1)).err().map(|e| e.to_string()));
    let stats = h.chaos_stats().unwrap_or_default();
    let failovers = h.failovers();
    let replication_now = h.replication_active();

    let snap = h.snapshot_heap(HEAP_PAGES);
    let n = u64::from_le_bytes(snap[0..8].try_into().expect("counter bytes"));
    // A run that aborted (split-brain) proves nothing about state; skip the
    // replay so the comparison can't mask the real outcome.
    let state_ok = error.is_none() && n > 0 && snap == replay(&base, n);

    let r = h.finish();
    let outcome = classify(
        state_ok,
        true,
        r.unrecovered_faults,
        failovers,
        replication_now,
        &stats,
        error.as_deref(),
    );
    CellRun {
        outcome,
        state_ok,
        service_ok: true,
        failovers,
        stats,
        error,
    }
}

/// Run the `net_echo` service cell: same scenario, correctness judged by the
/// echo behavior's verification and broken-connection count.
pub fn run_service_cell(sc: &Scenario, epochs: u64) -> CellRun {
    let w = net_echo(4, None);
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        chaos_mode(sc),
        chaos_cfg(sc),
        w.parallelism,
    )
    .expect("harness");
    let error = arm(&mut h, sc)
        .err()
        .or_else(|| h.run_epochs(epochs.saturating_sub(1)).err().map(|e| e.to_string()));
    let stats = h.chaos_stats().unwrap_or_default();
    let failovers = h.failovers();
    let replication_now = h.replication_active();
    let r = h.finish();
    let service_ok = error.is_none() && r.verify.is_ok() && r.broken_connections == 0;
    let outcome = classify(
        true,
        service_ok,
        r.unrecovered_faults,
        failovers,
        replication_now,
        &stats,
        error.as_deref(),
    );
    CellRun {
        outcome,
        state_ok: true,
        service_ok,
        failovers,
        stats,
        error,
    }
}

// ----------------------------------------------------------------------
// Fleet cells (EXTENSION `--fleet N`, DESIGN.md §13)
// ----------------------------------------------------------------------

/// One fleet-scale adversarial scenario: N lanes multiplexed on one
/// primary/backup pair, with a partition of the whole pair or a fail-stop
/// of a single lane's container. The invariants under test are the fleet's:
/// per-lane ownership promotes independently behind the lease fence
/// (exactly one owner per lane, never per pair), and a fault on lane A
/// must not break lane B's clients.
pub struct FleetScenario {
    /// Catalog name.
    pub name: &'static str,
    /// Lane count (`--fleet N`).
    pub lanes: u32,
    /// Partition the primary from backup + clients over this window.
    pub partition: Option<(Nanos, Nanos)>,
    /// Fail-stop one lane's container processes at this time.
    pub lane_fault: Option<(usize, Nanos)>,
    /// Failovers the catalog expects (summed over lanes).
    pub expect_failovers: u64,
    /// Expected outcome.
    pub expect: Outcome,
}

/// The fleet scenario catalog, shifted like [`scenarios`].
pub fn fleet_scenarios(shift: Nanos) -> Vec<FleetScenario> {
    let s = |t: Nanos| t + shift;
    vec![
        // The pair partitions mid-fleet: every lane's output is held (no
        // ack ⇒ no release), leases run out behind the fence, and the
        // backup promotes all three lanes; the zombie primary's held
        // output is discarded, never released.
        FleetScenario {
            name: "fleet-partition-mid-fleet",
            lanes: 3,
            partition: Some((s(400 * MS), s(1000 * MS))),
            lane_fault: None,
            expect_failovers: 3,
            expect: Outcome::Recovered,
        },
        // Container A fail-stops while lane B is mid-commit on the shared
        // link (the stagger keeps B's stop/ack in flight when A dies): A
        // alone promotes; B's epoch commits and its clients never notice.
        FleetScenario {
            name: "fleet-lane-fault-while-peer-commits",
            lanes: 2,
            partition: None,
            lane_fault: Some((0, s(415 * MS))),
            expect_failovers: 1,
            expect: Outcome::Recovered,
        },
    ]
}

/// Echo application for fleet lanes: stages each request through guest
/// heap so committed state covers served requests.
struct FleetEchoApp;
impl Application for FleetEchoApp {
    fn name(&self) -> &str {
        "fleet-echo"
    }
    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }
    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        ctx.cpu(40_000);
        ctx.heap_write(0, req)?;
        let mut back = vec![0u8; req.len()];
        ctx.heap_read(0, &mut back)?;
        Ok(RequestOutcome { response: back })
    }
}

/// Closed-loop clients tagging payloads per lane and verifying every echo.
struct FleetEchoClients {
    n: usize,
    tag: u8,
    issued: u64,
    got: u64,
    bad: u64,
}

impl ClientBehavior for FleetEchoClients {
    fn client_count(&self) -> usize {
        self.n
    }
    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        self.issued += 1;
        Some(vec![self.tag, idx as u8, (self.issued % 251) as u8])
    }
    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.got += 1;
        if resp.len() != 3 || resp[0] != self.tag || resp[1] != idx as u8 {
            self.bad += 1;
        }
    }
    fn verify(&self) -> Result<(), String> {
        if self.bad > 0 {
            return Err(format!("{} corrupted echoes (tag {})", self.bad, self.tag));
        }
        if self.got == 0 {
            return Err(format!("no responses completed (tag {})", self.tag));
        }
        Ok(())
    }
}

fn fleet_lane(i: u32) -> LaneSpec {
    let mut spec = ContainerSpec::server(&format!("svc{i}"), 10 + i, 6379);
    spec.heap_pages = 64;
    LaneSpec {
        spec,
        app: Box::new(FleetEchoApp),
        behavior: Some(Box::new(FleetEchoClients {
            n: 2,
            tag: 0x40 + i as u8,
            issued: 0,
            got: 0,
            bad: 0,
        })),
    }
}

/// Run one fleet cell: `epochs` epochs per lane under the scenario, judged
/// on every lane's echo verification, zero broken connections, the
/// catalogued failover count, and the per-lane exactly-one-owner invariant.
pub fn run_fleet_cell(sc: &FleetScenario, epochs: u64) -> CellRun {
    let mut cfg = ReplicationConfig {
        opts: OptimizationConfig::nilicon(),
        ..Default::default()
    };
    cfg.opts.fleet = sc.lanes;
    let lanes = (0..sc.lanes).map(fleet_lane).collect();
    let mut fleet = FleetScheduler::new(cfg, lanes).expect("fleet");
    if let Some((from, until)) = sc.partition {
        fleet.partition_primary(from, until);
    }
    if let Some((lane, t)) = sc.lane_fault {
        fleet.inject_lane_fault_at(lane, t);
    }
    let error = fleet.run_epochs(epochs).err().map(|e| e.to_string());
    let r = fleet.finish();

    let failovers: u64 = r.lanes.iter().map(|l| l.failovers).sum();
    let unrecovered = r.lanes.iter().filter(|l| l.unrecovered).count() as u64;
    let lane_fail: Vec<String> = r
        .lanes
        .iter()
        .enumerate()
        .filter_map(|(i, l)| {
            l.verify
                .as_ref()
                .err()
                .map(|e| format!("lane {i}: {e}"))
                .or_else(|| {
                    (l.broken_connections > 0)
                        .then(|| format!("lane {i}: {} broken connections", l.broken_connections))
                })
        })
        .collect();
    let service_ok = error.is_none() && lane_fail.is_empty() && failovers == sc.expect_failovers;
    let error = error.or_else(|| {
        (!lane_fail.is_empty()).then(|| lane_fail.join("; "))
    });
    let stats = ChaosStats {
        split_brain: r.split_brains() > 0,
        ..ChaosStats::default()
    };
    // `replication_now`: a fleet lane that failed over serves unreplicated
    // by design (no re-arm); Degraded is reserved for a backup dying with
    // no failover, which these scenarios cannot produce.
    let outcome = classify(
        true,
        service_ok,
        unrecovered,
        failovers,
        true,
        &stats,
        error.as_deref(),
    );
    CellRun {
        outcome,
        state_ok: true,
        service_ok,
        failovers,
        stats,
        error,
    }
}

/// One matrix cell: the worse of the state and service runs.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Scenario name.
    pub scenario: &'static str,
    /// Fault-timing shift (ms).
    pub shift_ms: u64,
    /// Catalogued expectation.
    pub expect: Outcome,
    /// Observed outcome (worse of state/service).
    pub outcome: Outcome,
    /// The state run.
    pub state: CellRun,
    /// The service run.
    pub service: CellRun,
}

/// Default epochs per cell run (~2.3 s virtual — past every window and
/// promotion gate in the catalog).
pub const CELL_EPOCHS: u64 = 75;

/// Run one full cell (state + service) of the matrix.
pub fn run_cell(sc: &Scenario, shift: Nanos, epochs: u64) -> Cell {
    let state = run_state_cell(sc, epochs);
    let service = run_service_cell(sc, epochs);
    Cell {
        scenario: sc.name,
        shift_ms: shift / MS,
        expect: sc.expect,
        outcome: state.outcome.max(service.outcome),
        state,
        service,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_pure_and_cumulative() {
        let base = vec![0u8; (HEAP_PAGES as usize) * PAGE_SIZE];
        let a = replay(&base, 40);
        let b = replay(&replay(&base, 25), 0); // replay(…, 0) is identity
        assert_ne!(a, base);
        assert_eq!(b, replay(&base, 25));
        // Step 40's counter is in place.
        assert_eq!(u64::from_le_bytes(a[0..8].try_into().unwrap()), 40);
    }

    #[test]
    fn script_writes_stay_inside_the_snapshot() {
        for n in 0..600 {
            for (off, data) in script_writes(n) {
                assert!(
                    (off as usize + data.len()) <= (HEAP_PAGES as usize) * PAGE_SIZE,
                    "step {n} writes out of range"
                );
            }
        }
    }

    #[test]
    fn catalog_covers_the_required_scenario_classes() {
        let cat = scenarios(0);
        assert!(cat.len() >= 6);
        for needle in [
            "partition",
            "asym-loss",
            "delay",
            "backup-fault",
            "fault-during-release",
            "partition-false-positive",
            "backup-loss-mid-epoch",
            "backup-loss-mid-repair",
            "backup-loss-in-partition",
            "pipeline-stage-crash-partition",
            "pipeline-backpressure-failover",
        ] {
            assert!(
                cat.iter().any(|s| s.name.contains(needle)),
                "catalog misses {needle}"
            );
        }
        let fleet = fleet_scenarios(0);
        for needle in ["fleet-partition-mid-fleet", "fleet-lane-fault-while-peer-commits"] {
            assert!(
                fleet.iter().any(|s| s.name.contains(needle)),
                "fleet catalog misses {needle}"
            );
        }
    }

    #[test]
    fn fleet_cells_match_the_catalog() {
        for sc in fleet_scenarios(0) {
            let cell = run_fleet_cell(&sc, CELL_EPOCHS);
            assert!(!cell.stats.split_brain, "{}: split brain", sc.name);
            assert_eq!(
                cell.outcome, sc.expect,
                "{}: {:?} (error: {:?})",
                sc.name, cell.outcome, cell.error
            );
        }
    }

    #[test]
    fn clean_state_run_is_recovered_and_byte_identical() {
        let sc = Scenario {
            name: "clean",
            ..Default::default()
        };
        let cell = run_state_cell(&sc, 12);
        assert!(cell.state_ok, "clean run must replay byte-identically");
        assert_eq!(cell.outcome, Outcome::Recovered);
    }
}
