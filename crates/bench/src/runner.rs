//! Shared run-and-summarize machinery for the table binaries.

use nilicon::harness::{RunHarness, RunMode};
use nilicon::metrics::{percentile, RunMetrics};
use nilicon::trace::{TraceEvent, Tracer};
use nilicon::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_mc::McEngine;
use nilicon_sim::time::Nanos;
use nilicon_sim::CostModel;
use nilicon_workloads::Workload;
use serde::Serialize;

/// Epochs discarded before aggregating (initial full sync + cold
/// infrequent-state cache; the paper's 100-run averages are warm).
pub const WARMUP_EPOCHS: usize = 4;

/// A NiLiCon run mode with the given optimization set, plus any EXTENSION
/// knobs passed on the command line (see [`apply_cli_extensions`]).
pub fn nilicon_mode(opts: OptimizationConfig) -> RunMode {
    let opts = apply_cli_extensions(opts, std::env::args());
    RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())))
}

/// Overlay EXTENSION flags onto a paper-faithful optimization row:
/// `--delta` enables delta-encoded checkpoint transfer, `--dump-workers N`
/// shards the per-process dump loop, `--cow` switches to copy-on-write
/// checkpointing (dirty pages are write-protected at pause and copied out in
/// the background — the stop phase shrinks, the copy moves to the ack path),
/// and `--rearm` re-establishes redundancy after a failover by bootstrapping
/// a replacement backup (the run then survives a second primary fault).
/// With no flags present the row is returned untouched, so every table
/// binary stays paper-faithful by default but can demo the extensions
/// (visible in `trace-report`'s DeltaEncode/CowCopy phases and summary
/// lines).
pub fn apply_cli_extensions(
    mut opts: OptimizationConfig,
    mut args: impl Iterator<Item = String>,
) -> OptimizationConfig {
    while let Some(a) = args.next() {
        match a.as_str() {
            "--delta" => opts.delta_transfer = true,
            "--cow" => opts.cow_checkpoint = true,
            "--rearm" => opts.rearm = true,
            "--dump-workers" => {
                opts.dump_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--dump-workers requires a worker count");
            }
            _ => {}
        }
    }
    opts
}

/// The MC baseline run mode.
pub fn mc_mode() -> RunMode {
    RunMode::Replicated(Box::new(McEngine::new(CostModel::default())))
}

thread_local! {
    static CLI_TRACER: std::cell::OnceCell<Tracer> = const { std::cell::OnceCell::new() };
}

/// The process-wide tracer selected by a `--trace <path>` CLI flag
/// (disabled when the flag is absent), shared by every run the binary
/// performs. Each run opens with a [`TraceEvent::RunStart`] marker so
/// `trace-report` can attribute records to runs; see `OBSERVABILITY.md`.
pub fn cli_tracer() -> Tracer {
    CLI_TRACER.with(|c| {
        c.get_or_init(|| {
            let mut args = std::env::args();
            while let Some(a) = args.next() {
                if a == "--trace" {
                    let path = args.next().expect("--trace requires a path");
                    return Tracer::to_file(&path)
                        .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
                }
            }
            Tracer::disabled()
        })
        .clone()
    })
}

/// Post-warmup aggregate of one run.
#[derive(Debug, Clone, Serialize)]
pub struct PerfSummary {
    /// Workload name.
    pub name: String,
    /// Mode label ("stock", "NiLiCon", "MC", or a Table-I row).
    pub mode: String,
    /// Requests (or steps) per virtual second, post-warmup.
    pub throughput: f64,
    /// Mean stop time (ns).
    pub avg_stop: Nanos,
    /// Mean dirty pages per epoch.
    pub avg_dirty: f64,
    /// Stop-time percentiles p10/p50/p90 (ns).
    pub stop_p: [Nanos; 3],
    /// State-size percentiles p10/p50/p90 (bytes).
    pub state_p: [u64; 3],
    /// Active-host core utilization (cores).
    pub active_util: f64,
    /// Backup-host core utilization (cores).
    pub backup_util: f64,
    /// Mean response latency (ns; server workloads).
    pub mean_latency: Nanos,
    /// Fraction of post-warmup wall time spent stopped.
    pub stop_frac: f64,
    /// Fraction of exec CPU burned on tracking faults.
    pub tracking_frac: f64,
}

impl PerfSummary {
    /// Relative reduction in maximum throughput vs stock — the Fig. 3
    /// metric for *server* applications (§VII-C).
    pub fn overhead_vs(&self, stock_throughput: f64) -> f64 {
        if stock_throughput <= 0.0 {
            return 0.0;
        }
        1.0 - self.throughput / stock_throughput
    }

    /// Relative increase in execution time vs stock — the Fig. 3 metric for
    /// *non-interactive* applications (§VII-C): same work, longer time.
    pub fn time_overhead_vs(&self, stock_throughput: f64) -> f64 {
        if self.throughput <= 0.0 {
            return 0.0;
        }
        stock_throughput / self.throughput - 1.0
    }
}

/// Aggregate `metrics`, skipping `warmup` epochs.
pub fn summarize(name: &str, mode: &str, metrics: &RunMetrics, warmup: usize) -> PerfSummary {
    let epochs = if metrics.epochs.len() > warmup {
        &metrics.epochs[warmup..]
    } else {
        &metrics.epochs[..]
    };
    let n = epochs.len().max(1) as f64;
    let wall: Nanos = epochs.iter().map(|e| 30_000_000 + e.stop_time).sum();
    let wall_s = (wall as f64 / 1e9).max(1e-12);
    let work: u64 = epochs.iter().map(|e| e.requests_done + e.steps_done).sum();
    let stops: Vec<Nanos> = epochs.iter().map(|e| e.stop_time).collect();
    let states: Vec<u64> = epochs.iter().map(|e| e.state_bytes).collect();
    let stop_total: Nanos = stops.iter().sum();
    let exec_total: Nanos = epochs.iter().map(|e| e.exec_cpu).sum();
    let tracking_total: Nanos = epochs.iter().map(|e| e.tracking_overhead).sum();
    let backup_total: Nanos = epochs.iter().map(|e| e.backup_cpu).sum();

    PerfSummary {
        name: name.to_string(),
        mode: mode.to_string(),
        throughput: work as f64 / wall_s,
        avg_stop: stop_total / epochs.len().max(1) as u64,
        avg_dirty: epochs.iter().map(|e| e.dirty_pages).sum::<u64>() as f64 / n,
        stop_p: [
            percentile(stops.clone(), 10.0),
            percentile(stops.clone(), 50.0),
            percentile(stops, 90.0),
        ],
        state_p: [
            percentile(states.clone(), 10.0),
            percentile(states.clone(), 50.0),
            percentile(states, 90.0),
        ],
        active_util: exec_total as f64 / wall as f64,
        backup_util: backup_total as f64 / wall as f64,
        mean_latency: metrics.mean_latency(),
        stop_frac: stop_total as f64 / wall as f64,
        tracking_frac: tracking_total as f64 / wall as f64,
    }
}

/// Run a server workload for `epochs` epochs under `mode`.
pub fn run_server(w: Workload, mode: RunMode, epochs: u64, label: &str) -> PerfSummary {
    let name = w.name;
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    let tracer = cli_tracer();
    tracer.event_at(
        TraceEvent::RunStart {
            name: name.to_string(),
            mode: label.to_string(),
        },
        0,
    );
    h.set_tracer(tracer);
    h.run_epochs(epochs).expect("run");
    let r = h.finish();
    r.verify.expect("workload validated");
    assert_eq!(r.broken_connections, 0, "{name}: broken connections");
    summarize(name, label, &r.metrics, WARMUP_EPOCHS)
}

/// Run a batch workload to completion (bounded); returns the summary plus
/// total elapsed virtual time (for execution-time overhead).
pub fn run_batch(w: Workload, mode: RunMode, max_epochs: u64, label: &str) -> (PerfSummary, Nanos) {
    let name = w.name;
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    let tracer = cli_tracer();
    tracer.event_at(
        TraceEvent::RunStart {
            name: name.to_string(),
            mode: label.to_string(),
        },
        0,
    );
    h.set_tracer(tracer);
    h.run_batch_to_completion(max_epochs)
        .expect("batch completes");
    let r = h.finish();
    let elapsed = r.metrics.elapsed;
    (summarize(name, label, &r.metrics, WARMUP_EPOCHS), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon::metrics::EpochRecord;

    fn metrics(stops: &[Nanos], reqs: &[u64]) -> RunMetrics {
        let mut m = RunMetrics::default();
        for (i, (&stop, &req)) in stops.iter().zip(reqs).enumerate() {
            m.push(EpochRecord {
                epoch: i as u64,
                stop_time: stop,
                dirty_pages: 10,
                state_bytes: 4096 * 10,
                exec_cpu: 30_000_000,
                backup_cpu: 1_000_000,
                requests_done: req,
                ..Default::default()
            });
        }
        m.elapsed = stops.iter().map(|s| 30_000_000 + s).sum();
        m
    }

    #[test]
    fn summarize_skips_warmup() {
        // Two cold epochs with huge stops, then steady state.
        let stops = [200_000_000, 150_000_000, 5_000_000, 5_000_000, 5_000_000, 5_000_000];
        let reqs = [1, 1, 10, 10, 10, 10];
        let m = metrics(&stops, &reqs);
        let s = summarize("x", "y", &m, 2);
        assert_eq!(s.avg_stop, 5_000_000, "warmup epochs excluded");
        let per_epoch_wall = 35_000_000.0;
        let expect = 10.0 / (per_epoch_wall / 1e9);
        assert!((s.throughput - expect).abs() < 1.0, "{} vs {expect}", s.throughput);
    }

    #[test]
    fn summarize_handles_short_runs() {
        let m = metrics(&[1_000_000], &[5]);
        let s = summarize("x", "y", &m, 4); // warmup longer than the run
        assert_eq!(s.avg_stop, 1_000_000);
        assert!(s.throughput > 0.0);
    }

    #[test]
    fn overhead_metrics() {
        let m = metrics(&[10_000_000; 10], &[8; 10]);
        let s = summarize("x", "y", &m, 2);
        // Server metric: throughput reduction.
        let o = s.overhead_vs(s.throughput * 2.0);
        assert!((o - 0.5).abs() < 1e-9);
        // Batch metric: time increase.
        let t = s.time_overhead_vs(s.throughput * 2.0);
        assert!((t - 1.0).abs() < 1e-9);
        assert_eq!(s.overhead_vs(0.0), 0.0, "degenerate baseline");
    }

    #[test]
    fn modes_construct() {
        let _ = nilicon_mode(nilicon::OptimizationConfig::nilicon());
        let _ = mc_mode();
    }

    #[test]
    fn cli_extensions_overlay_flags() {
        let base = nilicon::OptimizationConfig::nilicon();
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();

        let untouched = apply_cli_extensions(base, args(&["table1", "30"]).into_iter());
        assert_eq!(untouched, base, "no flags -> paper-faithful row");

        let extended = apply_cli_extensions(
            base,
            args(&["table1", "--delta", "--dump-workers", "4", "--cow", "--rearm"]).into_iter(),
        );
        assert!(extended.delta_transfer);
        assert_eq!(extended.dump_workers, 4);
        assert!(extended.cow_checkpoint);
        assert!(extended.rearm);
    }
}
