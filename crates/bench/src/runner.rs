//! Shared run-and-summarize machinery for the table binaries.

pub use crate::cli::{apply_cli_extensions, cli_tracer};
use nilicon::harness::{RunHarness, RunMode};
use nilicon::metrics::{percentile, RunMetrics};
use nilicon::trace::TraceEvent;
use nilicon::{NiLiConEngine, OptimizationConfig, PlacementEngine, ReplicationConfig};
use nilicon_mc::McEngine;
use nilicon_sim::time::Nanos;
use nilicon_sim::CostModel;
use nilicon_workloads::Workload;
use serde::Serialize;

/// Epochs discarded before aggregating (initial full sync + cold
/// infrequent-state cache; the paper's 100-run averages are warm).
pub const WARMUP_EPOCHS: usize = 4;

/// A NiLiCon run mode with the given optimization set, plus any EXTENSION
/// knobs passed on the command line (see [`apply_cli_extensions`]).
pub fn nilicon_mode(opts: OptimizationConfig) -> RunMode {
    let opts = apply_cli_extensions(opts, std::env::args());
    if opts.backups > 1 {
        assert!(
            opts.quorum >= 1 && opts.quorum <= opts.backups,
            "invalid --backups/--quorum placement: need 1 <= k <= n"
        );
        // The placement engine needs the staging buffer and doesn't compose
        // with --delta/--cow: staircase rows without that shape keep the
        // single-backup engine, so `--backups` upgrades exactly the rows
        // that can host a k-of-n placement.
        if let Ok(engine) = PlacementEngine::new(opts, CostModel::default()) {
            return RunMode::Replicated(Box::new(engine));
        }
    }
    RunMode::Replicated(Box::new(NiLiConEngine::new(opts, CostModel::default())))
}

/// The MC baseline run mode.
pub fn mc_mode() -> RunMode {
    RunMode::Replicated(Box::new(McEngine::new(CostModel::default())))
}

/// Post-warmup aggregate of one run.
#[derive(Debug, Clone, Serialize)]
pub struct PerfSummary {
    /// Workload name.
    pub name: String,
    /// Mode label ("stock", "NiLiCon", "MC", or a Table-I row).
    pub mode: String,
    /// Requests (or steps) per virtual second, post-warmup.
    pub throughput: f64,
    /// Mean stop time (ns).
    pub avg_stop: Nanos,
    /// Mean dirty pages per epoch.
    pub avg_dirty: f64,
    /// Stop-time percentiles p10/p50/p90 (ns).
    pub stop_p: [Nanos; 3],
    /// State-size percentiles p10/p50/p90 (bytes).
    pub state_p: [u64; 3],
    /// Active-host core utilization (cores).
    pub active_util: f64,
    /// Backup-host core utilization (cores).
    pub backup_util: f64,
    /// Mean response latency (ns; server workloads).
    pub mean_latency: Nanos,
    /// Fraction of post-warmup wall time spent stopped.
    pub stop_frac: f64,
    /// Fraction of exec CPU burned on tracking faults.
    pub tracking_frac: f64,
}

impl PerfSummary {
    /// Relative reduction in maximum throughput vs stock — the Fig. 3
    /// metric for *server* applications (§VII-C).
    pub fn overhead_vs(&self, stock_throughput: f64) -> f64 {
        if stock_throughput <= 0.0 {
            return 0.0;
        }
        1.0 - self.throughput / stock_throughput
    }

    /// Relative increase in execution time vs stock — the Fig. 3 metric for
    /// *non-interactive* applications (§VII-C): same work, longer time.
    pub fn time_overhead_vs(&self, stock_throughput: f64) -> f64 {
        if self.throughput <= 0.0 {
            return 0.0;
        }
        stock_throughput / self.throughput - 1.0
    }
}

/// Aggregate `metrics`, skipping `warmup` epochs.
pub fn summarize(name: &str, mode: &str, metrics: &RunMetrics, warmup: usize) -> PerfSummary {
    let epochs = if metrics.epochs.len() > warmup {
        &metrics.epochs[warmup..]
    } else {
        &metrics.epochs[..]
    };
    let n = epochs.len().max(1) as f64;
    let wall: Nanos = epochs.iter().map(|e| 30_000_000 + e.stop_time).sum();
    let wall_s = (wall as f64 / 1e9).max(1e-12);
    let work: u64 = epochs.iter().map(|e| e.requests_done + e.steps_done).sum();
    let stops: Vec<Nanos> = epochs.iter().map(|e| e.stop_time).collect();
    let states: Vec<u64> = epochs.iter().map(|e| e.state_bytes).collect();
    let stop_total: Nanos = stops.iter().sum();
    let exec_total: Nanos = epochs.iter().map(|e| e.exec_cpu).sum();
    let tracking_total: Nanos = epochs.iter().map(|e| e.tracking_overhead).sum();
    let backup_total: Nanos = epochs.iter().map(|e| e.backup_cpu).sum();

    PerfSummary {
        name: name.to_string(),
        mode: mode.to_string(),
        throughput: work as f64 / wall_s,
        avg_stop: stop_total / epochs.len().max(1) as u64,
        avg_dirty: epochs.iter().map(|e| e.dirty_pages).sum::<u64>() as f64 / n,
        stop_p: [
            percentile(stops.clone(), 10.0),
            percentile(stops.clone(), 50.0),
            percentile(stops, 90.0),
        ],
        state_p: [
            percentile(states.clone(), 10.0),
            percentile(states.clone(), 50.0),
            percentile(states, 90.0),
        ],
        active_util: exec_total as f64 / wall as f64,
        backup_util: backup_total as f64 / wall as f64,
        mean_latency: metrics.mean_latency(),
        stop_frac: stop_total as f64 / wall as f64,
        tracking_frac: tracking_total as f64 / wall as f64,
    }
}

/// Run a server workload for `epochs` epochs under `mode`.
pub fn run_server(w: Workload, mode: RunMode, epochs: u64, label: &str) -> PerfSummary {
    let name = w.name;
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    let tracer = cli_tracer();
    tracer.event_at(
        TraceEvent::RunStart {
            name: name.to_string(),
            mode: label.to_string(),
        },
        0,
    );
    h.set_tracer(tracer);
    h.run_epochs(epochs).expect("run");
    let r = h.finish();
    r.verify.expect("workload validated");
    assert_eq!(r.broken_connections, 0, "{name}: broken connections");
    summarize(name, label, &r.metrics, WARMUP_EPOCHS)
}

/// Run a batch workload to completion (bounded); returns the summary plus
/// total elapsed virtual time (for execution-time overhead).
pub fn run_batch(w: Workload, mode: RunMode, max_epochs: u64, label: &str) -> (PerfSummary, Nanos) {
    let name = w.name;
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        mode,
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    let tracer = cli_tracer();
    tracer.event_at(
        TraceEvent::RunStart {
            name: name.to_string(),
            mode: label.to_string(),
        },
        0,
    );
    h.set_tracer(tracer);
    h.run_batch_to_completion(max_epochs)
        .expect("batch completes");
    let r = h.finish();
    let elapsed = r.metrics.elapsed;
    (summarize(name, label, &r.metrics, WARMUP_EPOCHS), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon::metrics::EpochRecord;

    fn metrics(stops: &[Nanos], reqs: &[u64]) -> RunMetrics {
        let mut m = RunMetrics::default();
        for (i, (&stop, &req)) in stops.iter().zip(reqs).enumerate() {
            m.push(EpochRecord {
                epoch: i as u64,
                stop_time: stop,
                dirty_pages: 10,
                state_bytes: 4096 * 10,
                exec_cpu: 30_000_000,
                backup_cpu: 1_000_000,
                requests_done: req,
                ..Default::default()
            });
        }
        m.elapsed = stops.iter().map(|s| 30_000_000 + s).sum();
        m
    }

    #[test]
    fn summarize_skips_warmup() {
        // Two cold epochs with huge stops, then steady state.
        let stops = [200_000_000, 150_000_000, 5_000_000, 5_000_000, 5_000_000, 5_000_000];
        let reqs = [1, 1, 10, 10, 10, 10];
        let m = metrics(&stops, &reqs);
        let s = summarize("x", "y", &m, 2);
        assert_eq!(s.avg_stop, 5_000_000, "warmup epochs excluded");
        let per_epoch_wall = 35_000_000.0;
        let expect = 10.0 / (per_epoch_wall / 1e9);
        assert!((s.throughput - expect).abs() < 1.0, "{} vs {expect}", s.throughput);
    }

    #[test]
    fn summarize_handles_short_runs() {
        let m = metrics(&[1_000_000], &[5]);
        let s = summarize("x", "y", &m, 4); // warmup longer than the run
        assert_eq!(s.avg_stop, 1_000_000);
        assert!(s.throughput > 0.0);
    }

    #[test]
    fn overhead_metrics() {
        let m = metrics(&[10_000_000; 10], &[8; 10]);
        let s = summarize("x", "y", &m, 2);
        // Server metric: throughput reduction.
        let o = s.overhead_vs(s.throughput * 2.0);
        assert!((o - 0.5).abs() < 1e-9);
        // Batch metric: time increase.
        let t = s.time_overhead_vs(s.throughput * 2.0);
        assert!((t - 1.0).abs() < 1e-9);
        assert_eq!(s.overhead_vs(0.0), 0.0, "degenerate baseline");
    }

    #[test]
    fn modes_construct() {
        let _ = nilicon_mode(nilicon::OptimizationConfig::nilicon());
        let _ = mc_mode();
    }
}
